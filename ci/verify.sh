#!/usr/bin/env bash
# Canonical CI entry point: reproduces the ROADMAP tier-1 verify exactly.
#
#   cmake -B build -S . && cmake --build build -j && \
#     cd build && ctest --output-on-failure -j
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j
