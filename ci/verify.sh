#!/usr/bin/env bash
# Canonical CI entry point: reproduces the ROADMAP tier-1 verify exactly.
#
#   cmake -B build -S . && cmake --build build -j && \
#     cd build && ctest --output-on-failure -j
#
# Opt-in sanitizer mode wires the JANUS_SANITIZE CMake toggle and keeps a
# separate build tree so instrumented and plain objects never mix:
#
#   SANITIZE=address ci/verify.sh    # AddressSanitizer
#   SANITIZE=thread  ci/verify.sh    # ThreadSanitizer (fleet shards stress
#                                    # the thread pool)
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

SANITIZE="${SANITIZE:-}"
BUILD_DIR=build
CMAKE_ARGS=()
case "$SANITIZE" in
  "") ;;
  address|thread)
    BUILD_DIR="build-${SANITIZE}"
    CMAKE_ARGS+=("-DJANUS_SANITIZE=${SANITIZE}")
    ;;
  *)
    echo "ci/verify.sh: SANITIZE must be empty, 'address', or 'thread'" \
         "(got '${SANITIZE}')" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
