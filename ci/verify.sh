#!/usr/bin/env bash
# Canonical CI entry point: reproduces the ROADMAP tier-1 verify exactly.
#
#   cmake -B build -S . && cmake --build build -j && \
#     cd build && ctest --output-on-failure -j
#
# On a plain (unsanitized) run two regular steps follow the tier-1 suite:
#
#   * TSan pass — the fleet drives the thread pool with real concurrency,
#     so the concurrency-facing suites (fleet/common/sim) are rebuilt under
#     -fsanitize=thread in build-thread/ and rerun.  TSAN=0 skips.
#   * Bench report — the fast benchmarks with committed baselines
#     (fleet_scale, engine, autoscale) run once and tools/compare_bench.py
#     diffs their wall times against bench/baselines/, flagging >20%
#     regressions as warnings and failing the build past 35% (far beyond
#     scheduler noise) or on a benchmark that exits nonzero.  BENCH=0
#     skips.
#
# Opt-in sanitizer mode wires the JANUS_SANITIZE CMake toggle and keeps a
# separate build tree so instrumented and plain objects never mix:
#
#   SANITIZE=address ci/verify.sh    # AddressSanitizer, full suite
#   SANITIZE=thread  ci/verify.sh    # ThreadSanitizer, full suite
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

SANITIZE="${SANITIZE:-}"
BUILD_DIR=build
CMAKE_ARGS=()
case "$SANITIZE" in
  "") ;;
  address|thread)
    BUILD_DIR="build-${SANITIZE}"
    CMAKE_ARGS+=("-DJANUS_SANITIZE=${SANITIZE}")
    ;;
  *)
    echo "ci/verify.sh: SANITIZE must be empty, 'address', or 'thread'" \
         "(got '${SANITIZE}')" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

if [[ -z "$SANITIZE" ]]; then
  if [[ "${TSAN:-1}" != "0" ]]; then
    echo "== verify: ThreadSanitizer pass (fleet/common/sim suites) =="
    cmake -B build-thread -S . -DJANUS_SANITIZE=thread
    cmake --build build-thread -j --target test_fleet test_common test_sim
    (cd build-thread && ctest -R 'test_(fleet|common|sim)' \
       --output-on-failure -j)
  fi
  if [[ "${BENCH:-1}" != "0" ]]; then
    echo "== verify: bench wall-time report (fatal past 35%) =="
    # Fresh directory every run: a stale JSON from a previous run must
    # never satisfy the comparison, and a bench that fails (or vanishes)
    # must fail the build, so no '|| true' here.
    rm -rf "$BUILD_DIR/bench-report"
    mkdir -p "$BUILD_DIR/bench-report"
    "$BUILD_DIR/bench/bench_main" --outdir "$BUILD_DIR/bench-report" \
      fleet_scale engine autoscale
    tools/compare_bench.py --fresh "$BUILD_DIR/bench-report" --fatal-pct 35
  fi
fi
