#!/usr/bin/env bash
# Canonical CI entry point: reproduces the ROADMAP tier-1 verify exactly.
#
#   cmake -B build -S . && cmake --build build -j && \
#     cd build && ctest --output-on-failure -j
#
# On a plain (unsanitized) run three regular steps follow the tier-1 suite:
#
#   * Lint gate — ci/lint.sh runs janus-lint (determinism, hot-path
#     allocation discipline, shared-state hygiene; see tools/janus_lint.py)
#     against the compile_commands.json the tier-1 configure just
#     exported, plus clang-tidy when installed.  LINT=0 skips.
#   * TSan pass — the fleet drives the thread pool with real concurrency,
#     so the concurrency-facing suites (fleet/common/sim) are rebuilt under
#     -fsanitize=thread in build-thread/ and rerun.  TSAN=0 skips.
#   * Bench report — the fast benchmarks with committed baselines
#     (fleet_scale, engine, autoscale, policy_mix, obs_overhead, chaos,
#     frontier, plus a reduced-size fleet_huge) run once and
#     tools/compare_bench.py diffs their wall times, peak RSS, and
#     sustainable-rps knees (bench_frontier's gate lines) against
#     bench/baselines/, flagging >20% regressions as warnings and failing
#     the build past BENCH_FATAL_PCT=35 (far beyond scheduler noise), on a
#     benchmark that exits nonzero, or on one missing from the fresh set
#     (--require).  BENCH_FATAL_PCT=0 keeps wall-time diffs warn-only
#     (hosted CI uses this: the committed baselines are recorded on dev
#     hardware, and a different CPU class legitimately moves sub-second
#     walls past any fixed threshold) — failed or missing required
#     benchmarks stay fatal either way.  The report is also written to
#     $BUILD_DIR/bench-report/compare_report.txt so hosted CI can upload
#     it next to the BENCH_*.json artifacts.  BENCH=0 skips.
#
# Environment knobs:
#
#   BUILD_TYPE=Debug ci/verify.sh    # CMAKE_BUILD_TYPE for the tier-1 tree
#                                    # (hosted CI runs a {gcc,clang} x
#                                    # {Release,Debug} matrix through this)
#   SANITIZE=address ci/verify.sh    # AddressSanitizer, full suite
#   SANITIZE=thread  ci/verify.sh    # ThreadSanitizer, full suite
#   SANITIZE=undefined ci/verify.sh  # UBSan (hard-fail reports), full suite
#   LINT=0 ci/verify.sh              # skip the ci/lint.sh static-analysis
#                                    # gate (it also runs standalone as the
#                                    # hosted 'lint' job)
#
# Sanitizer mode wires the JANUS_SANITIZE CMake toggle and keeps a separate
# build tree so instrumented and plain objects never mix.
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

SANITIZE="${SANITIZE:-}"
BUILD_TYPE="${BUILD_TYPE:-}"
BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "$BUILD_TYPE" ]]; then
  CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=${BUILD_TYPE}")
fi
case "$SANITIZE" in
  "") ;;
  address|thread|undefined)
    BUILD_DIR="build-${SANITIZE}"
    CMAKE_ARGS+=("-DJANUS_SANITIZE=${SANITIZE}")
    ;;
  *)
    echo "ci/verify.sh: SANITIZE must be empty, 'address', 'thread'," \
         "or 'undefined' (got '${SANITIZE}')" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

if [[ -z "$SANITIZE" ]]; then
  if [[ "${LINT:-1}" != "0" ]]; then
    echo "== verify: static-analysis gate (ci/lint.sh) =="
    # The tier-1 configure above already exported compile_commands.json
    # into $BUILD_DIR, so this adds seconds, not a reconfigure.
    BUILD_DIR="$BUILD_DIR" ci/lint.sh
  fi
  if [[ "${TSAN:-1}" != "0" ]]; then
    echo "== verify: ThreadSanitizer pass (fleet/common/sim/obs/chaos/frontier suites) =="
    cmake -B build-thread -S . -DJANUS_SANITIZE=thread
    cmake --build build-thread -j --target test_fleet test_common test_sim \
      test_obs test_chaos test_frontier
    (cd build-thread && ctest -R 'test_(fleet|common|sim|obs|chaos|frontier)' \
       --output-on-failure -j)
  fi
  if [[ "${BENCH:-1}" != "0" ]]; then
    BENCH_FATAL_PCT="${BENCH_FATAL_PCT:-35}"
    FATAL_ARGS=()
    if [[ "$BENCH_FATAL_PCT" != "0" ]]; then
      FATAL_ARGS=(--fatal-pct "$BENCH_FATAL_PCT")
      echo "== verify: bench wall-time report (fatal past ${BENCH_FATAL_PCT}%) =="
    else
      echo "== verify: bench wall-time report (warn-only walls; missing/failed still fatal) =="
    fi
    # Fresh directory every run: a stale JSON from a previous run must
    # never satisfy the comparison, and a bench that fails, vanishes, or
    # is silently dropped from this list must fail the build — hence
    # --require and no '|| true'.  fleet_huge runs a reduced-size variant
    # (JANUS_HUGE_TENANTS; the committed baseline is full-scale, so its
    # wall/RSS deltas read as improvements — the gate here is that the
    # streaming + process-sharded path completes and stays bit-identical).
    BENCH_SET=(fleet_scale engine autoscale policy_mix obs_overhead chaos
               frontier fleet_huge)
    rm -rf "$BUILD_DIR/bench-report"
    mkdir -p "$BUILD_DIR/bench-report"
    # JANUS_FRONTIER_OUT: bench_frontier drops its per-policy
    # frontier_<family>.{json,csv} artifacts next to the BENCH_*.json so
    # hosted CI uploads the full frontier, not just the knee gate lines.
    JANUS_HUGE_TENANTS="${JANUS_HUGE_TENANTS:-4000}" \
      JANUS_FRONTIER_OUT="$BUILD_DIR/bench-report" \
      "$BUILD_DIR/bench/bench_main" --outdir "$BUILD_DIR/bench-report" \
      "${BENCH_SET[@]}"
    tools/compare_bench.py --fresh "$BUILD_DIR/bench-report" \
      ${FATAL_ARGS[@]+"${FATAL_ARGS[@]}"} \
      --require "$(IFS=,; echo "${BENCH_SET[*]}")" 2>&1 \
      | tee "$BUILD_DIR/bench-report/compare_report.txt"
  fi
fi
