#!/usr/bin/env bash
# Static-analysis gate: janus-lint (always) + clang-tidy (when available).
#
#   ci/lint.sh                 # configure-if-needed, then lint the tree
#   BUILD_DIR=build-foo ci/lint.sh
#   LINT_TIDY=0 ci/lint.sh     # skip clang-tidy even if installed
#   LINT_TIDY=require ci/lint.sh  # fail if clang-tidy is missing (hosted
#                                 # lint job uses this so the tidy half of
#                                 # the gate can never silently vanish)
#
# janus-lint runs its deterministic token engine (--engine tokens): the
# same engine everywhere, regardless of whether a libclang wheel happens
# to be importable, so a finding reproduces bit-for-bit on every machine.
# clang-tidy covers the orthogonal general-C++ checks (.clang-tidy at the
# repo root) over the compilation database.
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

BUILD_DIR="${BUILD_DIR:-build}"
LINT_TIDY="${LINT_TIDY:-auto}"

# The linters need a compilation database; CMAKE_EXPORT_COMPILE_COMMANDS
# is ON in CMakeLists.txt, so any configured tree has one.
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== lint: configuring $BUILD_DIR for compile_commands.json =="
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

echo "== lint: janus-lint (determinism / hot-path / shared-state) =="
python3 tools/janus_lint.py --engine tokens \
  --compile-commands "$BUILD_DIR/compile_commands.json" \
  --baseline tools/lint_baseline.txt

echo "== lint: check_docs (markdown links + CLI references) =="
python3 tools/check_docs.py

case "$LINT_TIDY" in
  0)
    echo "== lint: clang-tidy skipped (LINT_TIDY=0) =="
    ;;
  auto|require)
    if command -v clang-tidy >/dev/null 2>&1; then
      echo "== lint: clang-tidy ($(clang-tidy --version | head -n1)) =="
      # Only our translation units — the database also names test/bench
      # TUs, which is fine, but third-party fetched sources are not ours
      # to fix.  -quiet keeps the output to actual diagnostics.
      mapfile -t TUS < <(python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "_deps/" not in f:
        print(f)
EOF
)
      clang-tidy -p "$BUILD_DIR" -quiet --warnings-as-errors='*' "${TUS[@]}"
    elif [[ "$LINT_TIDY" == "require" ]]; then
      echo "ci/lint.sh: LINT_TIDY=require but clang-tidy is not installed" >&2
      exit 2
    else
      echo "== lint: clang-tidy not installed; skipping (LINT_TIDY=auto) =="
    fi
    ;;
  *)
    echo "ci/lint.sh: LINT_TIDY must be auto, require, or 0" \
         "(got '$LINT_TIDY')" >&2
    exit 2
    ;;
esac

echo "== lint: OK =="
