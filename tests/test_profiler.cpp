// Tests for src/profiler: grids, percentile extraction, monotonicity
// invariants, serialization.
#include <gtest/gtest.h>

#include "model/workloads.hpp"
#include "profiler/profiler.hpp"

namespace janus {
namespace {

ProfilerConfig fast_config() {
  ProfilerConfig config;
  config.grid.kmin = 1000;
  config.grid.kmax = 3000;
  config.grid.kstep = 500;
  config.samples_per_point = 800;
  config.interference = InterferenceModel(workload_interference_params());
  return config;
}

// ------------------------------------------------------------- grid --
TEST(ProfileGrid, CoresEnumeration) {
  ProfileGrid grid;
  grid.kmin = 1000;
  grid.kmax = 2000;
  grid.kstep = 500;
  EXPECT_EQ(grid.cores(), (std::vector<Millicores>{1000, 1500, 2000}));
}

TEST(ProfileGrid, ValidationRejectsMisalignedGrid) {
  ProfileGrid grid;
  grid.kmin = 1000;
  grid.kmax = 2050;
  grid.kstep = 100;
  EXPECT_THROW(grid.validate(), std::invalid_argument);
}

TEST(ProfileGrid, ValidationRejectsBadConcurrency) {
  ProfileGrid grid;
  grid.concurrencies = {0};
  EXPECT_THROW(grid.validate(), std::invalid_argument);
}

TEST(DefaultPercentiles, CoverPaperRange) {
  const auto ps = default_percentiles();
  EXPECT_EQ(ps.front(), 1);
  EXPECT_EQ(ps.back(), 99);
  // 1..96 step 5 plus 99 (the always-present non-head percentile).
  EXPECT_EQ(ps.size(), 21u);
}

// --------------------------------------------------------- LatencyProfile --
TEST(LatencyProfile, SetAndGetPercentiles) {
  ProfileGrid grid;
  grid.kmin = grid.kmax = 1000;
  grid.kstep = 100;
  LatencyProfile profile("f", grid);
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  profile.set_samples(1000, 1, samples);
  EXPECT_NEAR(profile.latency(50, 1000, 1), 50.5, 0.1);
  EXPECT_NEAR(profile.latency(99, 1000, 1), 99.01, 0.1);
  EXPECT_NEAR(profile.latency(1, 1000, 1), 1.99, 0.1);
}

TEST(LatencyProfile, LatencyMsCeils) {
  ProfileGrid grid;
  grid.kmin = grid.kmax = 1000;
  LatencyProfile profile("f", grid);
  profile.set_samples(1000, 1, std::vector<double>(10, 0.1234));
  EXPECT_EQ(profile.latency_ms(50, 1000, 1), 124);
}

TEST(LatencyProfile, OffGridThrows) {
  ProfileGrid grid;
  grid.kmin = 1000;
  grid.kmax = 2000;
  grid.kstep = 500;
  LatencyProfile profile("f", grid);
  EXPECT_THROW(profile.latency(50, 1250, 1), std::invalid_argument);
  EXPECT_THROW(profile.latency(50, 1000, 9), std::invalid_argument);
  EXPECT_THROW(profile.latency(0, 1000, 1), std::invalid_argument);
}

TEST(LatencyProfile, UnprofiledPointThrows) {
  ProfileGrid grid;
  grid.kmin = 1000;
  grid.kmax = 2000;
  grid.kstep = 1000;
  LatencyProfile profile("f", grid);
  profile.set_samples(1000, 1, {1.0});
  EXPECT_NO_THROW(profile.latency(50, 1000, 1));
  EXPECT_THROW(profile.latency(50, 2000, 1), std::invalid_argument);
  EXPECT_TRUE(profile.has_point(1000, 1));
  EXPECT_FALSE(profile.has_point(2000, 1));
}

TEST(LatencyProfile, CsvRoundTripPreservesPercentiles) {
  const auto model = make_micro_function(ResourceDim::Cpu);
  const auto profile = profile_function(model, fast_config());
  const auto back = LatencyProfile::from_csv(profile.to_csv());
  EXPECT_EQ(back.function_name(), profile.function_name());
  for (Millicores k : profile.grid().cores()) {
    for (Percentile p : {1, 25, 50, 75, 99}) {
      EXPECT_NEAR(back.latency(p, k, 1), profile.latency(p, k, 1), 1e-6);
    }
  }
}

// --------------------------------------------------------------- profiler --
class ProfilerInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, Percentile>> {};

TEST_P(ProfilerInvariantTest, LatencyDecreasesWithCores) {
  const auto [model_index, p] = GetParam();
  const auto models = make_ia().chain_models();
  const auto profile =
      profile_function(models[static_cast<std::size_t>(model_index)],
                       fast_config());
  double prev = 1e18;
  for (Millicores k : profile.grid().cores()) {
    const double cur = profile.latency(p, k, 1);
    EXPECT_LE(cur, prev) << "k=" << k << " p=" << static_cast<int>(p);
    prev = cur;
  }
}

TEST_P(ProfilerInvariantTest, LatencyIncreasesWithPercentile) {
  const auto [model_index, p] = GetParam();
  (void)p;
  const auto models = make_ia().chain_models();
  const auto profile =
      profile_function(models[static_cast<std::size_t>(model_index)],
                       fast_config());
  for (Millicores k : profile.grid().cores()) {
    double prev = 0.0;
    for (Percentile q = 1; q <= 99; ++q) {
      const double cur = profile.latency(q, k, 1);
      EXPECT_GE(cur, prev);
      prev = cur;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, ProfilerInvariantTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<Percentile>(1, 50, 99)));

TEST(Profiler, DeterministicForSeed) {
  const auto model = make_micro_function(ResourceDim::Io);
  const auto a = profile_function(model, fast_config());
  const auto b = profile_function(model, fast_config());
  EXPECT_DOUBLE_EQ(a.latency(50, 1500, 1), b.latency(50, 1500, 1));
}

TEST(Profiler, SeedChangesSamples) {
  const auto model = make_micro_function(ResourceDim::Io);
  auto config = fast_config();
  const auto a = profile_function(model, config);
  config.seed = 1234;
  const auto b = profile_function(model, config);
  EXPECT_NE(a.latency(50, 1500, 1), b.latency(50, 1500, 1));
}

TEST(Profiler, DispersionReflectsWorkingSetSigma) {
  // QA's profile P99/P50 at a fixed size must be >= the ws-only ratio
  // (interference adds dispersion on top).
  const auto qa = make_ia().chain_models()[1];
  const auto profile = profile_function(qa, fast_config());
  const double ratio = profile.latency(99, 1000, 1) / profile.latency(50, 1000, 1);
  EXPECT_GT(ratio, 1.9);
  EXPECT_LT(ratio, 3.2);
}

TEST(Profiler, WorkloadProfilesInChainOrder) {
  const auto ia = make_ia();
  auto config = fast_config();
  const auto profiles = profile_workload(ia, config);
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].function_name(), "OD");
  EXPECT_EQ(profiles[1].function_name(), "QA");
  EXPECT_EQ(profiles[2].function_name(), "TS");
}

TEST(Profiler, NonBatchableSkipsHighConcurrency) {
  const auto va = make_va();
  auto config = fast_config();
  config.grid.concurrencies = {1, 2};
  const auto fe = profile_function(va.chain_models()[0], config);
  EXPECT_TRUE(fe.has_point(1000, 1));
  EXPECT_FALSE(fe.has_point(1000, 2));
}

TEST(Profiler, BatchRaisesLatency) {
  const auto qa = make_ia().chain_models()[1];
  auto config = fast_config();
  config.grid.concurrencies = {1, 2, 3};
  const auto profile = profile_function(qa, config);
  EXPECT_GT(profile.latency(50, 2000, 2), profile.latency(50, 2000, 1));
  EXPECT_GT(profile.latency(50, 2000, 3), profile.latency(50, 2000, 2));
}

TEST(Profiler, DefaultConfigCoversWorkloadConcurrency) {
  const auto ia = make_ia();
  const auto config = default_profiler_config(ia);
  EXPECT_EQ(config.grid.concurrencies,
            (std::vector<Concurrency>{1, 2, 3}));
  const auto va_config = default_profiler_config(make_va());
  EXPECT_EQ(va_config.grid.concurrencies, (std::vector<Concurrency>{1}));
}

TEST(Profiler, MemoryBytesNonTrivial) {
  const auto model = make_micro_function(ResourceDim::Cpu);
  const auto profile = profile_function(model, fast_config());
  EXPECT_GT(profile.memory_bytes(), 1000u);
}

}  // namespace
}  // namespace janus
