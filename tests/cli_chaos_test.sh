#!/usr/bin/env bash
# CLI contract for `janus_cli fleet --chaos` / `--chaos-seed` / `--flash`:
#
#   * an unknown chaos family is rejected with a ONE-line error that lists
#     the valid set and exits 2 (the --policy usage-class contract) —
#     never a silent calm run;
#   * knob dependencies fail up front (--chaos-seed needs --chaos; barrier
#     families need a finite --epoch-s; --flash conflicts with chaos
#     flash), before any simulation work;
#   * a valid chaos run prints the chaos summary line, carries the chaos
#     section in --json, and reports the SAME injection counts at any
#     shard count.
#
# usage: cli_chaos_test.sh /path/to/janus_cli
set -u

cli="${1:?usage: cli_chaos_test.sh /path/to/janus_cli}"
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# ---- unknown family: exit 2, one line, lists the valid set ------------
err=$("$cli" fleet --chaos bogus 2>&1 >/dev/null)
code=$?
[ "$code" -eq 2 ] || fail "unknown chaos family exited $code, want 2"
[ "$(printf '%s\n' "$err" | wc -l)" -eq 1 ] \
  || fail "unknown chaos error is not one line: $err"
case "$err" in
  *"unknown --chaos 'bogus'"*) ;;
  *) fail "error does not name the bad spec: $err" ;;
esac
for name in failures preemption storms flash all none; do
  case "$err" in
    *"$name"*) ;;
    *) fail "error does not list chaos family $name: $err" ;;
  esac
done

# ---- one bad family inside an otherwise valid list still fails --------
"$cli" fleet --chaos failures,bogus --epoch-s 20 >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "mixed list with bad family exited $code, want 2"

# ---- empty value is an error, not an accidental calm run --------------
"$cli" fleet --chaos "" >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "empty --chaos exited $code, want 2"

# ---- --chaos-seed without --chaos is a hard error ---------------------
err=$("$cli" fleet --chaos-seed 9 2>&1 >/dev/null)
code=$?
[ "$code" -ne 0 ] || fail "--chaos-seed without --chaos exited 0"
case "$err" in
  *"--chaos-seed needs --chaos"*) ;;
  *) fail "dangling --chaos-seed error unclear: $err" ;;
esac

# ---- barrier families without a finite --epoch-s fail up front --------
err=$("$cli" fleet --chaos failures 2>&1 >/dev/null)
code=$?
[ "$code" -ne 0 ] || fail "--chaos failures without --epoch-s exited 0"
case "$err" in
  *"--epoch-s"*) ;;
  *) fail "barrier-family error does not mention --epoch-s: $err" ;;
esac
# ...but flash alone works on the static path (no --epoch-s needed).
"$cli" fleet --chaos flash --tenants 2 --requests 30 >/dev/null 2>&1
code=$?
[ "$code" -eq 0 ] || fail "--chaos flash on the static path exited $code"

# ---- --flash: malformed windows and the chaos-flash conflict ----------
for bad in "10:20" "a:b:c" "10:20:2:9"; do
  "$cli" fleet --flash "$bad" >/dev/null 2>&1
  code=$?
  [ "$code" -ne 0 ] || fail "malformed --flash '$bad' exited 0"
done
err=$("$cli" fleet --chaos all --epoch-s 20 --flash 10:20:2 2>&1 >/dev/null)
code=$?
[ "$code" -ne 0 ] || fail "--flash combined with --chaos flash exited 0"
case "$err" in
  *"--flash"*) ;;
  *) fail "flash-conflict error unclear: $err" ;;
esac
"$cli" fleet --flash 10:20:2 --tenants 2 --requests 30 >/dev/null 2>&1
code=$?
[ "$code" -eq 0 ] || fail "valid --flash window exited $code"

# ---- a valid chaos run prints the summary line ------------------------
out=$("$cli" fleet --tenants 3 --requests 60 --shards 2 --epoch-s 20 \
      --chaos all --chaos-seed 3 2>&1)
code=$?
[ "$code" -eq 0 ] || fail "valid chaos fleet exited $code: $out"
case "$out" in
  *"chaos: "*"node failures"*"flash windows"*) ;;
  *) fail "chaos summary line missing: $out" ;;
esac

# ---- --chaos none is calm: no chaos line, exit 0 ----------------------
out=$("$cli" fleet --tenants 2 --requests 30 --chaos none 2>&1)
code=$?
[ "$code" -eq 0 ] || fail "--chaos none exited $code: $out"
case "$out" in
  *"chaos: "*) fail "--chaos none still printed a chaos line: $out" ;;
esac

# ---- --json carries the chaos section ---------------------------------
out=$("$cli" fleet --tenants 2 --requests 30 --epoch-s 20 --chaos all \
      --json 2>&1)
code=$?
[ "$code" -eq 0 ] || fail "json chaos fleet exited $code: $out"
for key in '"chaos"' '"node_failures"' '"flash_windows"' '"events"'; do
  case "$out" in
    *"$key"*) ;;
    *) fail "json output lacks $key: $out" ;;
  esac
done

# ---- the injection counts are shard-invariant -------------------------
line1=$("$cli" fleet --tenants 3 --requests 60 --shards 1 --epoch-s 20 \
        --chaos all --chaos-seed 3 2>/dev/null | grep '^chaos:')
line4=$("$cli" fleet --tenants 3 --requests 60 --shards 4 --epoch-s 20 \
        --chaos all --chaos-seed 3 2>/dev/null | grep '^chaos:')
[ -n "$line1" ] || fail "shard-1 run printed no chaos line"
[ "$line1" = "$line4" ] \
  || fail "chaos summary differs across shard counts: '$line1' vs '$line4'"

if [ "$failures" -gt 0 ]; then
  echo "cli_chaos_test: $failures failure(s)" >&2
  exit 1
fi
echo "cli_chaos_test: all checks passed"
