#!/usr/bin/env python3
"""Self-tests for tools/janus_lint.py.

Each fixture in tests/lint_fixtures/ seeds exactly one violation of one
check (or its suppressed twin, which must lint clean).  The assertions
pin the *exact* diagnostic line — path, line number, check name, and
message — plus the exit code, so a reworded or mis-anchored diagnostic
fails here before it confuses someone at a real finding.

Runs the linter the way CI does: as a subprocess, token engine pinned.
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
LINTER = os.path.join(REPO, "tools", "janus_lint.py")
FIXTURES = os.path.join(HERE, "lint_fixtures")


def run_lint(*extra_args):
    proc = subprocess.run(
        [sys.executable, LINTER, "--engine", "tokens", "--quiet"]
        + list(extra_args),
        capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def lint_fixture(name, as_path):
    return run_lint("--lint-file", os.path.join(FIXTURES, name),
                    "--as-path", as_path)


class FixtureCase(unittest.TestCase):
    maxDiff = None

    def assert_finding(self, name, as_path, expected_lines):
        code, out, err = lint_fixture(name, as_path)
        self.assertEqual(out.splitlines(), expected_lines, err)
        self.assertEqual(code, 1)

    def assert_clean(self, name, as_path):
        code, out, err = lint_fixture(name, as_path)
        self.assertEqual(out, "", err)
        self.assertEqual(code, 0)


class TestDeterminismRand(FixtureCase):
    def test_violation(self):
        self.assert_finding(
            "determinism_rand.cpp", "src/policy/fixture.cpp",
            ["src/policy/fixture.cpp:5: [determinism-rand] call to rand() "
             "is nondeterministic across runs; draw from the seeded "
             "janus::Rng (common/rng.hpp) instead"])

    def test_suppressed(self):
        self.assert_clean("determinism_rand_allowed.cpp",
                          "src/policy/fixture.cpp")


class TestDeterminismTime(FixtureCase):
    def test_violation(self):
        self.assert_finding(
            "determinism_time.cpp", "src/exp/fixture.cpp",
            ["src/exp/fixture.cpp:5: [determinism-time] time() reads host "
             "time; simulated behavior must depend only on "
             "SimEngine::now()"])

    def test_suppressed_block_above(self):
        # The allow() sits in a comment block above the call — the
        # directive anchors to the next code line.
        self.assert_clean("determinism_time_allowed.cpp",
                          "src/exp/fixture.cpp")


class TestDeterminismUnordered(FixtureCase):
    def test_violation_in_order_sensitive_path(self):
        self.assert_finding(
            "determinism_unordered.cpp", "src/sim/fixture.cpp",
            ["src/sim/fixture.cpp:5: [determinism-unordered] "
             "std::unordered_map in an order-sensitive path: its "
             "iteration order varies across standard libraries and runs, "
             "breaking the bit-identical-metrics contract; use std::map "
             "or a sorted vector"])

    def test_not_flagged_outside_scope(self):
        # The same file is legal outside src/{sim,stats,fleet}.
        self.assert_clean("determinism_unordered.cpp",
                          "src/policy/fixture.cpp")

    def test_chaos_engine_is_in_scope(self):
        # The chaos schedule is pure (seed, epoch, tenants) → injections
        # and feeds the bit-identity benches, so src/fleet/chaos.* must
        # sit inside the order-sensitive scope.
        self.assert_finding(
            "determinism_unordered.cpp", "src/fleet/chaos.cpp",
            ["src/fleet/chaos.cpp:5: [determinism-unordered] "
             "std::unordered_map in an order-sensitive path: its "
             "iteration order varies across standard libraries and runs, "
             "breaking the bit-identical-metrics contract; use std::map "
             "or a sorted vector"])

    def test_suppressed(self):
        self.assert_clean("determinism_unordered_allowed.cpp",
                          "src/sim/fixture.cpp")


class TestHotPathAlloc(FixtureCase):
    def test_violation(self):
        self.assert_finding(
            "hot_alloc.cpp", "src/sim/fixture.cpp",
            ["src/sim/fixture.cpp:4: [hot-path-alloc] new-expression in "
             "JANUS_HOT function 'pump': the steady-state event path must "
             "not allocate; use the slot pool / placement new"])

    def test_suppressed(self):
        self.assert_clean("hot_alloc_allowed.cpp", "src/sim/fixture.cpp")


class TestHotPathGrowth(FixtureCase):
    def test_violation(self):
        self.assert_finding(
            "hot_growth.cpp", "src/sim/fixture.cpp",
            ["src/sim/fixture.cpp:6: [hot-path-growth] container growth "
             "call push_back() in JANUS_HOT function 'enqueue' can "
             "reallocate; pre-size outside the hot path or suppress "
             "citing the retained-capacity invariant"])

    def test_suppressed(self):
        self.assert_clean("hot_growth_allowed.cpp", "src/sim/fixture.cpp")


class TestHotPathStdFunction(FixtureCase):
    def test_violation(self):
        self.assert_finding(
            "hot_std_function.cpp", "src/sim/fixture.cpp",
            ["src/sim/fixture.cpp:5: [hot-path-std-function] "
             "std::function in JANUS_HOT function 'dispatch' "
             "heap-allocates its capture; use janus::InlineFunction "
             "(common/inline_function.hpp)"])

    def test_suppressed(self):
        self.assert_clean("hot_std_function_allowed.cpp",
                          "src/sim/fixture.cpp")


class TestHotPathObsGuard(FixtureCase):
    def test_violation(self):
        self.assert_finding(
            "hot_obs.cpp", "src/sim/fixture.cpp",
            ["src/sim/fixture.cpp:7: [hot-path-obs-guard] obs-sink access "
             "'obs_sink' in JANUS_HOT function 'pump' is not wrapped in "
             "JANUS_OBS(sink, expr); the guard macro is what keeps the "
             "observability-off event path to a single null-test branch "
             "(src/obs/obs.hpp)"])

    def test_suppressed(self):
        self.assert_clean("hot_obs_allowed.cpp", "src/sim/fixture.cpp")


class TestMutableHintsBundle(FixtureCase):
    def test_violation(self):
        self.assert_finding(
            "mutable_hints.cpp", "src/fleet/fixture.cpp",
            ["src/fleet/fixture.cpp:5: [mutable-hints-bundle] non-const "
             "HintsBundle outside src/hints/: bundles are synthesized "
             "once and shared read-only across tenants and shards; hold "
             "shared_ptr<const HintsBundle> (sink parameters that "
             "immediately freeze the bundle may be suppressed with a "
             "reason)"])

    def test_not_flagged_in_producer(self):
        # src/hints/ is the producer — mutable bundles are its job.
        self.assert_clean("mutable_hints.cpp", "src/hints/fixture.cpp")

    def test_suppressed(self):
        self.assert_clean("mutable_hints_allowed.cpp",
                          "src/fleet/fixture.cpp")


class TestRefCaptureEvent(FixtureCase):
    def test_violation(self):
        self.assert_finding(
            "ref_capture.cpp", "src/branching/fixture.cpp",
            ["src/branching/fixture.cpp:6: [ref-capture-event] "
             "by-reference lambda capture handed to schedule_at(): the "
             "closure runs after this statement returns, so stack "
             "captures dangle; capture by value or shared_ptr (suppress "
             "with a reason only if the referent provably outlives the "
             "engine drain)"])

    def test_suppressed(self):
        self.assert_clean("ref_capture_allowed.cpp",
                          "src/branching/fixture.cpp")


class TestBadSuppression(FixtureCase):
    def test_unknown_check(self):
        self.assert_finding(
            "bad_suppression_unknown.cpp", "src/common/fixture.cpp",
            ["src/common/fixture.cpp:4: [bad-suppression] suppression "
             "names unknown check 'no-such-check' (run --list-checks for "
             "the registry)"])

    def test_missing_reason_keeps_finding_live(self):
        # A reason-less allow() is a finding AND fails to suppress.
        self.assert_finding(
            "bad_suppression_noreason.cpp", "src/policy/fixture.cpp",
            ["src/policy/fixture.cpp:6: [bad-suppression] suppression for "
             "'determinism-rand' has no justification; write 'janus-lint: "
             "allow(determinism-rand) <why this is safe>'",
             "src/policy/fixture.cpp:6: [determinism-rand] call to rand() "
             "is nondeterministic across runs; draw from the seeded "
             "janus::Rng (common/rng.hpp) instead"])


class TestCleanFixture(FixtureCase):
    def test_no_false_positives(self):
        # Every deliberate non-finding pattern at once, in the strictest
        # path scope.
        self.assert_clean("clean.cpp", "src/sim/fixture.cpp")


class TestDriver(unittest.TestCase):
    def test_list_checks_names_full_registry(self):
        code, out, _ = run_lint("--list-checks")
        self.assertEqual(code, 0)
        listed = {line.split()[0] for line in out.splitlines() if line}
        self.assertEqual(listed, {
            "bad-suppression", "determinism-rand", "determinism-time",
            "determinism-unordered", "hot-path-alloc", "hot-path-growth",
            "hot-path-obs-guard", "hot-path-std-function",
            "mutable-hints-bundle", "ref-capture-event"})

    def test_arena_hot_path_is_in_scope_and_clean(self):
        # The arena's JANUS_HOT bump path (src/common/arena.hpp) must stay
        # under the hot-path checks: placement-new construction and cursor
        # math only, with block growth isolated in the cold grow() path.
        # Linting the real header (not a fixture) keeps the six-figure-
        # tenant allocator honest as it evolves.
        code, out, err = run_lint(
            "--lint-file", os.path.join(REPO, "src", "common", "arena.hpp"),
            "--as-path", "src/common/arena.hpp")
        self.assertEqual(out, "", err)
        self.assertEqual(code, 0)

    def test_whole_tree_is_clean(self):
        # The gate ci/lint.sh enforces, as a CTest suite: src/ lints
        # clean against the committed (empty) baseline.
        code, out, err = run_lint(
            "--root", REPO,
            "--baseline", os.path.join(REPO, "tools", "lint_baseline.txt"))
        self.assertEqual(out, "", err)
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
