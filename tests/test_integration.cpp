// Integration tests: the full profile -> synthesize -> adapt -> serve
// pipeline, cross-policy orderings from the paper, miss-driven
// regeneration, and open-loop/endogenous operation of the DES.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "model/workloads.hpp"
#include "policy/early_binding.hpp"
#include "policy/janus_policy.hpp"
#include "policy/optimal.hpp"
#include "policy/orion.hpp"
#include "profiler/profiler.hpp"

namespace janus {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ia_ = new WorkloadSpec(make_ia());
    ProfilerConfig config;
    config.grid.kmin = 1000;
    config.grid.kmax = 3000;
    config.grid.kstep = 250;
    config.samples_per_point = 1500;
    config.interference = InterferenceModel(workload_interference_params());
    profiles_ = new std::vector<LatencyProfile>(
        profile_workload(*ia_, config));
  }
  static void TearDownTestSuite() {
    delete profiles_;
    delete ia_;
    profiles_ = nullptr;
    ia_ = nullptr;
  }

  static const WorkloadSpec& ia() { return *ia_; }
  static const std::vector<LatencyProfile>& profiles() { return *profiles_; }

  static SynthesisConfig synth() {
    SynthesisConfig config;
    config.kstep = 250;
    config.budget_step = 2;
    config.threads = 2;
    return config;
  }

  static RunConfig run_config(int requests = 400) {
    RunConfig config;
    config.slo = 3.0;
    config.requests = requests;
    return config;
  }

 private:
  static WorkloadSpec* ia_;
  static std::vector<LatencyProfile>* profiles_;
};

WorkloadSpec* IntegrationTest::ia_ = nullptr;
std::vector<LatencyProfile>* IntegrationTest::profiles_ = nullptr;

TEST_F(IntegrationTest, JanusMeetsSloNearP99) {
  auto policy = make_janus(profiles(), synth(), 3.0);
  const RunResult result = run_workload(ia(), *policy, run_config());
  // P99 latency target: allow the small sampling band around 1%.
  EXPECT_LE(result.violation_rate(), 0.025);
  EXPECT_LE(result.e2e_percentile(97.0), 3.0);
}

TEST_F(IntegrationTest, ResourceOrderingMatchesPaper) {
  // Table I / Fig 5: Optimal <= Janus < ORION < GrandSLAM-family.
  EarlyBindingInputs eb;
  eb.profiles = &profiles();
  eb.slo = 3.0;
  eb.kstep = 250;
  OptimalInputs opt;
  opt.models = ia().chain_models();
  opt.slo = 3.0;

  auto optimal = make_optimal(opt);
  auto janus_policy = make_janus(profiles(), synth(), 3.0);
  auto orion = make_orion(eb);
  auto grandslam = make_grandslam(eb);

  const RunConfig config = run_config();
  const double cpu_optimal = run_workload(ia(), *optimal, config).mean_cpu();
  const double cpu_janus =
      run_workload(ia(), *janus_policy, config).mean_cpu();
  const double cpu_orion = run_workload(ia(), *orion, config).mean_cpu();
  const double cpu_gs = run_workload(ia(), *grandslam, config).mean_cpu();

  EXPECT_LE(cpu_optimal, cpu_janus);
  EXPECT_LT(cpu_janus, cpu_orion);
  EXPECT_LE(cpu_orion, cpu_gs);
  // Headline effect: double-digit savings versus the state of the art.
  EXPECT_GT((cpu_orion - cpu_janus) / cpu_orion, 0.10);
}

TEST_F(IntegrationTest, JanusMinusCostsMoreThanJanus) {
  auto janus_policy = make_janus(profiles(), synth(), 3.0);
  auto janus_minus =
      make_janus(profiles(), synth(), 3.0, Exploration::FixedP99);
  const RunConfig config = run_config();
  const double cpu = run_workload(ia(), *janus_policy, config).mean_cpu();
  const double cpu_minus =
      run_workload(ia(), *janus_minus, config).mean_cpu();
  EXPECT_LE(cpu, cpu_minus * 1.005);
}

TEST_F(IntegrationTest, AdapterHitRateHighInSteadyState) {
  auto policy = make_janus(profiles(), synth(), 3.0);
  (void)run_workload(ia(), *policy, run_config());
  const auto& stats = policy->adapter().stats();
  EXPECT_GT(stats.lookups(), 0u);
  // Default miss threshold is 1%; in-distribution traffic stays under it.
  EXPECT_LT(stats.miss_rate(), 0.01);
  EXPECT_FALSE(policy->adapter().regeneration_suggested());
}

TEST_F(IntegrationTest, DistributionShiftTriggersRegenerationFeedback) {
  auto policy = make_janus(profiles(), synth(), 3.0);
  bool feedback = false;
  policy->adapter().set_feedback([&](double) { feedback = true; });

  // Unexpected dynamics: a much harsher interference regime than profiled.
  RunConfig config = run_config(300);
  InterferenceParams harsh = workload_interference_params();
  harsh.slope_cpu *= 14.0;
  harsh.slope_memory *= 14.0;
  harsh.slope_io *= 14.0;
  harsh.slope_network *= 14.0;
  config.interference = InterferenceModel(harsh);

  const RunResult result = run_workload(ia(), *policy, config);
  EXPECT_GT(policy->adapter().stats().miss_rate(), 0.01);
  EXPECT_TRUE(policy->adapter().regeneration_suggested());
  EXPECT_TRUE(feedback);
  (void)result;
}

TEST_F(IntegrationTest, RegenerationRestoresHitRate) {
  auto policy = make_janus(profiles(), synth(), 3.0);
  // Simulate the asynchronous regeneration round trip: reinstall a fresh
  // bundle, stats reset, and in-distribution traffic hits again.
  policy->adapter().install_bundle(synthesize_bundle(profiles(), synth()));
  (void)run_workload(ia(), *policy, run_config(100));
  EXPECT_LT(policy->adapter().stats().miss_rate(), 0.01);
}

TEST_F(IntegrationTest, PairedDrawsIdenticalAcrossPolicies) {
  const RunConfig config = run_config(50);
  const auto a = draw_requests(ia(), config);
  const auto b = draw_requests(ia(), config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ws, b[i].ws);
    EXPECT_EQ(a[i].interference, b[i].interference);
  }
}

TEST_F(IntegrationTest, RunResultAccountsEveryRequest) {
  auto policy = make_janus(profiles(), synth(), 3.0);
  const RunResult result = run_workload(ia(), *policy, run_config(123));
  EXPECT_EQ(result.requests.size(), 123u);
  for (const auto& r : result.requests) {
    EXPECT_EQ(r.sizes.size(), 3u);
    EXPECT_GT(r.e2e, 0.0);
    EXPECT_GE(r.cpu_mc, 3.0 * 1000);
    EXPECT_LE(r.cpu_mc, 3.0 * 3000);
  }
}

TEST_F(IntegrationTest, OpenLoopCompletesAllRequests) {
  auto policy = make_janus(profiles(), synth(), 3.0);
  RunConfig config = run_config(200);
  config.open_loop_rate = 5.0;  // ~5 rps with multi-second services: overlap
  const RunResult result = run_workload(ia(), *policy, config);
  EXPECT_EQ(result.requests.size(), 200u);
}

TEST_F(IntegrationTest, EndogenousInterferenceMode) {
  auto policy = make_janus(profiles(), synth(), 3.0);
  RunConfig config = run_config(100);
  config.open_loop_rate = 8.0;
  config.endogenous_interference = true;
  const RunResult result = run_workload(ia(), *policy, config);
  EXPECT_EQ(result.requests.size(), 100u);
  // Co-located executions must have inflated at least some requests.
  double max_e2e = 0.0;
  for (const auto& r : result.requests) max_e2e = std::max(max_e2e, r.e2e);
  EXPECT_GT(max_e2e, 0.5);
}

TEST_F(IntegrationTest, VaPipelineEndToEnd) {
  const WorkloadSpec va = make_va();
  ProfilerConfig pconfig;
  pconfig.grid.kstep = 250;
  pconfig.samples_per_point = 1200;
  pconfig.interference = InterferenceModel(workload_interference_params());
  const auto va_profiles = profile_workload(va, pconfig);
  SynthesisConfig sconfig = synth();
  sconfig.kstep = 250;
  auto policy = make_janus(va_profiles, sconfig, va.slo(1));
  RunConfig config;
  config.slo = va.slo(1);
  config.requests = 300;
  const RunResult result = run_workload(va, *policy, config);
  EXPECT_LE(result.violation_rate(), 0.03);
  EXPECT_GE(result.mean_cpu(), 3000.0);
}

TEST_F(IntegrationTest, HigherConcurrencyPipeline) {
  ProfilerConfig pconfig;
  pconfig.grid.kstep = 250;
  pconfig.samples_per_point = 1500;
  pconfig.grid.concurrencies = {2};
  pconfig.interference = InterferenceModel(workload_interference_params());
  const auto p2 = profile_workload(ia(), pconfig);
  SynthesisConfig sconfig = synth();
  sconfig.concurrency = 2;
  auto policy = make_janus(p2, sconfig, ia().slo(2));
  RunConfig config;
  config.slo = ia().slo(2);
  config.concurrency = 2;
  config.requests = 300;
  const RunResult result = run_workload(ia(), *policy, config);
  EXPECT_LE(result.violation_rate(), 0.03);
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  auto p1 = make_janus(profiles(), synth(), 3.0);
  auto p2 = make_janus(profiles(), synth(), 3.0);
  const RunResult a = run_workload(ia(), *p1, run_config(60));
  const RunResult b = run_workload(ia(), *p2, run_config(60));
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].e2e, b.requests[i].e2e);
    EXPECT_DOUBLE_EQ(a.requests[i].cpu_mc, b.requests[i].cpu_mc);
  }
}

}  // namespace
}  // namespace janus
