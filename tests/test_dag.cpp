// Tests for src/dag: workflow construction, validation, traversal,
// sub-workflow extraction.
#include <gtest/gtest.h>

#include "dag/workflow.hpp"

namespace janus {
namespace {

Workflow diamond() {
  // a -> {b, c} -> d
  Workflow wf("diamond");
  const auto a = wf.add_function({"a", 0});
  const auto b = wf.add_function({"b", 1});
  const auto c = wf.add_function({"c", 2});
  const auto d = wf.add_function({"d", 3});
  wf.add_edge(a, b);
  wf.add_edge(a, c);
  wf.add_edge(b, d);
  wf.add_edge(c, d);
  return wf;
}

TEST(Workflow, ChainFactoryBuildsLinearGraph) {
  const auto wf = Workflow::chain("ia", {{"OD", 0}, {"QA", 1}, {"TS", 2}});
  EXPECT_EQ(wf.size(), 3u);
  EXPECT_TRUE(wf.is_chain());
  const auto order = wf.chain_order();
  EXPECT_EQ(wf.function(order[0]).name, "OD");
  EXPECT_EQ(wf.function(order[2]).name, "TS");
}

TEST(Workflow, EmptyChainThrows) {
  EXPECT_THROW(Workflow::chain("x", {}), std::invalid_argument);
}

TEST(Workflow, SingleFunctionIsAChain) {
  const auto wf = Workflow::chain("solo", {{"only", 0}});
  EXPECT_TRUE(wf.is_chain());
  EXPECT_EQ(wf.chain_order().size(), 1u);
}

TEST(Workflow, DiamondIsNotAChain) {
  EXPECT_FALSE(diamond().is_chain());
  EXPECT_THROW(diamond().chain_order(), std::invalid_argument);
}

TEST(Workflow, EdgeValidation) {
  Workflow wf("w");
  const auto a = wf.add_function({"a", 0});
  const auto b = wf.add_function({"b", 1});
  EXPECT_THROW(wf.add_edge(a, a), std::invalid_argument);   // self edge
  EXPECT_THROW(wf.add_edge(a, 99), std::invalid_argument);  // out of range
  wf.add_edge(a, b);
  EXPECT_THROW(wf.add_edge(a, b), std::invalid_argument);  // duplicate
}

TEST(Workflow, TopologicalOrderRespectsEdges) {
  const auto wf = diamond();
  const auto order = wf.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Workflow, CycleDetected) {
  Workflow wf("cyclic");
  const auto a = wf.add_function({"a", 0});
  const auto b = wf.add_function({"b", 1});
  wf.add_edge(a, b);
  wf.add_edge(b, a);
  EXPECT_THROW(wf.topological_order(), std::invalid_argument);
}

TEST(Workflow, SourcesAndSinks) {
  const auto wf = diamond();
  EXPECT_EQ(wf.sources(), std::vector<FunctionId>{0});
  EXPECT_EQ(wf.sinks(), std::vector<FunctionId>{3});
}

TEST(Workflow, LevelsAssignParallelStages) {
  const auto levels = diamond().levels();
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 1);  // b and c share a level: parallelizable
  EXPECT_EQ(levels[3], 2);
}

TEST(Workflow, RemainingAfterDropsFinished) {
  const auto wf = Workflow::chain("c", {{"f1", 0}, {"f2", 1}, {"f3", 2}});
  const auto remaining = wf.remaining_after({true, false, false});
  EXPECT_EQ(remaining, (std::vector<FunctionId>{1, 2}));
}

TEST(Workflow, RemainingAfterSizeMismatchThrows) {
  const auto wf = Workflow::chain("c", {{"f1", 0}, {"f2", 1}});
  EXPECT_THROW(wf.remaining_after({true}), std::invalid_argument);
}

TEST(Workflow, RemainingAfterAllFinishedIsEmpty) {
  const auto wf = Workflow::chain("c", {{"f1", 0}, {"f2", 1}});
  EXPECT_TRUE(wf.remaining_after({true, true}).empty());
}

TEST(Workflow, PredecessorsAndSuccessors) {
  const auto wf = diamond();
  EXPECT_EQ(wf.successors(0).size(), 2u);
  EXPECT_EQ(wf.predecessors(3).size(), 2u);
  EXPECT_TRUE(wf.predecessors(0).empty());
}

TEST(Workflow, TwoSourcesNotAChain) {
  Workflow wf("two-roots");
  const auto a = wf.add_function({"a", 0});
  const auto b = wf.add_function({"b", 1});
  const auto c = wf.add_function({"c", 2});
  wf.add_edge(a, c);
  wf.add_edge(b, c);
  EXPECT_FALSE(wf.is_chain());
}

TEST(CriticalPath, ChainSumsDurations) {
  const auto wf = Workflow::chain("c", {{"f1", 0}, {"f2", 1}, {"f3", 2}});
  EXPECT_DOUBLE_EQ(critical_path(wf, {1.0, 2.0, 3.0}), 6.0);
}

TEST(CriticalPath, DiamondTakesSlowerBranch) {
  // a(1) -> b(5)/c(2) -> d(1): path through b dominates.
  EXPECT_DOUBLE_EQ(critical_path(diamond(), {1.0, 5.0, 2.0, 1.0}), 7.0);
}

TEST(CriticalPath, SizeMismatchThrows) {
  EXPECT_THROW(critical_path(diamond(), {1.0}), std::invalid_argument);
}

class ChainLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainLengthTest, ChainPropertiesHoldForAnyLength) {
  const int n = GetParam();
  std::vector<FunctionSpec> specs;
  for (int i = 0; i < n; ++i) specs.push_back({"f" + std::to_string(i), i});
  const auto wf = Workflow::chain("c", specs);
  EXPECT_TRUE(wf.is_chain());
  EXPECT_EQ(wf.chain_order().size(), static_cast<std::size_t>(n));
  EXPECT_EQ(wf.topological_order().size(), static_cast<std::size_t>(n));
  const auto levels = wf.levels();
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(levels[static_cast<std::size_t>(wf.chain_order()[
                  static_cast<std::size_t>(i)])],
              i);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLengthTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace janus
