// Tests for src/policy: fixed sizing, GrandSLAM(+), ORION, the Optimal
// water-filling oracle, and the Janus policy wiring.
#include <gtest/gtest.h>

#include <cmath>

#include "model/workloads.hpp"
#include "policy/early_binding.hpp"
#include "policy/janus_policy.hpp"
#include "policy/optimal.hpp"
#include "policy/orion.hpp"
#include "profiler/profiler.hpp"

namespace janus {
namespace {

class PolicyTestBase : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ProfilerConfig config;
    config.grid.kmin = 1000;
    config.grid.kmax = 3000;
    config.grid.kstep = 500;
    config.samples_per_point = 1200;
    config.interference = InterferenceModel(workload_interference_params());
    profiles_ = new std::vector<LatencyProfile>(
        profile_workload(make_ia(), config));
  }
  static void TearDownTestSuite() {
    delete profiles_;
    profiles_ = nullptr;
  }

  static const std::vector<LatencyProfile>& profiles() { return *profiles_; }

  static EarlyBindingInputs inputs(Seconds slo = 3.0) {
    EarlyBindingInputs in;
    in.profiles = profiles_;
    in.slo = slo;
    in.kstep = 500;
    return in;
  }

 private:
  static std::vector<LatencyProfile>* profiles_;
};

std::vector<LatencyProfile>* PolicyTestBase::profiles_ = nullptr;

Millicores total(const std::vector<Millicores>& sizes) {
  Millicores sum = 0;
  for (Millicores k : sizes) sum += k;
  return sum;
}

// -------------------------------------------------------------- fixed --
TEST(FixedPolicy, ReturnsConfiguredSizes) {
  FixedSizingPolicy policy("p", {1000, 2000, 3000});
  RequestDraw draw;
  EXPECT_EQ(policy.size_for_stage(0, 0.0, draw), 1000);
  EXPECT_EQ(policy.size_for_stage(2, 1.5, draw), 3000);
  EXPECT_FALSE(policy.late_binding());
  EXPECT_THROW(policy.size_for_stage(3, 0.0, draw), std::invalid_argument);
}

TEST(FixedPolicy, RejectsEmptyOrZeroSizes) {
  EXPECT_THROW(FixedSizingPolicy("p", {}), std::invalid_argument);
  EXPECT_THROW(FixedSizingPolicy("p", {0}), std::invalid_argument);
}

// ---------------------------------------------------------- grandslam --
class GrandSlamTest : public PolicyTestBase {};

TEST_F(GrandSlamTest, IdenticalSizesMeetSloAtP99Sum) {
  const auto sizes = grandslam_sizes(inputs());
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[1], sizes[2]);
  BudgetMs sum = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    sum += profiles()[i].latency_ms(99, sizes[i], 1);
  }
  EXPECT_LE(sum, 3000);
}

TEST_F(GrandSlamTest, PicksSmallestFeasibleIdenticalSize) {
  const auto sizes = grandslam_sizes(inputs());
  if (sizes[0] > 1000) {
    BudgetMs sum = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      sum += profiles()[i].latency_ms(99, sizes[i] - 500, 1);
    }
    EXPECT_GT(sum, 3000);
  }
}

TEST_F(GrandSlamTest, InfeasibleSloThrows) {
  EXPECT_THROW(grandslam_sizes(inputs(0.5)), std::invalid_argument);
}

TEST_F(GrandSlamTest, PlusNeverCostsMore) {
  const auto gs = grandslam_sizes(inputs());
  const auto gsp = grandslam_plus_sizes(inputs());
  EXPECT_LE(total(gsp), total(gs));
}

TEST_F(GrandSlamTest, PlusMeetsSloAtP99Sum) {
  const auto sizes = grandslam_plus_sizes(inputs());
  BudgetMs sum = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    sum += profiles()[i].latency_ms(99, sizes[i], 1);
  }
  EXPECT_LE(sum, 3000);
}

TEST_F(GrandSlamTest, LooserSloCheaper) {
  EXPECT_LE(total(grandslam_sizes(inputs(5.0))),
            total(grandslam_sizes(inputs(3.0))));
  EXPECT_LE(total(grandslam_plus_sizes(inputs(5.0))),
            total(grandslam_plus_sizes(inputs(3.0))));
}

TEST_F(GrandSlamTest, FactoriesNamePolicies) {
  EXPECT_EQ(make_grandslam(inputs())->name(), "GrandSLAM");
  EXPECT_EQ(make_grandslam_plus(inputs())->name(), "GrandSLAM+");
}

TEST_F(GrandSlamTest, InputValidation) {
  EarlyBindingInputs in;
  EXPECT_THROW(grandslam_sizes(in), std::invalid_argument);
}

// -------------------------------------------------------------- orion --
class OrionTest : public PolicyTestBase {};

TEST_F(OrionTest, CheaperThanGrandSlamPlus) {
  // The convolution bound is strictly less conservative than P99 sums.
  const auto orion = orion_sizes(inputs());
  const auto gsp = grandslam_plus_sizes(inputs());
  EXPECT_LE(total(orion), total(gsp));
}

TEST_F(OrionTest, EstimatedE2eP99WithinSlo) {
  const auto sizes = orion_sizes(inputs());
  EXPECT_LE(orion_e2e_p99(inputs(), sizes), 3.0);
}

TEST_F(OrionTest, ShrinkingAnySizeViolates) {
  // Local minimality: no single stage can shrink further.
  const auto in = inputs();
  auto sizes = orion_sizes(in);
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    if (sizes[s] - in.kstep < in.kmin) continue;
    auto candidate = sizes;
    candidate[s] -= in.kstep;
    EXPECT_GT(orion_e2e_p99(in, candidate), 3.0) << "stage " << s;
  }
}

TEST_F(OrionTest, InfeasibleSloThrows) {
  EXPECT_THROW(orion_sizes(inputs(0.5)), std::invalid_argument);
}

TEST_F(OrionTest, DeterministicForSeed) {
  EXPECT_EQ(orion_sizes(inputs()), orion_sizes(inputs()));
}

// ------------------------------------------------------------ optimal --
OptimalInputs optimal_inputs(Seconds slo = 3.0) {
  OptimalInputs in;
  in.models = make_ia().chain_models();
  in.slo = slo;
  return in;
}

RequestDraw unit_draw() {
  RequestDraw draw;
  draw.ws = {1.0, 1.0, 1.0};
  draw.interference = {1.0, 1.0, 1.0};
  return draw;
}

double request_latency(const OptimalInputs& in, const RequestDraw& draw,
                       const std::vector<double>& k) {
  double t = 0.0;
  for (std::size_t i = 0; i < k.size(); ++i) {
    t += in.models[i].serial(in.concurrency) * draw.interference[i] +
         in.models[i].work(in.concurrency) * draw.ws[i] *
             draw.interference[i] * 1000.0 / k[i];
  }
  return t;
}

TEST(Optimal, AllocationMeetsBudget) {
  const auto in = optimal_inputs();
  const auto draw = unit_draw();
  const auto k = optimal_allocation(in, draw);
  ASSERT_EQ(k.size(), 3u);
  EXPECT_LE(request_latency(in, draw, k),
            in.slo - 3 * in.overhead_per_stage + 1e-9);
}

TEST(Optimal, RespectsBoxConstraints) {
  const auto in = optimal_inputs();
  RequestDraw draw = unit_draw();
  draw.ws = {4.0, 0.2, 1.0};  // skewed work pushes toward the box edges
  for (double ki : optimal_allocation(in, draw)) {
    EXPECT_GE(ki, 1000.0 - 1e-9);
    EXPECT_LE(ki, 3000.0 * 1.05 + 1e-9);
  }
}

TEST(Optimal, MatchesBruteForceWithinTolerance) {
  const auto in = optimal_inputs();
  RequestDraw draw;
  draw.ws = {1.4, 0.8, 1.1};
  draw.interference = {1.1, 1.0, 1.2};
  const auto k = optimal_allocation(in, draw);
  double wf_total = k[0] + k[1] + k[2];

  // Brute force on a 25 mc lattice.
  double best = 1e18;
  for (double k0 = 1000; k0 <= 3000; k0 += 25) {
    for (double k1 = 1000; k1 <= 3000; k1 += 25) {
      for (double k2 = 1000; k2 <= 3000; k2 += 25) {
        if (request_latency(in, draw, {k0, k1, k2}) <=
            in.slo - 3 * in.overhead_per_stage) {
          best = std::min(best, k0 + k1 + k2);
        }
      }
    }
  }
  ASSERT_LT(best, 1e18);
  EXPECT_LE(wf_total, best + 80.0);  // within one lattice step per stage
}

TEST(Optimal, UnavoidableViolationReturnsKmax) {
  auto in = optimal_inputs(0.3);  // impossible SLO
  const auto k = optimal_allocation(in, unit_draw());
  for (double ki : k) EXPECT_DOUBLE_EQ(ki, 3000.0);
}

TEST(Optimal, EasierRequestsCheaper) {
  const auto in = optimal_inputs();
  RequestDraw fast = unit_draw();
  fast.ws = {0.5, 0.5, 0.5};
  RequestDraw slow = unit_draw();
  slow.ws = {2.0, 2.0, 2.0};
  const auto kf = optimal_allocation(in, fast);
  const auto ks = optimal_allocation(in, slow);
  EXPECT_LT(kf[0] + kf[1] + kf[2], ks[0] + ks[1] + ks[2]);
}

TEST(Optimal, PolicyReportsLateBinding) {
  OptimalPolicy policy(optimal_inputs());
  EXPECT_TRUE(policy.late_binding());
  EXPECT_EQ(policy.name(), "Optimal");
  const auto draw = unit_draw();
  EXPECT_GT(policy.size_for_stage(0, 0.0, draw), 0);
}

TEST(Optimal, DrawSizeMismatchThrows) {
  RequestDraw bad;
  bad.ws = {1.0};
  bad.interference = {1.0};
  EXPECT_THROW(optimal_allocation(optimal_inputs(), bad),
               std::invalid_argument);
}

// -------------------------------------------------------------- janus --
class JanusPolicyTest : public PolicyTestBase {};

SynthesisConfig janus_config() {
  SynthesisConfig config;
  config.kstep = 500;
  config.budget_step = 5;
  config.threads = 2;
  return config;
}

TEST_F(JanusPolicyTest, VariantNames) {
  EXPECT_EQ(janus_variant_name(Exploration::FixedP99), "Janus-");
  EXPECT_EQ(janus_variant_name(Exploration::HeadOnly), "Janus");
  EXPECT_EQ(janus_variant_name(Exploration::HeadAndNext), "Janus+");
}

TEST_F(JanusPolicyTest, UsesRemainingBudget) {
  auto policy = make_janus(profiles(), janus_config(), 3.0);
  EXPECT_TRUE(policy->late_binding());
  RequestDraw draw;
  // With more elapsed time, the remaining budget shrinks and the stage-1
  // size must not decrease.
  const Millicores relaxed = policy->size_for_stage(1, 0.5, draw);
  const Millicores tight = policy->size_for_stage(1, 2.2, draw);
  EXPECT_GE(tight, relaxed);
}

TEST_F(JanusPolicyTest, ExhaustedBudgetGoesKmax) {
  auto policy = make_janus(profiles(), janus_config(), 3.0);
  RequestDraw draw;
  EXPECT_EQ(policy->size_for_stage(2, 3.5, draw), 3000);
  EXPECT_GT(policy->adapter().stats().misses, 0u);
}

TEST_F(JanusPolicyTest, StageZeroUsesFullSlo) {
  auto policy = make_janus(profiles(), janus_config(), 3.0);
  RequestDraw draw;
  const Millicores k0 = policy->size_for_stage(0, 0.0, draw);
  EXPECT_GE(k0, 1000);
  EXPECT_LE(k0, 3000);
  EXPECT_EQ(policy->adapter().stats().misses, 0u);
}

TEST_F(JanusPolicyTest, RejectsBadSlo) {
  HintsBundle bundle = synthesize_bundle(profiles(), janus_config());
  EXPECT_THROW(JanusPolicy("Janus", Adapter(std::move(bundle)), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace janus
