// Tests for the mean-based late-binding baseline (the Kraken/Xanadu family
// the paper excludes) — including the quantitative version of the paper's
// exclusion argument: mean-based adaptation under skewed distributions
// under-provisions and violates SLOs far more often than Janus.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "model/workloads.hpp"
#include "policy/janus_policy.hpp"
#include "policy/mean_based.hpp"
#include "profiler/profiler.hpp"

namespace janus {
namespace {

class MeanBasedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ProfilerConfig config;
    config.grid.kstep = 250;
    config.samples_per_point = 1500;
    config.interference = InterferenceModel(workload_interference_params());
    profiles_ = new std::vector<LatencyProfile>(
        profile_workload(make_ia(), config));
  }
  static void TearDownTestSuite() {
    delete profiles_;
    profiles_ = nullptr;
  }
  static const std::vector<LatencyProfile>& profiles() { return *profiles_; }

 private:
  static std::vector<LatencyProfile>* profiles_;
};

std::vector<LatencyProfile>* MeanBasedTest::profiles_ = nullptr;

TEST_F(MeanBasedTest, IsLateBinding) {
  auto policy = make_mean_based(profiles(), 3.0, 1, 1000, 3000, 250);
  EXPECT_TRUE(policy->late_binding());
  EXPECT_EQ(policy->name(), "MeanAdapt");
}

TEST_F(MeanBasedTest, TighterBudgetLargerSize) {
  auto policy = make_mean_based(profiles(), 3.0, 1, 1000, 3000, 250);
  RequestDraw draw;
  const Millicores relaxed = policy->size_for_stage(1, 0.3, draw);
  const Millicores tight = policy->size_for_stage(1, 2.4, draw);
  EXPECT_GE(tight, relaxed);
}

TEST_F(MeanBasedTest, ExhaustedBudgetAllocatesKmax) {
  auto policy = make_mean_based(profiles(), 3.0, 1, 1000, 3000, 250);
  RequestDraw draw;
  EXPECT_EQ(policy->size_for_stage(0, 5.0, draw), 3000);
}

TEST_F(MeanBasedTest, MeanSizingCheaperThanJanus) {
  // Under-provisioning shows up as lower CPU...
  auto mean_policy = make_mean_based(profiles(), 3.0, 1, 1000, 3000, 250);
  SynthesisConfig synth;
  synth.kstep = 250;
  synth.budget_step = 5;
  auto janus_policy = make_janus(profiles(), synth, 3.0);
  RunConfig config;
  config.slo = 3.0;
  config.requests = 400;
  const auto ia = make_ia();
  EXPECT_LT(run_workload(ia, *mean_policy, config).mean_cpu(),
            run_workload(ia, *janus_policy, config).mean_cpu());
}

TEST_F(MeanBasedTest, MeanSizingViolatesSloMuchMore) {
  // ...and as the severe SLO violations the paper warns about (§V-A).
  auto mean_policy = make_mean_based(profiles(), 3.0, 1, 1000, 3000, 250);
  SynthesisConfig synth;
  synth.kstep = 250;
  synth.budget_step = 5;
  auto janus_policy = make_janus(profiles(), synth, 3.0);
  RunConfig config;
  config.slo = 3.0;
  config.requests = 500;
  const auto ia = make_ia();
  const double mean_violations =
      run_workload(ia, *mean_policy, config).violation_rate();
  const double janus_violations =
      run_workload(ia, *janus_policy, config).violation_rate();
  EXPECT_GT(mean_violations, 0.10);  // an order of magnitude over target
  EXPECT_GT(mean_violations, 5.0 * janus_violations);
}

TEST_F(MeanBasedTest, RejectsBadInputs) {
  EXPECT_THROW(MeanBasedPolicy(profiles(), 0.0, 1, 1000, 3000, 250),
               std::invalid_argument);
  std::vector<LatencyProfile> empty;
  EXPECT_THROW(MeanBasedPolicy(empty, 3.0, 1, 1000, 3000, 250),
               std::invalid_argument);
}

}  // namespace
}  // namespace janus
