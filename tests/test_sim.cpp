// Tests for src/sim: event engine ordering (including the differential
// ladder-vs-heap replay and the allocation-free steady-state contract),
// platform pod lifecycle, warm pools, co-location packing, invoke outcomes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "model/workloads.hpp"
#include "sim/engine.hpp"
#include "sim/platform.hpp"

// ---- Allocation-counting hook -------------------------------------------
// Replaces this binary's global operator new/delete with counting
// forwarders.  The ladder engine promises zero per-event heap allocations
// once its pools are warm; SteadyStateEventPathDoesNotAllocate measures a
// churn window against this counter to hold it to that.
namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace janus {
namespace {

// ----------------------------------------------------------------- engine --
TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngine, TiesBreakByInsertionOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimEngine, ScheduleAfterUsesCurrentTime) {
  SimEngine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_after(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimEngine, PastSchedulingClampsToNow) {
  // Contract: schedule_at with t < now() clamps to now() — the event fires
  // as soon as possible instead of throwing (negative *delays* still do).
  SimEngine engine;
  engine.schedule_at(1.0, [] {});
  engine.run();
  Seconds fired_at = -1.0;
  engine.schedule_at(0.5, [&] { fired_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(SimEngine, ClampedEventRunsAfterAlreadyQueuedPeers) {
  // A clamped event lands *behind* events already queued at now(): the
  // clamp changes its time, not its insertion sequence.
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(5.0, [&] {
    engine.schedule_at(engine.now(), [&] { order.push_back(1); });
    engine.schedule_at(2.0, [&] { order.push_back(2); });  // past -> 5.0
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(SimEngine, StepReturnsFalseWhenEmpty) {
  SimEngine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(0.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(SimEngine, EventsCanCascade) {
  SimEngine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) engine.schedule_after(0.1, recurse);
  };
  engine.schedule_at(0.0, recurse);
  engine.run();
  EXPECT_EQ(depth, 10);
}

// ---- run_until boundary semantics (contract locked before the ladder
// swap; these pin exactly what serve_workload and the fleet rely on) ------

TEST(SimEngine, RunUntilFiresEventExactlyAtBoundary) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(3.0, [&] { ++fired; });
  engine.schedule_at(3.0 + 1e-9, [&] { ++fired; });
  engine.run_until(3.0);  // <= t fires; the epsilon-later event stays
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(SimEngine, RunUntilOnEmptyCalendarAdvancesNow) {
  SimEngine engine;
  engine.run_until(7.5);
  EXPECT_DOUBLE_EQ(engine.now(), 7.5);
  EXPECT_EQ(engine.executed(), 0u);
  // And never moves time backwards.
  engine.run_until(2.0);
  EXPECT_DOUBLE_EQ(engine.now(), 7.5);
}

TEST(SimEngine, RunUntilPicksUpReentrantSchedules) {
  // An event firing inside run_until(t) may schedule more events; those at
  // or before t run in the same call (including clamped past times), those
  // after t stay pending.
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] {
    order.push_back(1);
    engine.schedule_at(0.5, [&] { order.push_back(2); });   // clamps to 1.0
    engine.schedule_at(2.0, [&] { order.push_back(3); });   // within t
    engine.schedule_at(10.0, [&] { order.push_back(4); });  // beyond t
  });
  engine.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimEngine, RunUntilThenRunDrainsInOrder) {
  SimEngine engine;
  std::vector<double> times;
  for (double t : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    engine.schedule_at(t, [&times, &engine] { times.push_back(engine.now()); });
  }
  engine.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  engine.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

// ---- differential ordering: ladder engine vs reference binary heap ------

/// The seed implementation SimEngine replaced: one binary heap of
/// (time, seq, closure).  Kept here as the ordering oracle.
class ReferenceHeapEngine {
 public:
  Seconds now() const noexcept { return now_; }

  void schedule_at(Seconds t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// Replays one randomized schedule through `Engine` and logs the execution
/// order.  Event ids, spawn times, and cascade fan-out all come from a
/// deterministic Rng that advances *during execution*, so the log (and the
/// RNG stream itself) diverges at the first ordering difference.  Times are
/// quantized to a coarse grid to force plenty of exact (time, seq) ties,
/// and offsets dip negative to exercise the t < now() clamp.
template <typename Engine>
std::vector<std::pair<int, double>> replay_script(std::uint64_t seed,
                                                  int roots, int budget) {
  struct Script {
    Engine engine;
    Rng rng;
    std::vector<std::pair<int, double>> log;
    int budget;
    int next_id = 0;

    explicit Script(std::uint64_t s, int b) : rng(s), budget(b) {}

    double quantize(double t) { return std::floor(t * 4.0) / 4.0; }

    void spawn(double t) {
      const int id = next_id++;
      engine.schedule_at(t, [this, id] { fire(id); });
    }

    void fire(int id) {
      log.emplace_back(id, engine.now());
      const int kids = static_cast<int>(rng.uniform_int(0, 2));
      for (int k = 0; k < kids; ++k) {
        if (budget-- <= 0) return;
        // Negative offsets exercise the clamp; the quantized grid makes
        // same-time collisions (seq tie-breaks) common.
        spawn(engine.now() + quantize(rng.uniform(-2.0, 8.0)));
      }
    }
  };

  Script script(seed, budget);
  for (int i = 0; i < roots; ++i) {
    script.spawn(script.quantize(script.rng.uniform(0.0, 50.0)));
  }
  script.engine.run();
  return script.log;
}

TEST(SimEngine, DifferentialOrderingMatchesReferenceHeap) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 2026ULL, 0xdeadbeefULL}) {
    const auto ladder = replay_script<SimEngine>(seed, 200, 4000);
    const auto heap = replay_script<ReferenceHeapEngine>(seed, 200, 4000);
    ASSERT_EQ(ladder.size(), heap.size()) << "seed " << seed;
    ASSERT_EQ(ladder, heap) << "seed " << seed;
  }
}

TEST(SimEngine, DifferentialOrderingAcrossEpochRebuckets) {
  // Wide time range + few events per epoch forces many far-list re-bucket
  // cycles; dense bursts force big near buckets.  Both must keep exact
  // (time, seq) order.
  for (std::uint64_t seed : {3ULL, 99ULL}) {
    const auto ladder = replay_script<SimEngine>(seed, 1500, 12000);
    const auto heap = replay_script<ReferenceHeapEngine>(seed, 1500, 12000);
    ASSERT_EQ(ladder, heap) << "seed " << seed;
  }
}

TEST(SimEngine, DrainRefillDrainStaysOrdered) {
  // Re-using one engine across drains exercises the epoch reset path.
  SimEngine engine;
  std::vector<double> times;
  Rng rng(11);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 500; ++i) {
      engine.schedule_after(rng.uniform(0.0, 100.0),
                            [&] { times.push_back(engine.now()); });
    }
    engine.run();
  }
  EXPECT_EQ(times.size(), 2500u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

// ---- allocation-free steady state ---------------------------------------

TEST(SimEngine, SteadyStateEventPathDoesNotAllocate) {
  // Self-perpetuating churn with a platform-completion-sized capture: each
  // firing event schedules its successor, holding the pending population
  // constant.
  struct Churn {
    SimEngine* engine;
    Rng* rng;
    int* remaining;
    double payload[12] = {};  // ~96 capture bytes, like Platform's closure

    void operator()() {
      if ((*remaining)-- > 0) {
        engine->schedule_at(engine->now() + rng->uniform(0.0, 3.0),
                            Churn(*this));
      }
    }
  };

  // Identical passes over one engine: the warm-up passes establish every
  // pool and bucket capacity high-water mark (random bucket densities keep
  // setting new records for a while, so a time-based warm-up cannot; and
  // the absolute-time shift between passes nudges FP bucket splits, so
  // capacities reach their fixpoint on the second pass).  The measured
  // pass replays the same relative schedule and must take the pure
  // steady-state path — zero heap allocations across 20k events.
  SimEngine engine;
  const auto run_pass = [&engine] {
    Rng rng(5);
    int remaining = 20000;
    for (int i = 0; i < 512; ++i) {
      engine.schedule_at(engine.now() + rng.uniform(0.0, 3.0),
                         Churn{&engine, &rng, &remaining});
    }
    engine.run();
  };
  run_pass();
  run_pass();
  ASSERT_EQ(engine.pending(), 0u);

  const std::size_t allocs_before = g_alloc_count.load();
  run_pass();
  const std::size_t allocs_after = g_alloc_count.load();
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state event path allocated";
}

// --------------------------------------------------------------- platform --
PlatformConfig small_platform() {
  PlatformConfig config;
  config.nodes = 2;
  config.pool.prewarm_per_function = 2;
  return config;
}

std::vector<FunctionModel> two_models() {
  return {make_micro_function(ResourceDim::Cpu),
          make_micro_function(ResourceDim::Network)};
}

TEST(Platform, InvokeCompletesWithExecTime) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  InvocationOutcome got;
  platform.invoke(0, 2000, 1, 1.0, 1.0,
                  [&](const InvocationOutcome& o) { got = o; });
  engine.run();
  const double expected =
      two_models()[0].exec_time(2000, 1, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(got.exec_s, expected);
  EXPECT_DOUBLE_EQ(got.interference, 1.0);
  EXPECT_EQ(platform.invocations(), 1u);
}

TEST(Platform, WarmPodReusedNoColdStart) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  int cold = 0;
  for (int i = 0; i < 3; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0, [&](const InvocationOutcome& o) {
      cold += o.cold_start ? 1 : 0;
    });
    engine.run();
  }
  EXPECT_EQ(cold, 0);
  EXPECT_EQ(platform.cold_starts(), 0u);
}

TEST(Platform, ColdStartWhenPoolExhausted) {
  SimEngine engine;
  PlatformConfig config = small_platform();
  config.pool.prewarm_per_function = 0;  // no generic pods at all
  Platform platform(engine, config, two_models());
  bool cold = false;
  platform.invoke(0, 1000, 1, 1.0, 1.0,
                  [&](const InvocationOutcome& o) { cold = o.cold_start; });
  engine.run();
  EXPECT_TRUE(cold);
  EXPECT_EQ(platform.cold_starts(), 1u);
}

TEST(Platform, ColdStartSlowerThanWarm) {
  const PoolConfig pool;
  EXPECT_GT(pool.cold_start_s, pool.warm_start_s);
  SimEngine engine;
  PlatformConfig config = small_platform();
  config.pool.prewarm_per_function = 0;
  Platform platform(engine, config, two_models());
  Seconds cold_total = 0.0;
  platform.invoke(0, 1000, 1, 1.0, 1.0, [&](const InvocationOutcome& o) {
    cold_total = o.total();
  });
  engine.run();
  Seconds warm_total = 0.0;
  platform.invoke(0, 1000, 1, 1.0, 1.0, [&](const InvocationOutcome& o) {
    warm_total = o.total();
  });
  engine.run();
  EXPECT_GT(cold_total, warm_total);
}

TEST(Platform, ConcurrentInvocationsColocate) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  std::vector<int> coloc;
  for (int i = 0; i < 4; ++i) {
    platform.invoke(1, 1000, 1, 1.0, std::nullopt,
                    [&](const InvocationOutcome& o) {
                      coloc.push_back(o.colocated);
                    });
  }
  EXPECT_GE(platform.peak_colocation(1), 2);  // packed on one node
  engine.run();
  // Later invocations observed earlier busy pods of the same function.
  EXPECT_GT(*std::max_element(coloc.begin(), coloc.end()), 1);
}

TEST(Platform, PeakBusyCountersTrackEpochDemand) {
  // The fleet control plane's demand signal: busy pods now, and the
  // high-water mark since the last reset.
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  EXPECT_EQ(platform.pods_for_function(0), 0);
  EXPECT_EQ(platform.busy_pods_for(0), 0);
  EXPECT_EQ(platform.peak_busy_for(0), 0);
  for (int i = 0; i < 3; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0, [](const InvocationOutcome&) {});
  }
  EXPECT_EQ(platform.busy_pods_for(0), 3);
  EXPECT_EQ(platform.peak_busy_for(0), 3);
  EXPECT_EQ(platform.pods_for_function(0), 3);  // specialized on demand
  engine.run();
  // All done: busy drains, the peak survives until the epoch barrier
  // resets it...
  EXPECT_EQ(platform.busy_pods_for(0), 0);
  EXPECT_EQ(platform.peak_busy_for(0), 3);
  platform.reset_peak_busy();
  // ...and the new window starts from the current busy level.
  EXPECT_EQ(platform.peak_busy_for(0), 0);
  EXPECT_EQ(platform.pods_for_function(0), 3);  // footprint persists
  platform.invoke(0, 1000, 1, 1.0, 1.0, [](const InvocationOutcome&) {});
  EXPECT_EQ(platform.peak_busy_for(0), 1);
  engine.run();
  EXPECT_THROW(platform.busy_pods_for(7), std::invalid_argument);
}

TEST(Platform, EndogenousInterferenceGrowsWithColocation) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  std::vector<InvocationOutcome> outs;
  for (int i = 0; i < 5; ++i) {
    platform.invoke(1, 1000, 1, 1.0, std::nullopt,
                    [&](const InvocationOutcome& o) { outs.push_back(o); });
  }
  engine.run();
  double max_interf = 0.0;
  for (const auto& o : outs) max_interf = std::max(max_interf, o.interference);
  EXPECT_GT(max_interf, 1.2);  // network-bound contention kicked in
}

TEST(Platform, ExogenousMultiplierAppliedVerbatim) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  InvocationOutcome got;
  platform.invoke(0, 1500, 1, 2.0, 3.0,
                  [&](const InvocationOutcome& o) { got = o; });
  engine.run();
  EXPECT_DOUBLE_EQ(got.interference, 3.0);
  EXPECT_DOUBLE_EQ(got.exec_s, two_models()[0].exec_time(1500, 1, 2.0, 3.0));
}

TEST(Platform, BusyMillicoresTracksInFlight) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  platform.invoke(0, 2500, 1, 1.0, 1.0, [](const InvocationOutcome&) {});
  EXPECT_EQ(platform.busy_millicores(), 2500);
  engine.run();
  EXPECT_EQ(platform.busy_millicores(), 0);
}

TEST(Platform, NonBatchableRejectsBatch) {
  SimEngine engine;
  const auto va = make_va();
  Platform platform(engine, small_platform(), va.chain_models());
  EXPECT_THROW(
      platform.invoke(0, 1000, 2, 1.0, 1.0, [](const InvocationOutcome&) {}),
      std::invalid_argument);
}

TEST(Platform, InvalidInvokeArgsThrow) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  EXPECT_THROW(
      platform.invoke(9, 1000, 1, 1.0, 1.0, [](const InvocationOutcome&) {}),
      std::invalid_argument);
  EXPECT_THROW(
      platform.invoke(0, 0, 1, 1.0, 1.0, [](const InvocationOutcome&) {}),
      std::invalid_argument);
}

TEST(Platform, ResizeOnWarmReuse) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  // First at 1000, then at 3000: warm pod is resized, not cold-started.
  platform.invoke(0, 1000, 1, 1.0, 1.0, [](const InvocationOutcome&) {});
  engine.run();
  bool cold = true;
  platform.invoke(0, 3000, 1, 1.0, 1.0,
                  [&](const InvocationOutcome& o) { cold = o.cold_start; });
  EXPECT_EQ(platform.busy_millicores(), 3000);
  engine.run();
  EXPECT_FALSE(cold);
}

TEST(Platform, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimEngine engine;
    Platform platform(engine, small_platform(), two_models());
    std::vector<double> times;
    for (int i = 0; i < 5; ++i) {
      platform.invoke(1, 1200, 1, 1.0, std::nullopt,
                      [&](const InvocationOutcome& o) {
                        times.push_back(o.exec_s);
                      });
    }
    engine.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}


TEST(Platform, ScaleOutLimitQueuesInvocations) {
  SimEngine engine;
  PlatformConfig config = small_platform();
  config.pool.max_pods_per_function = 2;
  Platform platform(engine, config, two_models());
  std::vector<InvocationOutcome> outs;
  for (int i = 0; i < 5; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0,
                    [&](const InvocationOutcome& o) { outs.push_back(o); });
  }
  // Only two pods may exist: three invocations wait in the queue.
  EXPECT_EQ(platform.queued_invocations(), 3u);
  engine.run();
  ASSERT_EQ(outs.size(), 5u);
  EXPECT_EQ(platform.queued_invocations(), 0u);
  // The queued ones record a positive wait.
  std::size_t waited = 0;
  for (const auto& o : outs) waited += o.queued_s > 0.0 ? 1 : 0;
  EXPECT_EQ(waited, 3u);
}

TEST(Platform, QueueDrainsInFifoOrder) {
  SimEngine engine;
  PlatformConfig config = small_platform();
  config.pool.max_pods_per_function = 1;
  Platform platform(engine, config, two_models());
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0,
                    [&order, i](const InvocationOutcome&) {
                      order.push_back(i);
                    });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Platform, UnlimitedPodsNeverQueue) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  for (int i = 0; i < 10; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0, [](const InvocationOutcome&) {});
  }
  EXPECT_EQ(platform.queued_invocations(), 0u);
  engine.run();
}

}  // namespace
}  // namespace janus
