// Tests for src/sim: event engine ordering, platform pod lifecycle,
// warm pools, co-location packing, invoke outcomes.
#include <gtest/gtest.h>

#include <vector>

#include "model/workloads.hpp"
#include "sim/engine.hpp"
#include "sim/platform.hpp"

namespace janus {
namespace {

// ----------------------------------------------------------------- engine --
TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngine, TiesBreakByInsertionOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimEngine, ScheduleAfterUsesCurrentTime) {
  SimEngine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_after(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimEngine, PastSchedulingClampsToNow) {
  // Contract: schedule_at with t < now() clamps to now() — the event fires
  // as soon as possible instead of throwing (negative *delays* still do).
  SimEngine engine;
  engine.schedule_at(1.0, [] {});
  engine.run();
  Seconds fired_at = -1.0;
  engine.schedule_at(0.5, [&] { fired_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(SimEngine, ClampedEventRunsAfterAlreadyQueuedPeers) {
  // A clamped event lands *behind* events already queued at now(): the
  // clamp changes its time, not its insertion sequence.
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(5.0, [&] {
    engine.schedule_at(engine.now(), [&] { order.push_back(1); });
    engine.schedule_at(2.0, [&] { order.push_back(2); });  // past -> 5.0
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(SimEngine, StepReturnsFalseWhenEmpty) {
  SimEngine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(0.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(SimEngine, EventsCanCascade) {
  SimEngine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) engine.schedule_after(0.1, recurse);
  };
  engine.schedule_at(0.0, recurse);
  engine.run();
  EXPECT_EQ(depth, 10);
}

// --------------------------------------------------------------- platform --
PlatformConfig small_platform() {
  PlatformConfig config;
  config.nodes = 2;
  config.pool.prewarm_per_function = 2;
  return config;
}

std::vector<FunctionModel> two_models() {
  return {make_micro_function(ResourceDim::Cpu),
          make_micro_function(ResourceDim::Network)};
}

TEST(Platform, InvokeCompletesWithExecTime) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  InvocationOutcome got;
  platform.invoke(0, 2000, 1, 1.0, 1.0,
                  [&](const InvocationOutcome& o) { got = o; });
  engine.run();
  const double expected =
      two_models()[0].exec_time(2000, 1, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(got.exec_s, expected);
  EXPECT_DOUBLE_EQ(got.interference, 1.0);
  EXPECT_EQ(platform.invocations(), 1u);
}

TEST(Platform, WarmPodReusedNoColdStart) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  int cold = 0;
  for (int i = 0; i < 3; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0, [&](const InvocationOutcome& o) {
      cold += o.cold_start ? 1 : 0;
    });
    engine.run();
  }
  EXPECT_EQ(cold, 0);
  EXPECT_EQ(platform.cold_starts(), 0u);
}

TEST(Platform, ColdStartWhenPoolExhausted) {
  SimEngine engine;
  PlatformConfig config = small_platform();
  config.pool.prewarm_per_function = 0;  // no generic pods at all
  Platform platform(engine, config, two_models());
  bool cold = false;
  platform.invoke(0, 1000, 1, 1.0, 1.0,
                  [&](const InvocationOutcome& o) { cold = o.cold_start; });
  engine.run();
  EXPECT_TRUE(cold);
  EXPECT_EQ(platform.cold_starts(), 1u);
}

TEST(Platform, ColdStartSlowerThanWarm) {
  const PoolConfig pool;
  EXPECT_GT(pool.cold_start_s, pool.warm_start_s);
  SimEngine engine;
  PlatformConfig config = small_platform();
  config.pool.prewarm_per_function = 0;
  Platform platform(engine, config, two_models());
  Seconds cold_total = 0.0;
  platform.invoke(0, 1000, 1, 1.0, 1.0, [&](const InvocationOutcome& o) {
    cold_total = o.total();
  });
  engine.run();
  Seconds warm_total = 0.0;
  platform.invoke(0, 1000, 1, 1.0, 1.0, [&](const InvocationOutcome& o) {
    warm_total = o.total();
  });
  engine.run();
  EXPECT_GT(cold_total, warm_total);
}

TEST(Platform, ConcurrentInvocationsColocate) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  std::vector<int> coloc;
  for (int i = 0; i < 4; ++i) {
    platform.invoke(1, 1000, 1, 1.0, std::nullopt,
                    [&](const InvocationOutcome& o) {
                      coloc.push_back(o.colocated);
                    });
  }
  EXPECT_GE(platform.peak_colocation(1), 2);  // packed on one node
  engine.run();
  // Later invocations observed earlier busy pods of the same function.
  EXPECT_GT(*std::max_element(coloc.begin(), coloc.end()), 1);
}

TEST(Platform, EndogenousInterferenceGrowsWithColocation) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  std::vector<InvocationOutcome> outs;
  for (int i = 0; i < 5; ++i) {
    platform.invoke(1, 1000, 1, 1.0, std::nullopt,
                    [&](const InvocationOutcome& o) { outs.push_back(o); });
  }
  engine.run();
  double max_interf = 0.0;
  for (const auto& o : outs) max_interf = std::max(max_interf, o.interference);
  EXPECT_GT(max_interf, 1.2);  // network-bound contention kicked in
}

TEST(Platform, ExogenousMultiplierAppliedVerbatim) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  InvocationOutcome got;
  platform.invoke(0, 1500, 1, 2.0, 3.0,
                  [&](const InvocationOutcome& o) { got = o; });
  engine.run();
  EXPECT_DOUBLE_EQ(got.interference, 3.0);
  EXPECT_DOUBLE_EQ(got.exec_s, two_models()[0].exec_time(1500, 1, 2.0, 3.0));
}

TEST(Platform, BusyMillicoresTracksInFlight) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  platform.invoke(0, 2500, 1, 1.0, 1.0, [](const InvocationOutcome&) {});
  EXPECT_EQ(platform.busy_millicores(), 2500);
  engine.run();
  EXPECT_EQ(platform.busy_millicores(), 0);
}

TEST(Platform, NonBatchableRejectsBatch) {
  SimEngine engine;
  const auto va = make_va();
  Platform platform(engine, small_platform(), va.chain_models());
  EXPECT_THROW(
      platform.invoke(0, 1000, 2, 1.0, 1.0, [](const InvocationOutcome&) {}),
      std::invalid_argument);
}

TEST(Platform, InvalidInvokeArgsThrow) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  EXPECT_THROW(
      platform.invoke(9, 1000, 1, 1.0, 1.0, [](const InvocationOutcome&) {}),
      std::invalid_argument);
  EXPECT_THROW(
      platform.invoke(0, 0, 1, 1.0, 1.0, [](const InvocationOutcome&) {}),
      std::invalid_argument);
}

TEST(Platform, ResizeOnWarmReuse) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  // First at 1000, then at 3000: warm pod is resized, not cold-started.
  platform.invoke(0, 1000, 1, 1.0, 1.0, [](const InvocationOutcome&) {});
  engine.run();
  bool cold = true;
  platform.invoke(0, 3000, 1, 1.0, 1.0,
                  [&](const InvocationOutcome& o) { cold = o.cold_start; });
  EXPECT_EQ(platform.busy_millicores(), 3000);
  engine.run();
  EXPECT_FALSE(cold);
}

TEST(Platform, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimEngine engine;
    Platform platform(engine, small_platform(), two_models());
    std::vector<double> times;
    for (int i = 0; i < 5; ++i) {
      platform.invoke(1, 1200, 1, 1.0, std::nullopt,
                      [&](const InvocationOutcome& o) {
                        times.push_back(o.exec_s);
                      });
    }
    engine.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}


TEST(Platform, ScaleOutLimitQueuesInvocations) {
  SimEngine engine;
  PlatformConfig config = small_platform();
  config.pool.max_pods_per_function = 2;
  Platform platform(engine, config, two_models());
  std::vector<InvocationOutcome> outs;
  for (int i = 0; i < 5; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0,
                    [&](const InvocationOutcome& o) { outs.push_back(o); });
  }
  // Only two pods may exist: three invocations wait in the queue.
  EXPECT_EQ(platform.queued_invocations(), 3u);
  engine.run();
  ASSERT_EQ(outs.size(), 5u);
  EXPECT_EQ(platform.queued_invocations(), 0u);
  // The queued ones record a positive wait.
  std::size_t waited = 0;
  for (const auto& o : outs) waited += o.queued_s > 0.0 ? 1 : 0;
  EXPECT_EQ(waited, 3u);
}

TEST(Platform, QueueDrainsInFifoOrder) {
  SimEngine engine;
  PlatformConfig config = small_platform();
  config.pool.max_pods_per_function = 1;
  Platform platform(engine, config, two_models());
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0,
                    [&order, i](const InvocationOutcome&) {
                      order.push_back(i);
                    });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Platform, UnlimitedPodsNeverQueue) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  for (int i = 0; i < 10; ++i) {
    platform.invoke(0, 1000, 1, 1.0, 1.0, [](const InvocationOutcome&) {});
  }
  EXPECT_EQ(platform.queued_invocations(), 0u);
  engine.run();
}

}  // namespace
}  // namespace janus
