#!/usr/bin/env bash
# CLI contract for `janus_cli fleet --policy`:
#
#   * unknown names are rejected with a ONE-line error that lists the
#     valid policies and exits 2 (a distinct usage-class code: 1 is a
#     runtime failure) — never a silent fallback to fixed;
#   * an empty --policy value is an error, not "no flag";
#   * a valid mixed-policy set actually runs end to end and reports the
#     per-tenant policy column.
#
# usage: cli_fleet_policy_test.sh /path/to/janus_cli
set -u

cli="${1:?usage: cli_fleet_policy_test.sh /path/to/janus_cli}"
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# ---- unknown policy: exit 2, one line, lists the valid set ------------
err=$("$cli" fleet --policy nope 2>&1 >/dev/null)
code=$?
[ "$code" -eq 2 ] || fail "unknown policy exited $code, want 2"
[ "$(printf '%s\n' "$err" | wc -l)" -eq 1 ] \
  || fail "unknown policy error is not one line: $err"
case "$err" in
  *"unknown policy 'nope'"*) ;;
  *) fail "error does not name the bad policy: $err" ;;
esac
for name in fixed janus janus- janus+ orion grandslam grandslam+ \
            mean_based optimal; do
  case "$err" in
    *"$name"*) ;;
    *) fail "error does not list valid policy $name: $err" ;;
  esac
done

# ---- one bad name inside an otherwise valid list still fails ----------
"$cli" fleet --policy janus,bogus,orion >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "mixed list with bad name exited $code, want 2"

# ---- empty value is an error, not an accidental default ---------------
"$cli" fleet --policy "" >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "empty --policy exited $code, want 2"

# ---- trailing/interior empty segments are errors too ------------------
for bad in "janus," ",janus" "janus,,orion"; do
  "$cli" fleet --policy "$bad" >/dev/null 2>&1
  code=$?
  [ "$code" -eq 2 ] || fail "--policy '$bad' exited $code, want 2"
done

# ---- valid mix runs end to end and reports the policy column ----------
out=$("$cli" fleet --policy janus,orion,mean_based --tenants 3 \
      --requests 40 --shards 2 --epoch-s 30 2>&1)
code=$?
[ "$code" -eq 0 ] || fail "valid mixed-policy fleet exited $code: $out"
for name in janus orion mean_based; do
  case "$out" in
    *"$name"*) ;;
    *) fail "fleet table does not show policy $name: $out" ;;
  esac
done

# ---- and the same mix in --json carries per-tenant policy fields ------
out=$("$cli" fleet --policy janus,orion --tenants 2 --requests 40 \
      --json 2>&1)
code=$?
[ "$code" -eq 0 ] || fail "json mixed-policy fleet exited $code: $out"
case "$out" in
  *'"policy": "janus"'*) ;;
  *) fail "json output lacks the tenant policy field: $out" ;;
esac

if [ "$failures" -gt 0 ]; then
  echo "cli_fleet_policy_test: $failures failure(s)" >&2
  exit 1
fi
echo "cli_fleet_policy_test: all checks passed"
