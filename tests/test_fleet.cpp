// Tests for src/fleet: arrival processes, cluster bin-packing, and the
// sharded multi-tenant fleet runner's determinism + aggregation contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fleet/arrivals.hpp"
#include "fleet/cluster.hpp"
#include "fleet/fleet.hpp"

namespace janus {
namespace {

// ------------------------------------------------------------- arrivals --
std::vector<Seconds> arrival_times(const ArrivalSpec& spec, int count,
                                   std::uint64_t seed) {
  auto process = make_arrivals(spec);
  Rng rng(seed);
  std::vector<Seconds> times;
  Seconds t = 0.0;
  for (int i = 0; i < count; ++i) {
    t = process->next(t, rng);
    times.push_back(t);
  }
  return times;
}

TEST(Arrivals, PoissonMeanRateConverges) {
  ArrivalSpec spec;
  spec.rate = 25.0;
  const auto times = arrival_times(spec, 20000, 7);
  const double observed = 20000.0 / times.back();
  EXPECT_NEAR(observed, 25.0, 25.0 * 0.05);
}

TEST(Arrivals, SequencesAreMonotoneAndDeterministic) {
  for (const ArrivalKind kind :
       {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate = 10.0;
    spec.burst_rate = 40.0;
    const auto a = arrival_times(spec, 2000, 42);
    const auto b = arrival_times(spec, 2000, 42);
    EXPECT_EQ(a, b) << to_string(kind);
    for (std::size_t i = 1; i < a.size(); ++i) {
      ASSERT_GT(a[i], a[i - 1]) << to_string(kind);
    }
    EXPECT_NE(a, arrival_times(spec, 2000, 43)) << to_string(kind);
  }
}

TEST(Arrivals, MmppMeanRateBetweenBaseAndBurst) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Mmpp;
  spec.rate = 10.0;
  spec.burst_rate = 60.0;
  spec.base_dwell_s = 20.0;
  spec.burst_dwell_s = 4.0;
  const auto times = arrival_times(spec, 40000, 3);
  const double observed = 40000.0 / times.back();
  EXPECT_GT(observed, 10.0);
  EXPECT_LT(observed, 60.0);
  // Stationary mean: (10*20 + 60*4) / 24 = 18.33...; the estimator only
  // sees ~90 dwell cycles, so give it CLT headroom.
  EXPECT_NEAR(observed, spec.mean_rate(), spec.mean_rate() * 0.25);
}

TEST(Arrivals, MmppIsBurstier) {
  // Squared coefficient of variation of interarrivals: 1 for Poisson,
  // > 1 for a bursty MMPP at the same mean rate.
  const auto cv2 = [](const std::vector<Seconds>& times) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(times[i] - times[i - 1]);
    }
    double mean = 0.0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size() - 1);
    return var / (mean * mean);
  };
  ArrivalSpec poisson;
  poisson.rate = 20.0;
  ArrivalSpec mmpp;
  mmpp.kind = ArrivalKind::Mmpp;
  mmpp.rate = 5.0;
  mmpp.burst_rate = 80.0;
  mmpp.base_dwell_s = 10.0;
  mmpp.burst_dwell_s = 2.0;
  EXPECT_NEAR(cv2(arrival_times(poisson, 30000, 9)), 1.0, 0.15);
  EXPECT_GT(cv2(arrival_times(mmpp, 30000, 9)), 1.5);
}

TEST(Arrivals, DiurnalTracksRateCurve) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Diurnal;
  spec.rate = 20.0;
  spec.period_s = 100.0;
  spec.amplitude = 0.9;
  const auto times = arrival_times(spec, 40000, 5);
  // Count arrivals in the rising half vs the falling half of each period:
  // sin > 0 on [0, T/2), < 0 on [T/2, T).
  std::size_t high = 0, low = 0;
  for (Seconds t : times) {
    const double phase = std::fmod(t, spec.period_s) / spec.period_s;
    (phase < 0.5 ? high : low) += 1;
  }
  EXPECT_GT(static_cast<double>(high),
            1.5 * static_cast<double>(low));  // peak half dominates
  // Long-run mean still ~rate.
  EXPECT_NEAR(40000.0 / times.back(), 20.0, 20.0 * 0.10);
}

TEST(Arrivals, SpecValidation) {
  ArrivalSpec bad;
  bad.rate = 0.0;
  EXPECT_THROW(make_arrivals(bad), std::invalid_argument);
  ArrivalSpec mmpp;
  mmpp.kind = ArrivalKind::Mmpp;
  mmpp.rate = 10.0;
  mmpp.burst_rate = 5.0;  // below base
  EXPECT_THROW(make_arrivals(mmpp), std::invalid_argument);
  ArrivalSpec diurnal;
  diurnal.kind = ArrivalKind::Diurnal;
  diurnal.amplitude = 1.5;
  EXPECT_THROW(make_arrivals(diurnal), std::invalid_argument);
  EXPECT_EQ(arrival_kind_from_string("mmpp"), ArrivalKind::Mmpp);
  EXPECT_THROW(arrival_kind_from_string("pareto"), std::invalid_argument);
}

// -------------------------------------------------------------- cluster --
TEST(Cluster, PacksGroupOntoOneNodeWhenItFits) {
  ClusterCapacity cluster({4, 10000});
  const auto placed = cluster.place_group(5, 2000);
  ASSERT_EQ(placed.size(), 5u);
  for (int node : placed) EXPECT_EQ(node, placed[0]);
  EXPECT_DOUBLE_EQ(ClusterCapacity::mean_coresidency(placed), 5.0);
  EXPECT_EQ(cluster.used_mc(placed[0]), 10000);
}

TEST(Cluster, SpillsToSecondNodeAtCapacity) {
  ClusterCapacity cluster({4, 10000});
  const auto placed = cluster.place_group(7, 2000);
  // 5 pods fill a node, 2 spill: coresidency (5*5 + 2*2) / 7.
  EXPECT_NEAR(ClusterCapacity::mean_coresidency(placed), 29.0 / 7.0, 1e-12);
  EXPECT_EQ(cluster.overcommitted_pods(), 0);
}

TEST(Cluster, SeparateGroupsAvoidEachOther) {
  ClusterCapacity cluster({4, 10000});
  const auto a = cluster.place_group(2, 3000);
  const auto b = cluster.place_group(2, 3000);
  // Group b fits on an empty node, so it does not share with group a.
  EXPECT_NE(a[0], b[0]);
}

TEST(Cluster, OvercommitsLeastUsedNodeWhenSaturated) {
  ClusterCapacity cluster({2, 4000});
  cluster.place_group(2, 4000);  // both nodes full
  const auto placed = cluster.place_group(1, 4000);
  ASSERT_EQ(placed.size(), 1u);
  EXPECT_EQ(cluster.overcommitted_pods(), 1);
  EXPECT_GT(cluster.utilization(), 1.0);
}

TEST(Cluster, ValidationAndAccessors) {
  EXPECT_THROW(ClusterCapacity({0, 1000}), std::invalid_argument);
  EXPECT_THROW(ClusterCapacity({2, 0}), std::invalid_argument);
  ClusterCapacity cluster({2, 1000});
  EXPECT_THROW(cluster.place_group(1, 0), std::invalid_argument);
  EXPECT_THROW(cluster.used_mc(9), std::invalid_argument);
  EXPECT_DOUBLE_EQ(cluster.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(ClusterCapacity::mean_coresidency({}), 1.0);
}

// ---------------------------------------------------------------- fleet --
FleetConfig small_fleet(int shards) {
  FleetConfig config;
  config.tenants = make_tenant_mix(5, 150, 8.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/true);
  config.shards = shards;
  config.seed = 99;
  return config;
}

TEST(Fleet, BitIdenticalAcrossShardCounts) {
  const FleetResult one = run_fleet(small_fleet(1));
  for (int shards : {2, 3, 8}) {
    const FleetResult many = run_fleet(small_fleet(shards));
    ASSERT_EQ(many.tenants.size(), one.tenants.size());
    for (std::size_t t = 0; t < one.tenants.size(); ++t) {
      EXPECT_EQ(one.tenants[t].e2e.sorted_samples(),
                many.tenants[t].e2e.sorted_samples())
          << "tenant " << t << " at " << shards << " shards";
      EXPECT_DOUBLE_EQ(one.tenants[t].violation_rate,
                       many.tenants[t].violation_rate);
      EXPECT_DOUBLE_EQ(one.tenants[t].mean_cpu_mc,
                       many.tenants[t].mean_cpu_mc);
    }
    EXPECT_EQ(one.fleet_e2e.sorted_samples(), many.fleet_e2e.sorted_samples());
    EXPECT_DOUBLE_EQ(one.fleet_p99, many.fleet_p99);
    EXPECT_DOUBLE_EQ(one.fleet_violation_rate, many.fleet_violation_rate);
    EXPECT_DOUBLE_EQ(one.fleet_mean_cpu_mc, many.fleet_mean_cpu_mc);
    for (std::size_t i = 0; i < one.fleet_hist.bins(); ++i) {
      EXPECT_EQ(one.fleet_hist.bin_count(i), many.fleet_hist.bin_count(i));
    }
  }
}

TEST(Fleet, AggregatesAcrossTenants) {
  const FleetResult result = run_fleet(small_fleet(2));
  ASSERT_EQ(result.tenants.size(), 5u);
  EXPECT_EQ(result.total_requests, 5u * 150u);
  EXPECT_EQ(result.fleet_e2e.size(), result.total_requests);
  EXPECT_EQ(result.fleet_hist.total(), result.total_requests);
  std::size_t expected_violations = 0;
  for (const auto& tr : result.tenants) {
    EXPECT_EQ(tr.requests, 150);
    EXPECT_GE(tr.coresidency, 1.0);
    expected_violations += static_cast<std::size_t>(
        std::lround(tr.violation_rate * tr.requests));
  }
  EXPECT_NEAR(result.fleet_violation_rate,
              static_cast<double>(expected_violations) /
                  static_cast<double>(result.total_requests),
              1e-9);
  // The merged distribution brackets every tenant's percentiles.
  for (const auto& tr : result.tenants) {
    EXPECT_GE(result.fleet_e2e.max(), tr.e2e.max());
    EXPECT_LE(result.fleet_e2e.min(), tr.e2e.min());
  }
}

TEST(Fleet, ContentionRaisesLatencyForHeavyTenants) {
  // Same workload at 10x the arrival rate packs ~10x the pods, so the
  // cluster feedback must slow the heavy tenant down.
  FleetConfig config;
  TenantSpec light;
  light.workload = "ia";
  light.requests = 150;
  light.arrivals.rate = 1.0;
  TenantSpec heavy = light;
  heavy.arrivals.rate = 40.0;
  config.tenants = {light, heavy};
  config.seed = 7;
  const FleetResult result = run_fleet(config);
  EXPECT_GT(result.tenants[1].coresidency, result.tenants[0].coresidency);
  EXPECT_GT(result.tenants[1].e2e_p50, result.tenants[0].e2e_p50);
}

TEST(Fleet, JsonContainsFleetAndTenantRows) {
  FleetConfig config = small_fleet(2);
  config.tenants[1].name = "tenant \"b\"";  // names are free-form: escape
  const FleetResult result = run_fleet(config);
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"ia-0\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant \\\"b\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"violation_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\": 2"), std::string::npos);
}

TEST(Fleet, RejectsBadConfig) {
  FleetConfig empty;
  EXPECT_THROW(run_fleet(empty), std::invalid_argument);
  FleetConfig bad = small_fleet(0);
  EXPECT_THROW(run_fleet(bad), std::invalid_argument);
  FleetConfig unknown = small_fleet(1);
  unknown.tenants[0].workload = "nope";
  EXPECT_THROW(run_fleet(unknown), std::invalid_argument);
  // The fleet is open-loop only: a zero-rate (or otherwise invalid)
  // arrival spec must fail up front, not degrade to a closed loop.
  FleetConfig stalled = small_fleet(1);
  stalled.tenants[0].arrivals.rate = 0.0;
  EXPECT_THROW(run_fleet(stalled), std::invalid_argument);
  FleetConfig dwell = small_fleet(1);
  dwell.tenants[0].arrivals.kind = ArrivalKind::Mmpp;
  dwell.tenants[0].arrivals.base_dwell_s = 0.0;
  dwell.tenants[0].arrivals.burst_dwell_s = 0.0;
  dwell.tenants[0].arrivals.burst_rate = 1e9;  // keep burst >= base valid
  EXPECT_THROW(run_fleet(dwell), std::invalid_argument);
}

TEST(Fleet, TenantMixIsHeterogeneous) {
  const auto mix =
      make_tenant_mix(8, 100, 10.0, ArrivalKind::Poisson, /*mixed=*/true);
  ASSERT_EQ(mix.size(), 8u);
  bool saw_va = false, saw_mmpp = false, saw_diurnal = false;
  for (const auto& t : mix) {
    saw_va = saw_va || t.workload == "va";
    saw_mmpp = saw_mmpp || t.arrivals.kind == ArrivalKind::Mmpp;
    saw_diurnal = saw_diurnal || t.arrivals.kind == ArrivalKind::Diurnal;
  }
  EXPECT_TRUE(saw_va);
  EXPECT_TRUE(saw_mmpp);
  EXPECT_TRUE(saw_diurnal);
  EXPECT_NE(mix[0].arrivals.rate, mix[1].arrivals.rate);
}

}  // namespace
}  // namespace janus
