// Tests for src/fleet: arrival processes, the autoscaling cluster node
// pool, the epoch control plane, and the sharded multi-tenant fleet
// runner's determinism + aggregation contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fleet/arrivals.hpp"
#include "fleet/cluster.hpp"
#include "fleet/control.hpp"
#include "fleet/fleet.hpp"
#include "fleet/policies.hpp"
#include "model/trace_synth.hpp"
#include "model/workloads.hpp"
#include "sim/engine.hpp"

namespace janus {
namespace {

// ------------------------------------------------------------- arrivals --
std::vector<Seconds> arrival_times(const ArrivalSpec& spec, int count,
                                   std::uint64_t seed) {
  auto process = make_arrivals(spec);
  Rng rng(seed);
  std::vector<Seconds> times;
  Seconds t = 0.0;
  for (int i = 0; i < count; ++i) {
    t = process->next(t, rng);
    times.push_back(t);
  }
  return times;
}

TEST(Arrivals, PoissonMeanRateConverges) {
  ArrivalSpec spec;
  spec.rate = 25.0;
  const auto times = arrival_times(spec, 20000, 7);
  const double observed = 20000.0 / times.back();
  EXPECT_NEAR(observed, 25.0, 25.0 * 0.05);
}

TEST(Arrivals, SequencesAreMonotoneAndDeterministic) {
  for (const ArrivalKind kind :
       {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate = 10.0;
    spec.burst_rate = 40.0;
    const auto a = arrival_times(spec, 2000, 42);
    const auto b = arrival_times(spec, 2000, 42);
    EXPECT_EQ(a, b) << to_string(kind);
    for (std::size_t i = 1; i < a.size(); ++i) {
      ASSERT_GT(a[i], a[i - 1]) << to_string(kind);
    }
    EXPECT_NE(a, arrival_times(spec, 2000, 43)) << to_string(kind);
  }
}

TEST(Arrivals, MmppMeanRateBetweenBaseAndBurst) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Mmpp;
  spec.rate = 10.0;
  spec.burst_rate = 60.0;
  spec.base_dwell_s = 20.0;
  spec.burst_dwell_s = 4.0;
  const auto times = arrival_times(spec, 40000, 3);
  const double observed = 40000.0 / times.back();
  EXPECT_GT(observed, 10.0);
  EXPECT_LT(observed, 60.0);
  // Stationary mean: (10*20 + 60*4) / 24 = 18.33...; the estimator only
  // sees ~90 dwell cycles, so give it CLT headroom.
  EXPECT_NEAR(observed, spec.mean_rate(), spec.mean_rate() * 0.25);
}

TEST(Arrivals, MmppIsBurstier) {
  // Squared coefficient of variation of interarrivals: 1 for Poisson,
  // > 1 for a bursty MMPP at the same mean rate.
  const auto cv2 = [](const std::vector<Seconds>& times) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(times[i] - times[i - 1]);
    }
    double mean = 0.0;
    for (double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size() - 1);
    return var / (mean * mean);
  };
  ArrivalSpec poisson;
  poisson.rate = 20.0;
  ArrivalSpec mmpp;
  mmpp.kind = ArrivalKind::Mmpp;
  mmpp.rate = 5.0;
  mmpp.burst_rate = 80.0;
  mmpp.base_dwell_s = 10.0;
  mmpp.burst_dwell_s = 2.0;
  EXPECT_NEAR(cv2(arrival_times(poisson, 30000, 9)), 1.0, 0.15);
  EXPECT_GT(cv2(arrival_times(mmpp, 30000, 9)), 1.5);
}

TEST(Arrivals, DiurnalTracksRateCurve) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Diurnal;
  spec.rate = 20.0;
  spec.period_s = 100.0;
  spec.amplitude = 0.9;
  const auto times = arrival_times(spec, 40000, 5);
  // Count arrivals in the rising half vs the falling half of each period:
  // sin > 0 on [0, T/2), < 0 on [T/2, T).
  std::size_t high = 0, low = 0;
  for (Seconds t : times) {
    const double phase = std::fmod(t, spec.period_s) / spec.period_s;
    (phase < 0.5 ? high : low) += 1;
  }
  EXPECT_GT(static_cast<double>(high),
            1.5 * static_cast<double>(low));  // peak half dominates
  // Long-run mean still ~rate.
  EXPECT_NEAR(40000.0 / times.back(), 20.0, 20.0 * 0.10);
}

TEST(Arrivals, TraceReplaysAndLoopsDeterministically) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Trace;
  spec.trace_gaps = {1.0, 2.0, 3.0};
  auto process = make_arrivals(spec);
  Rng rng(1);
  std::vector<Seconds> times;
  Seconds t = 0.0;
  for (int i = 0; i < 7; ++i) times.push_back(t = process->next(t, rng));
  // The 3-gap trace loops: 1,2,3 | 1,2,3 | 1 ...
  const std::vector<Seconds> expected = {1.0, 3.0, 6.0, 7.0, 9.0, 12.0, 13.0};
  EXPECT_EQ(times, expected);
  // The trace defines its own rate: 3 arrivals per 6 seconds.
  EXPECT_DOUBLE_EQ(spec.mean_rate(), 0.5);
  EXPECT_EQ(process->kind(), ArrivalKind::Trace);
  EXPECT_EQ(arrival_kind_from_string("trace"), ArrivalKind::Trace);
}

TEST(Arrivals, TraceValidation) {
  ArrivalSpec empty;
  empty.kind = ArrivalKind::Trace;
  EXPECT_THROW(make_arrivals(empty), std::invalid_argument);
  ArrivalSpec zero;
  zero.kind = ArrivalKind::Trace;
  zero.trace_gaps = {0.5, 0.0};
  EXPECT_THROW(make_arrivals(zero), std::invalid_argument);
  ArrivalSpec negative;
  negative.kind = ArrivalKind::Trace;
  negative.trace_gaps = {0.5, -1.0};
  EXPECT_THROW(make_arrivals(negative), std::invalid_argument);
}

TEST(Arrivals, SynthesizedInterarrivalTrace) {
  const auto gaps = synthesize_interarrivals(5000, 25.0, 42);
  ASSERT_EQ(gaps.size(), 5000u);
  double total = 0.0;
  for (double gap : gaps) {
    ASSERT_GT(gap, 0.0);
    total += gap;
  }
  // Rescaling makes the loop's long-run rate exact, not approximate.
  EXPECT_NEAR(5000.0 / total, 25.0, 1e-9);
  EXPECT_EQ(gaps, synthesize_interarrivals(5000, 25.0, 42));
  EXPECT_NE(gaps, synthesize_interarrivals(5000, 25.0, 43));
  // Heavier-tailed than exponential: max gap far above the mean.
  const double max_gap = *std::max_element(gaps.begin(), gaps.end());
  EXPECT_GT(max_gap, 10.0 / 25.0);
  EXPECT_THROW(synthesize_interarrivals(0, 25.0, 1), std::invalid_argument);
  EXPECT_THROW(synthesize_interarrivals(10, 0.0, 1), std::invalid_argument);
}

TEST(Arrivals, SpecValidation) {
  ArrivalSpec bad;
  bad.rate = 0.0;
  EXPECT_THROW(make_arrivals(bad), std::invalid_argument);
  ArrivalSpec mmpp;
  mmpp.kind = ArrivalKind::Mmpp;
  mmpp.rate = 10.0;
  mmpp.burst_rate = 5.0;  // below base
  EXPECT_THROW(make_arrivals(mmpp), std::invalid_argument);
  ArrivalSpec diurnal;
  diurnal.kind = ArrivalKind::Diurnal;
  diurnal.amplitude = 1.5;
  EXPECT_THROW(make_arrivals(diurnal), std::invalid_argument);
  EXPECT_EQ(arrival_kind_from_string("mmpp"), ArrivalKind::Mmpp);
  EXPECT_THROW(arrival_kind_from_string("pareto"), std::invalid_argument);
}

TEST(Arrivals, FlashCrowdMultipliesRateInsideWindow) {
  ArrivalSpec spec;
  spec.rate = 20.0;
  spec.flash_k = 5.0;
  spec.flash_t0_s = 50.0;
  spec.flash_t1_s = 100.0;
  const auto times = arrival_times(spec, 30000, 11);
  int inside = 0;
  for (Seconds t : times) {
    if (t >= 50.0 && t < 100.0) ++inside;
  }
  // 50 s at 20/s x 5 = ~5000 arrivals inside the window.
  EXPECT_NEAR(inside, 5000, 5000 * 0.10);
  // The plan stays blind: mean_rate() excludes the window by design.
  EXPECT_DOUBLE_EQ(spec.mean_rate(), 20.0);
}

TEST(Arrivals, FlashComposesWithEveryKindMonotoneDeterministic) {
  for (const ArrivalKind kind :
       {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal,
        ArrivalKind::Trace}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate = 10.0;
    spec.burst_rate = 40.0;
    if (kind == ArrivalKind::Trace) spec.trace_gaps = {0.05, 0.2, 0.11};
    spec.flash_k = 8.0;
    spec.flash_t0_s = 5.0;
    spec.flash_t1_s = 9.0;
    const auto a = arrival_times(spec, 3000, 42);
    EXPECT_EQ(a, arrival_times(spec, 3000, 42)) << to_string(kind);
    for (std::size_t i = 1; i < a.size(); ++i) {
      ASSERT_GT(a[i], a[i - 1]) << to_string(kind);
    }
    // The warp is the identity before t0: the pre-window prefix matches
    // the base process exactly.
    ArrivalSpec base = spec;
    base.flash_k = 1.0;
    const auto b = arrival_times(base, 3000, 42);
    for (std::size_t i = 0; i < a.size() && a[i] < 5.0; ++i) {
      ASSERT_DOUBLE_EQ(a[i], b[i]) << to_string(kind);
    }
  }
}

TEST(Arrivals, FlashSpecValidation) {
  ArrivalSpec spec;
  spec.flash_k = 0.0;
  EXPECT_THROW(make_arrivals(spec), std::invalid_argument);
  spec.flash_k = -2.0;
  EXPECT_THROW(make_arrivals(spec), std::invalid_argument);
  spec.flash_k = 3.0;  // window required once armed
  spec.flash_t0_s = 10.0;
  spec.flash_t1_s = 10.0;
  EXPECT_THROW(make_arrivals(spec), std::invalid_argument);
  spec.flash_t1_s = 20.0;
  EXPECT_NO_THROW(make_arrivals(spec));
  // K < 1 is a brown-out, equally legal.
  spec.flash_k = 0.25;
  EXPECT_NO_THROW(make_arrivals(spec));
}

// -------------------------------------------------------------- cluster --
TEST(Cluster, PacksGroupOntoOneNodeWhenItFits) {
  ClusterCapacity cluster({4, 10000});
  const auto placed = cluster.place_group(5, 2000);
  ASSERT_EQ(placed.size(), 5u);
  for (int node : placed) EXPECT_EQ(node, placed[0]);
  EXPECT_DOUBLE_EQ(ClusterCapacity::mean_coresidency(placed), 5.0);
  EXPECT_EQ(cluster.used_mc(placed[0]), 10000);
}

TEST(Cluster, SpillsToSecondNodeAtCapacity) {
  ClusterCapacity cluster({4, 10000});
  const auto placed = cluster.place_group(7, 2000);
  // 5 pods fill a node, 2 spill: coresidency (5*5 + 2*2) / 7.
  EXPECT_NEAR(ClusterCapacity::mean_coresidency(placed), 29.0 / 7.0, 1e-12);
  EXPECT_EQ(cluster.overcommitted_pods(), 0);
}

TEST(Cluster, SeparateGroupsAvoidEachOther) {
  ClusterCapacity cluster({4, 10000});
  const auto a = cluster.place_group(2, 3000);
  const auto b = cluster.place_group(2, 3000);
  // Group b fits on an empty node, so it does not share with group a.
  EXPECT_NE(a[0], b[0]);
}

TEST(Cluster, OvercommitsLeastUsedNodeWhenSaturated) {
  ClusterCapacity cluster({2, 4000});
  cluster.place_group(2, 4000);  // both nodes full
  const auto placed = cluster.place_group(1, 4000);
  ASSERT_EQ(placed.size(), 1u);
  EXPECT_EQ(cluster.overcommitted_pods(), 1);
  EXPECT_GT(cluster.utilization(), 1.0);
}

TEST(Cluster, ValidationAndAccessors) {
  EXPECT_THROW(ClusterCapacity({0, 1000}), std::invalid_argument);
  EXPECT_THROW(ClusterCapacity({2, 0}), std::invalid_argument);
  ClusterCapacity cluster({2, 1000});
  EXPECT_THROW(cluster.place_group(1, 0), std::invalid_argument);
  EXPECT_THROW(cluster.used_mc(9), std::invalid_argument);
  EXPECT_DOUBLE_EQ(cluster.utilization(), 0.0);
}

TEST(Cluster, EmptyPlacementsAreWellDefined) {
  // Regression: an empty assignment has no co-resident pods (0, not the
  // old 1.0), and zero-pod placements are legal — callers no longer have
  // to special-case idle stages.
  EXPECT_DOUBLE_EQ(ClusterCapacity::mean_coresidency({}), 0.0);
  ClusterCapacity cluster({2, 1000});
  EXPECT_TRUE(cluster.place_group(0, 500).empty());
  // A zero-pod group does not even need a pod size.
  EXPECT_TRUE(cluster.place_group(0, 0).empty());
  EXPECT_DOUBLE_EQ(cluster.utilization(), 0.0);
  EXPECT_EQ(cluster.overcommitted_pods(), 0);
  // ...but growing a sizeless group later is an error, not a free lunch.
  const int group = cluster.add_group(0, 0);
  EXPECT_THROW(cluster.resize_group(group, 2), std::invalid_argument);
}

TEST(Cluster, FailNodeRepacksDisplacedPods) {
  ClusterCapacity cluster({3, 10000});
  const int a = cluster.add_group(5, 2000);  // fills node 0
  const int b = cluster.add_group(2, 3000);  // node 1
  const int victim = cluster.assignment(a)[0];
  const auto out = cluster.fail_node(victim);
  EXPECT_EQ(out.displaced, 5);
  EXPECT_EQ(out.stranded, 0);
  EXPECT_EQ(cluster.nodes(), 2);
  EXPECT_EQ(cluster.stranded_pods(), 0);
  // All five pods survived the failure; the surviving assignments were
  // renumbered, so every index is a valid node again.
  ASSERT_EQ(cluster.assignment(a).size(), 5u);
  for (int node : cluster.assignment(a)) {
    ASSERT_GE(node, 0);
    ASSERT_LT(node, 2);
  }
  ASSERT_EQ(cluster.assignment(b).size(), 2u);
  // Same call sequence, same outcome: determinism of the re-pack.
  ClusterCapacity replay({3, 10000});
  const int ra = replay.add_group(5, 2000);
  replay.add_group(2, 3000);
  replay.fail_node(victim);
  EXPECT_EQ(replay.assignment(ra), cluster.assignment(a));
}

TEST(Cluster, FailNodeWithOnlyZeroPodGroupsIsPlainRetirement) {
  ClusterCapacity cluster({2, 1000});
  cluster.add_group(0, 0);  // group exists, hosts nothing anywhere
  const auto out = cluster.fail_node(1);
  EXPECT_EQ(out.displaced, 0);
  EXPECT_EQ(out.stranded, 0);
  EXPECT_EQ(cluster.nodes(), 1);
  EXPECT_EQ(cluster.stranded_pods(), 0);
}

TEST(Cluster, FailLastNodeStrandsInsteadOfAsserting) {
  ClusterCapacity cluster({1, 10000});
  const int group = cluster.add_group(3, 2000);
  const auto out = cluster.fail_node(0);
  EXPECT_EQ(out.displaced, 0);  // nowhere to re-pack
  EXPECT_EQ(out.stranded, 3);
  EXPECT_EQ(cluster.nodes(), 0);
  EXPECT_EQ(cluster.stranded_pods(), 3);
  EXPECT_TRUE(cluster.assignment(group).empty());
  // Utilization of a nodeless cluster is defined (0), not a divide-by-zero.
  EXPECT_DOUBLE_EQ(cluster.utilization(), 0.0);
  // Growing a group with no nodes left strands the new pods too.
  cluster.resize_group(group, 2);
  EXPECT_TRUE(cluster.assignment(group).empty());
  EXPECT_EQ(cluster.stranded_pods(), 5);
  EXPECT_THROW(cluster.fail_node(0), std::invalid_argument);
}

TEST(Cluster, ResizeGroupGrowsAndShrinks) {
  ClusterCapacity cluster({4, 10000});
  const int group = cluster.add_group(5, 2000);  // exactly one full node
  EXPECT_DOUBLE_EQ(cluster.group_coresidency(group), 5.0);
  cluster.resize_group(group, 7);  // two pods spill to a second node
  EXPECT_NEAR(cluster.group_coresidency(group), 29.0 / 7.0, 1e-12);
  cluster.resize_group(group, 5);  // spills unwind before the packed core
  EXPECT_DOUBLE_EQ(cluster.group_coresidency(group), 5.0);
  EXPECT_EQ(cluster.used_mc(cluster.assignment(group)[0]), 10000);
  cluster.resize_group(group, 0);
  EXPECT_TRUE(cluster.assignment(group).empty());
  EXPECT_DOUBLE_EQ(cluster.utilization(), 0.0);
  cluster.resize_group(group, 3);  // regrow from empty
  EXPECT_DOUBLE_EQ(cluster.group_coresidency(group), 3.0);
}

TEST(Cluster, AutoscaleOrdersNodesWithLatency) {
  ClusterCapacity cluster({2, 10000});
  cluster.add_group(9, 2000);  // 18000 / 20000 = 90% allocated
  AutoscaleConfig cfg;
  cfg.enabled = true;
  cfg.scale_out_latency_epochs = 2;
  cfg.max_step_nodes = 8;
  // Step 1: over the band -> order the deficit (want ceil(18/7) = 3 nodes).
  ClusterCapacity::ScaleEvent ev = cluster.autoscale_step(cfg);
  EXPECT_EQ(ev.ordered, 1);
  EXPECT_EQ(ev.added, 0);
  EXPECT_EQ(cluster.nodes(), 2);
  EXPECT_EQ(cluster.pending_nodes(), 1);
  // Step 2: order still in flight; the pending node stops a double-buy.
  ev = cluster.autoscale_step(cfg);
  EXPECT_EQ(ev.ordered, 0);
  EXPECT_EQ(ev.added, 0);
  // Step 3: the order matures — scale-out latency paid in full.
  ev = cluster.autoscale_step(cfg);
  EXPECT_EQ(ev.added, 1);
  EXPECT_EQ(cluster.nodes(), 3);
  EXPECT_EQ(cluster.pending_nodes(), 0);
}

TEST(Cluster, AutoscaleZeroLatencyAddsImmediately) {
  ClusterCapacity cluster({1, 10000});
  cluster.add_group(4, 2000);  // 80%
  AutoscaleConfig cfg;
  cfg.enabled = true;
  cfg.scale_out_latency_epochs = 0;
  const auto ev = cluster.autoscale_step(cfg);
  EXPECT_EQ(ev.ordered, 0);
  EXPECT_EQ(ev.added, 1);
  EXPECT_EQ(cluster.nodes(), 2);
}

TEST(Cluster, ScaleInRepacksDisplacedGroupsDeterministically) {
  const auto run_once = [] {
    ClusterCapacity cluster({4, 10000});
    std::vector<int> groups;
    for (int g = 0; g < 4; ++g) groups.push_back(cluster.add_group(1, 1000));
    AutoscaleConfig cfg;
    cfg.enabled = true;  // 4000 / 40000 = 10% -> deep below the band
    const auto ev = cluster.autoscale_step(cfg);
    std::vector<std::vector<int>> assignments;
    for (int g : groups) assignments.push_back(cluster.assignment(g));
    return std::make_tuple(ev.removed, ev.displaced_pods, cluster.nodes(),
                           assignments);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // deterministic: same victims, same repacking
  EXPECT_GT(std::get<0>(a), 0);
  EXPECT_GT(std::get<1>(a), 0);  // occupied nodes went away -> pods moved
  // Every group still has its pod, on a surviving node.
  for (const auto& assignment : std::get<3>(a)) {
    ASSERT_EQ(assignment.size(), 1u);
    EXPECT_LT(assignment[0], std::get<2>(a));
    EXPECT_GE(assignment[0], 0);
  }
  // Scale-in respects the floor and the utilization band.
  EXPECT_GE(std::get<2>(a), 1);
}

// ---------------------------------------------------------------- fleet --
FleetConfig small_fleet(int shards) {
  FleetConfig config;
  config.tenants = make_tenant_mix(5, 150, 8.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/true);
  config.shards = shards;
  config.seed = 99;
  return config;
}

TEST(Fleet, BitIdenticalAcrossShardCounts) {
  const FleetResult one = run_fleet(small_fleet(1));
  for (int shards : {2, 3, 8}) {
    const FleetResult many = run_fleet(small_fleet(shards));
    ASSERT_EQ(many.tenants.size(), one.tenants.size());
    for (std::size_t t = 0; t < one.tenants.size(); ++t) {
      EXPECT_EQ(one.tenants[t].e2e.sorted_samples(),
                many.tenants[t].e2e.sorted_samples())
          << "tenant " << t << " at " << shards << " shards";
      EXPECT_DOUBLE_EQ(one.tenants[t].violation_rate,
                       many.tenants[t].violation_rate);
      EXPECT_DOUBLE_EQ(one.tenants[t].mean_cpu_mc,
                       many.tenants[t].mean_cpu_mc);
    }
    EXPECT_EQ(one.fleet_e2e.sorted_samples(), many.fleet_e2e.sorted_samples());
    EXPECT_DOUBLE_EQ(one.fleet_p99, many.fleet_p99);
    EXPECT_DOUBLE_EQ(one.fleet_violation_rate, many.fleet_violation_rate);
    EXPECT_DOUBLE_EQ(one.fleet_mean_cpu_mc, many.fleet_mean_cpu_mc);
    for (std::size_t i = 0; i < one.fleet_hist.bins(); ++i) {
      EXPECT_EQ(one.fleet_hist.bin_count(i), many.fleet_hist.bin_count(i));
    }
  }
}

TEST(Fleet, AggregatesAcrossTenants) {
  const FleetResult result = run_fleet(small_fleet(2));
  ASSERT_EQ(result.tenants.size(), 5u);
  EXPECT_EQ(result.total_requests, 5u * 150u);
  EXPECT_EQ(result.fleet_e2e.size(), result.total_requests);
  EXPECT_EQ(result.fleet_hist.total(), result.total_requests);
  std::size_t expected_violations = 0;
  for (const auto& tr : result.tenants) {
    EXPECT_EQ(tr.requests, 150);
    EXPECT_GE(tr.coresidency, 1.0);
    expected_violations += static_cast<std::size_t>(
        std::lround(tr.violation_rate * tr.requests));
  }
  EXPECT_NEAR(result.fleet_violation_rate,
              static_cast<double>(expected_violations) /
                  static_cast<double>(result.total_requests),
              1e-9);
  // The merged distribution brackets every tenant's percentiles.
  for (const auto& tr : result.tenants) {
    EXPECT_GE(result.fleet_e2e.max(), tr.e2e.max());
    EXPECT_LE(result.fleet_e2e.min(), tr.e2e.min());
  }
}

TEST(Fleet, ContentionRaisesLatencyForHeavyTenants) {
  // Same workload at 10x the arrival rate packs ~10x the pods, so the
  // cluster feedback must slow the heavy tenant down.
  FleetConfig config;
  TenantSpec light;
  light.workload = "ia";
  light.requests = 150;
  light.arrivals.rate = 1.0;
  TenantSpec heavy = light;
  heavy.arrivals.rate = 40.0;
  config.tenants = {light, heavy};
  config.seed = 7;
  const FleetResult result = run_fleet(config);
  EXPECT_GT(result.tenants[1].coresidency, result.tenants[0].coresidency);
  EXPECT_GT(result.tenants[1].e2e_p50, result.tenants[0].e2e_p50);
}

TEST(Fleet, JsonContainsFleetAndTenantRows) {
  FleetConfig config = small_fleet(2);
  config.tenants[1].name = "tenant \"b\"";  // names are free-form: escape
  const FleetResult result = run_fleet(config);
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"ia-0\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant \\\"b\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"violation_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\": 2"), std::string::npos);
}

TEST(Fleet, RejectsBadConfig) {
  FleetConfig empty;
  EXPECT_THROW(run_fleet(empty), std::invalid_argument);
  FleetConfig bad = small_fleet(0);
  EXPECT_THROW(run_fleet(bad), std::invalid_argument);
  FleetConfig unknown = small_fleet(1);
  unknown.tenants[0].workload = "nope";
  EXPECT_THROW(run_fleet(unknown), std::invalid_argument);
  // The fleet is open-loop only: a zero-rate (or otherwise invalid)
  // arrival spec must fail up front, not degrade to a closed loop.
  FleetConfig stalled = small_fleet(1);
  stalled.tenants[0].arrivals.rate = 0.0;
  EXPECT_THROW(run_fleet(stalled), std::invalid_argument);
  FleetConfig dwell = small_fleet(1);
  dwell.tenants[0].arrivals.kind = ArrivalKind::Mmpp;
  dwell.tenants[0].arrivals.base_dwell_s = 0.0;
  dwell.tenants[0].arrivals.burst_dwell_s = 0.0;
  dwell.tenants[0].arrivals.burst_rate = 1e9;  // keep burst >= base valid
  EXPECT_THROW(run_fleet(dwell), std::invalid_argument);
}

// ------------------------------------------------------- control plane --
FleetConfig epoch_fleet(int shards) {
  FleetConfig config = small_fleet(shards);
  config.epoch_s = 5.0;  // ~150 reqs at ~8/s => several barriers per run
  config.cluster.nodes = 6;
  config.autoscale.enabled = true;
  config.autoscale.scale_out_latency_epochs = 1;
  return config;
}

TEST(Fleet, EpochFeedbackBitIdenticalAcrossShards) {
  const FleetResult one = run_fleet(epoch_fleet(1));
  ASSERT_GT(one.epochs, 1);  // the control loop actually ran
  for (int shards : {2, 4, 8}) {
    const FleetResult many = run_fleet(epoch_fleet(shards));
    for (std::size_t t = 0; t < one.tenants.size(); ++t) {
      EXPECT_EQ(one.tenants[t].e2e.sorted_samples(),
                many.tenants[t].e2e.sorted_samples())
          << "tenant " << t << " at " << shards << " shards";
      EXPECT_DOUBLE_EQ(one.tenants[t].coresidency,
                       many.tenants[t].coresidency);
    }
    EXPECT_EQ(one.fleet_e2e.sorted_samples(), many.fleet_e2e.sorted_samples());
    EXPECT_DOUBLE_EQ(one.fleet_p99, many.fleet_p99);
    EXPECT_DOUBLE_EQ(one.fleet_violation_rate, many.fleet_violation_rate);
    // The merged epoch state is a pure function of (epoch, seed, tenants):
    // the whole audit trail must match bit-for-bit, not just the metrics.
    ASSERT_EQ(one.epoch_log.size(), many.epoch_log.size());
    for (std::size_t e = 0; e < one.epoch_log.size(); ++e) {
      const EpochSnapshot& x = one.epoch_log[e];
      const EpochSnapshot& y = many.epoch_log[e];
      EXPECT_DOUBLE_EQ(x.sim_time, y.sim_time);
      EXPECT_EQ(x.nodes, y.nodes);
      EXPECT_EQ(x.pending_nodes, y.pending_nodes);
      EXPECT_DOUBLE_EQ(x.utilization, y.utilization);
      EXPECT_EQ(x.nodes_ordered, y.nodes_ordered);
      EXPECT_EQ(x.nodes_added, y.nodes_added);
      EXPECT_EQ(x.nodes_removed, y.nodes_removed);
      EXPECT_EQ(x.groups_resized, y.groups_resized);
      EXPECT_EQ(x.displaced_pods, y.displaced_pods);
    }
    EXPECT_EQ(one.final_nodes, many.final_nodes);
    EXPECT_EQ(one.nodes_added, many.nodes_added);
    EXPECT_EQ(one.nodes_removed, many.nodes_removed);
  }
}

TEST(Fleet, EpochInfinityMatchesStaticPlanPipeline) {
  // Differential check of the refactor: with epoch_s = kNoEpochs (the
  // default), run_fleet must reproduce the pre-control-plane plan-once
  // pipeline bit-for-bit.  Replicate that pipeline by hand — Little's-law
  // pods, one-shot bin-packing, frozen StaticCoLocation — and compare
  // every request sample.
  const FleetConfig config = small_fleet(1);
  const FleetResult fleet = run_fleet(config);
  EXPECT_EQ(fleet.epochs, 0);
  EXPECT_TRUE(fleet.epoch_log.empty());

  ClusterCapacity cluster(config.cluster);
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    const TenantSpec& spec = config.tenants[t];
    const WorkloadSpec workload = workload_by_name(spec.workload);
    const auto models = workload.chain_models();

    RunConfig rc;
    rc.slo = spec.slo > 0.0 ? spec.slo : workload.slo(spec.concurrency);
    rc.concurrency = spec.concurrency;
    rc.requests = spec.requests;
    // The per-tenant seed derivation run_fleet documents: fleet seed and
    // tenant index only.
    rc.seed = SplitMix64(config.seed ^
                         (0x9e3779b97f4a7c15ULL * (t + 1)))
                  .next();
    rc.open_loop_rate = spec.arrivals.rate;
    rc.arrivals = spec.arrivals;
    rc.platform = config.platform;
    rc.colocation_is_default = false;

    const double rate = spec.arrivals.mean_rate();
    std::vector<CoLocationDistribution> per_stage;
    double coresidency_sum = 0.0;
    for (const auto& model : models) {
      const Seconds stage_s =
          model.exec_time(spec.size_mc, spec.concurrency, 1.0, 1.0);
      const int pods =
          std::max(1, static_cast<int>(std::ceil(rate * stage_s)));
      const auto placed = cluster.place_group(pods, spec.size_mc);
      const double co = ClusterCapacity::mean_coresidency(placed);
      coresidency_sum += co;
      per_stage.push_back(CoLocationDistribution::concentrated(co));
    }
    const StaticCoLocation provider(per_stage);
    rc.colocation_provider = &provider;

    SimEngine engine;
    PlatformConfig pc = rc.platform;
    pc.seed = rc.seed ^ 0x9e3779b97f4a7c15ULL;
    Platform platform(engine, pc, models, rc.interference);
    FixedSizingPolicy policy(
        "fixed", std::vector<Millicores>(models.size(), spec.size_mc));
    RunResult out;
    serve_workload(engine, platform, workload, policy, rc, out);
    engine.run();

    EXPECT_EQ(fleet.tenants[t].e2e.sorted_samples(),
              out.e2e_distribution().sorted_samples())
        << "tenant " << t;
    EXPECT_DOUBLE_EQ(fleet.tenants[t].violation_rate, out.violation_rate());
    EXPECT_DOUBLE_EQ(fleet.tenants[t].mean_cpu_mc, out.mean_cpu());
    EXPECT_DOUBLE_EQ(
        fleet.tenants[t].coresidency,
        coresidency_sum / static_cast<double>(models.size()));
  }
}

TEST(Fleet, EpochFeedbackShiftsInterferenceDraws) {
  // A finite epoch closes the loop: observed pod counts replace the plan
  // estimates, so the draws — and the metrics — must actually move.
  const FleetResult frozen = run_fleet(small_fleet(2));
  FleetConfig live = small_fleet(2);
  live.epoch_s = 5.0;
  const FleetResult fed = run_fleet(live);
  ASSERT_GT(fed.epochs, 0);
  EXPECT_NE(frozen.fleet_e2e.sorted_samples(), fed.fleet_e2e.sorted_samples());
  // Same request count either way: the control plane reshapes latency,
  // never loses traffic.
  EXPECT_EQ(frozen.total_requests, fed.total_requests);
}

TEST(Fleet, AutoscaleGrowsUnderLoadAndAccountsNodes) {
  FleetConfig config;
  config.tenants = make_tenant_mix(4, 400, 30.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/false);
  config.seed = 11;
  config.shards = 2;
  config.cluster.nodes = 2;  // deliberately undersized
  config.epoch_s = 3.0;
  config.autoscale.enabled = true;
  config.autoscale.scale_out_latency_epochs = 1;
  const FleetResult result = run_fleet(config);
  ASSERT_GT(result.epochs, 0);
  EXPECT_GT(result.nodes_added, 0);
  EXPECT_EQ(result.final_nodes,
            2 + result.nodes_added - result.nodes_removed);
  // The audit trail carries the scale-out: some epoch ordered nodes.
  bool ordered = false;
  for (const auto& snap : result.epoch_log) {
    ordered = ordered || snap.nodes_ordered > 0 || snap.nodes_added > 0;
  }
  EXPECT_TRUE(ordered);
}

TEST(Fleet, TraceTenantsReplayThroughTheFleet) {
  FleetConfig config = small_fleet(2);
  for (auto& tenant : config.tenants) {
    tenant.arrivals.kind = ArrivalKind::Trace;
    tenant.arrivals.trace_gaps = synthesize_interarrivals(
        256, tenant.arrivals.rate, config.seed);
  }
  const FleetResult a = run_fleet(config);
  EXPECT_EQ(a.total_requests, 5u * 150u);
  for (const auto& tenant : a.tenants) {
    EXPECT_EQ(tenant.arrivals, ArrivalKind::Trace);
  }
  // Shard-count invariance holds for replayed traces too.
  config.shards = 3;
  const FleetResult b = run_fleet(config);
  EXPECT_EQ(a.fleet_e2e.sorted_samples(), b.fleet_e2e.sorted_samples());
}

TEST(Fleet, TenantMixIsHeterogeneous) {
  const auto mix =
      make_tenant_mix(8, 100, 10.0, ArrivalKind::Poisson, /*mixed=*/true);
  ASSERT_EQ(mix.size(), 8u);
  bool saw_va = false, saw_mmpp = false, saw_diurnal = false;
  for (const auto& t : mix) {
    saw_va = saw_va || t.workload == "va";
    saw_mmpp = saw_mmpp || t.arrivals.kind == ArrivalKind::Mmpp;
    saw_diurnal = saw_diurnal || t.arrivals.kind == ArrivalKind::Diurnal;
  }
  EXPECT_TRUE(saw_va);
  EXPECT_TRUE(saw_mmpp);
  EXPECT_TRUE(saw_diurnal);
  EXPECT_NE(mix[0].arrivals.rate, mix[1].arrivals.rate);
}

// ------------------------------------------------------ sizing policies --

/// Fleet-test-grade synthesis: small enough that every policy-mix test
/// stays in the tens of milliseconds, deterministic like any other config.
PolicyCatalogConfig tiny_catalog_config() {
  PolicyCatalogConfig cfg;
  cfg.profile_samples = 300;
  cfg.budget_step = 10;
  return cfg;
}

/// Adversarial mixed-policy fleet under the live control plane: every
/// policy family present, two tenants additionally reacting to the epoch
/// feed through the contention decorator.
FleetConfig policy_mix_fleet(int shards) {
  FleetConfig config;
  config.tenants = make_tenant_mix(
      6, 120, 8.0, ArrivalKind::Poisson, /*mixed_kinds=*/true,
      {"janus", "orion", "mean_based", "fixed", "optimal", "grandslam+"});
  config.tenants[0].contention_alpha = 0.3;
  config.tenants[3].contention_alpha = 0.3;
  config.shards = shards;
  config.seed = 77;
  config.epoch_s = 5.0;
  config.cluster.nodes = 6;
  config.autoscale.enabled = true;
  config.policy_catalog = tiny_catalog_config();
  return config;
}

TEST(FleetPolicies, NameRegistryIsClosed) {
  for (const auto& name : fleet_policy_names()) {
    EXPECT_TRUE(is_fleet_policy(name)) << name;
  }
  EXPECT_FALSE(is_fleet_policy("Janus"));  // names are exact, no fuzz
  EXPECT_FALSE(is_fleet_policy(""));
  EXPECT_FALSE(is_fleet_policy("grandslam++"));
  // The error-message list names every policy exactly once.
  const std::string list = fleet_policy_list();
  for (const auto& name : fleet_policy_names()) {
    EXPECT_NE(list.find(name), std::string::npos) << name;
  }
}

TEST(FleetPolicies, UnknownPolicyRejectedUpFront) {
  FleetConfig config = small_fleet(1);
  config.tenants[0].policy = "nope";
  try {
    run_fleet(config);
    FAIL() << "unknown policy must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope"), std::string::npos);
    EXPECT_NE(what.find("valid:"), std::string::npos);
    EXPECT_NE(what.find("janus"), std::string::npos);
  }
  // make_tenant_mix validates the round-robin list the same way.
  EXPECT_THROW(make_tenant_mix(2, 10, 1.0, ArrivalKind::Poisson, false,
                               {"janus", "bogus"}),
               std::invalid_argument);
}

TEST(FleetPolicies, MixBitIdenticalAcrossShardCountsAndReruns) {
  const FleetResult one = run_fleet(policy_mix_fleet(1));
  ASSERT_GT(one.epochs, 1);  // the live control plane actually ran
  const FleetResult again = run_fleet(policy_mix_fleet(1));
  EXPECT_EQ(one.fleet_e2e.sorted_samples(), again.fleet_e2e.sorted_samples());
  for (int shards : {2, 4, 8}) {
    const FleetResult many = run_fleet(policy_mix_fleet(shards));
    ASSERT_EQ(many.tenants.size(), one.tenants.size());
    for (std::size_t t = 0; t < one.tenants.size(); ++t) {
      EXPECT_EQ(one.tenants[t].e2e.sorted_samples(),
                many.tenants[t].e2e.sorted_samples())
          << one.tenants[t].policy << " tenant " << t << " at " << shards
          << " shards";
      EXPECT_DOUBLE_EQ(one.tenants[t].mean_cpu_mc, many.tenants[t].mean_cpu_mc);
      EXPECT_DOUBLE_EQ(one.tenants[t].violation_rate,
                       many.tenants[t].violation_rate);
    }
    EXPECT_EQ(one.fleet_e2e.sorted_samples(), many.fleet_e2e.sorted_samples());
    EXPECT_DOUBLE_EQ(one.fleet_p99, many.fleet_p99);
    // The epoch audit trail is part of the bit-identical set.
    ASSERT_EQ(one.epoch_log.size(), many.epoch_log.size());
    for (std::size_t e = 0; e < one.epoch_log.size(); ++e) {
      EXPECT_EQ(one.epoch_log[e].nodes, many.epoch_log[e].nodes);
      EXPECT_EQ(one.epoch_log[e].groups_resized,
                many.epoch_log[e].groups_resized);
      EXPECT_EQ(one.epoch_log[e].displaced_pods,
                many.epoch_log[e].displaced_pods);
      EXPECT_DOUBLE_EQ(one.epoch_log[e].utilization,
                       many.epoch_log[e].utilization);
    }
  }
}

TEST(FleetPolicies, CatalogSynthesizesOncePerWorkloadPolicy) {
  PolicyCatalog catalog(tiny_catalog_config());
  FleetConfig config = policy_mix_fleet(2);
  config.catalog = &catalog;
  (void)run_fleet(config);
  const PolicyCatalogStats after_first = catalog.stats();
  // Two workloads in the mix, each profiled exactly once.
  EXPECT_EQ(after_first.profiles_built, 2);
  EXPECT_GE(after_first.bundles_built, 1);
  // A second run — any shard count — reuses every artifact.
  config.shards = 4;
  (void)run_fleet(config);
  EXPECT_EQ(catalog.stats().profiles_built, after_first.profiles_built);
  EXPECT_EQ(catalog.stats().bundles_built, after_first.bundles_built);
  EXPECT_EQ(catalog.stats().orion_solved, after_first.orion_solved);
  // Shared read-only bundles: same immutable object for the same key.
  const WorkloadSpec ia = make_ia();
  EXPECT_EQ(catalog.bundle(ia, 1, Exploration::HeadOnly).get(),
            catalog.bundle(ia, 1, Exploration::HeadOnly).get());
}

TEST(FleetPolicies, PolicyChangesTenantBehavior) {
  // Same fleet, one tenant flipped fixed -> janus: that tenant's CPU
  // profile must change (the policy is actually consulted), everyone
  // else's randomness must not shift.
  FleetConfig fixed_fleet = small_fleet(2);
  fixed_fleet.policy_catalog = tiny_catalog_config();
  FleetConfig janus_fleet = fixed_fleet;
  janus_fleet.tenants[0].policy = "janus";
  const FleetResult a = run_fleet(fixed_fleet);
  const FleetResult b = run_fleet(janus_fleet);
  EXPECT_NE(a.tenants[0].mean_cpu_mc, b.tenants[0].mean_cpu_mc);
  EXPECT_EQ(b.tenants[0].policy, "janus");
}

TEST(FleetPolicies, PlanSizesFollowThePolicy) {
  PolicyCatalog catalog(tiny_catalog_config());
  const WorkloadSpec ia = make_ia();
  const std::size_t stages = ia.chain_models().size();
  const auto fixed = catalog.plan_sizes("fixed", ia, 3.0, 1, 1700);
  EXPECT_EQ(fixed, std::vector<Millicores>(stages, 1700));
  // Early binding: the plan is the allocation itself.
  const auto orion = catalog.plan_sizes("orion", ia, 3.0, 1, 1700);
  ASSERT_EQ(orion.size(), stages);
  for (Millicores k : orion) {
    EXPECT_GE(k, kDefaultKmin);
    EXPECT_LE(k, kDefaultKmax);
  }
  // Late binding: deterministic, on the grid, and repeatable.
  const auto janus = catalog.plan_sizes("janus", ia, 3.0, 1, 1700);
  EXPECT_EQ(janus, catalog.plan_sizes("janus", ia, 3.0, 1, 1700));
  ASSERT_EQ(janus.size(), stages);
  EXPECT_THROW(catalog.plan_sizes("nope", ia, 3.0, 1, 1700),
               std::invalid_argument);
}

TEST(FleetPolicies, ContentionAwareScalesWithCoresidency) {
  auto base = [] {
    return std::make_unique<FixedSizingPolicy>(
        "fixed", std::vector<Millicores>{2000, 2000});
  };
  const RequestDraw draw;  // fixed policies ignore the draw
  EpochFeed calm(2, /*live=*/true);
  calm.set_stage(0, CoLocationDistribution::concentrated(1.0));
  calm.set_stage(1, CoLocationDistribution::concentrated(1.0));
  ContentionAwarePolicy alone(base(), calm, 0.5);
  EXPECT_EQ(alone.size_for_stage(0, 0.0, draw), 2000);  // no contention

  EpochFeed packed(2, /*live=*/true);
  packed.set_stage(0, CoLocationDistribution::concentrated(3.0));
  packed.set_stage(1, CoLocationDistribution::concentrated(6.0));
  ContentionAwarePolicy scaled(base(), packed, 0.5);
  // 2000 * (1 + 0.5 * 2) = 4000, clamped to Kmax.
  EXPECT_EQ(scaled.size_for_stage(0, 0.0, draw), 3000);
  EXPECT_EQ(scaled.size_for_stage(1, 0.0, draw), 3000);
  ContentionAwarePolicy gentle(base(), packed, 0.1);
  // 2000 * (1 + 0.1 * 2) = 2400: proportional, not saturated.
  EXPECT_EQ(gentle.size_for_stage(0, 0.0, draw), 2400);
  // A base already past kmax is never shrunk — zero contention must be a
  // no-op for any base allocation.
  auto big = std::make_unique<FixedSizingPolicy>(
      "fixed", std::vector<Millicores>{4000, 4000});
  ContentionAwarePolicy oversized(std::move(big), calm, 0.1);
  EXPECT_EQ(oversized.size_for_stage(0, 0.0, draw), 4000);
  EXPECT_TRUE(gentle.late_binding());
  EXPECT_EQ(gentle.name(), "fixed");  // reporting keeps the base name
  EXPECT_THROW(ContentionAwarePolicy(nullptr, packed, 0.5),
               std::invalid_argument);
  EXPECT_THROW(ContentionAwarePolicy(base(), packed, -0.1),
               std::invalid_argument);
}

// ------------------------------------------------- process sharding --
void expect_fleet_equal(const FleetResult& one, const FleetResult& many) {
  ASSERT_EQ(many.tenants.size(), one.tenants.size());
  for (std::size_t t = 0; t < one.tenants.size(); ++t) {
    EXPECT_EQ(one.tenants[t].e2e.sorted_samples(),
              many.tenants[t].e2e.sorted_samples())
        << "tenant " << t;
    EXPECT_DOUBLE_EQ(one.tenants[t].violation_rate,
                     many.tenants[t].violation_rate);
    EXPECT_DOUBLE_EQ(one.tenants[t].mean_cpu_mc, many.tenants[t].mean_cpu_mc);
    EXPECT_DOUBLE_EQ(one.tenants[t].coresidency, many.tenants[t].coresidency);
  }
  EXPECT_EQ(one.fleet_e2e.sorted_samples(), many.fleet_e2e.sorted_samples());
  EXPECT_DOUBLE_EQ(one.fleet_p99, many.fleet_p99);
  EXPECT_DOUBLE_EQ(one.fleet_violation_rate, many.fleet_violation_rate);
  EXPECT_DOUBLE_EQ(one.fleet_mean_cpu_mc, many.fleet_mean_cpu_mc);
  EXPECT_EQ(one.obs.events_executed, many.obs.events_executed);
  EXPECT_EQ(one.obs.counters.invocations, many.obs.counters.invocations);
  EXPECT_EQ(one.obs.counters.cold_starts, many.obs.counters.cold_starts);
  EXPECT_EQ(one.epochs, many.epochs);
  EXPECT_EQ(one.final_nodes, many.final_nodes);
  EXPECT_EQ(one.nodes_added, many.nodes_added);
  ASSERT_EQ(one.epoch_log.size(), many.epoch_log.size());
  for (std::size_t e = 0; e < one.epoch_log.size(); ++e) {
    EXPECT_EQ(one.epoch_log[e].nodes, many.epoch_log[e].nodes);
    EXPECT_EQ(one.epoch_log[e].groups_resized,
              many.epoch_log[e].groups_resized);
    EXPECT_DOUBLE_EQ(one.epoch_log[e].utilization,
                     many.epoch_log[e].utilization);
  }
  ASSERT_EQ(one.obs.timeline.size(), many.obs.timeline.size());
  for (std::size_t i = 0; i < one.obs.timeline.size(); ++i) {
    EXPECT_EQ(one.obs.timeline[i].tenant, many.obs.timeline[i].tenant);
    EXPECT_EQ(one.obs.timeline[i].epoch, many.obs.timeline[i].epoch);
    EXPECT_EQ(one.obs.timeline[i].stage, many.obs.timeline[i].stage);
    EXPECT_EQ(one.obs.timeline[i].observed_peak_busy,
              many.obs.timeline[i].observed_peak_busy);
    EXPECT_EQ(one.obs.timeline[i].allocated_pods,
              many.obs.timeline[i].allocated_pods);
    EXPECT_EQ(one.obs.timeline[i].completed, many.obs.timeline[i].completed);
    EXPECT_EQ(one.obs.timeline[i].violations,
              many.obs.timeline[i].violations);
  }
}

TEST(Fleet, MultiProcessBitIdenticalStaticAndLive) {
  // Forked workers own tenant slices; the merged result must carry the
  // same bits as the in-process run — on the static path (no barriers)
  // and on the live path (pipe-coordinated barriers, every worker
  // reconciling the identical observation matrix).
  for (const bool live : {false, true}) {
    FleetConfig config = small_fleet(2);
    if (live) {
      config.epoch_s = 5.0;
      config.autoscale.enabled = true;
      config.obs.timeline = true;
    }
    const FleetResult one = run_fleet(config);
    for (int processes : {2, 3, 5}) {
      config.processes = processes;
      const FleetResult many = run_fleet(config);
      EXPECT_EQ(many.processes, processes);
      expect_fleet_equal(one, many);
    }
  }
}

TEST(Fleet, SliceWorkersAndMergeMatchWholeRun) {
  // File-based sharding: independent run_fleet_slice calls (each plans
  // the whole fleet, simulates a slice), blobs through the codec, one
  // merge — bit-identical to run_fleet.
  const FleetConfig config = small_fleet(2);
  const FleetResult whole = run_fleet(config);
  std::vector<FleetSliceOutcome> slices;
  slices.push_back(decode_slice(encode_slice(run_fleet_slice(config, 0, 2))));
  slices.push_back(decode_slice(encode_slice(run_fleet_slice(config, 2, 5))));
  const FleetResult merged = merge_fleet_slices(config, std::move(slices));
  expect_fleet_equal(whole, merged);

  // Gaps, overlaps, or a foreign seed must be rejected.
  std::vector<FleetSliceOutcome> gap;
  gap.push_back(run_fleet_slice(config, 0, 2));
  gap.push_back(run_fleet_slice(config, 3, 5));
  EXPECT_THROW(merge_fleet_slices(config, std::move(gap)),
               std::invalid_argument);
  FleetConfig other = config;
  other.seed = config.seed + 1;
  std::vector<FleetSliceOutcome> foreign;
  foreign.push_back(run_fleet_slice(other, 0, 5));
  EXPECT_THROW(merge_fleet_slices(config, std::move(foreign)),
               std::invalid_argument);
  // Live barriers need the fork path's coordination channel.
  FleetConfig live = config;
  live.epoch_s = 5.0;
  EXPECT_THROW(run_fleet_slice(live, 0, 2), std::invalid_argument);
}

TEST(Fleet, StreamingMergeKeepsScalarMetricsBitIdentical) {
  // The streaming fold drops per-tenant rows and exact order statistics;
  // everything else — totals, rates, histogram, control plane, counters,
  // timeline — must match the default path exactly, at any process count.
  FleetConfig config = small_fleet(2);
  config.epoch_s = 5.0;
  config.autoscale.enabled = true;
  config.obs.timeline = true;
  const FleetResult dense = run_fleet(config);
  for (int processes : {1, 2}) {
    config.processes = processes;
    config.stream_metrics = true;
    const FleetResult lean = run_fleet(config);
    EXPECT_TRUE(lean.streamed);
    EXPECT_TRUE(lean.tenants.empty());
    EXPECT_EQ(lean.fleet_e2e.size(), 0u);
    EXPECT_EQ(lean.total_requests, dense.total_requests);
    EXPECT_DOUBLE_EQ(lean.fleet_violation_rate, dense.fleet_violation_rate);
    EXPECT_DOUBLE_EQ(lean.fleet_mean_cpu_mc, dense.fleet_mean_cpu_mc);
    ASSERT_EQ(lean.fleet_hist.bins(), dense.fleet_hist.bins());
    for (std::size_t i = 0; i < dense.fleet_hist.bins(); ++i) {
      EXPECT_EQ(lean.fleet_hist.bin_count(i), dense.fleet_hist.bin_count(i));
    }
    EXPECT_EQ(lean.obs.counters.invocations, dense.obs.counters.invocations);
    EXPECT_EQ(lean.obs.events_executed, dense.obs.events_executed);
    EXPECT_EQ(lean.epochs, dense.epochs);
    EXPECT_EQ(lean.final_nodes, dense.final_nodes);
    ASSERT_EQ(lean.epoch_log.size(), dense.epoch_log.size());
    ASSERT_EQ(lean.obs.timeline.size(), dense.obs.timeline.size());
    // Histogram-interpolated percentiles sit inside the right bin.
    EXPECT_NEAR(lean.fleet_p50, dense.fleet_p50,
                (config.hist_max_s / static_cast<double>(config.hist_bins)));
  }
}

TEST(Fleet, ProcessAndStreamValidation) {
  FleetConfig config = small_fleet(1);
  config.processes = 0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config.processes = 99;  // more processes than tenants
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config.processes = 1;
  config.stream_metrics = true;
  config.obs.trace = true;  // streaming releases the state tracing needs
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
}

TEST(FleetPolicies, CatalogLoadsCommittedHintsBundles) {
  // Cross-process hints reuse: tables written with the canonical
  // filenames load instead of synthesizing, and — because the CSV round
  // trip is exact — produce bit-identical fleet results.
  PolicyCatalog source(tiny_catalog_config());
  const WorkloadSpec ia = make_ia();
  const auto bundle = source.bundle(ia, 1, Exploration::HeadOnly);
  const std::string dir = ::testing::TempDir();
  for (std::size_t j = 0; j < bundle->suffix_tables.size(); ++j) {
    std::ofstream out(
        dir + "/" + hints_bundle_filename(ia.name, 1, Exploration::HeadOnly, j),
        std::ios::binary);
    ASSERT_TRUE(out.good());
    out << bundle->suffix_tables[j].to_csv();
  }

  PolicyCatalogConfig loading = tiny_catalog_config();
  loading.hints_dir = dir;
  PolicyCatalog loader(loading);
  const auto loaded = loader.bundle(ia, 1, Exploration::HeadOnly);
  EXPECT_EQ(loader.stats().bundles_loaded, 1);
  EXPECT_EQ(loader.stats().bundles_built, 0);
  EXPECT_EQ(loader.stats().profiles_built, 0);  // loading skips profiling
  ASSERT_EQ(loaded->suffix_tables.size(), bundle->suffix_tables.size());
  for (std::size_t j = 0; j < bundle->suffix_tables.size(); ++j) {
    EXPECT_EQ(loaded->suffix_tables[j].to_csv(),
              bundle->suffix_tables[j].to_csv());
  }

  // An all-janus IA fleet through each catalog: identical results.
  FleetConfig config;
  config.tenants = make_tenant_mix(3, 120, 8.0, ArrivalKind::Poisson, false,
                                   {"janus"});
  for (auto& tenant : config.tenants) tenant.workload = "ia";
  config.seed = 31;
  PolicyCatalog synth_cat(tiny_catalog_config());
  PolicyCatalog load_cat(loading);
  FleetConfig a = config;
  a.catalog = &synth_cat;
  FleetConfig b = config;
  b.catalog = &load_cat;
  const FleetResult synth_run = run_fleet(a);
  const FleetResult load_run = run_fleet(b);
  expect_fleet_equal(synth_run, load_run);
  EXPECT_EQ(load_cat.stats().bundles_loaded, 1);
  EXPECT_EQ(load_cat.stats().bundles_built, 0);

  // A workload with no committed tables still synthesizes (fallback).
  const WorkloadSpec va = make_va();
  (void)load_cat.bundle(va, 1, Exploration::HeadOnly);
  EXPECT_EQ(load_cat.stats().bundles_built, 1);
}

TEST(FleetPolicies, HeterogeneousPodSizesPackPerStage) {
  // Policy tenants plan different millicores per stage; the cluster must
  // keep per-group pod sizes (and the control plane must pass them
  // through).
  ControlPlane control(ClusterConfig{4, 8000},
                       ControlConfig{kNoEpochs, AutoscaleConfig{}});
  (void)control.plan_tenant({2, 1, 3}, {1000, 2500, 1500});
  const ClusterCapacity& cluster = control.cluster();
  ASSERT_EQ(cluster.group_count(), 3);
  EXPECT_EQ(cluster.group_pod_mc(0), 1000);
  EXPECT_EQ(cluster.group_pod_mc(1), 2500);
  EXPECT_EQ(cluster.group_pod_mc(2), 1500);
  EXPECT_THROW(control.plan_tenant({1, 1}, {1000}), std::invalid_argument);
  EXPECT_THROW(cluster.group_pod_mc(3), std::invalid_argument);
}

}  // namespace
}  // namespace janus
