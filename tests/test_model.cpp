// Tests for src/model: latency model shape, interference calibration,
// workload catalog dispersion, trace synthesis.
#include <gtest/gtest.h>

#include <cmath>

#include "model/function_model.hpp"
#include "model/interference.hpp"
#include "model/trace_synth.hpp"
#include "model/workloads.hpp"
#include "stats/empirical.hpp"

namespace janus {
namespace {

FunctionModel basic_model() {
  FunctionModelParams p;
  p.name = "f";
  p.serial_s = 0.1;
  p.work_s = 0.5;
  p.ws_sigma = 0.3;
  return FunctionModel(p);
}

// -------------------------------------------------------- FunctionModel --
TEST(FunctionModel, ExecTimeDecreasesWithCores) {
  const auto m = basic_model();
  double prev = 1e9;
  for (Millicores k = 1000; k <= 3000; k += 500) {
    const double t = m.exec_time(k, 1, 1.0, 1.0);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(FunctionModel, DiminishingReturnsFromSerialFraction) {
  const auto m = basic_model();
  const double gain_low = m.exec_time(1000, 1, 1.0, 1.0) -
                          m.exec_time(2000, 1, 1.0, 1.0);
  const double gain_high = m.exec_time(2000, 1, 1.0, 1.0) -
                           m.exec_time(3000, 1, 1.0, 1.0);
  EXPECT_GT(gain_low, gain_high);  // Fig 7b flattening
}

TEST(FunctionModel, ExecTimeScalesWithWorkingSet) {
  const auto m = basic_model();
  EXPECT_GT(m.exec_time(2000, 1, 2.0, 1.0), m.exec_time(2000, 1, 1.0, 1.0));
}

TEST(FunctionModel, ExecTimeScalesWithInterference) {
  const auto m = basic_model();
  EXPECT_DOUBLE_EQ(m.exec_time(1000, 1, 1.0, 2.0),
                   2.0 * m.exec_time(1000, 1, 1.0, 1.0));
}

TEST(FunctionModel, BatchGrowsSerialAndWork) {
  const auto m = basic_model();
  EXPECT_GT(m.serial(2), m.serial(1));
  EXPECT_GT(m.work(3), m.work(2));
  EXPECT_GT(m.ws_sigma(2), m.ws_sigma(1));
}

TEST(FunctionModel, WsQuantileMedianIsOne) {
  const auto m = basic_model();
  EXPECT_NEAR(m.ws_quantile(1, 0.5), 1.0, 1e-9);
  EXPECT_GT(m.ws_quantile(1, 0.99), 1.0);
  EXPECT_LT(m.ws_quantile(1, 0.01), 1.0);
}

TEST(FunctionModel, WsSampleMatchesQuantiles) {
  const auto m = basic_model();
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) xs.push_back(m.sample_ws(1, rng));
  EmpiricalDistribution d(std::move(xs));
  EXPECT_NEAR(d.percentile(50), m.ws_quantile(1, 0.5), 0.02);
  EXPECT_NEAR(d.percentile(99), m.ws_quantile(1, 0.99),
              m.ws_quantile(1, 0.99) * 0.05);
}

TEST(FunctionModel, InvalidArgsThrow) {
  const auto m = basic_model();
  EXPECT_THROW(m.exec_time(0, 1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.exec_time(1000, 1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.exec_time(1000, 1, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(m.serial(0), std::invalid_argument);
}

TEST(FunctionModel, RejectsBadParams) {
  FunctionModelParams p;
  p.work_s = 0.0;
  EXPECT_THROW(FunctionModel{p}, std::invalid_argument);
}

// --------------------------------------------------------- interference --
TEST(Interference, AloneMeansNoSlowdown) {
  const InterferenceModel m;
  EXPECT_DOUBLE_EQ(m.mean_multiplier(ResourceDim::Network, 1), 1.0);
}

TEST(Interference, Fig1cOrderingAtSixInstances) {
  // Fig 1c: network > memory > IO > CPU; peak ~8.1x.
  const InterferenceModel m;
  const double net = m.mean_multiplier(ResourceDim::Network, 6);
  const double mem = m.mean_multiplier(ResourceDim::Memory, 6);
  const double io = m.mean_multiplier(ResourceDim::Io, 6);
  const double cpu = m.mean_multiplier(ResourceDim::Cpu, 6);
  EXPECT_GT(net, mem);
  EXPECT_GT(mem, io);
  EXPECT_GT(io, cpu);
  EXPECT_NEAR(net, 8.1, 0.3);
  EXPECT_LT(cpu, 2.0);
}

TEST(Interference, SampleAtLeastOne) {
  const InterferenceModel m;
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(m.sample_multiplier(ResourceDim::Memory, 3, rng), 1.0);
  }
}

TEST(Interference, SampleMeanTracksDeterministicCurve) {
  const InterferenceModel m;
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += m.sample_multiplier(ResourceDim::Io, 4, rng);
  }
  // Lognormal jitter has mean exp(sigma^2/2) ~ 1.005; allow 3%.
  EXPECT_NEAR(sum / n, m.mean_multiplier(ResourceDim::Io, 4),
              m.mean_multiplier(ResourceDim::Io, 4) * 0.03);
}

TEST(Interference, RejectsZeroColocation) {
  const InterferenceModel m;
  EXPECT_THROW(m.mean_multiplier(ResourceDim::Cpu, 0), std::invalid_argument);
}

TEST(Interference, ToStringNames) {
  EXPECT_STREQ(to_string(ResourceDim::Cpu), "CPU");
  EXPECT_STREQ(to_string(ResourceDim::Network), "Network");
}

TEST(CoLocation, SampleWithinSupport) {
  CoLocationDistribution d;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const int n = d.sample(rng);
    EXPECT_GE(n, 1);
    EXPECT_LE(n, static_cast<int>(d.weights.size()));
  }
}

TEST(CoLocation, HigherConcurrencyPacksMore) {
  const auto c1 = CoLocationDistribution::for_concurrency(1);
  const auto c3 = CoLocationDistribution::for_concurrency(3);
  EXPECT_GT(c3.mean(), c1.mean());
}

TEST(CoLocation, MeanMatchesWeights) {
  CoLocationDistribution d;
  d.weights = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(d.mean(), 1.5);
}

TEST(CoLocation, ConcentratedHitsFractionalMean) {
  const auto d = CoLocationDistribution::concentrated(3.4);
  ASSERT_EQ(d.weights.size(), 4u);
  EXPECT_DOUBLE_EQ(d.mean(), 3.4);
  // Mass only on floor/ceil of the target.
  EXPECT_DOUBLE_EQ(d.weights[0], 0.0);
  EXPECT_DOUBLE_EQ(d.weights[1], 0.0);
  EXPECT_NEAR(d.weights[2], 0.6, 1e-12);
  EXPECT_NEAR(d.weights[3], 0.4, 1e-12);
}

TEST(CoLocation, ConcentratedIntegralAndClamped) {
  const auto exact = CoLocationDistribution::concentrated(3.0);
  ASSERT_EQ(exact.weights.size(), 3u);
  EXPECT_DOUBLE_EQ(exact.mean(), 3.0);
  const auto alone = CoLocationDistribution::concentrated(0.4);
  ASSERT_EQ(alone.weights.size(), 1u);
  EXPECT_DOUBLE_EQ(alone.mean(), 1.0);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(alone.sample(rng), 1);
}

// ------------------------------------------------------------ workloads --
TEST(Workloads, IaIsThreeFunctionChain) {
  const auto ia = make_ia();
  EXPECT_TRUE(ia.workflow.is_chain());
  EXPECT_EQ(ia.models.size(), 3u);
  EXPECT_EQ(ia.chain_models()[0].name(), "OD");
  EXPECT_EQ(ia.chain_models()[2].name(), "TS");
  EXPECT_DOUBLE_EQ(ia.slo(1), 3.0);
  EXPECT_DOUBLE_EQ(ia.slo(2), 4.0);
  EXPECT_DOUBLE_EQ(ia.slo(3), 5.0);
}

TEST(Workloads, VaNonBatchableFunctions) {
  const auto va = make_va();
  EXPECT_FALSE(va.chain_models()[0].batchable());  // FE
  EXPECT_TRUE(va.chain_models()[1].batchable());   // ICL
  EXPECT_FALSE(va.chain_models()[2].batchable());  // ICO
  EXPECT_EQ(va.max_concurrency, 1);
  EXPECT_DOUBLE_EQ(va.slo(1), 1.5);
}

TEST(Workloads, SloOutOfRangeThrows) {
  const auto va = make_va();
  EXPECT_THROW(va.slo(2), std::invalid_argument);
}

TEST(Workloads, QaDispersionMatchesPaper) {
  // QA P99/P50 = 2.17 at conc 1 and ~2.32 at conc 2 (§V-A).
  const auto qa = make_ia().chain_models()[1];
  const double r1 = qa.ws_quantile(1, 0.99) / qa.ws_quantile(1, 0.5);
  const double r2 = qa.ws_quantile(2, 0.99) / qa.ws_quantile(2, 0.5);
  EXPECT_NEAR(r1, 2.17, 0.02);
  EXPECT_NEAR(r2, 2.32, 0.06);
}

TEST(Workloads, VaDispersionMatchesPaper) {
  // VA P99/P50 per function: 1.46 / 1.56 / 1.37 (§V-A).
  const auto models = make_va().chain_models();
  const double expected[] = {1.46, 1.56, 1.37};
  for (int i = 0; i < 3; ++i) {
    const double r = models[static_cast<std::size_t>(i)].ws_quantile(1, 0.99) /
                     models[static_cast<std::size_t>(i)].ws_quantile(1, 0.5);
    EXPECT_NEAR(r, expected[i], 0.02) << "function " << i;
  }
}

TEST(Workloads, MicroFunctionsCoverAllDims) {
  for (auto dim : {ResourceDim::Cpu, ResourceDim::Memory, ResourceDim::Io,
                   ResourceDim::Network}) {
    const auto m = make_micro_function(dim);
    EXPECT_EQ(m.dim(), dim);
    EXPECT_FALSE(m.name().empty());
  }
}

TEST(Workloads, ModelOfResolvesIndices) {
  const auto ia = make_ia();
  const auto order = ia.workflow.chain_order();
  EXPECT_EQ(ia.model_of(order[1]).name(), "QA");
}

// ------------------------------------------------------------ trace --
TEST(TraceSynth, SlackMostlyLarge) {
  TraceSynthConfig cfg;
  cfg.num_invocations = 30000;
  cfg.num_functions = 500;
  const auto trace = synthesize_trace(cfg);
  EmpiricalDistribution slacks(trace.all_slacks());
  // Fig 1a: more than 60% of invocations have slack over 0.6.
  EXPECT_GT(slacks.fraction_above(0.6), 0.60);
}

TEST(TraceSynth, PopularFunctionsDominateInvocations) {
  TraceSynthConfig cfg;
  cfg.num_invocations = 30000;
  const auto trace = synthesize_trace(cfg);
  // Paper: top-100 functions account for 81.6% of invocations.
  EXPECT_GT(trace.popular_fraction(), 0.55);
}

TEST(TraceSynth, PopularSlackLessExtreme) {
  TraceSynthConfig cfg;
  cfg.num_invocations = 40000;
  const auto trace = synthesize_trace(cfg);
  EmpiricalDistribution all(trace.all_slacks());
  EmpiricalDistribution popular(trace.popular_slacks());
  // The popular curve sits left of the overall curve (Fig 1a).
  EXPECT_LT(popular.percentile(50), all.percentile(50) + 0.05);
}

TEST(TraceSynth, DeterministicForSeed) {
  TraceSynthConfig cfg;
  cfg.num_invocations = 1000;
  const auto a = synthesize_trace(cfg);
  const auto b = synthesize_trace(cfg);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].slack, b.samples[i].slack);
  }
}

TEST(TraceSynth, SlackClampedToUnitInterval) {
  TraceSynthConfig cfg;
  cfg.num_invocations = 5000;
  for (const auto& s : synthesize_trace(cfg).samples) {
    EXPECT_GE(s.slack, 0.0);
    EXPECT_LE(s.slack, 1.0);
  }
}

class BatchDispersionTest : public ::testing::TestWithParam<Concurrency> {};

TEST_P(BatchDispersionTest, DispersionGrowsWithBatch) {
  const auto qa = make_ia().chain_models()[1];
  const Concurrency c = GetParam();
  const double r_now = qa.ws_quantile(c, 0.99) / qa.ws_quantile(c, 0.5);
  const double r_next = qa.ws_quantile(c + 1, 0.99) / qa.ws_quantile(c + 1, 0.5);
  EXPECT_GT(r_next, r_now);
}

INSTANTIATE_TEST_SUITE_P(Concurrencies, BatchDispersionTest,
                         ::testing::Values(1, 2));

}  // namespace
}  // namespace janus
