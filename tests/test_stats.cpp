// Tests for src/stats: quantiles, empirical distributions, histograms,
// parametric samplers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/empirical.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile.hpp"
#include "stats/summary.hpp"

namespace janus {
namespace {

// ------------------------------------------------------------- quantile --
TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile({5.0}, 1.0), 5.0);
}

TEST(Quantile, LinearInterpolationMatchesNumpyType7) {
  // numpy.percentile([1,2,3,4], 25) == 1.75
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 1.0), 4.0);
}

TEST(Quantile, UnsortedInputIsSorted) {
  EXPECT_DOUBLE_EQ(quantile({4, 1, 3, 2}, 0.5), 2.5);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Quantile, OutOfRangeQThrows) {
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Quantile, PercentileHelper) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100.0), 5.0);
}

class QuantileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneTest, MonotoneInQ) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.lognormal(0.0, 1.0));
  std::sort(v.begin(), v.end());
  double prev = quantile_sorted(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile_sorted(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------------- p2 --
class P2AccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(P2AccuracyTest, TracksExactQuantileOnLognormal) {
  const double q = GetParam();
  Rng rng(99);
  P2Quantile est(q);
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(0.0, 0.5);
    est.add(x);
    exact.push_back(x);
  }
  const double truth = quantile(std::move(exact), q);
  EXPECT_NEAR(est.value(), truth, truth * 0.06);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2AccuracyTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile est(0.5);
  est.add(3.0);
  est.add(1.0);
  est.add(2.0);
  EXPECT_DOUBLE_EQ(est.value(), 2.0);
}

TEST(P2Quantile, RejectsDegenerateQ) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

// ------------------------------------------------------------ empirical --
TEST(Empirical, BasicStats) {
  EmpiricalDistribution d({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 5.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_NEAR(d.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(Empirical, CdfStepBehaviour) {
  EmpiricalDistribution d({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(d.fraction_above(2.0), 0.5);
}

TEST(Empirical, PercentileMatchesQuantile) {
  EmpiricalDistribution d({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(d.percentile(25.0), 1.75);
}

TEST(Empirical, CdfSeriesIsMonotone) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.uniform());
  EmpiricalDistribution d(std::move(v));
  const auto series = d.cdf_series(50);
  ASSERT_EQ(series.size(), 50u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Empirical, EmptyConstructionThrows) {
  EXPECT_THROW(EmpiricalDistribution(std::vector<double>{}),
               std::invalid_argument);
}

TEST(EmpiricalMerge, EqualsSinglePass) {
  Rng rng(11);
  std::vector<double> all, first, second;
  for (int i = 0; i < 600; ++i) {
    const double x = rng.lognormal(0.0, 0.7);
    all.push_back(x);
    (i < 250 ? first : second).push_back(x);
  }
  EmpiricalDistribution whole(all);
  EmpiricalDistribution a(first), b(second);
  a.merge(b);
  ASSERT_EQ(a.size(), whole.size());
  EXPECT_EQ(a.sorted_samples(), whole.sorted_samples());  // exact
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.percentile(99.0), whole.percentile(99.0));
}

TEST(EmpiricalMerge, Commutative) {
  EmpiricalDistribution lhs({1, 3, 5});
  lhs.merge(EmpiricalDistribution({2, 4, 6}));
  EmpiricalDistribution rhs({2, 4, 6});
  rhs.merge(EmpiricalDistribution({1, 3, 5}));
  EXPECT_EQ(lhs.sorted_samples(), rhs.sorted_samples());
  EXPECT_NEAR(lhs.mean(), rhs.mean(), 1e-12);
  EXPECT_NEAR(lhs.stddev(), rhs.stddev(), 1e-12);
}

TEST(EmpiricalMerge, Associative) {
  const std::vector<double> xs{1, 2}, ys{3, 4}, zs{5, 6};
  // (x + y) + z
  EmpiricalDistribution left(xs);
  left.merge(EmpiricalDistribution(ys));
  left.merge(EmpiricalDistribution(zs));
  // x + (y + z)
  EmpiricalDistribution inner(ys);
  inner.merge(EmpiricalDistribution(zs));
  EmpiricalDistribution right(xs);
  right.merge(inner);
  EXPECT_EQ(left.sorted_samples(), right.sorted_samples());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.stddev(), right.stddev(), 1e-12);
}

TEST(EmpiricalMerge, EmptyIsIdentity) {
  EmpiricalDistribution a({1, 2, 3}), empty;
  a.merge(empty);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.size(), 3u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.stddev(), a.stddev());
}

// ------------------------------------------------------------ histogram --
TEST(Histogram, CountsBucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add_n(0.5, 10);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(HistogramMerge, CountsAdd) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(0.5);
  a.add(-1.0);
  b.add(0.7);
  b.add(12.0);
  b.add(9.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.bin_count(0), 2u);
  EXPECT_EQ(a.bin_count(9), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

TEST(HistogramMerge, CommutativeAndAssociative) {
  const auto filled = [](std::initializer_list<double> xs) {
    Histogram h(0.0, 5.0, 5);
    for (double x : xs) h.add(x);
    return h;
  };
  const auto equal = [](const Histogram& x, const Histogram& y) {
    if (x.total() != y.total() || x.underflow() != y.underflow() ||
        x.overflow() != y.overflow()) {
      return false;
    }
    for (std::size_t i = 0; i < x.bins(); ++i) {
      if (x.bin_count(i) != y.bin_count(i)) return false;
    }
    return true;
  };
  Histogram ab = filled({0.5, 1.5});
  ab.merge(filled({2.5}));
  Histogram ba = filled({2.5});
  ba.merge(filled({0.5, 1.5}));
  EXPECT_TRUE(equal(ab, ba));

  Histogram left = filled({0.5});
  left.merge(filled({1.5}));
  left.merge(filled({2.5}));
  Histogram inner = filled({1.5});
  inner.merge(filled({2.5}));
  Histogram right = filled({0.5});
  right.merge(inner);
  EXPECT_TRUE(equal(left, right));
}

TEST(HistogramMerge, LayoutMismatchThrows) {
  Histogram a(0.0, 10.0, 10);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 9.0, 10)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(1.0, 10.0, 10)), std::invalid_argument);
}

// -------------------------------------------------------------- summary --
TEST(Summary, WelfordMatchesDirect) {
  Summary s;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_NEAR(s.variance(), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 21.0);
}

TEST(Summary, MergeEqualsSinglePass) {
  Summary a, b, whole;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
}

// -------------------------------------------------------- distributions --
TEST(InverseNormal, KnownValues) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.99), 2.326348, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.01), -2.326348, 1e-4);
}

TEST(InverseNormal, RejectsBoundary) {
  EXPECT_THROW(inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(inverse_normal_cdf(1.0), std::invalid_argument);
}

TEST(LogNormal, QuantileMatchesSamples) {
  const LogNormal d(2.0, 0.4);
  Rng rng(77);
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) xs.push_back(d.sample(rng));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(percentile_sorted(xs, 50.0), d.quantile(0.5), 0.05);
  EXPECT_NEAR(percentile_sorted(xs, 99.0), d.quantile(0.99),
              d.quantile(0.99) * 0.05);
}

TEST(LogNormal, SigmaForRatioInverts) {
  const double sigma = LogNormal::sigma_for_p99_over_p50(2.17);
  const LogNormal d(1.0, sigma);
  EXPECT_NEAR(d.quantile(0.99) / d.quantile(0.5), 2.17, 1e-9);
}

TEST(LogNormal, ZeroSigmaIsDegenerate) {
  const LogNormal d(3.0, 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.01), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 3.0);
}

TEST(LogNormal, RejectsBadParams) {
  EXPECT_THROW(LogNormal(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormal(1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(LogNormal::sigma_for_p99_over_p50(0.9), std::invalid_argument);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  const BoundedPareto d(1.0, 100.0, 1.2);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, QuantileEndpoints) {
  const BoundedPareto d(2.0, 50.0, 1.5);
  EXPECT_NEAR(d.quantile(0.0), 2.0, 1e-9);
  EXPECT_NEAR(d.quantile(1.0), 50.0, 1e-6);
}

TEST(BoundedPareto, HeavyTailSkew) {
  const BoundedPareto d(1.0, 1000.0, 1.1);
  // Median far below midpoint for a heavy tail.
  EXPECT_LT(d.quantile(0.5), 10.0);
}

TEST(Zipf, ProbabilitiesDecreaseAndSumToOne) {
  const Zipf z(100, 1.1);
  double total = 0.0, prev = 1.0;
  for (std::size_t r = 0; r < 100; ++r) {
    const double p = z.probability(r);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostFrequent) {
  const Zipf z(50, 1.2);
  Rng rng(21);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
}

}  // namespace
}  // namespace janus
