// Tests for src/stats: quantiles, empirical distributions, histograms,
// parametric samplers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/empirical.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile.hpp"
#include "stats/summary.hpp"

namespace janus {
namespace {

// ------------------------------------------------------------- quantile --
TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile({5.0}, 1.0), 5.0);
}

TEST(Quantile, LinearInterpolationMatchesNumpyType7) {
  // numpy.percentile([1,2,3,4], 25) == 1.75
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 1.0), 4.0);
}

TEST(Quantile, UnsortedInputIsSorted) {
  EXPECT_DOUBLE_EQ(quantile({4, 1, 3, 2}, 0.5), 2.5);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Quantile, OutOfRangeQThrows) {
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Quantile, PercentileHelper) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100.0), 5.0);
}

class QuantileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneTest, MonotoneInQ) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.lognormal(0.0, 1.0));
  std::sort(v.begin(), v.end());
  double prev = quantile_sorted(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile_sorted(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------------- p2 --
class P2AccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(P2AccuracyTest, TracksExactQuantileOnLognormal) {
  const double q = GetParam();
  Rng rng(99);
  P2Quantile est(q);
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(0.0, 0.5);
    est.add(x);
    exact.push_back(x);
  }
  const double truth = quantile(std::move(exact), q);
  EXPECT_NEAR(est.value(), truth, truth * 0.06);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2AccuracyTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile est(0.5);
  est.add(3.0);
  est.add(1.0);
  est.add(2.0);
  EXPECT_DOUBLE_EQ(est.value(), 2.0);
}

TEST(P2Quantile, RejectsDegenerateQ) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

// ------------------------------------------------------------ empirical --
TEST(Empirical, BasicStats) {
  EmpiricalDistribution d({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 5.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_NEAR(d.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(Empirical, CdfStepBehaviour) {
  EmpiricalDistribution d({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(d.fraction_above(2.0), 0.5);
}

TEST(Empirical, PercentileMatchesQuantile) {
  EmpiricalDistribution d({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(d.percentile(25.0), 1.75);
}

TEST(Empirical, CdfSeriesIsMonotone) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.uniform());
  EmpiricalDistribution d(std::move(v));
  const auto series = d.cdf_series(50);
  ASSERT_EQ(series.size(), 50u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Empirical, EmptyConstructionThrows) {
  EXPECT_THROW(EmpiricalDistribution(std::vector<double>{}),
               std::invalid_argument);
}

// ------------------------------------------------------------ histogram --
TEST(Histogram, CountsBucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add_n(0.5, 10);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

// -------------------------------------------------------------- summary --
TEST(Summary, WelfordMatchesDirect) {
  Summary s;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_NEAR(s.variance(), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 21.0);
}

TEST(Summary, MergeEqualsSinglePass) {
  Summary a, b, whole;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
}

// -------------------------------------------------------- distributions --
TEST(InverseNormal, KnownValues) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.99), 2.326348, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.01), -2.326348, 1e-4);
}

TEST(InverseNormal, RejectsBoundary) {
  EXPECT_THROW(inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(inverse_normal_cdf(1.0), std::invalid_argument);
}

TEST(LogNormal, QuantileMatchesSamples) {
  const LogNormal d(2.0, 0.4);
  Rng rng(77);
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) xs.push_back(d.sample(rng));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(percentile_sorted(xs, 50.0), d.quantile(0.5), 0.05);
  EXPECT_NEAR(percentile_sorted(xs, 99.0), d.quantile(0.99),
              d.quantile(0.99) * 0.05);
}

TEST(LogNormal, SigmaForRatioInverts) {
  const double sigma = LogNormal::sigma_for_p99_over_p50(2.17);
  const LogNormal d(1.0, sigma);
  EXPECT_NEAR(d.quantile(0.99) / d.quantile(0.5), 2.17, 1e-9);
}

TEST(LogNormal, ZeroSigmaIsDegenerate) {
  const LogNormal d(3.0, 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.01), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 3.0);
}

TEST(LogNormal, RejectsBadParams) {
  EXPECT_THROW(LogNormal(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormal(1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(LogNormal::sigma_for_p99_over_p50(0.9), std::invalid_argument);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  const BoundedPareto d(1.0, 100.0, 1.2);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, QuantileEndpoints) {
  const BoundedPareto d(2.0, 50.0, 1.5);
  EXPECT_NEAR(d.quantile(0.0), 2.0, 1e-9);
  EXPECT_NEAR(d.quantile(1.0), 50.0, 1e-6);
}

TEST(BoundedPareto, HeavyTailSkew) {
  const BoundedPareto d(1.0, 1000.0, 1.1);
  // Median far below midpoint for a heavy tail.
  EXPECT_LT(d.quantile(0.5), 10.0);
}

TEST(Zipf, ProbabilitiesDecreaseAndSumToOne) {
  const Zipf z(100, 1.1);
  double total = 0.0, prev = 1.0;
  for (std::size_t r = 0; r < 100; ++r) {
    const double p = z.probability(r);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostFrequent) {
  const Zipf z(50, 1.2);
  Rng rng(21);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
}

}  // namespace
}  // namespace janus
