#!/usr/bin/env bash
# Help-text audit for janus_cli: the usage screen and the parser must
# name exactly the same flag set, in both directions —
#
#   * every --flag the help text documents must appear as a string
#     literal in the parser/whitelists (tools/janus_cli.cpp), so the
#     docs cannot advertise a flag the binary rejects;
#   * every --flag the source parses must appear in the help text, so a
#     new flag cannot ship undocumented.
#
# Plus the frontier subcommand's contract: `help`/`--help` exit 0 and
# document `frontier`; frontier without its required --step exits 2 with
# a one-line error naming the flag; an unknown flag exits 2.
#
# usage: cli_help_test.sh /path/to/janus_cli
set -u

cli="${1:?usage: cli_help_test.sh /path/to/janus_cli}"
repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
src="$repo/tools/janus_cli.cpp"
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# ---- help exits 0, under both spellings -------------------------------
help_text=$("$cli" help 2>&1) || fail "'janus_cli help' exited nonzero"
"$cli" --help >/dev/null 2>&1 || fail "'janus_cli --help' exited nonzero"
case "$help_text" in
  *"janus_cli frontier"*) ;;
  *) fail "help text does not document the frontier subcommand" ;;
esac

# ---- documented vs parsed flag sets, both directions ------------------
documented=$(printf '%s\n' "$help_text" | grep -oE -- '--[a-z0-9-]+' \
             | sort -u)
parsed=$(grep -oE '"--[a-z0-9-]+"' "$src" | tr -d '"' | sort -u)
[ -n "$documented" ] || fail "no flags found in help text"
[ -n "$parsed" ] || fail "no flag literals found in $src"

for flag in $documented; do
  printf '%s\n' "$parsed" | grep -qx -- "$flag" \
    || fail "help documents $flag but the source never parses it"
done
for flag in $parsed; do
  printf '%s\n' "$documented" | grep -qx -- "$flag" \
    || fail "source parses $flag but the help text never documents it"
done

# ---- frontier flag contract -------------------------------------------
err=$("$cli" frontier 2>&1 >/dev/null)
code=$?
[ "$code" -eq 2 ] || fail "frontier without --step exited $code, want 2"
[ "$(printf '%s\n' "$err" | wc -l)" -eq 1 ] \
  || fail "missing --step error is not one line: $err"
case "$err" in
  *"--step"*) ;;
  *) fail "missing --step error does not name the flag: $err" ;;
esac

"$cli" frontier --step 10 --no-such-flag >/dev/null 2>&1
[ $? -eq 2 ] || fail "frontier with an unknown flag did not exit 2"

if [ "$failures" -ne 0 ]; then
  echo "cli_help_test: $failures failure(s)" >&2
  exit 1
fi
echo "cli_help_test: OK"
