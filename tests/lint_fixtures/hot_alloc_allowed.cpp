// Fixture: hot-path-alloc with a justified suppression — lints clean.
JANUS_HOT void pump() {
  int* scratch = new int[4];  // janus-lint: allow(hot-path-alloc) fixture: exercising the suppression path
  (void)scratch;
}
