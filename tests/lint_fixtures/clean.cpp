// Fixture: constructs the checks must NOT flag — every false-positive
// guard in one file.  Linted under src/sim/ so the path-scoped checks
// are live.
#include <chrono>
#include <map>
#include <memory>
#include <vector>

struct HintsBundle;
struct Engine { template <class F> void schedule_at(double, F); };

// steady_clock is allowed: reporting elapsed wall time, not behavior.
using ReportClock = std::chrono::steady_clock;

// Member / other-namespace time() calls are not the libc time().
// (Stopwatch and sched come from elsewhere; this file is lint-only.)
struct Stopwatch;
double probe(Stopwatch* w);
double probe_impl(Stopwatch* w) { return probe(w) + sched::time(); }
double probe_member(Stopwatch& w) { return w.time(); }

// const bundle access is the intended consumer pattern.
double lookup(const HintsBundle& bundle);
std::shared_ptr<const HintsBundle> shared_bundle();

// Ordered containers are fine in order-sensitive paths.
std::map<int, double> totals_by_node;

// Placement new in a hot function is how the slot pool works; growth
// calls outside any hot region are unconstrained.
JANUS_HOT void* place(void* slot) { return new (slot) int(0); }
void cold_fill(std::vector<int>& v) { v.push_back(1); }

// Obs-sink accesses are legal in a hot function when wrapped in
// JANUS_OBS (the guard macro), and unconstrained outside hot regions.
struct ObsGauge { unsigned long long peak; };
ObsGauge* obs_gauge = nullptr;
JANUS_HOT void tick() { JANUS_OBS(obs_gauge, ++obs_gauge->peak); }
void cold_tick() { ++obs_gauge->peak; }

// Value captures may be scheduled freely; rvalue-ref params (&&) in the
// argument list are not captures.
void drive(Engine& engine, std::vector<int>&& batch) {
  int local = 0;
  engine.schedule_at(1.0, [local] { (void)local; });
  (void)batch;
}
