// Fixture: determinism-unordered — one seeded violation (line 5) when
// linted under an order-sensitive path (src/sim, src/stats, src/fleet).
#include <unordered_map>

std::unordered_map<int, double> totals_by_node;
