// Fixture: hot-path-obs-guard — one seeded violation (line 7).  The
// obs-sink declaration at file scope is NOT flagged (only accesses inside
// a JANUS_HOT body are); the naked increment in pump() is.
struct ObsGauge { unsigned long long queued; };
ObsGauge* obs_sink = nullptr;
JANUS_HOT void pump() {
  ++obs_sink->queued;
}
