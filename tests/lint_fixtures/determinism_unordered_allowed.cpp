// Fixture: determinism-unordered with a justified suppression — clean.
#include <unordered_map>

// janus-lint: allow(determinism-unordered) fixture: exercising the suppression path
std::unordered_map<int, double> totals_by_node;
