// Fixture: ref-capture-event with a justified suppression — lints clean.
struct Engine { template <class F> void schedule_at(double, F); };

void drive(Engine& engine) {
  int local = 0;
  // janus-lint: allow(ref-capture-event) fixture: exercising the suppression path
  engine.schedule_at(1.0, [&local] { ++local; });
}
