// Fixture: hot-path-alloc — one seeded violation (line 4).  The file is
// lint-only (never compiled), so JANUS_HOT needs no definition here.
JANUS_HOT void pump() {
  int* scratch = new int[4];
  (void)scratch;
}
