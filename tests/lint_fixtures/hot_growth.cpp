// Fixture: hot-path-growth — one seeded violation (line 6).
#include <vector>

std::vector<int> queue_;
JANUS_HOT void enqueue(int v) {
  queue_.push_back(v);
}
