// Fixture: bad-suppression — the allow() names a check that does not
// exist (line 4), which is itself a finding and never suppressible.
int identity(int v) {
  return v;  // janus-lint: allow(no-such-check) typo'd check name
}
