// Fixture: hot-path-growth with a justified suppression — lints clean.
#include <vector>

std::vector<int> queue_;
JANUS_HOT void enqueue(int v) {
  // janus-lint: allow(hot-path-growth) fixture: exercising the suppression path
  queue_.push_back(v);
}
