// Fixture: mutable-hints-bundle — one seeded violation (line 5) when
// linted outside src/hints/ (producers may hold mutable bundles).
struct HintsBundle;

void install(HintsBundle bundle);
