// Fixture: bad-suppression — the allow() carries no justification
// (line 6), so the underlying finding stays live too.
#include <cstdlib>

int roll_die() {
  return rand() % 6;  // janus-lint: allow(determinism-rand)
}
