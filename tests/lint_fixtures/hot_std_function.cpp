// Fixture: hot-path-std-function — one seeded violation (line 5).
#include <functional>

JANUS_HOT void dispatch() {
  std::function<void()> callback;
  (void)callback;
}
