// Fixture: determinism-time with a justified suppression — lints clean.
#include <ctime>

long stamp() {
  // Block-above form: the directive anchors to the next code line.
  // janus-lint: allow(determinism-time) fixture: exercising the suppression path
  return time(nullptr);
}
