// Fixture: ref-capture-event — one seeded violation (line 6).
struct Engine { template <class F> void schedule_at(double, F); };

void drive(Engine& engine) {
  int local = 0;
  engine.schedule_at(1.0, [&local] { ++local; });
}
