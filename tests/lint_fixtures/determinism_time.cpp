// Fixture: determinism-time — one seeded violation (line 5).
#include <ctime>

long stamp() {
  return time(nullptr);
}
