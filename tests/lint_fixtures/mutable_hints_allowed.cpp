// Fixture: mutable-hints-bundle with a justified suppression — clean.
struct HintsBundle;

// janus-lint: allow(mutable-hints-bundle) fixture: exercising the suppression path
void install(HintsBundle bundle);
