// Fixture: hot-path-std-function with a justified suppression — clean.
#include <functional>

JANUS_HOT void dispatch() {
  std::function<void()> callback;  // janus-lint: allow(hot-path-std-function) fixture: exercising the suppression path
  (void)callback;
}
