// Fixture: determinism-rand with a justified suppression — lints clean.
#include <cstdlib>

int roll_die() {
  return rand() % 6;  // janus-lint: allow(determinism-rand) fixture: exercising the suppression path
}
