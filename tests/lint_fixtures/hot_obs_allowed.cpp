// Fixture: hot-path-obs-guard with a justified suppression — lints clean.
struct ObsGauge { unsigned long long queued; };
ObsGauge* obs_sink = nullptr;
JANUS_HOT void pump() {
  ++obs_sink->queued;  // janus-lint: allow(hot-path-obs-guard) fixture: exercising the suppression path
}
