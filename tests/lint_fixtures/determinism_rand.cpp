// Fixture: determinism-rand — one seeded violation (line 5).
#include <cstdlib>

int roll_die() {
  return rand() % 6;
}
