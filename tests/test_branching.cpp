// Tests for src/branching: level collapse, comonotonic max profiles,
// width-weighted synthesis, and end-to-end fork-join serving.
#include <gtest/gtest.h>

#include "branching/level_workflow.hpp"
#include "policy/early_binding.hpp"
#include "policy/janus_policy.hpp"

namespace janus {
namespace {

class BranchingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ProfilerConfig config;
    config.grid.kstep = 500;
    config.samples_per_point = 1000;
    config.interference = InterferenceModel(workload_interference_params());
    lw_ = new LevelWorkload(build_level_workload(make_social_feed(), config));
  }
  static void TearDownTestSuite() {
    delete lw_;
    lw_ = nullptr;
  }
  static const LevelWorkload& lw() { return *lw_; }

 private:
  static LevelWorkload* lw_;
};

LevelWorkload* BranchingTest::lw_ = nullptr;

TEST_F(BranchingTest, SocialFeedCollapsesToThreeLevels) {
  EXPECT_EQ(lw().level_count(), 3u);
  EXPECT_EQ(lw().widths, (std::vector<int>{1, 3, 1}));
  EXPECT_EQ(lw().levels[1].size(), 3u);
}

TEST_F(BranchingTest, LevelProfileDominatesMembers) {
  // The level max-profile must be >= every member profile at all points.
  const auto& level = lw().level_profiles[1];
  for (FunctionId id : lw().levels[1]) {
    const auto& member = lw().function_profiles[static_cast<std::size_t>(id)];
    for (Millicores k : {1000, 2000, 3000}) {
      for (Percentile p : {1, 50, 99}) {
        EXPECT_GE(level.latency(p, k, 1) + 1e-12, member.latency(p, k, 1))
            << "fn=" << id << " k=" << k << " p=" << p;
      }
    }
  }
}

TEST_F(BranchingTest, SingleFunctionLevelEqualsItsProfile) {
  const auto& level = lw().level_profiles[0];
  const auto& member = lw().function_profiles[static_cast<std::size_t>(
      lw().levels[0][0])];
  EXPECT_DOUBLE_EQ(level.latency(50, 2000, 1), member.latency(50, 2000, 1));
}

TEST_F(BranchingTest, LevelProfileStaysMonotone) {
  const auto& level = lw().level_profiles[1];
  double prev = 1e18;
  for (Millicores k = 1000; k <= 3000; k += 500) {
    const double cur = level.latency(99, k, 1);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST_F(BranchingTest, SynthesisConfigCarriesWidths) {
  const auto config = level_synthesis_config(lw());
  EXPECT_EQ(config.stage_widths, (std::vector<int>{1, 3, 1}));
}

TEST_F(BranchingTest, WidthsInflateExpectedCost) {
  // The fan-out level must be charged 3x per millicore: raising the level
  // width cannot make hints cheaper.
  SynthesisConfig narrow = level_synthesis_config(lw());
  narrow.kstep = 500;
  narrow.budget_step = 10;
  SynthesisConfig no_widths = narrow;
  no_widths.stage_widths.clear();
  const HintsGenerator weighted(lw().level_profiles, narrow);
  const HintsGenerator unweighted(lw().level_profiles, no_widths);
  const RawHint a = weighted.solve_budget(0, 3200);
  const RawHint b = unweighted.solve_budget(0, 3200);
  ASSERT_FALSE(a.sizes.empty());
  ASSERT_FALSE(b.sizes.empty());
  EXPECT_GT(a.expected_cost, b.expected_cost);
}

TEST_F(BranchingTest, EndToEndMeetsSloNearP99) {
  SynthesisConfig synth = level_synthesis_config(lw());
  synth.kstep = 500;
  synth.budget_step = 5;
  auto policy = make_janus(lw().level_profiles, synth, 2.2);
  RunConfig config;
  config.slo = 2.2;
  config.requests = 300;
  const RunResult result = run_level_workload(lw(), *policy, config);
  EXPECT_EQ(result.requests.size(), 300u);
  EXPECT_LE(result.violation_rate(), 0.03);
  for (const auto& r : result.requests) {
    // 3 levels, widths 1+3+1 = 5 allocations between Kmin and Kmax each.
    EXPECT_EQ(r.sizes.size(), 3u);
    EXPECT_GE(r.cpu_mc, 5.0 * 1000);
    EXPECT_LE(r.cpu_mc, 5.0 * 3000);
  }
}

TEST_F(BranchingTest, AdaptationBeatsFixedSizing) {
  SynthesisConfig synth = level_synthesis_config(lw());
  synth.kstep = 500;
  synth.budget_step = 5;
  auto janus_policy = make_janus(lw().level_profiles, synth, 2.2);
  EarlyBindingInputs eb;
  eb.profiles = &lw().level_profiles;
  eb.slo = 2.2;
  eb.kstep = 500;
  auto fixed = make_grandslam_plus(eb);
  RunConfig config;
  config.slo = 2.2;
  config.requests = 300;
  const double cpu_janus =
      run_level_workload(lw(), *janus_policy, config).mean_cpu();
  // Fixed sizing pays each level width times its static size.
  const RunResult fixed_result = run_level_workload(lw(), *fixed, config);
  EXPECT_LT(cpu_janus, fixed_result.mean_cpu());
}

TEST(LevelWorkloadChain, PlainChainDegeneratesToIdentity) {
  ProfilerConfig config;
  config.grid.kstep = 1000;
  config.samples_per_point = 300;
  const LevelWorkload lw = build_level_workload(make_va(), config);
  EXPECT_EQ(lw.level_count(), 3u);
  EXPECT_EQ(lw.widths, (std::vector<int>{1, 1, 1}));
}

TEST(TailPlanWidths, RejectsBadWidths) {
  ProfilerConfig config;
  config.grid.kstep = 1000;
  config.samples_per_point = 200;
  const auto profile =
      profile_function(make_micro_function(ResourceDim::Cpu), config);
  EXPECT_THROW(TailPlan({&profile}, 1, 1000, 3000, 1000, 100, {0}),
               std::invalid_argument);
  EXPECT_THROW(TailPlan({&profile}, 1, 1000, 3000, 1000, 100, {1, 2}),
               std::invalid_argument);
}

TEST(TailPlanWidths, CostScalesWithWidth) {
  ProfilerConfig config;
  config.grid.kstep = 1000;
  config.samples_per_point = 500;
  const auto profile =
      profile_function(make_micro_function(ResourceDim::Cpu), config);
  const BudgetMs horizon = profile.latency_ms(99, 1000, 1) + 100;
  const TailPlan w1({&profile}, 1, 1000, 3000, 1000, horizon, {1});
  const TailPlan w4({&profile}, 1, 1000, 3000, 1000, horizon, {4});
  const BudgetMs t = horizon - 10;
  EXPECT_EQ(w4.total_cost(0, t), 4 * w1.total_cost(0, t));
}

}  // namespace
}  // namespace janus
