// The binary metrics codec (src/stats/codec) and the slice blob built on
// it (src/fleet/slice) are the wire format between fleet processes: every
// guarantee the multi-process merge leans on is pinned here — bit-exact
// round trips (doubles as IEEE bit patterns), the versioned-envelope
// guard, and the exact commutativity/associativity of the merge
// operations the decoded values feed.
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/slice.hpp"
#include "stats/codec.hpp"
#include "stats/empirical.hpp"
#include "stats/histogram.hpp"

namespace janus {
namespace {

using codec::ByteReader;
using codec::ByteWriter;

/// Bit-level double equality: NaN-safe and distinguishes -0.0 from 0.0,
/// which `==` would conflate — the codec's contract is the bit pattern.
bool same_bits(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

TEST(Codec, PrimitivesRoundTripLittleEndian) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1);
  w.f64(-0.0);
  w.f64(std::nan(""));
  w.str("janus");
  const std::vector<std::uint8_t> buf = w.bytes();
  // Spot-check the wire order: u16 0x1234 must be 0x34 0x12 (LE).
  EXPECT_EQ(buf[1], 0x34);
  EXPECT_EQ(buf[2], 0x12);
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_TRUE(same_bits(r.f64(), -0.0));
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.str(), "janus");
  EXPECT_TRUE(r.done());
}

TEST(Codec, ReaderThrowsOnOverrun) {
  ByteWriter w;
  w.u32(7);
  const std::vector<std::uint8_t> buf = w.bytes();
  ByteReader r(buf);
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), std::exception);
  ByteReader truncated(buf.data(), 2);
  EXPECT_THROW((void)truncated.u32(), std::exception);
}

TEST(Codec, HeaderGuardsMagicAndVersion) {
  ByteWriter w;
  codec::write_header(w);
  {
    ByteReader r(w.bytes());
    EXPECT_NO_THROW(codec::read_header(r));
  }
  // Corrupt magic.
  std::vector<std::uint8_t> bad = w.bytes();
  bad[0] ^= 0xff;
  {
    ByteReader r(bad);
    EXPECT_THROW(codec::read_header(r), std::exception);
  }
  // Future version: same magic, bumped version field — the cross-version
  // guard must refuse rather than misinterpret the layout.
  ByteWriter future;
  future.u32(codec::kMagic);
  future.u16(codec::kCodecVersion + 1);
  {
    ByteReader r(future.bytes());
    EXPECT_THROW(codec::read_header(r), std::exception);
  }
}

EmpiricalDistribution sample_dist(std::uint64_t seed, int n) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  // Deterministic irrational-ish spread; values exercise non-trivial
  // mantissas so "bit-exact" actually means something.
  double x = 0.1 + static_cast<double>(seed % 7) * 0.013;
  for (int i = 0; i < n; ++i) {
    x = std::fmod(x * 1.7 + 0.31, 5.0);
    xs.push_back(x);
  }
  return EmpiricalDistribution(std::move(xs));
}

TEST(Codec, EmpiricalDistributionRoundTripIsBitExact) {
  const EmpiricalDistribution d = sample_dist(3, 257);
  ByteWriter w;
  codec::encode(w, d);
  ByteReader r(w.bytes());
  const EmpiricalDistribution back = codec::decode_empirical(r);
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_TRUE(same_bits(back.sorted_samples()[i], d.sorted_samples()[i]));
  }
  // Moments travel verbatim, not re-derived: re-accumulating them in a
  // different order would change the low bits and break merge identity.
  EXPECT_TRUE(same_bits(back.moment_mean(), d.moment_mean()));
  EXPECT_TRUE(same_bits(back.moment_m2(), d.moment_m2()));
  EXPECT_TRUE(same_bits(back.percentile(99.0), d.percentile(99.0)));
}

TEST(Codec, DecodedDistributionsMergeLikeTheOriginals) {
  // merge(decode(encode(a)), decode(encode(b))) must equal merge(a, b)
  // bit-for-bit — the property that makes process sharding invisible.
  EmpiricalDistribution a = sample_dist(1, 100);
  const EmpiricalDistribution b = sample_dist(2, 173);
  ByteWriter wa;
  codec::encode(wa, a);
  ByteWriter wb;
  codec::encode(wb, b);
  ByteReader ra(wa.bytes());
  ByteReader rb(wb.bytes());
  EmpiricalDistribution da = codec::decode_empirical(ra);
  const EmpiricalDistribution db = codec::decode_empirical(rb);
  a.merge(b);
  da.merge(db);
  ASSERT_EQ(da.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_bits(da.sorted_samples()[i], a.sorted_samples()[i]));
  }
  EXPECT_TRUE(same_bits(da.moment_mean(), a.moment_mean()));
  EXPECT_TRUE(same_bits(da.moment_m2(), a.moment_m2()));
}

Histogram sample_hist(std::uint64_t seed, int n) {
  Histogram h(0.0, 4.0, 16);
  double x = 0.05 * static_cast<double>(1 + seed % 11);
  for (int i = 0; i < n; ++i) {
    x = std::fmod(x * 3.1 + 0.7, 5.0);  // spills into overflow sometimes
    h.add(x - 0.2);                     // and underflow
  }
  return h;
}

bool hist_equal(const Histogram& a, const Histogram& b) {
  if (a.bins() != b.bins() || a.total() != b.total() ||
      a.underflow() != b.underflow() || a.overflow() != b.overflow() ||
      !same_bits(a.lo(), b.lo()) || !same_bits(a.hi(), b.hi())) {
    return false;
  }
  for (std::size_t i = 0; i < a.bins(); ++i) {
    if (a.bin_count(i) != b.bin_count(i)) return false;
  }
  return true;
}

TEST(Codec, HistogramRoundTripAndPercentile) {
  const Histogram h = sample_hist(5, 300);
  ByteWriter w;
  codec::encode(w, h);
  ByteReader r(w.bytes());
  const Histogram back = codec::decode_histogram(r);
  EXPECT_TRUE(hist_equal(back, h));
  EXPECT_TRUE(same_bits(back.percentile(50.0), h.percentile(50.0)));
  EXPECT_TRUE(same_bits(back.percentile(99.0), h.percentile(99.0)));
}

TEST(Codec, HistogramMergeIsCommutativeAndAssociative) {
  // Integer bin counts: the merge is exactly commutative and associative,
  // so slice fold order can never show through.  Pinned here because the
  // streaming fleet's p50/p99 rest on it.
  const Histogram a = sample_hist(1, 100);
  const Histogram b = sample_hist(2, 200);
  const Histogram c = sample_hist(3, 50);
  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  EXPECT_TRUE(hist_equal(ab, ba));
  Histogram ab_c = ab;
  ab_c.merge(c);
  Histogram bc = b;
  bc.merge(c);
  Histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(hist_equal(ab_c, a_bc));
}

TEST(Codec, HistogramFromPartsValidatesTotals) {
  EXPECT_THROW(Histogram::from_parts(0.0, 1.0, {1, 2}, 1, 1, 999),
               std::exception);
}

TEST(Codec, ObsCountersRoundTripAndCommutativeMerge) {
  ObsCounters a;
  a.invocations = 101;
  a.cold_starts = 7;
  a.queued = 3;
  a.spans_recorded = 55;
  a.spans_dropped = 2;
  ByteWriter w;
  codec::encode(w, a);
  ByteReader r(w.bytes());
  const ObsCounters back = codec::decode_obs_counters(r);
  EXPECT_EQ(back.invocations, a.invocations);
  EXPECT_EQ(back.cold_starts, a.cold_starts);
  EXPECT_EQ(back.queued, a.queued);
  EXPECT_EQ(back.spans_recorded, a.spans_recorded);
  EXPECT_EQ(back.spans_dropped, a.spans_dropped);

  ObsCounters b;
  b.invocations = 9;
  b.queued = 1;
  ObsCounters ab = a;
  ab.merge(b);
  ObsCounters ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.invocations, ba.invocations);
  EXPECT_EQ(ab.queued, ba.queued);
  EXPECT_EQ(ab.cold_starts, ba.cold_starts);
}

TEST(Codec, EpochLogTimelineAndSpansRoundTrip) {
  EpochSnapshot snap;
  snap.epoch = 4;
  snap.sim_time = 20.0;
  snap.nodes = 17;
  snap.pending_nodes = 2;
  snap.utilization = 0.625;
  snap.nodes_ordered = 3;
  snap.nodes_added = 1;
  snap.nodes_removed = 0;
  snap.groups_resized = 5;
  snap.displaced_pods = 8;
  snap.chaos.failed_nodes = 1;
  snap.chaos.preempted_pods = 6;
  snap.chaos.storm_multiplier = 2.5;
  ByteWriter w;
  codec::encode(w, std::vector<EpochSnapshot>{snap, snap});
  ByteReader r(w.bytes());
  const std::vector<EpochSnapshot> log = codec::decode_epoch_log(r);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].epoch, snap.epoch);
  EXPECT_EQ(log[1].nodes, snap.nodes);
  EXPECT_EQ(log[1].pending_nodes, snap.pending_nodes);
  EXPECT_TRUE(same_bits(log[1].utilization, snap.utilization));
  EXPECT_EQ(log[1].groups_resized, snap.groups_resized);
  EXPECT_EQ(log[1].chaos.failed_nodes, snap.chaos.failed_nodes);
  EXPECT_EQ(log[1].chaos.preempted_pods, snap.chaos.preempted_pods);
  EXPECT_TRUE(
      same_bits(log[1].chaos.storm_multiplier, snap.chaos.storm_multiplier));

  TimelineRow row;
  row.epoch = 2;
  row.sim_time = 10.0;
  row.tenant = 99;
  row.stage = 1;
  row.observed_peak_busy = 12;
  row.allocated_pods = 4;
  row.pod_mc = 2200;
  row.coresidency = 1.75;
  row.completed = 310;
  row.violations = 17;
  row.nodes = 16;
  row.utilization = 0.5;
  ByteWriter wt;
  codec::encode(wt, std::vector<TimelineRow>{row});
  ByteReader rt(wt.bytes());
  const std::vector<TimelineRow> rows = codec::decode_timeline(rt);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tenant, row.tenant);
  EXPECT_EQ(rows[0].stage, row.stage);
  EXPECT_EQ(rows[0].observed_peak_busy, row.observed_peak_busy);
  EXPECT_EQ(rows[0].pod_mc, row.pod_mc);
  EXPECT_TRUE(same_bits(rows[0].coresidency, row.coresidency));
  EXPECT_EQ(rows[0].completed, row.completed);
  EXPECT_EQ(rows[0].violations, row.violations);

  SpanRecord span;
  span.tenant = 3;
  span.request = 1234;
  span.stage = 2;
  span.cold = 1;
  span.queued = 1;
  span.pod = 7;
  span.node = 2;
  span.colocated = 4;
  span.size_mc = 1800;
  span.start_s = 3.25;
  span.queued_s = 0.125;
  span.startup_s = 0.5;
  span.exec_s = 0.75;
  span.interference = 1.1;
  ByteWriter ws;
  codec::encode(ws, std::vector<SpanRecord>{span});
  ByteReader rs(ws.bytes());
  const std::vector<SpanRecord> spans = codec::decode_spans(rs);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].request, span.request);
  EXPECT_EQ(spans[0].cold, span.cold);
  EXPECT_EQ(spans[0].queued, span.queued);
  EXPECT_EQ(spans[0].pod, span.pod);
  EXPECT_EQ(spans[0].size_mc, span.size_mc);
  EXPECT_TRUE(same_bits(spans[0].exec_s, span.exec_s));
  EXPECT_TRUE(same_bits(spans[0].interference, span.interference));
}

FleetSliceOutcome sample_slice() {
  FleetSliceOutcome s;
  s.lo = 2;
  s.hi = 4;
  s.stream = false;
  s.fleet_seed = 42;
  s.requests_total = 500;
  s.violations_total = 31;
  s.cpu_total = 123456.0;
  s.slice_hist = sample_hist(9, 120);
  for (int t = 0; t < 2; ++t) {
    TenantFold fold;
    fold.requests = 250;
    fold.violations = static_cast<std::uint64_t>(10 + t);
    fold.cpu_sum = 61728.0;
    fold.coresidency = 1.5 + 0.25 * t;
    fold.e2e = sample_dist(static_cast<std::uint64_t>(t), 250);
    fold.e2e_hist = sample_hist(static_cast<std::uint64_t>(t), 250);
    s.tenants.push_back(std::move(fold));
  }
  s.counters.invocations = 1500;
  s.counters.cold_starts = 40;
  s.events_executed = 9001;
  s.peak_pending = 77;
  s.epochs = 6;
  s.final_nodes = 18;
  s.cluster_utilization = 0.71;
  s.overcommitted_pods = 2;
  EpochSnapshot snap;
  snap.epoch = 1;
  snap.nodes = 18;
  s.epoch_log.push_back(snap);
  return s;
}

TEST(Codec, SliceBlobRoundTripIsBitExact) {
  const FleetSliceOutcome s = sample_slice();
  const std::vector<std::uint8_t> blob = encode_slice(s);
  const FleetSliceOutcome back = decode_slice(blob);
  EXPECT_EQ(back.lo, s.lo);
  EXPECT_EQ(back.hi, s.hi);
  EXPECT_EQ(back.stream, s.stream);
  EXPECT_EQ(back.fleet_seed, s.fleet_seed);
  EXPECT_EQ(back.requests_total, s.requests_total);
  EXPECT_EQ(back.violations_total, s.violations_total);
  EXPECT_TRUE(same_bits(back.cpu_total, s.cpu_total));
  EXPECT_TRUE(hist_equal(back.slice_hist, s.slice_hist));
  ASSERT_EQ(back.tenants.size(), s.tenants.size());
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    EXPECT_EQ(back.tenants[i].requests, s.tenants[i].requests);
    EXPECT_EQ(back.tenants[i].violations, s.tenants[i].violations);
    EXPECT_TRUE(same_bits(back.tenants[i].cpu_sum, s.tenants[i].cpu_sum));
    EXPECT_TRUE(
        same_bits(back.tenants[i].coresidency, s.tenants[i].coresidency));
    ASSERT_EQ(back.tenants[i].e2e.size(), s.tenants[i].e2e.size());
    EXPECT_TRUE(same_bits(back.tenants[i].e2e.percentile(99.0),
                          s.tenants[i].e2e.percentile(99.0)));
    EXPECT_TRUE(hist_equal(back.tenants[i].e2e_hist, s.tenants[i].e2e_hist));
  }
  EXPECT_EQ(back.counters.invocations, s.counters.invocations);
  EXPECT_EQ(back.events_executed, s.events_executed);
  EXPECT_EQ(back.peak_pending, s.peak_pending);
  EXPECT_EQ(back.epochs, s.epochs);
  EXPECT_EQ(back.final_nodes, s.final_nodes);
  EXPECT_TRUE(same_bits(back.cluster_utilization, s.cluster_utilization));
  ASSERT_EQ(back.epoch_log.size(), s.epoch_log.size());
  EXPECT_EQ(back.epoch_log[0].nodes, s.epoch_log[0].nodes);
}

TEST(Codec, SliceBlobRejectsCorruption) {
  const std::vector<std::uint8_t> blob = encode_slice(sample_slice());
  // Truncated.
  EXPECT_THROW(decode_slice(blob.data(), blob.size() - 1), std::exception);
  // Trailing garbage.
  std::vector<std::uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_THROW(decode_slice(padded), std::exception);
  // Wrong envelope.
  std::vector<std::uint8_t> bad = blob;
  bad[4] ^= 0xff;  // version field
  EXPECT_THROW(decode_slice(bad), std::exception);
}

}  // namespace
}  // namespace janus
