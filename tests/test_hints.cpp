// Tests for src/hints: timeout/resilience metrics, the suffix DP, hints
// generation (Algorithm 1) including its SLO-safety invariants, condensing
// (Algorithm 2) and table lookup semantics.
#include <gtest/gtest.h>

#include <memory>

#include "hints/condense.hpp"
#include "hints/generator.hpp"
#include "hints/metrics.hpp"
#include "hints/table.hpp"
#include "hints/tail_plan.hpp"
#include "model/workloads.hpp"
#include "profiler/profiler.hpp"

namespace janus {
namespace {

/// Profiles IA once for the whole test binary (coarse grid for speed).
class HintsTestBase : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ProfilerConfig config;
    config.grid.kmin = 1000;
    config.grid.kmax = 3000;
    config.grid.kstep = 500;
    config.samples_per_point = 1200;
    config.interference = InterferenceModel(workload_interference_params());
    profiles_ = new std::vector<LatencyProfile>(
        profile_workload(make_ia(), config));
  }
  static void TearDownTestSuite() {
    delete profiles_;
    profiles_ = nullptr;
  }

  static SynthesisConfig fast_synthesis() {
    SynthesisConfig config;
    config.kmin = 1000;
    config.kmax = 3000;
    config.kstep = 500;
    config.budget_step = 5;  // coarse grid keeps tests quick
    config.threads = 2;
    return config;
  }

  static const std::vector<LatencyProfile>& profiles() { return *profiles_; }

 private:
  static std::vector<LatencyProfile>* profiles_;
};

std::vector<LatencyProfile>* HintsTestBase::profiles_ = nullptr;

// ---------------------------------------------------------------- metrics --
class HintsMetricsTest : public HintsTestBase {};

TEST_F(HintsMetricsTest, TimeoutZeroAtP99) {
  for (Millicores k : {1000, 2000, 3000}) {
    EXPECT_DOUBLE_EQ(timeout_metric(profiles()[0], 99, k, 1), 0.0);
  }
}

TEST_F(HintsMetricsTest, TimeoutDecreasesWithPercentile) {
  const auto& p = profiles()[2];  // TS, as in Fig 7a
  EXPECT_GT(timeout_metric(p, 25, 2000, 1), timeout_metric(p, 50, 2000, 1));
  EXPECT_GT(timeout_metric(p, 50, 2000, 1), timeout_metric(p, 75, 2000, 1));
}

TEST_F(HintsMetricsTest, TimeoutDecreasesWithCores) {
  // Fig 7a: more resources shrink the worst-case gap.
  const auto& p = profiles()[2];
  EXPECT_GT(timeout_metric(p, 25, 1000, 1), timeout_metric(p, 25, 3000, 1));
}

TEST_F(HintsMetricsTest, ResilienceZeroAtKmax) {
  EXPECT_DOUBLE_EQ(resilience_metric(profiles()[0], 99, 3000, 1, 3000), 0.0);
}

TEST_F(HintsMetricsTest, ResilienceDecreasesWithCores) {
  // Fig 7b: marginal reduction as provisioned cores increase.
  const auto& p = profiles()[2];
  EXPECT_GT(resilience_metric(p, 99, 1000, 1, 3000),
            resilience_metric(p, 99, 2000, 1, 3000));
  EXPECT_GT(resilience_metric(p, 99, 2000, 1, 3000),
            resilience_metric(p, 99, 2500, 1, 3000));
}

TEST_F(HintsMetricsTest, ResilienceNonNegative) {
  for (Millicores k : {1000, 1500, 2000, 2500, 3000}) {
    for (Percentile p : {1, 50, 99}) {
      EXPECT_GE(resilience_metric(profiles()[1], p, k, 1, 3000), 0.0);
    }
  }
}

TEST_F(HintsMetricsTest, MsVariantsConsistent) {
  const auto& p = profiles()[0];
  EXPECT_NEAR(static_cast<double>(timeout_metric_ms(p, 50, 1500, 1)),
              timeout_metric(p, 50, 1500, 1) * 1000.0, 2.0);
}

// --------------------------------------------------------------- TailPlan --
class TailPlanTest : public HintsTestBase {
 protected:
  TailPlan make_plan(BudgetMs horizon = 8000) {
    return TailPlan({&profiles()[0], &profiles()[1], &profiles()[2]}, 1, 1000,
                    3000, 500, horizon);
  }
};

TEST_F(TailPlanTest, FeasibilityMonotoneInBudget) {
  const auto plan = make_plan();
  for (std::size_t j = 0; j < 3; ++j) {
    bool was_feasible = false;
    for (BudgetMs t = 0; t <= plan.horizon(); t += 100) {
      const bool now = plan.feasible(j, t);
      if (was_feasible) {
        EXPECT_TRUE(now) << "j=" << j << " t=" << t;
      }
      was_feasible = now;
    }
  }
}

TEST_F(TailPlanTest, CostNonIncreasingInBudget) {
  const auto plan = make_plan();
  for (std::size_t j = 0; j < 3; ++j) {
    Millicores prev = 100000;
    for (BudgetMs t = plan.min_feasible(j); t <= plan.horizon(); t += 50) {
      const Millicores cur = plan.total_cost(j, t);
      EXPECT_LE(cur, prev);
      prev = cur;
    }
  }
}

TEST_F(TailPlanTest, AllocationMatchesCostAndBudget) {
  const auto plan = make_plan();
  for (std::size_t j = 0; j < 3; ++j) {
    for (BudgetMs t = plan.min_feasible(j) + 100; t <= plan.horizon();
         t += 500) {
      const auto alloc = plan.allocation(j, t);
      ASSERT_EQ(alloc.size(), 3 - j);
      Millicores total = 0;
      BudgetMs latency = 0;
      for (std::size_t i = 0; i < alloc.size(); ++i) {
        total += alloc[i];
        latency += profiles()[j + i].latency_ms(99, alloc[i], 1);
      }
      EXPECT_EQ(total, plan.total_cost(j, t));
      EXPECT_LE(latency, t);  // the P99 plan fits the budget
    }
  }
}

TEST_F(TailPlanTest, ResilienceMatchesAllocation) {
  const auto plan = make_plan();
  const BudgetMs t = plan.min_feasible(0) + 1000;
  const auto alloc = plan.allocation(0, t);
  BudgetMs resilience = 0;
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    resilience += resilience_metric_ms(profiles()[i], 99, alloc[i], 1, 3000);
  }
  EXPECT_EQ(resilience, plan.resilience(0, t));
}

TEST_F(TailPlanTest, InfeasibleBudgetThrows) {
  const auto plan = make_plan();
  EXPECT_FALSE(plan.feasible(0, 0));
  EXPECT_THROW(plan.total_cost(0, 0), std::invalid_argument);
  EXPECT_THROW(plan.allocation(0, 0), std::invalid_argument);
}

TEST_F(TailPlanTest, LargeBudgetUsesKmin) {
  const auto plan = make_plan();
  const auto alloc = plan.allocation(0, plan.horizon());
  for (Millicores k : alloc) EXPECT_EQ(k, 1000);
}

TEST_F(TailPlanTest, TightBudgetUsesLargerSizes) {
  const auto plan = make_plan();
  const auto tight = plan.allocation(0, plan.min_feasible(0));
  Millicores total = 0;
  for (Millicores k : tight) total += k;
  EXPECT_GT(total, 3000);  // forced above the all-Kmin floor
}

TEST_F(TailPlanTest, SuffixIndexOutOfRangeThrows) {
  const auto plan = make_plan();
  EXPECT_THROW(plan.total_cost(3, 1000), std::invalid_argument);
}

// -------------------------------------------------------------- generator --
class GeneratorTest : public HintsTestBase {};

TEST_F(GeneratorTest, BudgetRangeFollowsEq3) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  const auto [tmin, tmax] = gen.budget_range(0);
  BudgetMs expect_min = 0, expect_max = 0;
  for (const auto& p : profiles()) {
    expect_min += p.latency_ms(1, 3000, 1);
    expect_max += p.latency_ms(99, 1000, 1);
  }
  EXPECT_EQ(tmin, expect_min);
  EXPECT_EQ(tmax, expect_max);
}

TEST_F(GeneratorTest, SingleFunctionUsesMinResource) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  // Suffix 2 is just TS: the hint must be the smallest size fitting at P99.
  const BudgetMs t = profiles()[2].latency_ms(99, 2000, 1);
  const RawHint hint = gen.solve_budget(2, t);
  ASSERT_EQ(hint.sizes.size(), 1u);
  EXPECT_LE(profiles()[2].latency_ms(99, hint.sizes[0], 1), t);
  if (hint.sizes[0] > 1000) {
    EXPECT_GT(profiles()[2].latency_ms(99, hint.sizes[0] - 500, 1), t);
  }
  EXPECT_EQ(hint.head_percentile, 99);
}

TEST_F(GeneratorTest, InfeasibleBudgetYieldsEmptyHint) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  EXPECT_TRUE(gen.solve_budget(0, 1).sizes.empty());
}

TEST_F(GeneratorTest, HintSatisfiesBudgetConstraintEq5) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  for (BudgetMs t : {2500, 3000, 3500, 4000}) {
    const RawHint hint = gen.solve_budget(0, t);
    ASSERT_EQ(hint.sizes.size(), 3u) << "t=" << t;
    BudgetMs total = profiles()[0].latency_ms(hint.head_percentile,
                                              hint.sizes[0], 1);
    for (std::size_t i = 1; i < 3; ++i) {
      total += profiles()[i].latency_ms(99, hint.sizes[i], 1);
    }
    EXPECT_LE(total, t);
  }
}

TEST_F(GeneratorTest, HintSatisfiesResilienceGuardEq6) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  for (BudgetMs t : {2500, 3000, 3500, 4500}) {
    const RawHint hint = gen.solve_budget(0, t);
    ASSERT_FALSE(hint.sizes.empty());
    const BudgetMs d = timeout_metric_ms(profiles()[0], hint.head_percentile,
                                         hint.sizes[0], 1);
    BudgetMs r = 0;
    for (std::size_t i = 1; i < 3; ++i) {
      r += resilience_metric_ms(profiles()[i], 99, hint.sizes[i], 1, 3000);
    }
    EXPECT_LE(d, r) << "t=" << t;
  }
}

TEST_F(GeneratorTest, FixedP99NeverExploresLowerPercentiles) {
  auto config = fast_synthesis();
  config.exploration = Exploration::FixedP99;
  const HintsGenerator gen(profiles(), config);
  for (BudgetMs t : {2500, 3500, 4500}) {
    const RawHint hint = gen.solve_budget(0, t);
    EXPECT_EQ(hint.head_percentile, 99);
  }
}

TEST_F(GeneratorTest, HeadOnlyExploresLowerPercentilesSomewhere) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  bool found_lower = false;
  for (BudgetMs t = 2000; t <= 5000 && !found_lower; t += 100) {
    const RawHint hint = gen.solve_budget(0, t);
    if (!hint.sizes.empty() && hint.head_percentile < 99) found_lower = true;
  }
  EXPECT_TRUE(found_lower);
}

TEST_F(GeneratorTest, ExpectedCostNoWorseThanJanusMinus) {
  auto fixed = fast_synthesis();
  fixed.exploration = Exploration::FixedP99;
  const HintsGenerator gen_fixed(profiles(), fixed);
  const HintsGenerator gen(profiles(), fast_synthesis());
  for (BudgetMs t : {2600, 3200, 3800, 4400}) {
    const RawHint a = gen.solve_budget(0, t);
    const RawHint b = gen_fixed.solve_budget(0, t);
    if (a.sizes.empty() || b.sizes.empty()) continue;
    EXPECT_LE(a.expected_cost, b.expected_cost + 1e-9) << "t=" << t;
  }
}

TEST_F(GeneratorTest, WeightShrinksHeadSizeOrPercentile) {
  // Table II: higher weight -> smaller head CPU and lower percentile.
  auto w1 = fast_synthesis();
  auto w3 = fast_synthesis();
  w3.weight = 3.0;
  const HintsGenerator gen1(profiles(), w1);
  const HintsGenerator gen3(profiles(), w3);
  double head1 = 0.0, head3 = 0.0, perc1 = 0.0, perc3 = 0.0;
  int n = 0;
  for (BudgetMs t = 2600; t <= 4600; t += 200) {
    const RawHint a = gen1.solve_budget(0, t);
    const RawHint b = gen3.solve_budget(0, t);
    if (a.sizes.empty() || b.sizes.empty()) continue;
    head1 += a.sizes[0];
    head3 += b.sizes[0];
    perc1 += a.head_percentile;
    perc3 += b.head_percentile;
    ++n;
  }
  ASSERT_GT(n, 3);
  EXPECT_LE(head3, head1);
  EXPECT_LE(perc3, perc1);
}

TEST_F(GeneratorTest, JanusPlusProbesFarMore) {
  auto plus = fast_synthesis();
  plus.exploration = Exploration::HeadAndNext;
  plus.budget_step = 50;
  auto base = fast_synthesis();
  base.budget_step = 50;
  HintsGenerator gen(profiles(), base);
  HintsGenerator gen_plus(profiles(), plus);
  (void)gen.generate_suffix(0);
  (void)gen_plus.generate_suffix(0);
  EXPECT_GT(gen_plus.probes(), gen.probes() * 3);
}

TEST_F(GeneratorTest, JanusPlusCostNoWorseThanJanus) {
  auto plus = fast_synthesis();
  plus.exploration = Exploration::HeadAndNext;
  const HintsGenerator gen(profiles(), fast_synthesis());
  const HintsGenerator gen_plus(profiles(), plus);
  for (BudgetMs t : {3000, 4000}) {
    const RawHint a = gen.solve_budget(0, t);
    const RawHint b = gen_plus.solve_budget(0, t);
    if (a.sizes.empty() || b.sizes.empty()) continue;
    EXPECT_LE(b.expected_cost, a.expected_cost + 1e-9);
  }
}

TEST_F(GeneratorTest, GenerateSuffixCoversFeasibleRange) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  const SuffixHints raw = gen.generate_suffix(0);
  ASSERT_FALSE(raw.hints.empty());
  EXPECT_GE(raw.feasible_from, raw.tmin);
  // Hints are ascending on the step grid; the final hint pins Tmax exactly.
  for (std::size_t i = 1; i < raw.hints.size(); ++i) {
    const BudgetMs gap = raw.hints[i].budget - raw.hints[i - 1].budget;
    EXPECT_GE(gap, 1);
    EXPECT_LE(gap, 5);
  }
  EXPECT_EQ(raw.hints.back().budget, raw.tmax);
}

TEST_F(GeneratorTest, HeadSizeShrinksWithBudgetOverall) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  const SuffixHints raw = gen.generate_suffix(0);
  EXPECT_GT(raw.hints.front().sizes[0], raw.hints.back().sizes[0]);
  EXPECT_EQ(raw.hints.back().sizes[0], 1000);  // loose budget -> Kmin
}

TEST_F(GeneratorTest, ValidationRejectsBadConfig) {
  auto config = fast_synthesis();
  config.weight = 0.5;
  EXPECT_THROW(HintsGenerator(profiles(), config), std::invalid_argument);
  config = fast_synthesis();
  config.head_percentiles = {0};
  EXPECT_THROW(HintsGenerator(profiles(), config), std::invalid_argument);
}

// --------------------------------------------------------------- condense --
class CondenseTest : public HintsTestBase {};

TEST_F(CondenseTest, LosslessHeadSizes) {
  // The paper: "outstanding compression ratio without hurting accuracy".
  // Every raw budget must look up to exactly its raw head size.
  const HintsGenerator gen(profiles(), fast_synthesis());
  const SuffixHints raw = gen.generate_suffix(0);
  const HintsTable table = condense_hints(raw);
  for (const auto& hint : raw.hints) {
    const auto result = table.lookup(hint.budget);
    EXPECT_EQ(result.kind, HintsTable::LookupKind::Hit);
    EXPECT_EQ(result.size, hint.sizes[0]) << "budget=" << hint.budget;
  }
}

TEST_F(CondenseTest, SignificantCompression) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  const SuffixHints raw = gen.generate_suffix(0);
  const HintsTable table = condense_hints(raw);
  EXPECT_LT(table.size(), raw.hints.size() / 5);
  EXPECT_GT(compression_ratio(raw.hints.size(), table.size()), 0.8);
}

TEST_F(CondenseTest, LookupBelowRangeMisses) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  const HintsTable table = condense_hints(gen.generate_suffix(0));
  const auto result = table.lookup(table.min_budget() - 10);
  EXPECT_EQ(result.kind, HintsTable::LookupKind::Miss);
}

TEST_F(CondenseTest, LookupAboveRangeClampsToCheapest) {
  const HintsGenerator gen(profiles(), fast_synthesis());
  const HintsTable table = condense_hints(gen.generate_suffix(0));
  const auto result = table.lookup(table.max_budget() + 100000);
  EXPECT_EQ(result.kind, HintsTable::LookupKind::ClampedHigh);
  EXPECT_EQ(result.size, table.entries().back().size);
}

TEST_F(CondenseTest, EmptyRawGivesEmptyTable) {
  const HintsTable table = condense_hints(SuffixHints{});
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.lookup(1000).kind, HintsTable::LookupKind::Miss);
}

TEST_F(CondenseTest, CompressionRatioEdgeCases) {
  EXPECT_DOUBLE_EQ(compression_ratio(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(compression_ratio(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(compression_ratio(100, 1), 0.99);
}

TEST(HintsTable, RejectsOverlappingEntries) {
  EXPECT_THROW(HintsTable({{0, 10, 1000}, {5, 20, 2000}}),
               std::invalid_argument);
}

TEST(HintsTable, RejectsInvertedRange) {
  EXPECT_THROW(HintsTable({{10, 5, 1000}}), std::invalid_argument);
}

TEST(HintsTable, CsvRoundTrip) {
  const HintsTable table({{100, 200, 3000}, {201, 500, 1500}});
  const HintsTable back = HintsTable::from_csv(table.to_csv());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.lookup(150).size, 3000);
  EXPECT_EQ(back.lookup(300).size, 1500);
}

TEST(HintsTable, GapBetweenEntriesMisses) {
  const HintsTable table({{100, 200, 3000}, {300, 400, 1500}});
  EXPECT_EQ(table.lookup(250).kind, HintsTable::LookupKind::Miss);
  EXPECT_EQ(table.lookup(100).kind, HintsTable::LookupKind::Hit);
  EXPECT_EQ(table.lookup(200).kind, HintsTable::LookupKind::Hit);
}

// ----------------------------------------------------------------- bundle --
class BundleTest : public HintsTestBase {};

TEST_F(BundleTest, OneTablePerSuffix) {
  const HintsBundle bundle = synthesize_bundle(profiles(), fast_synthesis());
  EXPECT_EQ(bundle.suffix_tables.size(), 3u);
  EXPECT_GT(bundle.total_entries(), 0u);
  EXPECT_GT(bundle.stats.raw_hints, bundle.stats.condensed_hints);
  EXPECT_GT(bundle.stats.elapsed_s, 0.0);
  EXPECT_GT(bundle.stats.probes, 0u);
}

TEST_F(BundleTest, MemoryFootprintSmall) {
  // §V-H reports ~12 MB; condensed tables should be far below that.
  const HintsBundle bundle = synthesize_bundle(profiles(), fast_synthesis());
  EXPECT_LT(bundle.memory_bytes(), 1u << 20);
}

TEST_F(BundleTest, HigherWeightFewerHints) {
  // Fig 8: hint-table sizes decrease as the weight increases.
  auto w1 = fast_synthesis();
  auto w3 = fast_synthesis();
  w3.weight = 3.0;
  const auto b1 = synthesize_bundle(profiles(), w1);
  const auto b3 = synthesize_bundle(profiles(), w3);
  EXPECT_LE(b3.total_entries(), b1.total_entries() * 1.3);
}

}  // namespace
}  // namespace janus
