// Tests for src/exp: run-result aggregation, report rendering, and the
// paired-draw contract of the experiment driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "model/workloads.hpp"
#include "policy/policy.hpp"

namespace janus {
namespace {

RunResult synthetic_result() {
  RunResult result;
  result.policy_name = "test";
  result.slo = 2.0;
  for (int i = 1; i <= 10; ++i) {
    RequestRecord r;
    r.e2e = 0.2 * i;           // 0.2 .. 2.0
    r.cpu_mc = 1000.0 * i;
    r.violated = r.e2e > result.slo;
    result.requests.push_back(r);
  }
  return result;
}

TEST(RunResult, MeanCpu) {
  EXPECT_DOUBLE_EQ(synthetic_result().mean_cpu(), 5500.0);
}

TEST(RunResult, ViolationRate) {
  auto result = synthetic_result();
  EXPECT_DOUBLE_EQ(result.violation_rate(), 0.0);
  result.requests[9].violated = true;
  EXPECT_DOUBLE_EQ(result.violation_rate(), 0.1);
}

TEST(RunResult, PercentilesFromDistribution) {
  const auto result = synthetic_result();
  EXPECT_NEAR(result.e2e_percentile(50), 1.1, 1e-9);
  EXPECT_DOUBLE_EQ(result.e2e_distribution().max(), 2.0);
}

TEST(RunResult, EmptySafe) {
  RunResult result;
  EXPECT_DOUBLE_EQ(result.mean_cpu(), 0.0);
  EXPECT_DOUBLE_EQ(result.violation_rate(), 0.0);
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Report, TableAlignsColumns) {
  const std::string out =
      render_table({"a", "long-header"}, {{"xx", "1"}, {"y", "22"}});
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Each data row present.
  EXPECT_NE(out.find("xx"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Report, TableRejectsRaggedRows) {
  EXPECT_THROW(render_table({"a", "b"}, {{"only"}}), std::invalid_argument);
}

TEST(Report, SeriesFormat) {
  const std::string out = render_series("t", {{1.0, 0.5}}, "x", "y");
  EXPECT_NE(out.find("# t"), std::string::npos);
  EXPECT_NE(out.find("1.0000 0.5000"), std::string::npos);
}

TEST(Report, BannerContainsText) {
  EXPECT_NE(banner("hello").find("hello"), std::string::npos);
}

// ------------------------------------------------------ driver contracts --
TEST(Runner, DrawsMatchChainLength) {
  RunConfig config;
  config.requests = 7;
  const auto draws = draw_requests(make_ia(), config);
  ASSERT_EQ(draws.size(), 7u);
  for (const auto& d : draws) {
    EXPECT_EQ(d.ws.size(), 3u);
    EXPECT_EQ(d.interference.size(), 3u);
    for (double i : d.interference) EXPECT_GE(i, 1.0);
    for (double w : d.ws) EXPECT_GT(w, 0.0);
  }
}

TEST(Runner, SeedChangesDraws) {
  RunConfig a, b;
  a.requests = b.requests = 3;
  b.seed = a.seed + 1;
  const auto da = draw_requests(make_ia(), a);
  const auto db = draw_requests(make_ia(), b);
  EXPECT_NE(da[0].ws, db[0].ws);
}

TEST(Runner, CustomColocationRespected) {
  RunConfig config;
  config.requests = 200;
  config.colocation.weights = {1.0};  // always alone
  config.colocation_is_default = false;
  const auto draws = draw_requests(make_ia(), config);
  for (const auto& d : draws) {
    for (double i : d.interference) EXPECT_LT(i, 1.05);  // noise only
  }
}

TEST(Runner, FixedPolicyRunProducesExactSizes) {
  FixedSizingPolicy policy("fixed", {1100, 1200, 1300});
  RunConfig config;
  config.slo = 10.0;
  config.requests = 5;
  const RunResult result = run_workload(make_ia(), policy, config);
  for (const auto& r : result.requests) {
    EXPECT_EQ(r.sizes, (std::vector<Millicores>{1100, 1200, 1300}));
    EXPECT_DOUBLE_EQ(r.cpu_mc, 3600.0);
    EXPECT_FALSE(r.violated);  // 10 s SLO is unreachable by IA
  }
}

TEST(Runner, OpenLoopDeterministicAcrossRuns) {
  // The open-loop path (overlapping Poisson arrivals) must honor the same
  // paired-request contract as the closed loop: a fixed RunConfig yields a
  // bit-identical request sequence on every run.
  RunConfig config;
  config.slo = 3.0;
  config.requests = 120;
  config.open_loop_rate = 40.0;
  const auto run_once = [&config] {
    FixedSizingPolicy policy("fixed", {1500, 1500, 1500});
    return run_workload(make_ia(), policy, config);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  ASSERT_EQ(a.requests.size(), 120u);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].e2e, b.requests[i].e2e);
    EXPECT_DOUBLE_EQ(a.requests[i].cpu_mc, b.requests[i].cpu_mc);
    EXPECT_EQ(a.requests[i].sizes, b.requests[i].sizes);
  }
}

TEST(Runner, OpenLoopDrawsAreArrivalIndependent) {
  // The pre-drawn randomness pairs policies *and* arrival processes: the
  // draws come from their own stream, so reshaping arrivals (or switching
  // to open loop) must not change them.
  RunConfig closed;
  closed.requests = 50;
  RunConfig open = closed;
  open.open_loop_rate = 25.0;
  RunConfig bursty = open;
  bursty.arrivals.kind = ArrivalKind::Mmpp;
  const auto a = draw_requests(make_ia(), closed);
  const auto b = draw_requests(make_ia(), open);
  const auto c = draw_requests(make_ia(), bursty);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ws, b[i].ws);
    EXPECT_EQ(a[i].interference, b[i].interference);
    EXPECT_EQ(a[i].ws, c[i].ws);
    EXPECT_EQ(a[i].interference, c[i].interference);
  }
}

TEST(Runner, OpenLoopServesAllRequestsForEveryArrivalKind) {
  for (const ArrivalKind kind :
       {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal}) {
    RunConfig config;
    config.slo = 3.0;
    config.requests = 80;
    config.open_loop_rate = 30.0;
    config.arrivals.kind = kind;
    FixedSizingPolicy policy("fixed", {1500, 1500, 1500});
    const RunResult result = run_workload(make_ia(), policy, config);
    EXPECT_EQ(result.requests.size(), 80u) << to_string(kind);
  }
}

TEST(Runner, OpenLoopRateOverrideKeepsMmppShape) {
  // open_loop_rate above the spec's default burst_rate (50) must not
  // throw: the override scales the burst rate to preserve the burst/base
  // ratio instead of leaving a stale absolute value behind.
  RunConfig config;
  config.slo = 3.0;
  config.requests = 60;
  config.open_loop_rate = 120.0;
  config.arrivals.kind = ArrivalKind::Mmpp;
  FixedSizingPolicy policy("fixed", {1500, 1500, 1500});
  const RunResult result = run_workload(make_ia(), policy, config);
  EXPECT_EQ(result.requests.size(), 60u);
}

TEST(Runner, PerStageColocationProviderOverridesGlobal) {
  RunConfig config;
  config.requests = 200;
  // Stage 0 always alone; stages 1-2 heavily co-located.
  const StaticCoLocation provider({CoLocationDistribution{{1.0}},
                                   CoLocationDistribution::concentrated(6.0),
                                   CoLocationDistribution::concentrated(6.0)});
  config.colocation_provider = &provider;
  const auto draws = draw_requests(make_ia(), config);
  double stage0_max = 0.0, stage1_min = 1e9;
  for (const auto& d : draws) {
    stage0_max = std::max(stage0_max, d.interference[0]);
    stage1_min = std::min(stage1_min, d.interference[1]);
  }
  EXPECT_LT(stage0_max, 1.05);  // alone: noise only
  EXPECT_GT(stage1_min, 1.3);   // contended: real slowdown

  // Wrong arity: one stage distribution for a three-stage chain.
  const StaticCoLocation narrow({CoLocationDistribution{{1.0}}});
  config.colocation_provider = &narrow;
  EXPECT_THROW(draw_requests(make_ia(), config), std::invalid_argument);
}

TEST(Runner, RejectsBadConfig) {
  FixedSizingPolicy policy("fixed", {1000, 1000, 1000});
  RunConfig config;
  config.slo = 0.0;
  EXPECT_THROW(run_workload(make_ia(), policy, config),
               std::invalid_argument);
  config.slo = 1.0;
  config.requests = 0;
  EXPECT_THROW(run_workload(make_ia(), policy, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace janus
