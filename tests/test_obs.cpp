// Tests for src/obs: the deterministic tracing & metrics plane.
//
// The load-bearing assertions are the byte-identity ones: every exported
// artifact (Chrome trace JSON, span CSV, timeline CSV/JSON) and every
// deterministic counter must be bit-for-bit identical at any shard count
// and across reruns, with the live control plane, autoscaling, and a
// policy mix all active — the same contract the fleet's metrics already
// obey, extended to the observability plane.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace janus {
namespace {

// ------------------------------------------------------------ TraceRing --
TEST(TraceRing, RecordsAndDrainsInOrder) {
  TraceRing ring(8);
  for (std::uint32_t r = 0; r < 5; ++r) {
    SpanRecord span;
    span.request = r;
    ring.record(span);
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.recorded(), 5u);
  std::vector<SpanRecord> out;
  ring.drain_to(out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint32_t r = 0; r < 5; ++r) EXPECT_EQ(out[r].request, r);
}

TEST(TraceRing, OverwritesOldestAndCountsDrops) {
  TraceRing ring(4);
  for (std::uint32_t r = 0; r < 10; ++r) {
    SpanRecord span;
    span.request = r;
    ring.record(span);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.recorded(), 10u);
  std::vector<SpanRecord> out;
  ring.drain_to(out);
  ASSERT_EQ(out.size(), 4u);
  // The four *newest* spans survive, oldest-first.
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].request, 6 + i);
}

TEST(TraceRing, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRing(0), std::invalid_argument);
}

TEST(ObsCounters, MergeIsFieldwiseSum) {
  ObsCounters a;
  a.invocations = 10;
  a.cold_starts = 2;
  a.queued = 1;
  ObsCounters b;
  b.invocations = 5;
  b.spans_recorded = 7;
  b.spans_dropped = 3;
  a.merge(b);
  EXPECT_EQ(a.invocations, 15u);
  EXPECT_EQ(a.cold_starts, 2u);
  EXPECT_EQ(a.queued, 1u);
  EXPECT_EQ(a.spans_recorded, 7u);
  EXPECT_EQ(a.spans_dropped, 3u);
}

// -------------------------------------------------------- PhaseProfiler --
TEST(PhaseProfiler, AccumulatesByNameInFirstBeginOrder) {
  PhaseProfiler prof;
  prof.begin("plan");
  prof.begin("simulate");
  prof.begin("reconcile");
  prof.begin("simulate");  // re-entry folds into the existing row
  prof.end();
  ASSERT_EQ(prof.phases().size(), 3u);
  EXPECT_EQ(prof.phases()[0].name, "plan");
  EXPECT_EQ(prof.phases()[1].name, "simulate");
  EXPECT_EQ(prof.phases()[2].name, "reconcile");
  EXPECT_EQ(prof.phases()[1].entries, 2u);
  for (const auto& phase : prof.phases()) {
    EXPECT_GE(phase.seconds, 0.0);
  }
  EXPECT_GE(prof.total_seconds(), 0.0);
}

// ------------------------------------------------------------ exporters --
std::vector<SpanRecord> two_spans() {
  SpanRecord a;
  a.tenant = 0;
  a.request = 0;
  a.stage = 0;
  a.cold = 1;
  a.start_s = 1.0;
  a.startup_s = 0.45;
  a.exec_s = 0.5;
  SpanRecord b;
  b.tenant = 1;
  b.request = 2;
  b.stage = 1;
  b.queued = 1;
  b.start_s = 2.0;
  b.queued_s = 0.25;
  b.exec_s = 0.75;
  return {a, b};
}

TEST(TraceExport, ChromeJsonShape) {
  const std::string json = trace_to_chrome_json(two_spans());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("cold-start"), std::string::npos);
  EXPECT_NE(json.find("queue"), std::string::npos);
  EXPECT_NE(json.find("exec"), std::string::npos);
  // One process-name metadata event per tenant present in the stream.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // Empty input still yields a well-formed document.
  const std::string empty = trace_to_chrome_json({});
  EXPECT_EQ(empty.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(empty.find("]"), std::string::npos);
}

TEST(TraceExport, CsvShape) {
  const std::string csv = trace_to_csv(two_spans());
  EXPECT_EQ(csv.rfind("tenant,request,stage,start_s,queued_s,startup_s,"
                      "exec_s,pod,node,colocated,size_mc,interference,"
                      "cold,queued",
                      0),
            0u);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(TimelineExport, CsvAndJsonShape) {
  TimelineRow row;
  row.epoch = 3;
  row.sim_time = 15.0;
  row.tenant = 1;
  row.stage = 0;
  row.allocated_pods = 4;
  const std::string csv = timeline_to_csv({row});
  EXPECT_EQ(csv.rfind("epoch,sim_time_s,tenant,stage,observed_peak_busy,"
                      "allocated_pods,pod_mc,coresidency,completed,"
                      "violations,nodes,nodes_ordered,nodes_added,"
                      "nodes_removed,displaced_pods,utilization",
                      0),
            0u);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  const std::string json = timeline_to_json({row});
  EXPECT_EQ(json.rfind("[", 0), 0u);
  EXPECT_NE(json.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(json.find("\"allocated_pods\":4"), std::string::npos);
}

// ------------------------------------------------- fleet-level contract --
/// Fleet-test-grade catalog (shared across runs so each test pays the
/// mean_based synthesis once).
PolicyCatalogConfig tiny_catalog_config() {
  PolicyCatalogConfig cfg;
  cfg.profile_samples = 300;
  cfg.budget_step = 10;
  return cfg;
}

/// Live control plane + autoscaler + a policy mix: the adversarial
/// configuration the determinism assertions must survive.
FleetConfig obs_fleet(int shards, PolicyCatalog* catalog) {
  FleetConfig config;
  config.tenants =
      make_tenant_mix(4, 120, 8.0, ArrivalKind::Poisson, /*mixed_kinds=*/true,
                      {"fixed", "mean_based"});
  config.shards = shards;
  config.seed = 2211;
  config.epoch_s = 5.0;
  config.cluster.nodes = 6;
  config.autoscale.enabled = true;
  config.policy_catalog = tiny_catalog_config();
  config.catalog = catalog;
  config.obs.trace = true;
  config.obs.timeline = true;
  return config;
}

TEST(ObsDeterminism, ArtifactsByteIdenticalAcrossShardsAndReruns) {
  PolicyCatalog catalog(tiny_catalog_config());
  const FleetResult ref = run_fleet(obs_fleet(1, &catalog));
  ASSERT_FALSE(ref.obs.spans.empty());
  ASSERT_FALSE(ref.obs.timeline.empty());
  EXPECT_GT(ref.epochs, 0);
  const std::string ref_trace_json = trace_to_chrome_json(ref.obs.spans);
  const std::string ref_trace_csv = trace_to_csv(ref.obs.spans);
  const std::string ref_tl_json = timeline_to_json(ref.obs.timeline);
  const std::string ref_tl_csv = timeline_to_csv(ref.obs.timeline);
  // shards == 1 is the rerun-identity case; the rest vary the layout.
  for (int shards : {1, 2, 4, 8}) {
    const FleetResult r = run_fleet(obs_fleet(shards, &catalog));
    EXPECT_EQ(trace_to_chrome_json(r.obs.spans), ref_trace_json)
        << "trace JSON diverged at " << shards << " shards";
    EXPECT_EQ(trace_to_csv(r.obs.spans), ref_trace_csv)
        << "trace CSV diverged at " << shards << " shards";
    EXPECT_EQ(timeline_to_json(r.obs.timeline), ref_tl_json)
        << "timeline JSON diverged at " << shards << " shards";
    EXPECT_EQ(timeline_to_csv(r.obs.timeline), ref_tl_csv)
        << "timeline CSV diverged at " << shards << " shards";
    EXPECT_EQ(r.obs.counters.invocations, ref.obs.counters.invocations);
    EXPECT_EQ(r.obs.counters.cold_starts, ref.obs.counters.cold_starts);
    EXPECT_EQ(r.obs.counters.queued, ref.obs.counters.queued);
    EXPECT_EQ(r.obs.counters.spans_recorded,
              ref.obs.counters.spans_recorded);
    EXPECT_EQ(r.obs.counters.spans_dropped, ref.obs.counters.spans_dropped);
    EXPECT_EQ(r.obs.events_executed, ref.obs.events_executed);
  }
}

TEST(ObsDeterminism, RecordingDoesNotPerturbMetrics) {
  PolicyCatalog catalog(tiny_catalog_config());
  FleetConfig off = obs_fleet(2, &catalog);
  off.obs = ObsConfig{};  // everything disabled
  const FleetResult plain = run_fleet(off);
  const FleetResult traced = run_fleet(obs_fleet(2, &catalog));
  EXPECT_EQ(plain.fleet_e2e.sorted_samples(),
            traced.fleet_e2e.sorted_samples());
  EXPECT_DOUBLE_EQ(plain.fleet_p99, traced.fleet_p99);
  EXPECT_DOUBLE_EQ(plain.fleet_mean_cpu_mc, traced.fleet_mean_cpu_mc);
  ASSERT_EQ(plain.epoch_log.size(), traced.epoch_log.size());
  for (std::size_t e = 0; e < plain.epoch_log.size(); ++e) {
    EXPECT_EQ(plain.epoch_log[e].nodes, traced.epoch_log[e].nodes);
    EXPECT_EQ(plain.epoch_log[e].groups_resized,
              traced.epoch_log[e].groups_resized);
  }
  // Off = no sinks armed: nothing recorded, no rows built.
  EXPECT_TRUE(plain.obs.spans.empty());
  EXPECT_TRUE(plain.obs.timeline.empty());
  EXPECT_EQ(plain.obs.counters.queued, 0u);
}

TEST(ObsSampling, StrideSelectsExactlyTheIndexMultiples) {
  PolicyCatalog catalog(tiny_catalog_config());
  const FleetResult full = run_fleet(obs_fleet(2, &catalog));
  FleetConfig strided_config = obs_fleet(2, &catalog);
  strided_config.obs.sample_every = 3;
  const FleetResult strided = run_fleet(strided_config);
  ASSERT_FALSE(strided.obs.spans.empty());
  EXPECT_LT(strided.obs.spans.size(), full.obs.spans.size());
  std::set<std::pair<std::uint32_t, std::uint32_t>> full_keys;
  for (const SpanRecord& span : full.obs.spans) {
    full_keys.insert({span.tenant, span.request});
  }
  for (const SpanRecord& span : strided.obs.spans) {
    EXPECT_EQ(span.request % 3, 0u);
    EXPECT_TRUE(full_keys.count({span.tenant, span.request}))
        << "sampled span is not a subset of the full trace";
  }
}

TEST(ObsRing, BoundedCapacityCountsDropsDeterministically) {
  PolicyCatalog catalog(tiny_catalog_config());
  FleetConfig config = obs_fleet(1, &catalog);
  config.obs.ring_capacity = 16;
  const FleetResult a = run_fleet(config);
  EXPECT_GT(a.obs.counters.spans_dropped, 0u);
  // 4 tenants * 16 slots retained at most.
  EXPECT_LE(a.obs.spans.size(), 4u * 16u);
  EXPECT_EQ(a.obs.counters.spans_recorded,
            static_cast<std::uint64_t>(a.obs.spans.size()) +
                a.obs.counters.spans_dropped);
  config.shards = 4;
  const FleetResult b = run_fleet(config);
  EXPECT_EQ(trace_to_csv(b.obs.spans), trace_to_csv(a.obs.spans));
  EXPECT_EQ(b.obs.counters.spans_dropped, a.obs.counters.spans_dropped);
}

TEST(ObsTimeline, RowsCoverEveryBarrierTenantStageInOrder) {
  PolicyCatalog catalog(tiny_catalog_config());
  const FleetResult result = run_fleet(obs_fleet(2, &catalog));
  ASSERT_FALSE(result.obs.timeline.empty());
  // Rows are sorted by (epoch, tenant, stage) and every epoch contributes
  // the same (tenant, stage) block.
  std::size_t rows_per_epoch = 0;
  while (rows_per_epoch < result.obs.timeline.size() &&
         result.obs.timeline[rows_per_epoch].epoch == 0) {
    ++rows_per_epoch;
  }
  ASSERT_GT(rows_per_epoch, 0u);
  EXPECT_EQ(result.obs.timeline.size(),
            rows_per_epoch * static_cast<std::size_t>(result.epochs));
  std::vector<std::uint64_t> last_completed(4, 0);
  for (std::size_t i = 0; i < result.obs.timeline.size(); ++i) {
    const TimelineRow& row = result.obs.timeline[i];
    if (i > 0) {
      const TimelineRow& prev = result.obs.timeline[i - 1];
      const auto key = std::make_tuple(row.epoch, row.tenant, row.stage);
      const auto prev_key =
          std::make_tuple(prev.epoch, prev.tenant, prev.stage);
      EXPECT_LT(prev_key, key);
    }
    EXPECT_GE(row.allocated_pods, 1);
    EXPECT_GE(row.observed_peak_busy, 0);
    EXPECT_GT(row.pod_mc, 0);
    EXPECT_GE(row.coresidency, 1.0);
    EXPECT_LE(row.violations, row.completed);
    EXPECT_GE(row.completed, last_completed[row.tenant]);
    last_completed[row.tenant] = row.completed;
    EXPECT_GE(row.nodes, 1);
  }
}

TEST(ObsProfile, FleetRunReportsPhases) {
  PolicyCatalog catalog(tiny_catalog_config());
  const FleetResult result = run_fleet(obs_fleet(2, &catalog));
  std::vector<std::string> names;
  for (const auto& phase : result.obs.phases) names.push_back(phase.name);
  EXPECT_EQ(names, (std::vector<std::string>{"plan", "simulate", "reconcile",
                                             "merge"}));
  EXPECT_GT(result.obs.events_executed, 0u);
  EXPECT_GT(result.obs.peak_pending, 0u);
  // The epoch loop re-enters simulate once per barrier plus the final
  // drain pass.
  EXPECT_EQ(result.obs.phases[1].entries,
            static_cast<std::uint64_t>(result.epochs) + 1);
}

TEST(ObsConfigValidation, RejectsBadSamplingStride) {
  PolicyCatalog catalog(tiny_catalog_config());
  FleetConfig config = obs_fleet(1, &catalog);
  config.obs.sample_every = 0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
}

TEST(ObsJson, FleetJsonCarriesObsBlock) {
  PolicyCatalog catalog(tiny_catalog_config());
  const FleetResult result = run_fleet(obs_fleet(2, &catalog));
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"obs\""), std::string::npos);
  EXPECT_NE(json.find("\"events_executed\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"timeline_rows\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"simulate\""), std::string::npos);
}

}  // namespace
}  // namespace janus
