// Tests for src/fleet/chaos: the deterministic chaos engine — spec
// parsing, schedule determinism, the Platform preemption/storm mechanics
// it drives, and the fleet-level contracts (chaos on is bit-identical at
// any shard count; chaos off takes zero different branches; the timeline
// and JSON carry the chaos audit trail).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "fleet/chaos.hpp"
#include "fleet/fleet.hpp"
#include "model/workloads.hpp"
#include "obs/timeline.hpp"
#include "sim/engine.hpp"
#include "sim/platform.hpp"

namespace janus {
namespace {

// ------------------------------------------------------------ spec parse --
TEST(ChaosSpec, ParsesFamilySubsets) {
  const ChaosConfig failures = chaos_config_from_spec("failures");
  EXPECT_TRUE(failures.node_failures);
  EXPECT_FALSE(failures.preemption);
  EXPECT_FALSE(failures.cold_storms);
  EXPECT_FALSE(failures.flash_crowds);
  EXPECT_TRUE(failures.enabled());
  EXPECT_TRUE(failures.needs_epochs());

  const ChaosConfig pair = chaos_config_from_spec("preemption,storms");
  EXPECT_TRUE(pair.preemption);
  EXPECT_TRUE(pair.cold_storms);
  EXPECT_FALSE(pair.node_failures);

  const ChaosConfig flash = chaos_config_from_spec("flash");
  EXPECT_TRUE(flash.flash_crowds);
  EXPECT_TRUE(flash.enabled());
  // Flash crowds alone work on the static path: no barriers needed.
  EXPECT_FALSE(flash.needs_epochs());

  const ChaosConfig all = chaos_config_from_spec("all");
  EXPECT_TRUE(all.node_failures && all.preemption && all.cold_storms &&
              all.flash_crowds);

  const ChaosConfig none = chaos_config_from_spec("none");
  EXPECT_FALSE(none.enabled());
}

TEST(ChaosSpec, RejectsUnknownAndEmptySpecs) {
  EXPECT_THROW(chaos_config_from_spec("bogus"), std::invalid_argument);
  EXPECT_THROW(chaos_config_from_spec("failures,bogus"),
               std::invalid_argument);
  EXPECT_THROW(chaos_config_from_spec(""), std::invalid_argument);
  EXPECT_THROW(chaos_config_from_spec(",,"), std::invalid_argument);
}

// ---------------------------------------------------------------- engine --
TEST(ChaosEngine, ValidatesConfig) {
  const ChaosConfig ok = chaos_config_from_spec("all");
  EXPECT_NO_THROW(ChaosEngine(ok, 1, 1));
  EXPECT_THROW(ChaosEngine(ok, 1, 0), std::invalid_argument);

  ChaosConfig bad = ok;
  bad.node_fail_per_epoch = 1.5;
  EXPECT_THROW(ChaosEngine(bad, 1, 1), std::invalid_argument);
  bad = ok;
  bad.preempt_fraction = 0.0;
  EXPECT_THROW(ChaosEngine(bad, 1, 1), std::invalid_argument);
  bad = ok;
  bad.storm_multiplier = 0.0;
  EXPECT_THROW(ChaosEngine(bad, 1, 1), std::invalid_argument);
  bad = ok;
  bad.storm_epochs = 0;
  EXPECT_THROW(ChaosEngine(bad, 1, 1), std::invalid_argument);
  bad = ok;
  bad.flash_k = 0.0;
  EXPECT_THROW(ChaosEngine(bad, 1, 1), std::invalid_argument);
  bad = ok;
  bad.flash_window_s = 0.0;
  EXPECT_THROW(ChaosEngine(bad, 1, 1), std::invalid_argument);
}

TEST(ChaosEngine, ScheduleIsAPureFunctionOfSeedEpochTenants) {
  const ChaosConfig config = chaos_config_from_spec("all");
  ChaosEngine a(config, 99, 4);
  ChaosEngine b(config, 99, 4);
  ChaosEngine other(config, 100, 4);
  bool any_difference = false;
  for (int epoch = 0; epoch < 50; ++epoch) {
    const auto pa = a.plan_barrier(epoch, 8);
    const auto pb = b.plan_barrier(epoch, 8);
    EXPECT_EQ(pa.failed_nodes, pb.failed_nodes) << "epoch " << epoch;
    EXPECT_EQ(pa.preempt_tenants, pb.preempt_tenants) << "epoch " << epoch;
    EXPECT_DOUBLE_EQ(pa.storm_multiplier, pb.storm_multiplier);
    EXPECT_EQ(pa.storm_started, pb.storm_started);
    const auto po = other.plan_barrier(epoch, 8);
    any_difference = any_difference ||
                     pa.failed_nodes != po.failed_nodes ||
                     pa.preempt_tenants != po.preempt_tenants;
  }
  EXPECT_TRUE(any_difference) << "chaos seed did not change the schedule";
  // Flash windows: keyed per tenant, stable, and inside the configured
  // stagger range.
  ArrivalSpec spec;
  spec.rate = 5.0;
  const ArrivalSpec w1 = a.apply_flash(2, spec);
  const ArrivalSpec w2 = b.apply_flash(2, spec);
  EXPECT_DOUBLE_EQ(w1.flash_t0_s, w2.flash_t0_s);
  EXPECT_DOUBLE_EQ(w1.flash_k, config.flash_k);
  EXPECT_GE(w1.flash_t0_s, config.flash_start_s);
  EXPECT_LT(w1.flash_t0_s, config.flash_start_s + config.flash_spread_s);
  EXPECT_DOUBLE_EQ(w1.flash_t1_s - w1.flash_t0_s, config.flash_window_s);
}

TEST(ChaosEngine, ArmingOneFamilyNeverShiftsAnother) {
  // The barrier rng is consumed in a fixed order regardless of which
  // families are armed: failures-only and all-families must agree on
  // exactly which barriers fail a node.
  ChaosEngine only_failures(chaos_config_from_spec("failures"), 7, 3);
  ChaosEngine everything(chaos_config_from_spec("all"), 7, 3);
  for (int epoch = 0; epoch < 50; ++epoch) {
    EXPECT_EQ(only_failures.plan_barrier(epoch, 10).failed_nodes,
              everything.plan_barrier(epoch, 10).failed_nodes)
        << "epoch " << epoch;
  }
}

TEST(ChaosEngine, RespectsMinNodesFloor) {
  ChaosConfig config = chaos_config_from_spec("failures");
  config.node_fail_per_epoch = 1.0;  // fail at every opportunity
  config.min_nodes = 4;
  ChaosEngine engine(config, 1, 1);
  for (int epoch = 0; epoch < 20; ++epoch) {
    EXPECT_TRUE(engine.plan_barrier(epoch, 4).failed_nodes.empty());
    const auto plan = engine.plan_barrier(epoch, 5);
    ASSERT_EQ(plan.failed_nodes.size(), 1u);
    EXPECT_GE(plan.failed_nodes[0], 0);
    EXPECT_LT(plan.failed_nodes[0], 5);
  }
}

TEST(ChaosEngine, StormsLastStormEpochsBarriers) {
  ChaosConfig config = chaos_config_from_spec("storms");
  config.storm_per_epoch = 1.0;
  config.storm_epochs = 3;
  ChaosEngine engine(config, 1, 1);
  const auto first = engine.plan_barrier(0, 4);
  EXPECT_TRUE(first.storm_started);
  EXPECT_DOUBLE_EQ(first.storm_multiplier, config.storm_multiplier);
  // Two more covered barriers; no new storm starts while one is active.
  for (int epoch = 1; epoch < 3; ++epoch) {
    const auto plan = engine.plan_barrier(epoch, 4);
    EXPECT_FALSE(plan.storm_started) << "epoch " << epoch;
    EXPECT_DOUBLE_EQ(plan.storm_multiplier, config.storm_multiplier);
  }
  // The storm expired; with p = 1 the next barrier starts a fresh one.
  const auto next = engine.plan_barrier(3, 4);
  EXPECT_TRUE(next.storm_started);
}

// ------------------------------------------------- platform mechanics --
PlatformConfig small_platform() {
  PlatformConfig config;
  config.nodes = 2;
  config.pool.prewarm_per_function = 2;
  return config;
}

std::vector<FunctionModel> two_models() {
  return {make_micro_function(ResourceDim::Cpu),
          make_micro_function(ResourceDim::Network)};
}

TEST(PlatformChaos, PreemptedInvocationRetriesAndRepaysExecution) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  InvocationOutcome got;
  int completions = 0;
  platform.invoke(0, 2000, 1, 1.0, 1.0, [&](const InvocationOutcome& o) {
    got = o;
    ++completions;
  });
  // The invocation is in flight; kill its pod at the "barrier".
  EXPECT_EQ(platform.preempt_busy(0, 8), 1);
  EXPECT_EQ(platform.preempted_pods(), 1u);
  engine.run();
  // Exactly one completion: the retry re-enters the acquire path and the
  // caller never observes the preemption except through the outcome.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(got.preempted, 1);
  EXPECT_EQ(platform.requeued(), 1u);
  // The retry is not a new invocation...
  EXPECT_EQ(platform.invocations(), 1u);
  // ...but it re-pays the full execution (same interference draw).
  const double single = two_models()[0].exec_time(2000, 1, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(got.exec_s, 2.0 * single);
}

TEST(PlatformChaos, PreemptBusyOnlyKillsMatchingBusyPods) {
  SimEngine engine;
  Platform platform(engine, small_platform(), two_models());
  // Nothing busy: nothing to kill (and no crash).
  EXPECT_EQ(platform.preempt_busy(0, 4), 0);
  int completions = 0;
  platform.invoke(1, 1000, 1, 1.0, 1.0,
                  [&](const InvocationOutcome&) { ++completions; });
  // Wrong function index: the busy pod belongs to fn 1.
  EXPECT_EQ(platform.preempt_busy(0, 4), 0);
  EXPECT_EQ(platform.preempt_busy(1, 0), 0);  // zero budget
  engine.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(platform.requeued(), 0u);
  EXPECT_THROW(platform.preempt_busy(99, 1), std::invalid_argument);
}

TEST(PlatformChaos, StartupMultiplierScalesWarmAndColdStarts) {
  PlatformConfig config = small_platform();
  config.pool.prewarm_per_function = 0;  // force cold starts
  Seconds calm = -1.0, stormy = -1.0;
  {
    SimEngine engine;
    Platform platform(engine, config, two_models());
    platform.invoke(0, 1000, 1, 1.0, 1.0,
                    [&](const InvocationOutcome& o) { calm = o.startup_s; });
    engine.run();
  }
  {
    SimEngine engine;
    Platform platform(engine, config, two_models());
    platform.set_startup_multiplier(8.0);
    EXPECT_DOUBLE_EQ(platform.startup_multiplier(), 8.0);
    platform.invoke(0, 1000, 1, 1.0, 1.0, [&](const InvocationOutcome& o) {
      stormy = o.startup_s;
    });
    engine.run();
    EXPECT_THROW(platform.set_startup_multiplier(0.0),
                 std::invalid_argument);
  }
  ASSERT_GT(calm, 0.0);
  EXPECT_DOUBLE_EQ(stormy, 8.0 * calm);
}

// ----------------------------------------------------------------- fleet --
FleetConfig chaos_fleet(int shards) {
  FleetConfig config;
  config.tenants = make_tenant_mix(5, 150, 8.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/true);
  config.shards = shards;
  config.seed = 99;
  config.epoch_s = 5.0;
  config.cluster.nodes = 6;
  config.chaos = chaos_config_from_spec("all");
  config.chaos.seed = 3;
  // A short run should still inject every family a few times.
  config.chaos.node_fail_per_epoch = 0.5;
  config.chaos.preempt_per_epoch = 0.5;
  config.chaos.storm_per_epoch = 0.5;
  config.chaos.storm_epochs = 1;
  config.chaos.flash_spread_s = 20.0;
  config.chaos.flash_window_s = 10.0;
  return config;
}

void expect_chaos_runs_identical(const FleetResult& one,
                                 const FleetResult& many) {
  ASSERT_EQ(one.tenants.size(), many.tenants.size());
  for (std::size_t t = 0; t < one.tenants.size(); ++t) {
    EXPECT_EQ(one.tenants[t].e2e.sorted_samples(),
              many.tenants[t].e2e.sorted_samples())
        << "tenant " << t;
    EXPECT_DOUBLE_EQ(one.tenants[t].violation_rate,
                     many.tenants[t].violation_rate);
  }
  EXPECT_EQ(one.fleet_e2e.sorted_samples(), many.fleet_e2e.sorted_samples());
  EXPECT_DOUBLE_EQ(one.fleet_p99, many.fleet_p99);
  EXPECT_DOUBLE_EQ(one.fleet_violation_rate, many.fleet_violation_rate);
  // The chaos columns of the epoch log are part of the bit-identical set.
  ASSERT_EQ(one.epoch_log.size(), many.epoch_log.size());
  for (std::size_t e = 0; e < one.epoch_log.size(); ++e) {
    const EpochChaos& x = one.epoch_log[e].chaos;
    const EpochChaos& y = many.epoch_log[e].chaos;
    EXPECT_EQ(x.failed_nodes, y.failed_nodes) << "epoch " << e;
    EXPECT_EQ(x.displaced_pods, y.displaced_pods) << "epoch " << e;
    EXPECT_EQ(x.stranded_pods, y.stranded_pods) << "epoch " << e;
    EXPECT_EQ(x.preempted_pods, y.preempted_pods) << "epoch " << e;
    EXPECT_DOUBLE_EQ(x.storm_multiplier, y.storm_multiplier) << "epoch " << e;
    EXPECT_EQ(one.epoch_log[e].nodes, many.epoch_log[e].nodes);
    EXPECT_DOUBLE_EQ(one.epoch_log[e].utilization,
                     many.epoch_log[e].utilization);
  }
  // So is the event log itself.
  ASSERT_EQ(one.chaos_log.size(), many.chaos_log.size());
  for (std::size_t i = 0; i < one.chaos_log.size(); ++i) {
    const ChaosEvent& x = one.chaos_log[i];
    const ChaosEvent& y = many.chaos_log[i];
    EXPECT_EQ(static_cast<int>(x.family), static_cast<int>(y.family));
    EXPECT_EQ(x.epoch, y.epoch);
    EXPECT_DOUBLE_EQ(x.sim_time, y.sim_time);
    EXPECT_EQ(x.tenant, y.tenant);
    EXPECT_EQ(x.node, y.node);
    EXPECT_EQ(x.pods, y.pods);
    EXPECT_EQ(x.stranded, y.stranded);
    EXPECT_DOUBLE_EQ(x.magnitude, y.magnitude);
    EXPECT_DOUBLE_EQ(x.until_s, y.until_s);
  }
  EXPECT_EQ(one.chaos.node_failures, many.chaos.node_failures);
  EXPECT_EQ(one.chaos.displaced_pods, many.chaos.displaced_pods);
  EXPECT_EQ(one.chaos.stranded_pods, many.chaos.stranded_pods);
  EXPECT_EQ(one.chaos.preemption_bursts, many.chaos.preemption_bursts);
  EXPECT_EQ(one.chaos.preempted_pods, many.chaos.preempted_pods);
  EXPECT_EQ(one.chaos.storms, many.chaos.storms);
  EXPECT_EQ(one.chaos.flash_windows, many.chaos.flash_windows);
  EXPECT_EQ(one.chaos.requeued_invocations, many.chaos.requeued_invocations);
}

TEST(ChaosFleet, BitIdenticalAcrossShardCountsAndReruns) {
  const FleetResult one = run_fleet(chaos_fleet(1));
  ASSERT_TRUE(one.chaos_enabled);
  ASSERT_GT(one.epochs, 1);
  // The schedule actually injected something, or the test proves nothing.
  ASSERT_GT(one.chaos.preempted_pods + one.chaos.node_failures +
                one.chaos.storms,
            0);
  expect_chaos_runs_identical(one, run_fleet(chaos_fleet(1)));  // rerun
  for (int shards : {2, 4, 8}) {
    SCOPED_TRACE(shards);
    expect_chaos_runs_identical(one, run_fleet(chaos_fleet(shards)));
  }
}

TEST(ChaosFleet, InjectionCountsMatchAnIndependentReplay) {
  const FleetConfig config = chaos_fleet(1);
  const FleetResult result = run_fleet(config);

  // Replay the schedule with a fresh engine.  Autoscaling is off, so the
  // node count the real run handed plan_barrier is exactly the initial
  // pool minus the failures injected so far.
  ChaosEngine replay(config.chaos, config.seed, config.tenants.size());
  int nodes = config.cluster.nodes;
  int failures = 0, storms = 0;
  std::size_t burst_opportunities = 0;
  for (int epoch = 0; epoch < result.epochs; ++epoch) {
    const auto plan = replay.plan_barrier(epoch, nodes);
    failures += static_cast<int>(plan.failed_nodes.size());
    nodes -= static_cast<int>(plan.failed_nodes.size());
    burst_opportunities += plan.preempt_tenants.size();
    storms += plan.storm_started ? 1 : 0;
  }
  EXPECT_EQ(result.chaos.node_failures, failures);
  EXPECT_EQ(result.final_nodes, nodes);
  EXPECT_EQ(result.chaos.storms, storms);
  // A planned burst is only recorded when the victim had busy pods, so the
  // recorded bursts are a subset of the scheduled opportunities.
  EXPECT_LE(static_cast<std::size_t>(result.chaos.preemption_bursts),
            burst_opportunities);
  // One flash window per tenant, scheduled at plan time (epoch -1).
  EXPECT_EQ(result.chaos.flash_windows,
            static_cast<int>(config.tenants.size()));

  // The stats are the fold of the event log.
  int ev_failures = 0, ev_bursts = 0, ev_storms = 0, ev_flash = 0;
  int ev_displaced = 0, ev_preempted = 0;
  for (const ChaosEvent& ev : result.chaos_log) {
    switch (ev.family) {
      case ChaosFamily::NodeFailure:
        ++ev_failures;
        ev_displaced += ev.pods;
        EXPECT_GE(ev.node, 0);
        break;
      case ChaosFamily::Preemption:
        ++ev_bursts;
        ev_preempted += ev.pods;
        EXPECT_GT(ev.pods, 0);
        break;
      case ChaosFamily::ColdStorm:
        ++ev_storms;
        EXPECT_DOUBLE_EQ(ev.magnitude, config.chaos.storm_multiplier);
        break;
      case ChaosFamily::FlashCrowd:
        ++ev_flash;
        EXPECT_EQ(ev.epoch, -1);
        EXPECT_DOUBLE_EQ(ev.magnitude, config.chaos.flash_k);
        EXPECT_DOUBLE_EQ(ev.until_s - ev.sim_time,
                         config.chaos.flash_window_s);
        break;
    }
  }
  EXPECT_EQ(result.chaos.node_failures, ev_failures);
  EXPECT_EQ(result.chaos.displaced_pods, ev_displaced);
  EXPECT_EQ(result.chaos.preemption_bursts, ev_bursts);
  EXPECT_EQ(result.chaos.preempted_pods, ev_preempted);
  EXPECT_EQ(result.chaos.storms, ev_storms);
  EXPECT_EQ(result.chaos.flash_windows, ev_flash);
  // Every killed pod's in-flight invocation re-queued exactly once.
  EXPECT_EQ(result.chaos.requeued_invocations,
            static_cast<std::uint64_t>(result.chaos.preempted_pods));
}

TEST(ChaosFleet, DisabledLeavesResultCalm) {
  FleetConfig config = chaos_fleet(2);
  config.chaos = chaos_config_from_spec("none");
  const FleetResult calm = run_fleet(config);
  EXPECT_FALSE(calm.chaos_enabled);
  EXPECT_TRUE(calm.chaos_log.empty());
  EXPECT_EQ(calm.chaos.preempted_pods, 0);
  EXPECT_EQ(calm.chaos.node_failures, 0);
  EXPECT_EQ(calm.chaos.requeued_invocations, 0u);
  // ...and is bit-identical to a config that never mentioned chaos.
  FleetConfig untouched = chaos_fleet(2);
  untouched.chaos = ChaosConfig{};
  const FleetResult base = run_fleet(untouched);
  EXPECT_EQ(calm.fleet_e2e.sorted_samples(), base.fleet_e2e.sorted_samples());
  EXPECT_DOUBLE_EQ(calm.fleet_p99, base.fleet_p99);
  // Chaos changed the metrics (otherwise the whole engine is a no-op).
  const FleetResult stormy = run_fleet(chaos_fleet(2));
  EXPECT_NE(calm.fleet_e2e.sorted_samples(),
            stormy.fleet_e2e.sorted_samples());
  // The calm epoch log records calm chaos columns.
  for (const EpochSnapshot& snap : calm.epoch_log) {
    EXPECT_EQ(snap.chaos.failed_nodes, 0);
    EXPECT_EQ(snap.chaos.preempted_pods, 0);
    EXPECT_DOUBLE_EQ(snap.chaos.storm_multiplier, 1.0);
  }
}

TEST(ChaosFleet, FlashCrowdsWorkOnTheStaticPath) {
  FleetConfig config = chaos_fleet(1);
  config.epoch_s = kNoEpochs;  // no barriers at all
  config.chaos = chaos_config_from_spec("flash");
  const FleetResult result = run_fleet(config);
  EXPECT_EQ(result.epochs, 0);
  EXPECT_TRUE(result.chaos_enabled);
  EXPECT_EQ(result.chaos.flash_windows,
            static_cast<int>(config.tenants.size()));
  EXPECT_EQ(result.chaos_log.size(), config.tenants.size());
  EXPECT_EQ(result.chaos.node_failures, 0);
  EXPECT_EQ(result.chaos.preempted_pods, 0);
  EXPECT_EQ(result.chaos.storms, 0);
  // Flash tenants are numbered in tenant order at plan time.
  for (std::size_t t = 0; t < result.chaos_log.size(); ++t) {
    EXPECT_EQ(result.chaos_log[t].tenant, static_cast<int>(t));
  }
}

TEST(ChaosFleet, BarrierFamiliesRequireFiniteEpochs) {
  FleetConfig config = chaos_fleet(1);
  config.epoch_s = kNoEpochs;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
}

TEST(ChaosFleet, TimelineRowsCarryChaosColumns) {
  FleetConfig config = chaos_fleet(2);
  config.obs.timeline = true;
  const FleetResult result = run_fleet(config);
  ASSERT_FALSE(result.obs.timeline.empty());
  // Every row repeats its epoch's chaos snapshot (epochs are 0-based:
  // epoch_log[e].epoch == e).
  for (const TimelineRow& row : result.obs.timeline) {
    ASSERT_LT(static_cast<std::size_t>(row.epoch), result.epoch_log.size());
    const EpochChaos& chaos =
        result.epoch_log[static_cast<std::size_t>(row.epoch)].chaos;
    EXPECT_EQ(row.chaos_failed_nodes, chaos.failed_nodes);
    EXPECT_EQ(row.chaos_preempted_pods, chaos.preempted_pods);
    EXPECT_EQ(row.chaos_stranded_pods, chaos.stranded_pods);
    EXPECT_DOUBLE_EQ(row.chaos_storm_mult, chaos.storm_multiplier);
  }
  // The CSV header ends with the chaos columns (appended, so pre-chaos
  // consumers keep their column positions).
  const std::string csv = timeline_to_csv(result.obs.timeline);
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_NE(header.find(",chaos_failed_nodes,chaos_preempted_pods,"
                        "chaos_stranded_pods,chaos_storm_mult"),
            std::string::npos);
  const std::string json = timeline_to_json(result.obs.timeline);
  EXPECT_NE(json.find("\"chaos_storm_mult\":"), std::string::npos);
}

TEST(ChaosFleet, JsonCarriesChaosSectionOnlyWhenEnabled) {
  const FleetResult stormy = run_fleet(chaos_fleet(1));
  const std::string json = stormy.to_json();
  EXPECT_NE(json.find("\"chaos\""), std::string::npos);
  EXPECT_NE(json.find("\"preempted_pods\""), std::string::npos);
  EXPECT_NE(json.find("\"flash_windows\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);

  FleetConfig calm_config = chaos_fleet(1);
  calm_config.chaos = ChaosConfig{};
  const FleetResult calm = run_fleet(calm_config);
  EXPECT_EQ(calm.to_json().find("\"chaos\""), std::string::npos);
}

}  // namespace
}  // namespace janus
