// Tests for src/adapter: lookup flow, Kmax fallback, supervision counters,
// regeneration feedback, bundle reinstall.
#include <gtest/gtest.h>

#include "adapter/adapter.hpp"

namespace janus {
namespace {

/// Hand-built bundle: stage 0 covers [1000, 2000] ms, stage 1 [500, 900] ms.
HintsBundle tiny_bundle() {
  HintsBundle bundle;
  bundle.suffix_tables.push_back(
      HintsTable({{1000, 1500, 3000}, {1501, 2000, 1500}}));
  bundle.suffix_tables.push_back(HintsTable({{500, 900, 1200}}));
  return bundle;
}

TEST(Adapter, HitReturnsTableSize) {
  Adapter adapter(tiny_bundle());
  EXPECT_EQ(adapter.size_for_stage(0, 1.2), 3000);
  EXPECT_EQ(adapter.size_for_stage(0, 1.8), 1500);
  EXPECT_EQ(adapter.stats().hits, 2u);
  EXPECT_EQ(adapter.stats().misses, 0u);
}

TEST(Adapter, MissFallsBackToKmax) {
  AdapterConfig config;
  config.kmax = 2800;
  Adapter adapter(tiny_bundle(), config);
  EXPECT_EQ(adapter.size_for_stage(0, 0.4), 2800);  // below table range
  EXPECT_EQ(adapter.stats().misses, 1u);
}

TEST(Adapter, ClampedHighUsesCheapestEntry) {
  Adapter adapter(tiny_bundle());
  EXPECT_EQ(adapter.size_for_stage(0, 10.0), 1500);
  EXPECT_EQ(adapter.stats().clamped, 1u);
  EXPECT_EQ(adapter.stats().misses, 0u);
}

TEST(Adapter, BudgetFloorsToMs) {
  Adapter adapter(tiny_bundle());
  // 0.9999 s floors to 999 ms — below the 1000 ms table start: a miss.
  adapter.size_for_stage(0, 0.9999);
  EXPECT_EQ(adapter.stats().misses, 1u);
}

TEST(Adapter, NegativeBudgetIsMiss) {
  Adapter adapter(tiny_bundle());
  EXPECT_EQ(adapter.size_for_stage(1, -0.5), kDefaultKmax);
  EXPECT_EQ(adapter.stats().misses, 1u);
}

TEST(Adapter, PerStageTables) {
  Adapter adapter(tiny_bundle());
  EXPECT_EQ(adapter.size_for_stage(1, 0.6), 1200);
  EXPECT_THROW(adapter.size_for_stage(2, 1.0), std::invalid_argument);
}

TEST(Adapter, PeekHasNoSideEffects) {
  Adapter adapter(tiny_bundle());
  const auto result = adapter.peek(0, 1.2);
  EXPECT_EQ(result.kind, HintsTable::LookupKind::Hit);
  EXPECT_EQ(adapter.stats().lookups(), 0u);
}

TEST(Adapter, MissRateComputation) {
  Adapter adapter(tiny_bundle());
  adapter.size_for_stage(0, 1.2);  // hit
  adapter.size_for_stage(0, 0.1);  // miss
  EXPECT_DOUBLE_EQ(adapter.stats().miss_rate(), 0.5);
}

TEST(Adapter, RegenerationNeedsMinObservations) {
  AdapterConfig config;
  config.min_observations = 10;
  config.miss_rate_threshold = 0.2;
  Adapter adapter(tiny_bundle(), config);
  for (int i = 0; i < 5; ++i) adapter.size_for_stage(0, 0.1);  // all misses
  EXPECT_FALSE(adapter.regeneration_suggested());  // too few observations
  for (int i = 0; i < 5; ++i) adapter.size_for_stage(0, 0.1);
  EXPECT_TRUE(adapter.regeneration_suggested());
}

TEST(Adapter, FeedbackFiresOnceOnThresholdCrossing) {
  AdapterConfig config;
  config.min_observations = 4;
  config.miss_rate_threshold = 0.5;
  Adapter adapter(tiny_bundle(), config);
  int calls = 0;
  double reported = 0.0;
  adapter.set_feedback([&](double rate) {
    ++calls;
    reported = rate;
  });
  for (int i = 0; i < 8; ++i) adapter.size_for_stage(0, 0.1);
  EXPECT_EQ(calls, 1);
  EXPECT_GT(reported, 0.5);
}

TEST(Adapter, LowMissRateNeverTriggers) {
  AdapterConfig config;
  config.min_observations = 10;
  Adapter adapter(tiny_bundle(), config);
  int calls = 0;
  adapter.set_feedback([&](double) { ++calls; });
  for (int i = 0; i < 200; ++i) adapter.size_for_stage(0, 1.2);  // hits
  adapter.size_for_stage(0, 0.1);  // one miss in 201: 0.5% < 1% default
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(adapter.regeneration_suggested());
}

TEST(Adapter, InstallBundleResetsStats) {
  Adapter adapter(tiny_bundle());
  adapter.size_for_stage(0, 0.1);
  EXPECT_EQ(adapter.stats().misses, 1u);
  adapter.install_bundle(tiny_bundle());
  EXPECT_EQ(adapter.stats().lookups(), 0u);
}

TEST(Adapter, InstallBundleRejectsShapeChange) {
  Adapter adapter(tiny_bundle());
  HintsBundle other;
  other.suffix_tables.push_back(HintsTable({{1, 2, 1000}}));
  EXPECT_THROW(adapter.install_bundle(std::move(other)),
               std::invalid_argument);
}

TEST(Adapter, ConfigValidation) {
  AdapterConfig config;
  config.kmax = 0;
  EXPECT_THROW(Adapter(tiny_bundle(), config), std::invalid_argument);
  config = {};
  config.miss_rate_threshold = 0.0;
  EXPECT_THROW(Adapter(tiny_bundle(), config), std::invalid_argument);
  EXPECT_THROW(Adapter(HintsBundle{}), std::invalid_argument);
}

TEST(Adapter, MemoryBytesIncludesTables) {
  Adapter adapter(tiny_bundle());
  EXPECT_GT(adapter.memory_bytes(), sizeof(Adapter));
}

TEST(AdapterStats, EmptyStatsSafe) {
  AdapterStats stats;
  EXPECT_EQ(stats.lookups(), 0u);
  EXPECT_DOUBLE_EQ(stats.miss_rate(), 0.0);
}

}  // namespace
}  // namespace janus
