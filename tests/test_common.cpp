// Tests for src/common: RNG, thread pool, CSV, types, logging.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace janus {
namespace {

// ---------------------------------------------------------------- types --
TEST(Types, MsToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(ms_to_s(1500), 1.5);
  EXPECT_EQ(s_to_ms(1.5), 1500);
  EXPECT_EQ(s_to_ms(ms_to_s(12345)), 12345);
}

TEST(Types, SToMsRounds) {
  EXPECT_EQ(s_to_ms(0.0014), 1);
  EXPECT_EQ(s_to_ms(0.0016), 2);
}

TEST(Types, SToMsRoundsNegativeSymmetrically) {
  EXPECT_EQ(s_to_ms(-0.0014), -1);
  EXPECT_EQ(s_to_ms(-0.0016), -2);
  EXPECT_EQ(s_to_ms(-0.0017), -2);
  EXPECT_EQ(s_to_ms(-1.5), -1500);
  EXPECT_EQ(s_to_ms(0.0), 0);
}

TEST(Types, RequireThrows) {
  EXPECT_THROW(require(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(require(true, "fine"));
}

// ------------------------------------------------------------------ rng --
TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng root(31);
  Rng a = root.split(0);
  Rng b = root.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng r1(37), r2(37);
  Rng a = r1.split(5);
  Rng b = r2.split(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(sm.next(), first);
}

// ---------------------------------------------------------- thread pool --
TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("x"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ParallelForPropagatesFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForPropagatesWithConcurrentFailures) {
  ThreadPool pool(4);
  std::atomic<int> attempts{0};
  // Every iteration throws, so several chunk tasks fail concurrently; the
  // first exception must propagate and the rest be swallowed.
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t) {
                                   attempts.fetch_add(1);
                                   throw std::runtime_error("concurrent");
                                 }),
               std::runtime_error);
  EXPECT_GT(attempts.load(), 0);
  // The pool must stay usable after a failed parallel_for.
  auto fut = pool.submit([] { return 7; });
  EXPECT_EQ(fut.get(), 7);
}

TEST(ThreadPool, SizeMatchesRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

// ------------------------------------------------------------------ csv --
TEST(Csv, EncodeDecodeRoundTrip) {
  CsvDoc doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"3", "4"}};
  const CsvDoc back = csv_decode(csv_encode(doc));
  EXPECT_EQ(back.header, doc.header);
  EXPECT_EQ(back.rows, doc.rows);
}

TEST(Csv, QuotedFieldsWithCommasAndQuotes) {
  CsvDoc doc;
  doc.header = {"x"};
  doc.rows = {{"hello, \"world\""}, {"line\nbreak"}};
  const CsvDoc back = csv_decode(csv_encode(doc));
  EXPECT_EQ(back.rows[0][0], "hello, \"world\"");
  EXPECT_EQ(back.rows[1][0], "line\nbreak");
}

TEST(Csv, ColumnLookup) {
  CsvDoc doc;
  doc.header = {"alpha", "beta"};
  EXPECT_EQ(doc.column("beta"), 1u);
  EXPECT_THROW(doc.column("gamma"), std::invalid_argument);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvDoc doc;
  doc.header = {"a", "b"};
  doc.rows = {{"only-one"}};
  EXPECT_THROW(csv_encode(doc), std::invalid_argument);
}

TEST(Csv, EmptyDocumentDecodes) {
  const CsvDoc doc = csv_decode("");
  EXPECT_TRUE(doc.header.empty());
  EXPECT_TRUE(doc.rows.empty());
}

TEST(Csv, CrLfTolerated) {
  const CsvDoc doc = csv_decode("a,b\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, CrLfInputWithQuotedFields) {
  // CRLF line endings combined with quoting must not confuse the parser.
  const CsvDoc doc = csv_decode("a,b\r\n\"x, y\",\"q\"\"z\"\r\n3,4\r\n");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "x, y");
  EXPECT_EQ(doc.rows[0][1], "q\"z");
  EXPECT_EQ(doc.rows[1][0], "3");
}

TEST(Csv, QuotedFieldKeepsEmbeddedNewlines) {
  // Inside quotes, both LF and CRLF are literal field content.
  const CsvDoc lf = csv_decode("h\n\"line1\nline2\"\n");
  ASSERT_EQ(lf.rows.size(), 1u);
  EXPECT_EQ(lf.rows[0][0], "line1\nline2");

  const CsvDoc crlf = csv_decode("h\r\n\"line1\r\nline2\"\r\n");
  ASSERT_EQ(crlf.rows.size(), 1u);
  EXPECT_EQ(crlf.rows[0][0], "line1\r\nline2");
}

TEST(Csv, SingleColumnEmptyFieldRoundTrips) {
  // An empty lone field must not be confused with a blank line: it is
  // encoded quoted ("") and decoded back as a real row.
  CsvDoc doc;
  doc.header = {"x"};
  doc.rows = {{""}, {"a"}};
  const CsvDoc back = csv_decode(csv_encode(doc));
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_EQ(back.rows[0][0], "");
  EXPECT_EQ(back.rows[1][0], "a");
  // Genuinely blank lines are still tolerated.
  const CsvDoc blank = csv_decode("x\n\na\n");
  ASSERT_EQ(blank.rows.size(), 1u);
  EXPECT_EQ(blank.rows[0][0], "a");
}

TEST(Csv, CarriageReturnFieldRoundTrips) {
  // A bare \r in a field must be quoted on encode, or the CRLF-tolerant
  // reader would strip it on the way back in.
  CsvDoc doc;
  doc.header = {"x"};
  doc.rows = {{"a\rb"}, {"c\r\nd"}};
  const CsvDoc back = csv_decode(csv_encode(doc));
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_EQ(back.rows[0][0], "a\rb");
  EXPECT_EQ(back.rows[1][0], "c\r\nd");
}

// ------------------------------------------------------------------ log --
TEST(Log, LevelFromStringParsesAllLevels) {
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::Debug);
  EXPECT_EQ(log_level_from_string("info"), LogLevel::Info);
  EXPECT_EQ(log_level_from_string("warn"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_string("error"), LogLevel::Error);
  EXPECT_EQ(log_level_from_string("off"), LogLevel::Off);
  EXPECT_THROW(log_level_from_string("verbose"), std::invalid_argument);
  EXPECT_THROW(log_level_from_string(""), std::invalid_argument);
}

TEST(Log, BelowThresholdIsSuppressed) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Off);
  // Must not crash or emit; Off filters everything including error.
  log_error("suppressed line, should never appear");
  set_log_level(saved);
}

// Regression test for the interleaving hardening: log_message formats the
// whole "[janus LEVEL] msg\n" line into one buffer and issues a single
// fwrite under the logger mutex.  Hammer it from many threads with
// distinctive payloads, capture stderr into a file, and require every
// captured line to be whole — no spliced prefixes, no torn payloads.
TEST(Log, ConcurrentWritersNeverInterleaveWithinALine) {
  const std::string path =
      testing::TempDir() + "janus_log_interleave_test.txt";
  std::FILE* capture = std::fopen(path.c_str(), "w+");
  ASSERT_NE(capture, nullptr);
  const int saved_fd = dup(fileno(stderr));
  ASSERT_GE(saved_fd, 0);
  std::fflush(stderr);
  ASSERT_GE(dup2(fileno(capture), fileno(stderr)), 0);
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::Info);

  constexpr int kThreads = 8;
  constexpr int kLines = 250;
  {
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      writers.emplace_back([w] {
        const std::string payload(48, static_cast<char>('a' + w));
        for (int i = 0; i < kLines; ++i) {
          log_info("writer=", w, " line=", i, " payload=", payload);
        }
      });
    }
    for (auto& t : writers) t.join();
  }

  set_log_level(saved_level);
  std::fflush(stderr);
  ASSERT_GE(dup2(saved_fd, fileno(stderr)), 0);
  close(saved_fd);
  std::fclose(capture);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int total = 0;
  std::vector<int> per_writer(kThreads, 0);
  std::string line;
  while (std::getline(in, line)) {
    ++total;
    // Exact shape: "[janus INFO] writer=W line=N payload=XXX...".
    std::istringstream fields(line);
    std::string tag, level, writer_kv, line_kv, payload_kv;
    fields >> tag >> level >> writer_kv >> line_kv >> payload_kv;
    ASSERT_EQ(tag, "[janus") << "torn line: " << line;
    ASSERT_EQ(level, "INFO]") << "torn line: " << line;
    ASSERT_EQ(writer_kv.rfind("writer=", 0), 0u) << "torn line: " << line;
    const int w = std::stoi(writer_kv.substr(7));
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kThreads);
    ++per_writer[w];
    ASSERT_EQ(payload_kv,
              "payload=" + std::string(48, static_cast<char>('a' + w)))
        << "torn line: " << line;
    std::string extra;
    ASSERT_FALSE(fields >> extra) << "trailing garbage: " << line;
  }
  EXPECT_EQ(total, kThreads * kLines);
  for (int w = 0; w < kThreads; ++w) EXPECT_EQ(per_writer[w], kLines);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace janus
