#!/usr/bin/env python3
"""Unit tests for tools/compare_bench.py — the CI wall/RSS/frontier gate.

The gate itself must be tested: a comparison script that silently stops
failing is a CI pipeline that silently stops gating.  Covers the warn
threshold (>20%), the fatal threshold (>35% with --fatal-pct), failed
runs, the --require guard for benchmarks missing from the fresh set,
the peak_rss_kb memory gate (including baselines recorded before the
field existed), and the sustainable-rps gate over `sustainable_rps_*:`
stdout lines (inverted direction: a knee moving left is the regression).

Run directly (python3 tests/test_compare_bench.py) or via CTest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "tools", "compare_bench.py")


def write_bench(directory, stem, wall_seconds, status="ok", rss_kb=None,
                stdout=""):
    path = os.path.join(directory, f"BENCH_{stem}.json")
    record = {"bench": f"bench_{stem}", "status": status,
              "exit_code": 0 if status == "ok" else 1,
              "wall_seconds": wall_seconds, "stdout": stdout}
    if rss_kb is not None:
        record["peak_rss_kb"] = rss_kb
    with open(path, "w") as f:
        json.dump(record, f)


def rps_stdout(**knees):
    """bench_frontier-style trailing gate lines."""
    return "".join(f"sustainable_rps_{key}: {value:g}\n"
                   for key, value in knees.items())


def run_compare(base, fresh, *extra):
    proc = subprocess.run(
        [sys.executable, SCRIPT, "--baselines", base, "--fresh", fresh,
         *extra],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.base = os.path.join(self._tmp.name, "base")
        self.fresh = os.path.join(self._tmp.name, "fresh")
        os.makedirs(self.base)
        os.makedirs(self.fresh)

    def tearDown(self):
        self._tmp.cleanup()

    def test_within_threshold_is_ok(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.15)  # +15% < 20% warn line
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertNotIn("REGRESSION", out)

    def test_warn_band_reports_but_passes_with_fatal_pct(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.25)  # +25%: warn, not fatal
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertIn("REGRESSION", out)
        self.assertNotIn("FATAL", out)

    def test_warn_band_fails_with_plain_fatal(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.25)
        code, out = run_compare(self.base, self.fresh, "--fatal")
        self.assertEqual(code, 1, out)

    def test_past_fatal_pct_fails(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.40)  # +40% > 35% gate
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 1, out)
        self.assertIn("FATAL REGRESSION", out)

    def test_fatal_pct_below_warn_threshold_still_gates(self):
        # The fatal band is the contract; it must trip even when the
        # delta never reaches the informational warn threshold.
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.18)  # +18% < 20% warn line
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "15")
        self.assertEqual(code, 1, out)
        self.assertIn("FATAL REGRESSION", out)

    def test_improvement_is_not_a_regression(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 0.5)
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertIn("improvement", out)

    def test_failed_run_is_fatal_with_fatal_pct(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.0, status="fail")
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 1, out)
        self.assertIn("FAILED RUN", out)

    def test_failed_run_only_warns_without_fatal_flags(self):
        # Report-only mode stays report-only, even for failures.
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.0, status="fail")
        code, out = run_compare(self.base, self.fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("FAILED RUN", out)

    def test_missing_benchmark_passes_without_require(self):
        # A baseline with no fresh run is only reported...
        write_bench(self.base, "engine", 1.0)
        write_bench(self.base, "fleet_scale", 1.0)
        write_bench(self.fresh, "engine", 1.0)
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertIn("no fresh run for: fleet_scale", out)

    def test_missing_required_benchmark_fails(self):
        # ...unless the gate requires it.
        write_bench(self.base, "engine", 1.0)
        write_bench(self.base, "fleet_scale", 1.0)
        write_bench(self.fresh, "engine", 1.0)
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35",
                                "--require", "engine,fleet_scale")
        self.assertEqual(code, 1, out)
        self.assertIn("missing or failed: fleet_scale", out)

    def test_failed_required_benchmark_fails_even_in_report_mode(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.0, status="fail")
        code, out = run_compare(self.base, self.fresh,
                                "--require", "engine")
        self.assertEqual(code, 1, out)

    def test_empty_fresh_dir_with_require_fails(self):
        write_bench(self.base, "engine", 1.0)
        code, out = run_compare(self.base, self.fresh,
                                "--require", "engine")
        self.assertEqual(code, 1, out)
        code, out = run_compare(self.base, self.fresh)
        self.assertEqual(code, 0, out)  # nothing to compare, nothing required

    def test_rss_regression_warns_at_threshold(self):
        # Flat wall, +30% resident memory: the warn band names the metric.
        write_bench(self.base, "engine", 1.0, rss_kb=100000)
        write_bench(self.fresh, "engine", 1.0, rss_kb=130000)
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertIn("REGRESSION (rss >20%)", out)
        self.assertNotIn("FATAL", out)

    def test_rss_regression_past_fatal_pct_fails(self):
        write_bench(self.base, "engine", 1.0, rss_kb=100000)
        write_bench(self.fresh, "engine", 1.0, rss_kb=150000)  # +50%
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 1, out)
        self.assertIn("FATAL REGRESSION (rss >35%)", out)

    def test_wall_and_rss_regressions_both_named(self):
        write_bench(self.base, "engine", 1.0, rss_kb=100000)
        write_bench(self.fresh, "engine", 1.5, rss_kb=150000)
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 1, out)
        self.assertIn("FATAL REGRESSION (wall+rss >35%)", out)

    def test_baseline_without_rss_skips_memory_comparison(self):
        # Baselines recorded before peak_rss_kb existed must not fabricate
        # a 0-KB reference (which would flag every fresh run as infinite
        # growth); the wall gate still applies.
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.0, rss_kb=130000)
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertNotIn("REGRESSION", out)
        self.assertIn("n/a", out)

    def test_rss_improvement_is_not_a_regression(self):
        write_bench(self.base, "engine", 1.0, rss_kb=200000)
        write_bench(self.fresh, "engine", 1.0, rss_kb=100000)
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertNotIn("REGRESSION", out)

    def test_sustainable_rps_drop_past_fatal_pct_fails_and_names_keys(self):
        # Flat wall, but the janus-family knee moved left by 50%: the
        # frontier gate trips, the row names the metric, and the detail
        # line names the family that regressed.
        write_bench(self.base, "frontier", 1.0,
                    stdout=rps_stdout(janus=25.625, orion=29.375))
        write_bench(self.fresh, "frontier", 1.0,
                    stdout=rps_stdout(janus=12.8, orion=29.375))
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 1, out)
        self.assertIn("FATAL REGRESSION (sustainable-rps >35%)", out)
        self.assertIn("sustainable-rps janus: 25.625 -> 12.8", out)
        self.assertNotIn("sustainable-rps orion", out)

    def test_sustainable_rps_small_drop_warns_only(self):
        write_bench(self.base, "frontier", 1.0, stdout=rps_stdout(mix=100.0))
        write_bench(self.fresh, "frontier", 1.0, stdout=rps_stdout(mix=75.0))
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)  # -25% is warn band, not fatal
        self.assertIn("REGRESSION (sustainable-rps >20%)", out)
        self.assertNotIn("FATAL", out)

    def test_sustainable_rps_increase_is_not_a_regression(self):
        # The direction is inverted vs wall/rss: a knee moving RIGHT is
        # strictly good and must never flag.
        write_bench(self.base, "frontier", 1.0, stdout=rps_stdout(mix=50.0))
        write_bench(self.fresh, "frontier", 1.0, stdout=rps_stdout(mix=100.0))
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertNotIn("REGRESSION", out)

    def test_sustainable_rps_zero_baseline_knee_is_skipped(self):
        # A censored baseline frontier (knee 0, e.g. mean_based) cannot
        # scale a percentage; the key is skipped rather than dividing by
        # zero, and a knee appearing fresh is not a regression.
        write_bench(self.base, "frontier", 1.0,
                    stdout=rps_stdout(mean_based=0.0, janus=25.625))
        write_bench(self.fresh, "frontier", 1.0,
                    stdout=rps_stdout(mean_based=10.0, janus=25.625))
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertNotIn("REGRESSION", out)

    def test_sustainable_rps_absent_from_baseline_is_skipped(self):
        # Baselines recorded before a bench emitted the gate lines (or
        # benches that never emit them) skip the frontier comparison.
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.0, stdout=rps_stdout(mix=5.0))
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 0, out)
        self.assertNotIn("REGRESSION", out)

    def test_fatal_summary_names_the_tripping_metric(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.5)  # wall +50%
        write_bench(self.base, "frontier", 1.0, stdout=rps_stdout(mix=100.0))
        write_bench(self.fresh, "frontier", 1.0, stdout=rps_stdout(mix=10.0))
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 1, out)
        self.assertIn("engine [wall]", out)
        self.assertIn("frontier [sustainable-rps]", out)

    def test_fatal_summary_names_failed_runs(self):
        write_bench(self.base, "engine", 1.0)
        write_bench(self.fresh, "engine", 1.0, status="fail")
        code, out = run_compare(self.base, self.fresh, "--fatal-pct", "35")
        self.assertEqual(code, 1, out)
        self.assertIn("engine [failed run]", out)

    def test_unreadable_fresh_json_is_skipped_not_crashed(self):
        write_bench(self.base, "engine", 1.0)
        with open(os.path.join(self.fresh, "BENCH_engine.json"), "w") as f:
            f.write("{not json")
        code, out = run_compare(self.base, self.fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("skipping unreadable", out)
        # But a required benchmark whose JSON is unreadable still fails.
        code, out = run_compare(self.base, self.fresh, "--require", "engine")
        self.assertEqual(code, 1, out)


if __name__ == "__main__":
    unittest.main()
