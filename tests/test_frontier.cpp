// Tests for src/fleet/frontier: the latency–throughput frontier explorer
// and its one knob, scale_arrivals.  Pins the exact-scaling contract
// (power-of-two factors leave Poisson arrival times and trace gaps
// bitwise-halved; mean_rate scales for every kind), the ramp/bisection
// search shape (monotone offered loads, all-sustained-then-failed ramp,
// knee inside the bracket), SLO-met behavior along a widely spaced ramp,
// and the determinism contract: the knee and every deterministic
// operating-point column are bit-identical across shard counts {1, 2, 4}
// and across reruns.  Runs under TSan in ci/verify.sh — the sweep drives
// the sharded thread pool for real.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fleet/arrivals.hpp"
#include "fleet/frontier.hpp"

namespace janus {
namespace {

// Fast catalog: frontier points re-run the whole fleet, so the suite
// trades profile resolution for wall time (the policy comparison lives
// in bench_frontier, not here).
PolicyCatalogConfig fast_catalog_config() {
  PolicyCatalogConfig config;
  config.profile_samples = 300;
  config.budget_step = 10;
  return config;
}

FrontierConfig fast_frontier_config(PolicyCatalog& catalog, int shards) {
  FrontierConfig config;
  config.fleet.tenants = make_tenant_mix(4, 200, /*base_rate=*/10.0,
                                         ArrivalKind::Poisson,
                                         /*mixed_kinds=*/true);
  config.fleet.shards = shards;
  config.fleet.seed = 77;
  config.fleet.cluster.nodes = 8;
  config.fleet.catalog = &catalog;
  config.slo_target = 0.9;
  config.step_rps = 15.0;
  config.stop_rps = 120.0;
  config.bisect_iters = 3;
  return config;
}

std::vector<Seconds> arrival_prefix(const ArrivalSpec& spec, int n,
                                    std::uint64_t seed) {
  auto process = make_arrivals(spec);
  Rng rng(seed);
  std::vector<Seconds> times;
  Seconds now = 0.0;
  for (int i = 0; i < n; ++i) {
    now = process->next(now, rng);
    times.push_back(now);
  }
  return times;
}

// ---------------------------------------------------------- scaling -----
TEST(ScaleArrivals, PoissonPrefixIsBitwiseHalvedAtFactorTwo) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Poisson;
  spec.rate = 8.0;
  const ArrivalSpec scaled = scale_arrivals(spec, 2.0);
  EXPECT_EQ(scaled.rate, 16.0);

  // Same seed, same draw sequence; doubling a Poisson rate divides every
  // exponential gap by exactly 2, and halving is exact in IEEE double, so
  // each absolute arrival time is bitwise t/2.
  const std::vector<Seconds> base = arrival_prefix(spec, 64, 7);
  const std::vector<Seconds> fast = arrival_prefix(scaled, 64, 7);
  ASSERT_EQ(base.size(), fast.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(fast[i], base[i] / 2.0) << "arrival " << i;
  }
}

TEST(ScaleArrivals, TraceGapsAreBitwiseDividedAndReplayExactly) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Trace;
  spec.trace_gaps = {0.125, 0.5, 0.0625, 1.75, 0.3};
  const ArrivalSpec scaled = scale_arrivals(spec, 4.0);
  ASSERT_EQ(scaled.trace_gaps.size(), spec.trace_gaps.size());
  for (std::size_t i = 0; i < spec.trace_gaps.size(); ++i) {
    EXPECT_EQ(scaled.trace_gaps[i], spec.trace_gaps[i] / 4.0) << "gap " << i;
  }
  // Replay consumes no randomness: the scaled process's arrival times are
  // the base times divided by the factor, bitwise, across the loop point.
  const std::vector<Seconds> base = arrival_prefix(spec, 12, 1);
  const std::vector<Seconds> fast = arrival_prefix(scaled, 12, 1);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(fast[i], base[i] / 4.0) << "arrival " << i;
  }
}

TEST(ScaleArrivals, MeanRateScalesForEveryKind) {
  for (const ArrivalKind kind :
       {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal,
        ArrivalKind::Trace}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate = 6.0;
    if (kind == ArrivalKind::Trace) spec.trace_gaps = {0.25, 0.1, 0.4, 0.05};
    const double base = spec.mean_rate();
    ASSERT_GT(base, 0.0);
    // Power-of-two factors are exact; an odd factor stays within FP
    // rounding of the ideal scaling.
    EXPECT_EQ(scale_arrivals(spec, 2.0).mean_rate(), 2.0 * base)
        << to_string(kind);
    EXPECT_NEAR(scale_arrivals(spec, 1.7).mean_rate(), 1.7 * base,
                1e-9 * base)
        << to_string(kind);
  }
}

TEST(ScaleArrivals, MmppKeepsDwellStructure) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Mmpp;
  spec.rate = 5.0;
  spec.burst_rate = 40.0;
  const ArrivalSpec scaled = scale_arrivals(spec, 2.0);
  EXPECT_EQ(scaled.rate, 10.0);
  EXPECT_EQ(scaled.burst_rate, 80.0);
  // Dwells stay: the burst footprint keeps its place on the absolute
  // time axis, which is what makes mean_rate (dwell-weighted) scale.
  EXPECT_EQ(scaled.base_dwell_s, spec.base_dwell_s);
  EXPECT_EQ(scaled.burst_dwell_s, spec.burst_dwell_s);
}

TEST(ScaleArrivals, FlashWindowPassesThrough) {
  ArrivalSpec spec;
  spec.flash_k = 4.0;
  spec.flash_t0_s = 10.0;
  spec.flash_t1_s = 20.0;
  const ArrivalSpec scaled = scale_arrivals(spec, 2.0);
  EXPECT_EQ(scaled.flash_k, 4.0);
  EXPECT_EQ(scaled.flash_t0_s, 10.0);
  EXPECT_EQ(scaled.flash_t1_s, 20.0);
}

TEST(ScaleArrivals, RejectsNonPositiveOrNonFiniteFactors) {
  const ArrivalSpec spec;
  EXPECT_THROW(scale_arrivals(spec, 0.0), std::invalid_argument);
  EXPECT_THROW(scale_arrivals(spec, -1.0), std::invalid_argument);
  EXPECT_THROW(scale_arrivals(spec, std::nan("")), std::invalid_argument);
  EXPECT_THROW(scale_arrivals(spec, HUGE_VAL), std::invalid_argument);
}

// ------------------------------------------------------ search shape ----
TEST(Frontier, ValidatesConfig) {
  PolicyCatalog catalog(fast_catalog_config());
  FrontierConfig config = fast_frontier_config(catalog, 1);
  config.step_rps = 0.0;
  EXPECT_THROW(explore_frontier(config), std::invalid_argument);
  config = fast_frontier_config(catalog, 1);
  config.stop_rps = config.step_rps / 2.0;
  EXPECT_THROW(explore_frontier(config), std::invalid_argument);
  config = fast_frontier_config(catalog, 1);
  config.slo_target = 0.0;
  EXPECT_THROW(explore_frontier(config), std::invalid_argument);
  config = fast_frontier_config(catalog, 1);
  config.slo_target = 1.5;
  EXPECT_THROW(explore_frontier(config), std::invalid_argument);
  config = fast_frontier_config(catalog, 1);
  config.bisect_iters = -1;
  EXPECT_THROW(explore_frontier(config), std::invalid_argument);
  config = fast_frontier_config(catalog, 1);
  config.fleet.tenants.clear();
  EXPECT_THROW(explore_frontier(config), std::invalid_argument);
}

TEST(Frontier, RampBracketsAndBisectionPinsTheKnee) {
  PolicyCatalog catalog(fast_catalog_config());
  const FrontierConfig config = fast_frontier_config(catalog, 2);
  const FrontierResult result = explore_frontier(config);

  ASSERT_FALSE(result.points.empty());
  EXPECT_EQ(result.slo_target, config.slo_target);
  EXPECT_GT(result.base_rps, 0.0);

  // Ramp points come first at step_rps * i, all sustained until the one
  // failure that opens the bracket; bisection points stay inside it.
  double bracket_lo = 0.0, bracket_hi = 0.0;
  std::size_t i = 0;
  for (; i < result.points.size() &&
         result.points[i].phase == FrontierPhase::Ramp;
       ++i) {
    const FrontierPoint& point = result.points[i];
    EXPECT_EQ(point.offered_rps,
              config.step_rps * static_cast<double>(i + 1));
    EXPECT_EQ(point.sustained, point.slo_met >= config.slo_target);
    if (point.sustained) {
      EXPECT_EQ(bracket_hi, 0.0) << "sustained ramp point after a failure";
      bracket_lo = point.offered_rps;
    } else {
      bracket_hi = point.offered_rps;
    }
    // Every executed point carries a real run's outputs.
    EXPECT_GT(point.sim_end_s, 0.0);
    EXPECT_GT(point.achieved_rps, 0.0);
    EXPECT_LE(point.p50_s, point.p99_s);
    EXPECT_LE(point.p99_s, point.p999_s);
  }
  ASSERT_GT(bracket_hi, 0.0) << "ramp never failed; raise stop_rps";
  EXPECT_FALSE(result.censored_high);

  for (; i < result.points.size(); ++i) {
    EXPECT_EQ(result.points[i].phase, FrontierPhase::Bisect);
    EXPECT_GT(result.points[i].offered_rps, bracket_lo);
    EXPECT_LT(result.points[i].offered_rps, bracket_hi);
  }

  // The knee is the best sustained point, inside [bracket_lo, bracket_hi).
  EXPECT_FALSE(result.censored_low);
  EXPECT_GE(result.knee_rps, bracket_lo);
  EXPECT_LT(result.knee_rps, bracket_hi);
  ASSERT_GE(result.knee_index, 0);
  const FrontierPoint& knee =
      result.points[static_cast<std::size_t>(result.knee_index)];
  EXPECT_TRUE(knee.sustained);
  EXPECT_EQ(knee.offered_rps, result.knee_rps);
}

TEST(Frontier, SloMetDegradesAlongAWidelySpacedRamp) {
  // Over widely spaced loads the deterministic SLO-met fraction must not
  // *improve* with offered load: each ramp point quadruples the previous
  // one's rate, far beyond run-to-run wiggle.
  PolicyCatalog catalog(fast_catalog_config());
  FrontierConfig config = fast_frontier_config(catalog, 2);
  config.bisect_iters = 0;
  std::vector<double> met;
  for (const double rps : {10.0, 40.0, 160.0}) {
    config.step_rps = rps;
    config.stop_rps = rps;  // one-point ramp per load
    const FrontierResult result = explore_frontier(config);
    ASSERT_EQ(result.points.size(), 1u);
    met.push_back(result.points[0].slo_met);
  }
  EXPECT_GE(met[0], met[1]);
  EXPECT_GE(met[1], met[2]);
  EXPECT_GT(met[0], met[2]) << "load had no effect at all";
}

TEST(Frontier, CensoredHighWhenTheCeilingIsBelowTheKnee) {
  PolicyCatalog catalog(fast_catalog_config());
  FrontierConfig config = fast_frontier_config(catalog, 1);
  config.step_rps = 1.0;
  config.stop_rps = 2.0;  // both points far below the knee
  const FrontierResult result = explore_frontier(config);
  EXPECT_TRUE(result.censored_high);
  EXPECT_FALSE(result.censored_low);
  EXPECT_EQ(result.knee_rps, 2.0);  // best sustained = last ramp point
  for (const FrontierPoint& point : result.points) {
    EXPECT_EQ(point.phase, FrontierPhase::Ramp);
    EXPECT_TRUE(point.sustained);
  }
}

// -------------------------------------------------------- determinism ---
bool deterministic_columns_equal(const FrontierResult& a,
                                 const FrontierResult& b) {
  if (a.knee_rps != b.knee_rps || a.knee_index != b.knee_index ||
      a.censored_low != b.censored_low ||
      a.censored_high != b.censored_high ||
      a.base_rps != b.base_rps || a.points.size() != b.points.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const FrontierPoint& x = a.points[i];
    const FrontierPoint& y = b.points[i];
    // peak_pending / peak_rss_kb are the documented machine/layout-
    // dependent carve-outs.
    if (x.phase != y.phase || x.offered_rps != y.offered_rps ||
        x.achieved_rps != y.achieved_rps || x.slo_met != y.slo_met ||
        x.sustained != y.sustained || x.p50_s != y.p50_s ||
        x.p99_s != y.p99_s || x.p999_s != y.p999_s ||
        x.sim_end_s != y.sim_end_s) {
      return false;
    }
  }
  return true;
}

TEST(Frontier, KneeIsBitIdenticalAcrossShardCountsAndReruns) {
  PolicyCatalog catalog(fast_catalog_config());
  const FrontierResult reference =
      explore_frontier(fast_frontier_config(catalog, 1));
  ASSERT_FALSE(reference.censored_low);
  ASSERT_FALSE(reference.censored_high);
  for (const int shards : {2, 4}) {
    const FrontierResult sharded =
        explore_frontier(fast_frontier_config(catalog, shards));
    EXPECT_TRUE(deterministic_columns_equal(reference, sharded))
        << "shards=" << shards;
  }
  const FrontierResult rerun =
      explore_frontier(fast_frontier_config(catalog, 1));
  EXPECT_TRUE(deterministic_columns_equal(reference, rerun)) << "rerun";
}

// ---------------------------------------------------------- artifacts ---
TEST(Frontier, ArtifactsCarryEveryPointAndTheKnee) {
  PolicyCatalog catalog(fast_catalog_config());
  const FrontierResult result =
      explore_frontier(fast_frontier_config(catalog, 1));
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"knee\""), std::string::npos);
  EXPECT_NE(json.find("\"points\""), std::string::npos);
  EXPECT_NE(json.find("\"slo_target\""), std::string::npos);

  const std::string csv = result.to_csv();
  EXPECT_EQ(csv.rfind("phase,offered_rps,achieved_rps,slo_met,sustained,",
                      0),
            0u);
  std::size_t lines = 0;
  for (const char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, result.points.size() + 1);  // header + one per point
}

}  // namespace
}  // namespace janus
