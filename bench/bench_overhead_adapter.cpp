// §V-H system overhead: the online adaptation path and memory footprints.
//
// Paper reference: online adaptation stays under 3 ms regardless of SLO or
// weight; memory is ~12 MB class for both workloads.  Our adapter is an
// in-process binary search over the condensed table, so the measured
// latencies land in nanoseconds — comfortably inside the paper's bound
// (their 3 ms includes Flask/Redis round trips).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.hpp"

using namespace janus;

namespace {

struct SharedState {
  WorkloadSpec ia = make_ia();
  WorkloadSpec va = make_va();
  std::vector<LatencyProfile> ia_profiles;
  std::vector<LatencyProfile> va_profiles;
  std::unique_ptr<JanusPolicy> ia_policy;
  std::unique_ptr<JanusPolicy> va_policy;

  SharedState() {
    ia_profiles = bench::profile(ia, 1, 2000);
    va_profiles = bench::profile(va, 1, 2000);
    ia_policy = make_janus(ia_profiles, bench::synth_config(1), ia.slo(1));
    va_policy = make_janus(va_profiles, bench::synth_config(1), va.slo(1));
  }
};

SharedState& shared() {
  static SharedState state;
  return state;
}

void BM_AdapterLookup_IA(benchmark::State& state) {
  auto& adapter = shared().ia_policy->adapter();
  double budget = 0.4;
  for (auto _ : state) {
    budget += 0.001;
    if (budget > 3.0) budget = 0.4;
    benchmark::DoNotOptimize(adapter.size_for_stage(1, budget));
  }
}
BENCHMARK(BM_AdapterLookup_IA);

void BM_AdapterLookup_VA(benchmark::State& state) {
  auto& adapter = shared().va_policy->adapter();
  double budget = 0.2;
  for (auto _ : state) {
    budget += 0.0007;
    if (budget > 1.5) budget = 0.2;
    benchmark::DoNotOptimize(adapter.size_for_stage(1, budget));
  }
}
BENCHMARK(BM_AdapterLookup_VA);

void BM_FullStageDecision(benchmark::State& state) {
  // The complete per-completion path: budget derivation + table search.
  auto& policy = *shared().ia_policy;
  RequestDraw draw;
  double elapsed = 0.1;
  for (auto _ : state) {
    elapsed += 0.001;
    if (elapsed > 2.5) elapsed = 0.1;
    benchmark::DoNotOptimize(policy.size_for_stage(1, elapsed, draw));
  }
}
BENCHMARK(BM_FullStageDecision);

void BM_OptimalWaterFilling(benchmark::State& state) {
  // For contrast: the clairvoyant oracle's per-request solve.
  OptimalInputs in;
  in.models = shared().ia.chain_models();
  in.slo = 3.0;
  RequestDraw draw;
  draw.ws = {1.2, 0.9, 1.1};
  draw.interference = {1.1, 1.0, 1.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_allocation(in, draw));
  }
}
BENCHMARK(BM_OptimalWaterFilling);

void BM_HintsSynthesis_IA(benchmark::State& state) {
  // Offline cost (the developer side), coarse grid per iteration.
  auto config = bench::synth_config(1, 1.0, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_bundle(shared().ia_profiles, config));
  }
}
BENCHMARK(BM_HintsSynthesis_IA)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  auto& s = shared();
  std::printf("\n==== §V-H memory footprint ====\n");
  std::printf("IA adapter (condensed hints): %8zu bytes\n",
              s.ia_policy->adapter().memory_bytes());
  std::printf("VA adapter (condensed hints): %8zu bytes\n",
              s.va_policy->adapter().memory_bytes());
  std::size_t ia_prof = 0, va_prof = 0;
  for (const auto& p : s.ia_profiles) ia_prof += p.memory_bytes();
  for (const auto& p : s.va_profiles) va_prof += p.memory_bytes();
  std::printf("IA offline profiles:          %8zu bytes\n", ia_prof);
  std::printf("VA offline profiles:          %8zu bytes\n", va_prof);
  std::printf("paper: <3 ms online adaptation; ~12 MB memory (incl. "
              "Flask/Redis overheads our in-process adapter avoids)\n");
  return 0;
}
