// Engine microbenchmark: ladder-queue SimEngine vs the seed's binary-heap
// calendar (std::priority_queue of std::function closures, reproduced here
// verbatim as HeapEngine).
//
// The measurement is churn (hold-model) throughput: a fixed pending
// population, and every fired event schedules one successor, so each
// measured event is exactly one dequeue plus one enqueue against a full
// calendar.  Two arrival shapes bracket what the simulator's load
// generators produce:
//
//   sorted — exponential holds with mean equal to the calendar span, the
//            near-sorted insertion pattern of open-loop Poisson arrivals;
//   bursty — MMPP-shaped: a two-state modulator alternates dense bursts of
//            imminent events with sparse far-future holds.
//
// Emitted via bench_main as BENCH_engine.json; the recorded baseline is
// the repo's evidence that the ladder clears >= 2x heap throughput at
// 100k+ pending events.
#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exp/report.hpp"
#include "sim/engine.hpp"

using namespace janus;

namespace {

/// The calendar SimEngine replaced (PR 3): one binary heap, one
/// heap-allocating std::function per event.  Kept as the baseline under
/// measurement — and as a second, load-bearing copy of the ordering
/// contract (test_sim holds the two engines to identical execution order).
class HeapEngine {
 public:
  Seconds now() const noexcept { return now_; }
  std::uint64_t executed() const noexcept { return executed_; }

  void schedule_at(Seconds t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// Hold-time generator, shaped like the simulator's real event mix: a
/// large backlog of pre-scheduled arrivals spans the calendar, and the
/// churn on top is dominated by short service-time holds (completions a
/// few time units out) with an occasional arrival-scale hold that lands
/// deep in the calendar.  `span` is the backlog's simulated width.
///
/// sorted —  short holds at a fixed rate: the near-sorted insertion
///           pattern of open-loop Poisson arrivals plus service events;
/// bursty —  MMPP-shaped: a two-state modulator switches the service-hold
///           rate 50x between dense bursts and calm stretches.
struct Stream {
  bool bursty = false;
  double span = 1.0;
  bool burst = false;

  double next(Rng& rng) {
    if (rng.uniform() < 0.1) {
      // Arrival-scale hold: replenishes the deep backlog.
      return rng.exponential(1.0 / span);
    }
    double service_rate = 2000.0 / span;  // mean hold: span / 2000
    if (bursty) {
      if (rng.uniform() < 0.02) burst = !burst;  // MMPP state switch
      service_rate *= burst ? 50.0 : 1.0;
    }
    return rng.exponential(service_rate);
  }
};

/// Self-perpetuating churn closure; identical capture for both engines so
/// the comparison isolates the calendar (the std::function wrapper in
/// HeapEngine heap-allocates it — exactly what the old event path did).
/// Hold times come from a pre-drawn ring so no libm/RNG time pollutes the
/// measured loop; the ring is long enough (64k draws) that the burst
/// structure survives the reuse.
constexpr std::size_t kHoldRing = 1u << 16;

template <typename Engine>
struct Fire {
  Engine* engine;
  const double* holds;  // kHoldRing entries
  std::size_t* cursor;

  void operator()() {
    engine->schedule_at(engine->now() + holds[(*cursor)++ & (kHoldRing - 1)],
                        Fire(*this));
  }
};

template <typename Engine>
double churn_events_per_sec(std::size_t pending, std::uint64_t ops,
                            bool bursty) {
  Engine engine;
  Rng rng(42);
  Stream stream;
  stream.bursty = bursty;
  stream.span = static_cast<double>(pending);  // mean gap 1.0 at prefill

  std::vector<double> holds(kHoldRing);
  for (double& h : holds) h = stream.next(rng);
  std::size_t cursor = 0;

  double t = 0.0;
  for (std::size_t i = 0; i < pending; ++i) {
    t += rng.exponential(1.0);
    engine.schedule_at(t, Fire<Engine>{&engine, holds.data(), &cursor});
  }
  // Warm-up: reach steady state (ladder epochs built, pools grown, heap
  // settled) before the clock starts.  Note the measured window spans
  // epoch re-buckets only while pending <= ~ops/3 (an epoch is ~pending
  // events long): the 10k/100k rows amortize several re-buckets into
  // their numbers, the 1M rows measure the within-epoch path only.
  const std::uint64_t warm = ops / 10;
  while (engine.executed() < warm) engine.step();

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t target = warm + ops;
  while (engine.executed() < target) engine.step();
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(ops) /
         std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  std::printf("%s",
              banner("Engine: ladder queue vs binary heap, churn throughput")
                  .c_str());

  constexpr std::uint64_t kOps = 300000;
  const std::size_t populations[] = {10000, 100000, 1000000};

  std::vector<std::vector<std::string>> rows;
  double speedup_100k_min = 0.0;
  bool all_2x_at_100k = true;
  // Best of 3 per cell: the interesting number is what the calendar can
  // do, not what the noisy neighbours on a shared box leave over.
  const auto best = [](double a, double b) { return a > b ? a : b; };
  for (std::size_t pending : populations) {
    for (bool bursty : {false, true}) {
      double heap = 0.0, ladder = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        heap = best(heap, churn_events_per_sec<HeapEngine>(pending, kOps,
                                                           bursty));
        ladder = best(ladder, churn_events_per_sec<SimEngine>(pending, kOps,
                                                              bursty));
      }
      const double speedup = ladder / heap;
      rows.push_back({std::to_string(pending), bursty ? "bursty" : "sorted",
                      fmt(heap / 1e6, 2), fmt(ladder / 1e6, 2),
                      fmt(speedup, 2)});
      if (pending >= 100000) {
        all_2x_at_100k = all_2x_at_100k && speedup >= 2.0;
        if (speedup_100k_min == 0.0 || speedup < speedup_100k_min) {
          speedup_100k_min = speedup;
        }
      }
    }
  }
  std::printf("%s", render_table({"pending", "stream", "heap (Mev/s)",
                                  "ladder (Mev/s)", "speedup"},
                                 rows)
                        .c_str());
  std::printf("churn_ops: %llu\n", static_cast<unsigned long long>(kOps));
  std::printf("ladder_speedup_min_at_100k_plus: %.2f\n", speedup_100k_min);

  if (!all_2x_at_100k) {
    std::fprintf(stderr,
                 "bench_engine: warning: ladder < 2x heap at a 100k+ pending "
                 "population on this machine\n");
  }
  return 0;
}
