// Control-plane dynamics: how the epoch length and the scale-out latency
// shape tail latency and SLO violations for a bursty fleet on a
// deliberately undersized node pool.
//
// Two sweeps over a fixed 6-tenant MMPP-heavy fleet (4 nodes at plan
// time, autoscaler on):
//
//   * epoch sweep — epoch_s from inf (plan once, never react) down to a
//     tight control loop.  Shorter epochs let the cluster chase demand:
//     co-residency tracks observed pod counts instead of Little's-law
//     estimates, and the autoscaler gets more chances to act.
//   * scale-out latency sweep — at a fixed epoch, how many epochs a node
//     order takes to mature.  This is the paper's scale-out-lag story:
//     slower provisioning leaves bursts packed tight, inflating
//     interference tails.
//
// Also re-checks determinism: the flagship config runs twice and must
// produce identical metrics and epoch logs.  Emitted via bench_main as
// BENCH_autoscale.json.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "fleet/fleet.hpp"

using namespace janus;

namespace {

constexpr int kTenants = 6;
constexpr int kRequestsPerTenant = 4000;

FleetConfig base_config() {
  FleetConfig config;
  config.tenants = make_tenant_mix(kTenants, kRequestsPerTenant,
                                   /*base_rate=*/15.0, ArrivalKind::Mmpp,
                                   /*mixed_kinds=*/true);
  config.shards = 2;
  config.seed = 2026;
  config.cluster.nodes = 4;  // undersized: the autoscaler has work to do
  config.autoscale.enabled = true;
  config.autoscale.max_step_nodes = 2;
  return config;
}

std::vector<std::string> row(const std::string& label,
                             const FleetResult& result) {
  return {label,
          std::to_string(result.epochs),
          std::to_string(result.final_nodes),
          "+" + std::to_string(result.nodes_added) + "/-" +
              std::to_string(result.nodes_removed),
          fmt(result.fleet_p50, 3),
          fmt(result.fleet_p99, 3),
          fmt(100.0 * result.fleet_violation_rate, 2) + "%",
          fmt(result.wall_seconds, 3)};
}

bool results_identical(const FleetResult& a, const FleetResult& b) {
  if (a.fleet_p50 != b.fleet_p50 || a.fleet_p99 != b.fleet_p99 ||
      a.fleet_violation_rate != b.fleet_violation_rate ||
      a.fleet_mean_cpu_mc != b.fleet_mean_cpu_mc ||
      a.epochs != b.epochs || a.final_nodes != b.final_nodes ||
      a.nodes_added != b.nodes_added || a.nodes_removed != b.nodes_removed ||
      a.fleet_e2e.sorted_samples() != b.fleet_e2e.sorted_samples()) {
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<std::string> header = {"config",  "epochs", "nodes",
                                           "+/-",     "P50 (s)", "P99 (s)",
                                           ">SLO",    "wall (s)"};

  // ---- Epoch sweep: from plan-once to a tight control loop. ----
  std::printf("%s", banner("Autoscale: epoch sweep (" +
                           std::to_string(kTenants) + " tenants x " +
                           std::to_string(kRequestsPerTenant) + " reqs, " +
                           "4-node plan, scale-out latency 1)")
                        .c_str());
  std::vector<std::vector<std::string>> rows;
  {
    FleetConfig config = base_config();  // epoch_s = inf: never reconcile
    rows.push_back(row("epoch=inf", run_fleet(config)));
  }
  bool reacted = false;
  for (double epoch_s : {120.0, 30.0, 10.0}) {
    FleetConfig config = base_config();
    config.epoch_s = epoch_s;
    config.autoscale.scale_out_latency_epochs = 1;
    const FleetResult result = run_fleet(config);
    reacted = reacted || result.nodes_added > 0;
    rows.push_back(row("epoch=" + fmt(epoch_s, 0) + "s", result));
  }
  std::printf("%s", render_table(header, rows).c_str());

  // ---- Scale-out latency sweep at a fixed 30 s epoch. ----
  std::printf("%s", banner("Autoscale: scale-out latency sweep (epoch 30 s)")
                        .c_str());
  rows.clear();
  for (int latency : {0, 1, 4}) {
    FleetConfig config = base_config();
    config.epoch_s = 30.0;
    config.autoscale.scale_out_latency_epochs = latency;
    rows.push_back(
        row("latency=" + std::to_string(latency), run_fleet(config)));
  }
  std::printf("%s", render_table(header, rows).c_str());

  // ---- Determinism: the flagship config, twice. ----
  FleetConfig flagship = base_config();
  flagship.epoch_s = 30.0;
  flagship.autoscale.scale_out_latency_epochs = 1;
  const FleetResult a = run_fleet(flagship);
  const FleetResult b = run_fleet(flagship);
  const bool deterministic = results_identical(a, b);

  std::printf("autoscaler_reacted: %s\n", reacted ? "yes" : "no");
  std::printf("deterministic_rerun: %s\n", deterministic ? "yes" : "no");
  std::printf("flagship_epochs: %d\n", a.epochs);
  std::printf("flagship_final_nodes: %d\n", a.final_nodes);

  if (!deterministic) {
    std::fprintf(stderr,
                 "bench_autoscale: two runs of the same config diverged — "
                 "the control plane is not deterministic\n");
    return 1;
  }
  if (!reacted) {
    std::fprintf(stderr,
                 "bench_autoscale: the autoscaler never added a node over "
                 "the epoch sweep — the scenario lost its dynamics\n");
    return 1;
  }
  if (a.epochs < 2) {
    std::fprintf(stderr,
                 "bench_autoscale: flagship ran %d epochs — reconciliation "
                 "was not exercised\n",
                 a.epochs);
    return 1;
  }
  return 0;
}
