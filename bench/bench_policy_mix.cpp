// Policy mixes in the fleet: the paper's §V policy suite running
// *per tenant* inside the sharded multi-tenant simulator, under the
// endogenous co-residency contention of the epoch control plane.
//
// Two experiments:
//
//   * homogeneous fleets — every tenant on one policy, one fleet per
//     policy family, same tenant set and seed: the Table I story under
//     open-loop interference instead of the paper's sequential loop
//     (mean_based should blow its SLOs, early binding should overspend
//     CPU relative to Janus);
//   * adversarial mix — all families at once (janus, orion, mean_based,
//     fixed, optimal, grandslam+ dealt round-robin), live epochs +
//     autoscaling + contention-aware scaling on two tenants, swept over
//     1/2/4/8 shards asserting fleet metrics AND the epoch audit trail
//     stay bit-identical — the determinism contract bench_fleet_scale
//     pins for fixed allocations, extended to heterogeneous policies.
//
// One PolicyCatalog is shared across every run: hints tables and profiles
// are synthesized once per (workload, policy) and reused by all tenants,
// shards, and sweep points.  Exits nonzero if any shard count changes any
// metric, if the control plane never reconciled, or if the catalog
// re-synthesized anything after the first run.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "fleet/fleet.hpp"
#include "model/workloads.hpp"

using namespace janus;

namespace {

constexpr int kTenants = 6;
constexpr int kRequestsPerTenant = 2500;

PolicyCatalogConfig catalog_config() {
  PolicyCatalogConfig cfg;  // fleet-grade defaults (see fleet/policies.hpp)
  return cfg;
}

FleetConfig base_fleet(PolicyCatalog& catalog,
                       const std::vector<std::string>& policies) {
  FleetConfig config;
  config.tenants = make_tenant_mix(kTenants, kRequestsPerTenant,
                                   /*base_rate=*/10.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/true, policies);
  config.shards = 1;
  config.seed = 2026;
  config.catalog = &catalog;
  return config;
}

FleetConfig mix_fleet(PolicyCatalog& catalog, int shards) {
  FleetConfig config = base_fleet(
      catalog,
      {"janus", "orion", "mean_based", "fixed", "optimal", "grandslam+"});
  config.shards = shards;
  config.epoch_s = 60.0;
  config.autoscale.enabled = true;
  config.autoscale.scale_out_latency_epochs = 1;
  // Two tenants additionally react to the live co-residency signal.
  config.tenants[0].contention_alpha = 0.25;
  config.tenants[3].contention_alpha = 0.25;
  return config;
}

bool metrics_identical(const FleetResult& a, const FleetResult& b) {
  if (a.fleet_p50 != b.fleet_p50 || a.fleet_p99 != b.fleet_p99 ||
      a.fleet_violation_rate != b.fleet_violation_rate ||
      a.fleet_mean_cpu_mc != b.fleet_mean_cpu_mc ||
      a.total_requests != b.total_requests ||
      a.fleet_e2e.sorted_samples() != b.fleet_e2e.sorted_samples()) {
    return false;
  }
  if (a.tenants.size() != b.tenants.size()) return false;
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    if (a.tenants[t].e2e.sorted_samples() !=
            b.tenants[t].e2e.sorted_samples() ||
        a.tenants[t].mean_cpu_mc != b.tenants[t].mean_cpu_mc ||
        a.tenants[t].violation_rate != b.tenants[t].violation_rate) {
      return false;
    }
  }
  return true;
}

bool epoch_logs_identical(const FleetResult& a, const FleetResult& b) {
  if (a.epochs != b.epochs || a.final_nodes != b.final_nodes ||
      a.epoch_log.size() != b.epoch_log.size()) {
    return false;
  }
  for (std::size_t e = 0; e < a.epoch_log.size(); ++e) {
    const EpochSnapshot& x = a.epoch_log[e];
    const EpochSnapshot& y = b.epoch_log[e];
    if (x.sim_time != y.sim_time || x.nodes != y.nodes ||
        x.utilization != y.utilization ||
        x.groups_resized != y.groups_resized ||
        x.displaced_pods != y.displaced_pods ||
        x.nodes_added != y.nodes_added || x.nodes_removed != y.nodes_removed) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  PolicyCatalog catalog(catalog_config());

  // ---- Homogeneous fleets: one policy family per run. -----------------
  std::printf("%s", banner("Policy mix: homogeneous fleets, " +
                           std::to_string(kTenants) + " tenants x " +
                           std::to_string(kRequestsPerTenant) + " requests")
                        .c_str());
  const std::vector<std::string> families{"fixed",      "janus",
                                          "janus-",     "orion",
                                          "grandslam+", "mean_based",
                                          "optimal"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& family : families) {
    const FleetResult r = run_fleet(base_fleet(catalog, {family}));
    rows.push_back({family, fmt(r.fleet_p50, 3), fmt(r.fleet_p99, 3),
                    fmt(r.fleet_mean_cpu_mc, 0),
                    fmt(100.0 * r.fleet_violation_rate, 2) + "%",
                    fmt(r.wall_seconds, 3)});
  }
  std::printf("%s", render_table({"policy", "P50 (s)", "P99 (s)", "CPU (mc)",
                                  ">SLO", "wall (s)"},
                                 rows)
                        .c_str());
  // ---- Concurrency axis: batching level vs latency/cost trade. --------
  // Janus fleets with every tenant's concurrency raised together (clamped
  // to each workload's max — VA stays at 1, "FE and ICO are
  // non-batchable").  Higher batching stretches the SLO (the workload
  // tables grant more budget per request) but shares each pod across more
  // in-flight requests, so CPU per request should fall.
  std::printf("%s",
              banner("Policy mix: tenant concurrency sweep (janus)").c_str());
  std::vector<std::vector<std::string>> conc_rows;
  for (Concurrency conc : {1, 2, 3}) {
    FleetConfig config = base_fleet(catalog, {"janus"});
    for (auto& tenant : config.tenants) {
      tenant.concurrency = std::min(
          conc, workload_by_name(tenant.workload).max_concurrency);
    }
    const FleetResult r = run_fleet(config);
    conc_rows.push_back({std::to_string(conc), fmt(r.fleet_p50, 3),
                         fmt(r.fleet_p99, 3), fmt(r.fleet_mean_cpu_mc, 0),
                         fmt(100.0 * r.fleet_violation_rate, 2) + "%",
                         fmt(r.wall_seconds, 3)});
  }
  std::printf("%s", render_table({"conc", "P50 (s)", "P99 (s)", "CPU (mc)",
                                  ">SLO", "wall (s)"},
                                 conc_rows)
                        .c_str());

  const PolicyCatalogStats after_homogeneous = catalog.stats();
  std::printf("catalog: %d profile sets, %d hints bundles, %d ORION solves\n",
              after_homogeneous.profiles_built, after_homogeneous.bundles_built,
              after_homogeneous.orion_solved);

  // ---- Adversarial mix: every family at once, live control plane. -----
  std::printf("%s", banner("Policy mix: adversarial mix, epoch feedback + "
                           "autoscale, shard sweep")
                        .c_str());
  FleetResult reference;
  bool identical = true;
  double wall_1 = 0.0, wall_8 = 0.0;
  std::vector<std::vector<std::string>> mix_rows;
  for (int shards : {1, 2, 4, 8}) {
    const FleetResult result = run_fleet(mix_fleet(catalog, shards));
    const bool match = shards == 1 || (metrics_identical(reference, result) &&
                                       epoch_logs_identical(reference, result));
    identical = identical && match;
    if (shards == 1) {
      reference = result;
      wall_1 = result.wall_seconds;
    }
    if (shards == 8) wall_8 = result.wall_seconds;
    mix_rows.push_back({std::to_string(shards), fmt(result.wall_seconds, 3),
                        std::to_string(result.epochs),
                        std::to_string(result.final_nodes),
                        fmt(result.fleet_p99, 3),
                        fmt(100.0 * result.fleet_violation_rate, 2) + "%",
                        match ? "yes" : "NO"});
  }
  std::printf("%s", render_table({"shards", "wall (s)", "epochs", "nodes",
                                  "P99 (s)", ">SLO", "identical"},
                                 mix_rows)
                        .c_str());
  std::printf("\nper-tenant (mix, 1 shard):\n");
  std::vector<std::vector<std::string>> tenant_rows;
  for (const auto& t : reference.tenants) {
    tenant_rows.push_back({t.name, t.policy, fmt(t.coresidency, 2),
                           fmt(t.e2e_p99, 3), fmt(t.mean_cpu_mc, 0),
                           fmt(100.0 * t.violation_rate, 1) + "%"});
  }
  std::printf("%s", render_table({"tenant", "policy", "co-res", "P99 (s)",
                                  "CPU (mc)", ">SLO"},
                                 tenant_rows)
                        .c_str());

  const bool catalog_stable =
      catalog.stats().profiles_built == after_homogeneous.profiles_built &&
      catalog.stats().bundles_built == after_homogeneous.bundles_built;
  std::printf("bit_identical_mix: %s\n", identical ? "yes" : "no");
  std::printf("control_epochs: %d\n", reference.epochs);
  std::printf("catalog_reused_across_sweep: %s\n",
              catalog_stable ? "yes" : "no");
  std::printf("speedup_1_to_8: %.2f\n", wall_8 > 0.0 ? wall_1 / wall_8 : 0.0);

  if (!identical) {
    std::fprintf(stderr,
                 "bench_policy_mix: mixed-policy fleet metrics or epoch log "
                 "changed with the shard count — determinism contract "
                 "broken\n");
    return 1;
  }
  if (reference.epochs < 2) {
    std::fprintf(stderr,
                 "bench_policy_mix: control plane ran %d epochs — the mix "
                 "never exercised reconciliation\n",
                 reference.epochs);
    return 1;
  }
  if (!catalog_stable) {
    std::fprintf(stderr,
                 "bench_policy_mix: the policy catalog re-synthesized "
                 "artifacts during the sweep — the share-once contract "
                 "broke\n");
    return 1;
  }
  return 0;
}
