// Figure 7: the SLO-risk metrics of §III-B, measured on TS (the paper's
// example; other functions behave alike).
//   (a) timeout D(p,k) vs provisioned millicores at P25 / P50 / P75 —
//       decreasing in both the percentile and the size;
//   (b) resilience R(p,k) vs millicores at concurrency 1 / 2 / 3 —
//       decreasing in size (diminishing returns) and increasing with
//       concurrency (more computing load, more sensitivity to resources).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "hints/metrics.hpp"

using namespace janus;

int main() {
  std::printf("%s", banner("Fig 7: timeout and resilience of TS").c_str());

  const WorkloadSpec ia = make_ia();
  ProfilerConfig config = default_profiler_config(ia);
  config.grid.concurrencies = {1, 2, 3};
  const LatencyProfile ts = profile_function(ia.chain_models()[2], config);

  std::printf("(a) timeout D(p,k) = L(P99,k) - L(p,k), concurrency 1:\n");
  std::vector<std::vector<std::string>> rows;
  for (Millicores k = 1000; k <= 3000; k += 200) {
    rows.push_back({std::to_string(k),
                    fmt(timeout_metric(ts, 25, k, 1), 3),
                    fmt(timeout_metric(ts, 50, k, 1), 3),
                    fmt(timeout_metric(ts, 75, k, 1), 3)});
  }
  std::printf("%s", render_table({"millicores", "Perc.=25 (s)", "Perc.=50 (s)",
                                  "Perc.=75 (s)"},
                                 rows)
                        .c_str());

  std::printf("\n(b) resilience R(p,k) = L(p,k) - L(p,Kmax), at P99:\n");
  rows.clear();
  for (Millicores k = 1000; k <= 3000; k += 200) {
    rows.push_back({std::to_string(k),
                    fmt(resilience_metric(ts, 99, k, 1, 3000), 3),
                    fmt(resilience_metric(ts, 99, k, 2, 3000), 3),
                    fmt(resilience_metric(ts, 99, k, 3, 3000), 3)});
  }
  std::printf("%s", render_table({"millicores", "Conc.=1 (s)", "Conc.=2 (s)",
                                  "Conc.=3 (s)"},
                                 rows)
                        .c_str());
  std::printf("\npaper: timeout decreases with percentile and cores; "
              "resilience shrinks with cores (non-parallelizable ops) and "
              "grows with concurrency\n");
  return 0;
}
