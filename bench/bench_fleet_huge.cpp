// Six-figure tenant scale: 100k tenants through the streaming,
// process-sharded fleet path.
//
// The run that motivates PR 9's memory work: per-tenant request records
// live in arena-backed SoA storage, completed tenants fold into the slice
// accumulator and release their arenas immediately (stream_metrics), and
// worker processes each own a contiguous tenant slice whose outcome blobs
// merge in tenant-index order.  Three contracts are asserted here:
//
//   * completion — the full tenant count is served (default 100,000;
//     JANUS_HUGE_TENANTS overrides, which is how ci/verify.sh runs a
//     reduced-size variant on every build);
//   * bit-identity — the streamed scalar metric set (totals, violation
//     rate, CPU, histogram, counters, epoch/event tallies) is identical
//     between the 1-process run and every multi-process run;
//   * bounded memory — peak RSS of the full-scale streamed run stays
//     well below linear scaling from a 1/8-scale run of the same shape
//     (the streaming fold releases request logs, platforms, and policies
//     as tenants complete, so resident state tracks *active* tenants).
//
// Emitted via bench_main as BENCH_fleet_huge.json; events/sec and the RSS
// figures land in the bench stdout, peak_rss_kb in the artifact envelope.
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "fleet/fleet.hpp"

using namespace janus;

namespace {

constexpr int kDefaultTenants = 100000;
constexpr int kRequestsPerTenant = 10;

int tenant_count() {
  // CI runs a reduced-size variant through this knob; the committed
  // baseline is recorded at the full default.
  if (const char* env = std::getenv("JANUS_HUGE_TENANTS")) {
    const int n = std::atoi(env);
    if (n >= 16) return n;
    std::fprintf(stderr,
                 "bench_fleet_huge: ignoring JANUS_HUGE_TENANTS=%s "
                 "(need >= 16)\n",
                 env);
  }
  return kDefaultTenants;
}

FleetConfig huge_config(int tenants, int processes) {
  FleetConfig config;
  config.tenants = make_tenant_mix(tenants, kRequestsPerTenant,
                                   /*base_rate=*/10.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/false);
  config.shards = 2;
  config.processes = processes;
  config.stream_metrics = true;
  config.seed = 2026;
  // Plan packing walks nodes per pod group: a handful of huge nodes keeps
  // the plan linear in tenants instead of O(tenants x nodes).
  config.cluster.nodes = 4;
  config.cluster.node_capacity_mc = 2000000000;
  return config;
}

long self_peak_rss_kb() {
  struct rusage usage {};
  ::getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // Linux reports KiB
}

bool streamed_identical(const FleetResult& a, const FleetResult& b) {
  if (a.total_requests != b.total_requests ||
      a.fleet_violation_rate != b.fleet_violation_rate ||
      a.fleet_mean_cpu_mc != b.fleet_mean_cpu_mc ||
      a.fleet_p50 != b.fleet_p50 || a.fleet_p99 != b.fleet_p99 ||
      a.final_nodes != b.final_nodes ||
      a.obs.counters.invocations != b.obs.counters.invocations ||
      a.obs.counters.cold_starts != b.obs.counters.cold_starts ||
      a.obs.events_executed != b.obs.events_executed) {
    return false;
  }
  if (a.fleet_hist.bins() != b.fleet_hist.bins()) return false;
  for (std::size_t i = 0; i < a.fleet_hist.bins(); ++i) {
    if (a.fleet_hist.bin_count(i) != b.fleet_hist.bin_count(i)) return false;
  }
  return true;
}

}  // namespace

int main() {
  const int tenants = tenant_count();
  std::printf("%s", banner("Fleet huge: " + std::to_string(tenants) +
                           " tenants x " +
                           std::to_string(kRequestsPerTenant) +
                           " requests, streaming merge, process sweep")
                        .c_str());

  // 1/8-scale run of the same shape: warms allocator/code paths and
  // anchors the sublinearity check.  Runs first because ru_maxrss is a
  // high-water mark — the small figure must be taken before the full run.
  const int small_tenants = tenants / 8;
  (void)run_fleet(huge_config(small_tenants, 1));
  const long rss_small_kb = self_peak_rss_kb();

  FleetResult reference;
  bool identical = true;
  long rss_full_kb = 0;
  double events_per_sec = 0.0;
  std::vector<std::vector<std::string>> rows;
  for (int processes : {1, 2, 4}) {
    const FleetResult result = run_fleet(huge_config(tenants, processes));
    const bool match = processes == 1 || streamed_identical(reference, result);
    identical = identical && match;
    const double eps = result.wall_seconds > 0.0
                           ? static_cast<double>(result.obs.events_executed) /
                                 result.wall_seconds
                           : 0.0;
    if (processes == 1) {
      reference = result;
      rss_full_kb = self_peak_rss_kb();
      events_per_sec = eps;
    }
    rows.push_back({std::to_string(processes), fmt(result.wall_seconds, 3),
                    fmt(eps / 1e6, 2) + "M",
                    std::to_string(result.total_requests),
                    fmt(result.fleet_p99, 3),
                    fmt(100.0 * result.fleet_violation_rate, 2) + "%",
                    match ? "yes" : "NO"});
  }
  std::printf("%s", render_table({"procs", "wall (s)", "events/s", "reqs",
                                  "P99 (s)", ">SLO", "identical"},
                                 rows)
                        .c_str());

  const double rss_ratio =
      rss_small_kb > 0
          ? static_cast<double>(rss_full_kb) / static_cast<double>(rss_small_kb)
          : 0.0;
  std::printf("tenants: %d\n", tenants);
  std::printf("requests_total: %zu\n", reference.total_requests);
  std::printf("events_per_sec: %.0f\n", events_per_sec);
  std::printf("bit_identical_across_processes: %s\n",
              identical ? "yes" : "no");
  std::printf("peak_rss_small_kb: %ld\n", rss_small_kb);
  std::printf("peak_rss_full_kb: %ld\n", rss_full_kb);
  std::printf("rss_ratio_8x_tenants: %.2f\n", rss_ratio);

  if (!identical) {
    std::fprintf(stderr,
                 "bench_fleet_huge: streamed fleet metrics changed with the "
                 "process count — the slice merge is not bit-identical\n");
    return 1;
  }
  if (reference.total_requests !=
      static_cast<std::size_t>(tenants) * kRequestsPerTenant) {
    std::fprintf(stderr, "bench_fleet_huge: served %zu of %d requests\n",
                 reference.total_requests,
                 tenants * kRequestsPerTenant);
    return 1;
  }
  // 8x the tenants must cost far less than 8x the memory: the streaming
  // fold keeps request records O(active tenants), so the full-scale run
  // adds plan-time state (O(tenants), ~bytes each) but not O(requests)
  // sample storage.  6x leaves slack for allocator granularity while
  // still rejecting linear growth.
  if (rss_ratio > 6.0) {
    std::fprintf(stderr,
                 "bench_fleet_huge: peak RSS grew %.2fx going from %d to %d "
                 "tenants — streaming release is not bounding memory\n",
                 rss_ratio, small_tenants, tenants);
    return 1;
  }
  return 0;
}
