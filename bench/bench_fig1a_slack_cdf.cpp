// Figure 1a: CDF of invocation slack (1 - latency/SLO) in production-style
// traces, overall and for the 100 most popular functions.
//
// Paper reference points: >60% of invocations carry slack above 0.6; only
// ~20% of popular-function invocations have slack below 0.4; the popular
// top-100 account for ~81.6% of all invocations.
#include <cstdio>

#include "exp/report.hpp"
#include "model/trace_synth.hpp"
#include "stats/empirical.hpp"

using namespace janus;

int main() {
  std::printf("%s", banner("Fig 1a: slack CDF (synthetic Azure-like trace)").c_str());

  TraceSynthConfig config;
  config.num_invocations = 200000;
  const SyntheticTrace trace = synthesize_trace(config);

  const EmpiricalDistribution all(trace.all_slacks());
  const EmpiricalDistribution popular(trace.popular_slacks());

  std::printf("%s", render_series("all functions", all.cdf_series(21),
                                  "slack", "CDF").c_str());
  std::printf("%s", render_series("popular functions (top 100)",
                                  popular.cdf_series(21), "slack", "CDF")
                        .c_str());

  std::printf("\npaper-reference checks:\n");
  std::printf("  slack > 0.6 (all)          : %5.1f%%  (paper: >60%%)\n",
              100.0 * all.fraction_above(0.6));
  std::printf("  slack < 0.4 (popular)      : %5.1f%%  (paper: ~20%%)\n",
              100.0 * popular.cdf(0.4));
  std::printf("  popular invocation share   : %5.1f%%  (paper: 81.6%%)\n",
              100.0 * trace.popular_fraction());
  return 0;
}
