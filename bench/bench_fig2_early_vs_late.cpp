// Figure 2: per-request comparison between early binding (GrandSLAM-style
// fixed sizing [41]) and late binding (runtime resource adaptation) on the
// IA workflow: end-to-end latency (left panel) and CPU consumption
// normalized by the exhaustive-search Optimal (right panel).
//
// Paper reference: late binding cuts CPU consumption by up to 42.2% while
// staying under the SLO.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace janus;

int main() {
  std::printf("%s", banner("Fig 2: early binding vs late binding (IA)").c_str());

  const WorkloadSpec ia = make_ia();
  const Seconds slo = ia.slo(1);
  const auto profiles = bench::profile(ia, 1);
  auto suite = bench::make_suite(ia, profiles, slo, 1,
                                 /*with_janus_plus=*/false);

  const RunConfig config = bench::run_config(slo, 1, 50);
  const RunResult early = run_workload(ia, *suite.grandslam, config);
  const RunResult late = run_workload(ia, *suite.janus, config);
  const RunResult optimal = run_workload(ia, *suite.optimal, config);

  std::printf("req  E2E-early  E2E-late   CPU-early  CPU-late   (normalized by Optimal)\n");
  double worst_saving = 0.0, total_saving = 0.0;
  for (std::size_t i = 0; i < early.requests.size(); ++i) {
    const double opt = optimal.requests[i].cpu_mc;
    const double ce = early.requests[i].cpu_mc / opt;
    const double cl = late.requests[i].cpu_mc / opt;
    worst_saving = std::max(worst_saving, 1.0 - cl / ce);
    total_saving += 1.0 - cl / ce;
    std::printf("%3zu  %8.3fs  %8.3fs  %8.3f   %8.3f\n", i,
                early.requests[i].e2e, late.requests[i].e2e, ce, cl);
  }
  std::printf("\nSLO %.1fs  | early P99 %.3fs  late P99 %.3fs\n", slo,
              early.e2e_percentile(99), late.e2e_percentile(99));
  std::printf("CPU saving of late binding: mean %.1f%%, max %.1f%%  "
              "(paper: up to 42.2%%)\n",
              100.0 * total_saving / static_cast<double>(early.requests.size()),
              100.0 * worst_saving);
  return 0;
}
