// Ablations of Janus's design decisions (DESIGN.md §6) — not a paper
// figure, but each column backs one of the paper's arguments:
//
//  A. Mean-based late binding (the Kraken/Xanadu/Fifer family the paper
//     excludes in §V-A): adapting on mean execution times under-provisions
//     heavily under skewed distributions -> severe SLO violations.
//  B. Resilience guard off (Insight-3 ablated): the synthesizer may pick
//     head timeouts the tail cannot absorb -> violations rise.
//  C. Safety margin off: the adapter budgets with zero slack for platform
//     overheads.
//  D. Condensing (Insight-5/6): identical decisions at a fraction of the
//     table size — accuracy is untouched, only footprint changes.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "hints/condense.hpp"
#include "policy/mean_based.hpp"

using namespace janus;

int main() {
  std::printf("%s", banner("Ablations (IA, SLO 3 s, 1000 requests)").c_str());

  const WorkloadSpec ia = make_ia();
  const Seconds slo = ia.slo(1);
  const auto profiles = bench::profile(ia, 1);
  const RunConfig config = bench::run_config(slo, 1, 1000);

  std::vector<std::vector<std::string>> rows;
  auto add_row = [&](const std::string& label, const RunResult& result) {
    rows.push_back({label, fmt(result.mean_cpu(), 1),
                    fmt(result.e2e_percentile(99), 3),
                    fmt(100.0 * result.violation_rate(), 2) + "%"});
  };

  // Baseline Janus.
  auto janus_policy = make_janus(profiles, bench::synth_config(1), slo);
  add_row("Janus (full design)", run_workload(ia, *janus_policy, config));

  // A. Mean-based late binding.
  auto mean_policy = make_mean_based(profiles, slo);
  add_row("mean-based adaptation", run_workload(ia, *mean_policy, config));

  // B. Resilience guard ablated.
  SynthesisConfig no_guard = bench::synth_config(1);
  no_guard.enforce_resilience = false;
  auto unguarded = make_janus(profiles, no_guard, slo);
  add_row("no resilience guard", run_workload(ia, *unguarded, config));

  // C. No safety margin.
  HintsBundle bundle = synthesize_bundle(profiles, bench::synth_config(1));
  JanusPolicy no_margin("Janus/no-margin", Adapter(std::move(bundle)), slo,
                        /*safety_margin=*/0.0);
  add_row("no safety margin", run_workload(ia, no_margin, config));

  std::printf("%s",
              render_table({"variant", "CPU (mc)", "P99 E2E (s)", ">SLO"},
                           rows)
                  .c_str());

  // D. Condensing ablation: table sizes with identical decisions.
  const HintsGenerator generator(profiles, bench::synth_config(1));
  const SuffixHints raw = generator.generate_suffix(0);
  const HintsTable condensed = condense_hints(raw);
  std::size_t mismatches = 0;
  for (const auto& hint : raw.hints) {
    if (condensed.lookup(hint.budget).size != hint.sizes.front()) {
      ++mismatches;
    }
  }
  std::printf("\ncondensing: %zu raw rows -> %zu entries "
              "(%.1f%% compression), %zu decision mismatches\n",
              raw.hints.size(), condensed.size(),
              100.0 * compression_ratio(raw.hints.size(), condensed.size()),
              mismatches);
  std::printf("\nexpected: mean-based adaptation violates the SLO an order "
              "of magnitude more often (why the paper excludes that family); "
              "dropping the resilience guard or margin trades violations for "
              "CPU; condensing is lossless\n");
  return 0;
}
