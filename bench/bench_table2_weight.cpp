// Table II: impact of the head-function weight (Insight-4) on the head's
// resource allocation and selected percentile, IA.
//
// Paper reference: weight 1 -> 1442.9 mc at percentile 94.4; weight 3 ->
// 1228.6 mc at percentile 91.3 — higher weights shrink the head size and
// push the synthesizer toward lower percentiles.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace janus;

int main() {
  std::printf("%s", banner("Table II: head-function weight (IA)").c_str());

  const WorkloadSpec ia = make_ia();
  const Seconds slo = ia.slo(1);
  const auto profiles = bench::profile(ia, 1);

  std::vector<std::vector<std::string>> rows;
  for (double weight : {1.0, 3.0}) {
    SynthesisConfig config = bench::synth_config(1, weight);
    // Average the head allocation/percentile across the raw hints in a
    // window around the deployed SLO (the budgets the head actually sees).
    const HintsGenerator generator(profiles, config);
    double head_cpu = 0.0, head_perc = 0.0;
    int n = 0;
    for (BudgetMs t = s_to_ms(slo) - 500; t <= s_to_ms(slo) + 500; t += 50) {
      const RawHint hint = generator.solve_budget(0, t);
      if (hint.sizes.empty()) continue;
      head_cpu += static_cast<double>(hint.sizes[0]);
      head_perc += static_cast<double>(hint.head_percentile);
      ++n;
    }
    // And the served mean head size over a real run.
    auto policy = make_janus(profiles, config, slo);
    const RunResult result =
        run_workload(ia, *policy, bench::run_config(slo, 1, 600));
    double served_head = 0.0;
    for (const auto& r : result.requests) {
      served_head += static_cast<double>(r.sizes[0]);
    }
    served_head /= static_cast<double>(result.requests.size());

    rows.push_back({fmt(weight, 0), fmt(head_cpu / n, 1),
                    fmt(head_perc / n, 1), fmt(served_head, 1),
                    fmt(100.0 * result.violation_rate(), 2) + "%"});
  }
  std::printf("%s",
              render_table({"weight", "head CPU @SLO (mc)", "percentile (%)",
                            "served head CPU (mc)", ">SLO"},
                           rows)
                  .c_str());
  std::printf("\npaper: weight 1 -> 1442.9 mc / 94.4%%; weight 3 -> "
              "1228.6 mc / 91.3%% (both drop with higher weight)\n");
  return 0;
}
