// Figure 9: CPU consumption normalized by Optimal under varying SLOs —
// IA from 3 s to 7 s, VA from 1.5 s to 2.0 s — for ORION, GrandSLAM, and
// Janus (the paper plots these three for clarity and reports the others in
// prose, which we also print).
//
// Paper reference: Janus outperforms ORION/GrandSLAM by 16.1%/24.1% (IA)
// and 22.2%/27.7% (VA) on average; gains shrink at loose SLOs because
// every system converges to the 1000 mc per-function floor.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace janus;

namespace {

void sweep(const WorkloadSpec& workload, const std::vector<Seconds>& slos) {
  std::printf("%s", banner("Fig 9: SLO sweep for " + workload.name).c_str());
  const auto profiles = bench::profile(workload, 1);

  std::vector<std::vector<std::string>> rows;
  double sum_vs_orion = 0.0, sum_vs_gs = 0.0;
  for (Seconds slo : slos) {
    auto suite = bench::make_suite(workload, profiles, slo, 1,
                                   /*with_janus_plus=*/false);
    const RunConfig config = bench::run_config(slo, 1, 600);
    const double optimal =
        run_workload(workload, *suite.optimal, config).mean_cpu();
    const double jn = run_workload(workload, *suite.janus, config).mean_cpu();
    const double jm =
        run_workload(workload, *suite.janus_minus, config).mean_cpu();
    const double orion =
        run_workload(workload, *suite.orion, config).mean_cpu();
    const double gs =
        run_workload(workload, *suite.grandslam, config).mean_cpu();
    const double gsp =
        run_workload(workload, *suite.grandslam_plus, config).mean_cpu();
    sum_vs_orion += (orion - jn) / orion;
    sum_vs_gs += (gs - jn) / gs;
    rows.push_back({fmt(slo, 2), fmt(jn / optimal, 3), fmt(jm / optimal, 3),
                    fmt(orion / optimal, 3), fmt(gs / optimal, 3),
                    fmt(gsp / optimal, 3), fmt(jn, 1)});
  }
  std::printf("%s",
              render_table({"SLO (s)", "Janus", "Janus-", "ORION", "GrandSLAM",
                            "GrandSLAM+", "Janus CPU (mc)"},
                           rows)
                  .c_str());
  const auto n = static_cast<double>(slos.size());
  std::printf("mean Janus saving vs ORION: %.1f%%, vs GrandSLAM: %.1f%%\n",
              100.0 * sum_vs_orion / n, 100.0 * sum_vs_gs / n);
}

}  // namespace

int main() {
  sweep(make_ia(), {3.0, 4.0, 5.0, 6.0, 7.0});
  sweep(make_va(), {1.5, 1.6, 1.7, 1.8, 1.9, 2.0});
  std::printf("\npaper: IA savings 16.1%%/24.1%% vs ORION/GrandSLAM; VA "
              "22.2%%/27.7%%; gains shrink toward the 1000 mc floor as the "
              "SLO loosens\n");
  return 0;
}
