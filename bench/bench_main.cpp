// bench_main — unified benchmark runner.
//
//   bench_main [--outdir DIR] [--bindir DIR] [--list] [all | NAME...]
//
// Runs the selected bench_* binaries (found next to this executable unless
// --bindir overrides), captures their stdout and wall time, and writes one
// machine-readable BENCH_<name>.json per benchmark into --outdir (default:
// current directory).  This is the entry point the perf trajectory records
// through: every run produces comparable JSON, and a nonzero exit means at
// least one benchmark failed.
//
// The harness shape (spawn workload, capture, one summary line per run)
// follows load-generator practice a la mutated: keep the measurement loop
// dumb and push all interpretation into the emitted artifacts.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hpp"

#ifndef JANUS_BENCH_LIST
#define JANUS_BENCH_LIST ""
#endif

namespace {

using janus::json_escape;

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Directory holding this executable; argv[0] alone is useless under PATH
// lookup (no slash), so prefer the kernel's record of the running image.
std::string self_dir(const char* argv0) {
#ifdef __linux__
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (len > 0) {
    buf[len] = '\0';
    const std::string path(buf);
    const auto slash = path.find_last_of('/');
    if (slash != std::string::npos) return path.substr(0, slash);
  }
#endif
  const std::string path(argv0);
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

struct BenchResult {
  std::string name;
  int exit_code = -1;
  double wall_seconds = 0.0;
  long peak_rss_kb = 0;
  std::string stdout_text;

  bool ok() const { return exit_code == 0; }
};

// fork/exec/wait4 instead of popen: wait4 hands back the child's rusage,
// so every bench artifact records peak RSS alongside wall time — memory
// regressions become visible in the same JSON the perf trajectory reads.
// (popen reaps through the shell, which would also fold sh's own RSS in.)
BenchResult run_bench(const std::string& bindir, const std::string& name) {
  BenchResult result;
  result.name = name;
  const std::string path = bindir + "/" + name;
  int fds[2];
  if (::pipe(fds) != 0) {
    result.stdout_text = "pipe failed for: " + path;
    return result;
  }
  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    result.stdout_text = "fork failed for: " + path;
    return result;
  }
  if (pid == 0) {
    // Child: stdout and stderr both into the capture pipe so failure
    // output lands in the JSON.
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[1]);
    ::execl(path.c_str(), path.c_str(), static_cast<char*>(nullptr));
    std::fprintf(stderr, "exec failed: %s\n", path.c_str());
    ::_exit(127);
  }
  ::close(fds[1]);
  char buf[4096];
  ssize_t got = 0;
  while ((got = ::read(fds[0], buf, sizeof buf)) > 0) {
    result.stdout_text.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fds[0]);
  int status = 0;
  struct rusage usage {};
  const pid_t reaped = ::wait4(pid, &status, 0, &usage);
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (reaped != pid) {
    result.exit_code = -1;
  } else if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
  }
  result.peak_rss_kb = usage.ru_maxrss;  // Linux reports KiB
  return result;
}

bool write_json(const std::string& outdir, const BenchResult& result) {
  // Artifact names drop the binary's bench_ prefix: bench_fleet_scale
  // emits BENCH_fleet_scale.json (matching bench/baselines/).
  const std::string stem = result.name.rfind("bench_", 0) == 0
                               ? result.name.substr(6)
                               : result.name;
  const std::string path = outdir + "/BENCH_" + stem + ".json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "bench_main: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"status\": \"%s\",\n"
               "  \"exit_code\": %d,\n"
               "  \"wall_seconds\": %.3f,\n"
               "  \"peak_rss_kb\": %ld,\n"
               "  \"stdout\": \"%s\"\n"
               "}\n",
               json_escape(result.name).c_str(), result.ok() ? "ok" : "fail",
               result.exit_code, result.wall_seconds, result.peak_rss_kb,
               json_escape(result.stdout_text).c_str());
  std::fclose(out);
  std::printf("bench_main: %-32s %-4s %8.3fs -> %s\n", result.name.c_str(),
              result.ok() ? "ok" : "FAIL", result.wall_seconds, path.c_str());
  return true;
}

const char kUsage[] =
    "usage: bench_main [--outdir DIR] [--bindir DIR] [--list] "
    "[--filter SUBSTR] [all | NAME...]\n"
    "  --filter SUBSTR   run every benchmark whose name contains SUBSTR\n"
    "                    (e.g. --filter fleet_scale); repeatable, combines\n"
    "                    with explicit names\n";

int usage() {
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> known = split(JANUS_BENCH_LIST, ',');
  std::string outdir = ".";
  std::string bindir = self_dir(argv[0]);
  std::vector<std::string> selected;
  const auto select = [&selected](const std::string& name) {
    // Dedup: `all` combined with explicit names (or a repeated name) must
    // not run — and re-record — the same benchmark twice.
    for (const auto& s : selected) {
      if (s == name) return;
    }
    selected.push_back(name);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--outdir" && i + 1 < argc) {
      outdir = argv[++i];
    } else if (arg == "--bindir" && i + 1 < argc) {
      bindir = argv[++i];
    } else if (arg == "--list") {
      for (const auto& name : known) std::printf("%s\n", name.c_str());
      return 0;
    } else if (arg == "--filter" && i + 1 < argc) {
      // Substring selection: run one bench (or a family) without typing
      // exact names or running the full ~15-bench suite.
      const std::string needle = argv[++i];
      bool matched = false;
      for (const auto& name : known) {
        if (name.find(needle) != std::string::npos) {
          select(name);
          matched = true;
        }
      }
      if (!matched) {
        std::fprintf(stderr, "bench_main: --filter %s matches nothing (--list)\n",
                     needle.c_str());
        return 2;
      }
    } else if (arg == "all") {
      for (const auto& name : known) select(name);
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_main: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      // Accept names with or without the bench_ prefix.
      const std::string name =
          arg.rfind("bench_", 0) == 0 ? arg : "bench_" + arg;
      bool found = false;
      for (const auto& k : known) found = found || k == name;
      if (!found) {
        std::fprintf(stderr, "bench_main: unknown benchmark %s (--list)\n",
                     name.c_str());
        return 2;
      }
      select(name);
    }
  }
  if (selected.empty()) return usage();

  int failures = 0;
  for (const auto& name : selected) {
    const BenchResult result = run_bench(bindir, name);
    if (!write_json(outdir, result)) return 1;
    if (!result.ok()) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "bench_main: %d of %zu benchmarks failed\n", failures,
                 selected.size());
    return 1;
  }
  return 0;
}
