// Observability overhead: pins the cost of the tracing/metrics plane on
// the fleet hot path.  Four modes over the same live-control-plane fleet:
//
//   off       — ObsConfig{} (sinks never armed; the shipping default)
//   armed     — trace on but sample stride ~2^30: every request pays the
//               null-test + stride check, almost none record.  This is
//               the honest "instrumented but quiet" cost.
//   sampled64 — 1:64 span sampling + epoch timeline (the profile the CI
//               artifact job runs)
//   full      — 1:1 spans + timeline (worst case)
//
// Wall times are best-of-3 run_fleet clocks.  The contract (ISSUE PR 7):
// observability off/armed must stay within noise of baseline — the bench
// hard-fails only above 10% armed overhead (CI machines are noisy; the
// committed baseline documents the real figure, ~0%), and warns above the
// 2% design budget.  Recording modes must not perturb a single metric:
// fleet P50/P99/CPU are compared bit-exactly across all four modes, and
// full-mode span accounting (recorded = retained + dropped, rings bounded
// by capacity) is asserted.  Emitted via bench_main as
// BENCH_obs_overhead.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "fleet/fleet.hpp"

using namespace janus;

namespace {

constexpr int kTenants = 8;
constexpr int kRequestsPerTenant = 8000;  // 64k total
constexpr int kRepeats = 3;
constexpr std::size_t kRingCapacity = 1024;

FleetConfig base_config() {
  FleetConfig config;
  config.tenants = make_tenant_mix(kTenants, kRequestsPerTenant,
                                   /*base_rate=*/10.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/true);
  config.shards = 4;
  config.seed = 2027;
  config.epoch_s = 60.0;
  config.autoscale.enabled = true;
  return config;
}

struct Mode {
  std::string name;
  ObsConfig obs;
};

struct Measured {
  FleetResult result;   // last run (metrics identical across repeats)
  double best_wall = 0.0;
};

Measured run_mode(const Mode& mode) {
  Measured m;
  m.best_wall = 1e300;
  for (int rep = 0; rep < kRepeats; ++rep) {
    FleetConfig config = base_config();
    config.obs = mode.obs;
    m.result = run_fleet(config);
    m.best_wall = std::min(m.best_wall, m.result.wall_seconds);
  }
  return m;
}

bool metrics_identical(const FleetResult& a, const FleetResult& b) {
  return a.fleet_p50 == b.fleet_p50 && a.fleet_p99 == b.fleet_p99 &&
         a.fleet_mean_cpu_mc == b.fleet_mean_cpu_mc &&
         a.fleet_violation_rate == b.fleet_violation_rate &&
         a.total_requests == b.total_requests &&
         a.fleet_e2e.sorted_samples() == b.fleet_e2e.sorted_samples();
}

}  // namespace

int main() {
  std::printf("%s", banner("Observability overhead: " +
                           std::to_string(kTenants) + " tenants x " +
                           std::to_string(kRequestsPerTenant) +
                           " requests, live control plane, best of " +
                           std::to_string(kRepeats))
                        .c_str());

  // Warm up allocator/code paths so "off" (measured first) is not charged
  // for first-touch effects.
  {
    FleetConfig warm = base_config();
    for (auto& t : warm.tenants) t.requests = 200;
    (void)run_fleet(warm);
  }

  std::vector<Mode> modes;
  modes.push_back({"off", ObsConfig{}});
  {
    ObsConfig armed;
    armed.trace = true;
    armed.sample_every = 1 << 30;  // sinks live, ~nothing records
    armed.ring_capacity = kRingCapacity;
    modes.push_back({"armed", armed});
  }
  {
    ObsConfig sampled;
    sampled.trace = true;
    sampled.timeline = true;
    sampled.sample_every = 64;
    sampled.ring_capacity = kRingCapacity;
    modes.push_back({"sampled64", sampled});
  }
  {
    ObsConfig full;
    full.trace = true;
    full.timeline = true;
    full.sample_every = 1;
    full.ring_capacity = kRingCapacity;
    modes.push_back({"full", full});
  }

  std::vector<Measured> measured;
  for (const Mode& mode : modes) measured.push_back(run_mode(mode));
  const double wall_off = measured[0].best_wall;

  bool perturbed = false;
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const Measured& m = measured[i];
    const double overhead =
        wall_off > 0.0 ? 100.0 * (m.best_wall / wall_off - 1.0) : 0.0;
    const bool match = metrics_identical(measured[0].result, m.result);
    perturbed = perturbed || !match;
    rows.push_back({modes[i].name, fmt(m.best_wall, 3),
                    fmt(overhead, 2) + "%",
                    std::to_string(m.result.obs.counters.spans_recorded),
                    std::to_string(m.result.obs.spans.size()),
                    std::to_string(m.result.obs.counters.spans_dropped),
                    std::to_string(m.result.obs.timeline.size()),
                    match ? "yes" : "NO"});
  }
  std::printf("%s",
              render_table({"mode", "wall (s)", "overhead", "recorded",
                            "retained", "dropped", "timeline", "identical"},
                           rows)
                  .c_str());

  // Full-mode span accounting: every request span is recorded, retained
  // capacity bounds the survivors, and nothing goes missing.
  const FleetResult& full = measured.back().result;
  const std::uint64_t retained = full.obs.spans.size();
  const bool accounting_ok =
      full.obs.counters.spans_recorded ==
          retained + full.obs.counters.spans_dropped &&
      retained <= kTenants * kRingCapacity &&
      full.obs.counters.spans_recorded > 0;

  const double armed_overhead =
      wall_off > 0.0 ? measured[1].best_wall / wall_off - 1.0 : 0.0;
  std::printf("wall_off_s: %.3f\n", wall_off);
  std::printf("armed_overhead_pct: %.2f\n", 100.0 * armed_overhead);
  std::printf("metrics_identical_across_modes: %s\n",
              perturbed ? "no" : "yes");
  std::printf("span_accounting_ok: %s\n", accounting_ok ? "yes" : "no");

  if (armed_overhead > 0.02) {
    std::fprintf(stderr,
                 "bench_obs_overhead: WARNING armed overhead %.2f%% exceeds "
                 "the 2%% design budget (noise or a regression)\n",
                 100.0 * armed_overhead);
  }
  int rc = 0;
  if (armed_overhead > 0.10) {
    std::fprintf(stderr,
                 "bench_obs_overhead: FAIL armed tracing costs %.2f%% "
                 "(> 10%%) over disabled — the JANUS_OBS guard is no "
                 "longer cheap\n",
                 100.0 * armed_overhead);
    rc = 1;
  }
  if (perturbed) {
    std::fprintf(stderr,
                 "bench_obs_overhead: FAIL recording changed fleet metrics; "
                 "observation must not perturb the simulation\n");
    rc = 1;
  }
  if (!accounting_ok) {
    std::fprintf(stderr,
                 "bench_obs_overhead: FAIL span accounting broken "
                 "(recorded=%llu retained=%llu dropped=%llu cap=%zu)\n",
                 static_cast<unsigned long long>(
                     full.obs.counters.spans_recorded),
                 static_cast<unsigned long long>(retained),
                 static_cast<unsigned long long>(
                     full.obs.counters.spans_dropped),
                 kTenants * kRingCapacity);
    rc = 1;
  }
  return rc;
}
