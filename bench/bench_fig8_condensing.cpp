// Figure 8: total number of hints synthesized for IA and VA under head
// weights 1.0 .. 3.0 (step 0.5), after condensing, per concurrency level.
//
// Paper reference: IA stays below 147 hints and VA below 96 across all
// weights — compression ratios up to 99.6% / 98.2% — and table sizes shrink
// as the weight grows (over-allocation widens each hint's applicability).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "hints/condense.hpp"

using namespace janus;

namespace {

void sweep(const WorkloadSpec& workload, const std::vector<Concurrency>& concs) {
  std::printf("%s", banner("Fig 8: condensed hints for " + workload.name).c_str());
  std::vector<std::string> header{"weight"};
  for (Concurrency c : concs) {
    header.push_back("conc=" + std::to_string(c));
    header.push_back("compression");
  }
  std::vector<std::vector<std::string>> rows;
  std::size_t worst_total = 0;
  for (double weight = 1.0; weight <= 3.0 + 1e-9; weight += 0.5) {
    std::vector<std::string> row{fmt(weight, 1)};
    for (Concurrency c : concs) {
      const auto profiles = bench::profile(workload, c, 2000);
      const HintsBundle bundle =
          synthesize_bundle(profiles, bench::synth_config(c, weight));
      worst_total = std::max(worst_total, bundle.total_entries());
      row.push_back(std::to_string(bundle.total_entries()));
      row.push_back(fmt(100.0 * compression_ratio(bundle.stats.raw_hints,
                                                  bundle.stats.condensed_hints),
                        1) +
                    "%");
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s", render_table(header, rows).c_str());
  std::printf("max condensed hints across weights: %zu\n", worst_total);
}

}  // namespace

int main() {
  sweep(make_ia(), {1, 2, 3});
  sweep(make_va(), {1});
  std::printf("\npaper: IA < 147 hints, VA < 96; compression up to "
              "99.6%% / 98.2%%; fewer hints at higher weights\n");
  return 0;
}
