// Fleet scale: sweeps shard counts for a fixed 8-tenant fleet serving
// >= 100k total requests through the sharded multi-tenant simulator, and
// verifies the determinism contracts that make sharding safe:
//
//   * static path (epoch_s = inf): fleet metrics are bit-identical at
//     every shard count AND exactly reproduce the pre-control-plane
//     pipeline's committed reference values (PR 3) — the plan-once path
//     really is a special case of the control-plane code;
//   * live path (finite epoch_s + autoscaling): metrics and the epoch
//     audit trail stay bit-identical at every shard count with the
//     reconciliation barrier and node-pool autoscaler running.
//
// Emitted via bench_main as BENCH_fleet_scale.json.  Reported wall times
// cover shard execution only (run_fleet's own clock), so the speedup column
// isolates the sharding win: more engines in flight plus far smaller
// per-engine event calendars.  Exits nonzero if any shard count changes
// any fleet metric, if the static path drifts from the PR 3 reference, or
// if the sweep serves fewer requests than promised.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "exp/report.hpp"
#include "fleet/fleet.hpp"

using namespace janus;

namespace {

constexpr int kTenants = 8;
constexpr int kRequestsPerTenant = 12500;  // 8 x 12500 = 100k total

// Static-path fleet metrics recorded from the pre-control-plane pipeline
// (PR 3, seed 2026) at the JSON emitter's 10-significant-digit precision.
constexpr double kPr3P50 = 1.854526668;
constexpr double kPr3P99 = 3.206886065;
constexpr double kPr3MeanCpu = 5287.5;
constexpr double kPr3ViolationRate = 0.41328;

FleetConfig fleet_config(int shards) {
  FleetConfig config;
  config.tenants = make_tenant_mix(kTenants, kRequestsPerTenant,
                                   /*base_rate=*/10.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/true);
  config.shards = shards;
  config.seed = 2026;
  return config;
}

FleetConfig live_config(int shards) {
  FleetConfig config = fleet_config(shards);
  config.epoch_s = 60.0;  // ~1250 s of sim time => ~20 barriers
  config.autoscale.enabled = true;
  config.autoscale.scale_out_latency_epochs = 1;
  return config;
}

bool close10(double a, double b) {
  // Equal at the 10-significant-digit precision the reference was
  // recorded at.
  return std::abs(a - b) <=
         1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
}

bool epoch_logs_identical(const FleetResult& a, const FleetResult& b) {
  if (a.epochs != b.epochs || a.final_nodes != b.final_nodes ||
      a.nodes_added != b.nodes_added || a.nodes_removed != b.nodes_removed ||
      a.epoch_log.size() != b.epoch_log.size()) {
    return false;
  }
  for (std::size_t e = 0; e < a.epoch_log.size(); ++e) {
    const EpochSnapshot& x = a.epoch_log[e];
    const EpochSnapshot& y = b.epoch_log[e];
    if (x.sim_time != y.sim_time || x.nodes != y.nodes ||
        x.pending_nodes != y.pending_nodes ||
        x.utilization != y.utilization ||
        x.nodes_ordered != y.nodes_ordered ||
        x.nodes_added != y.nodes_added ||
        x.nodes_removed != y.nodes_removed ||
        x.groups_resized != y.groups_resized ||
        x.displaced_pods != y.displaced_pods) {
      return false;
    }
  }
  return true;
}

bool metrics_identical(const FleetResult& a, const FleetResult& b) {
  if (a.fleet_p50 != b.fleet_p50 || a.fleet_p99 != b.fleet_p99 ||
      a.fleet_violation_rate != b.fleet_violation_rate ||
      a.fleet_mean_cpu_mc != b.fleet_mean_cpu_mc ||
      a.total_requests != b.total_requests ||
      a.fleet_e2e.sorted_samples() != b.fleet_e2e.sorted_samples()) {
    return false;
  }
  if (a.tenants.size() != b.tenants.size()) return false;
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    const TenantResult& x = a.tenants[t];
    const TenantResult& y = b.tenants[t];
    if (x.e2e_p50 != y.e2e_p50 || x.e2e_p99 != y.e2e_p99 ||
        x.violation_rate != y.violation_rate ||
        x.mean_cpu_mc != y.mean_cpu_mc) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.fleet_hist.bins(); ++i) {
    if (a.fleet_hist.bin_count(i) != b.fleet_hist.bin_count(i)) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::printf("%s", banner("Fleet scale: shard sweep, " +
                           std::to_string(kTenants) + " tenants x " +
                           std::to_string(kRequestsPerTenant) + " requests")
                        .c_str());

  // Warm up allocator/code paths so the 1-shard reference is not charged
  // for first-touch effects.
  {
    FleetConfig warm = fleet_config(1);
    for (auto& t : warm.tenants) t.requests = 200;
    (void)run_fleet(warm);
  }

  const int sweep[] = {1, 2, 4, 8};
  FleetResult reference;
  double wall_1 = 0.0, wall_8 = 0.0;
  bool identical = true;
  std::vector<std::vector<std::string>> rows;
  for (int shards : sweep) {
    const FleetResult result = run_fleet(fleet_config(shards));
    const bool match = shards == 1 || metrics_identical(reference, result);
    identical = identical && match;
    if (shards == 1) {
      reference = result;
      wall_1 = result.wall_seconds;
    }
    if (shards == 8) wall_8 = result.wall_seconds;
    rows.push_back({std::to_string(shards), fmt(result.wall_seconds, 3),
                    fmt(wall_1 / result.wall_seconds, 2),
                    fmt(result.fleet_p50, 3), fmt(result.fleet_p99, 3),
                    fmt(result.fleet_mean_cpu_mc, 0),
                    fmt(100.0 * result.fleet_violation_rate, 2) + "%",
                    match ? "yes" : "NO"});
  }
  std::printf("%s", render_table({"shards", "wall (s)", "speedup", "P50 (s)",
                                  "P99 (s)", "CPU (mc)", ">SLO",
                                  "identical"},
                                 rows)
                        .c_str());

  // ---- Live control plane: same sweep with epochs + autoscaling on. ----
  std::printf("%s",
              banner("Control plane: epoch feedback + autoscale, shard sweep")
                  .c_str());
  FleetResult live_reference;
  bool live_identical = true;
  std::vector<std::vector<std::string>> live_rows;
  for (int shards : sweep) {
    const FleetResult result = run_fleet(live_config(shards));
    const bool match = shards == 1 ||
                       (metrics_identical(live_reference, result) &&
                        epoch_logs_identical(live_reference, result));
    live_identical = live_identical && match;
    if (shards == 1) live_reference = result;
    live_rows.push_back({std::to_string(shards), fmt(result.wall_seconds, 3),
                         std::to_string(result.epochs),
                         std::to_string(result.final_nodes),
                         "+" + std::to_string(result.nodes_added) + "/-" +
                             std::to_string(result.nodes_removed),
                         fmt(result.fleet_p99, 3),
                         fmt(100.0 * result.fleet_violation_rate, 2) + "%",
                         match ? "yes" : "NO"});
  }
  std::printf("%s", render_table({"shards", "wall (s)", "epochs", "nodes",
                                  "+/-", "P99 (s)", ">SLO", "identical"},
                                 live_rows)
                        .c_str());

  const double speedup = wall_8 > 0.0 ? wall_1 / wall_8 : 0.0;
  const bool pr3_exact = close10(reference.fleet_p50, kPr3P50) &&
                         close10(reference.fleet_p99, kPr3P99) &&
                         close10(reference.fleet_mean_cpu_mc, kPr3MeanCpu) &&
                         close10(reference.fleet_violation_rate,
                                 kPr3ViolationRate);
  std::printf("requests_total: %zu\n", reference.total_requests);
  std::printf("tenants: %zu\n", reference.tenants.size());
  std::printf("bit_identical: %s\n", identical ? "yes" : "no");
  std::printf("bit_identical_with_control_plane: %s\n",
              live_identical ? "yes" : "no");
  std::printf("static_path_matches_pr3: %s\n", pr3_exact ? "yes" : "no");
  std::printf("control_epochs: %d\n", live_reference.epochs);
  std::printf("speedup_1_to_8: %.2f\n", speedup);

  if (!identical) {
    std::fprintf(stderr,
                 "bench_fleet_scale: fleet metrics changed with the shard "
                 "count — determinism contract broken\n");
    return 1;
  }
  if (!live_identical) {
    std::fprintf(stderr,
                 "bench_fleet_scale: metrics or epoch log changed with the "
                 "shard count under epoch feedback + autoscaling — "
                 "reconciliation is not deterministic\n");
    return 1;
  }
  if (!pr3_exact) {
    std::fprintf(stderr,
                 "bench_fleet_scale: epoch_s = inf no longer reproduces the "
                 "PR 3 static-path metrics (p50 %.9f vs %.9f, p99 %.9f vs "
                 "%.9f)\n",
                 reference.fleet_p50, kPr3P50, reference.fleet_p99, kPr3P99);
    return 1;
  }
  if (live_reference.epochs < 2) {
    std::fprintf(stderr,
                 "bench_fleet_scale: control plane ran %d epochs — the live "
                 "sweep did not exercise reconciliation\n",
                 live_reference.epochs);
    return 1;
  }
  if (reference.total_requests < 100000) {
    std::fprintf(stderr, "bench_fleet_scale: served %zu < 100000 requests\n",
                 reference.total_requests);
    return 1;
  }
  // Warn threshold calibrated for a 2-core box: the ladder engine (PR 3)
  // cut the 1-shard wall ~1.6x, so the remaining parallelizable work caps
  // the 1->8 ratio well below the pre-ladder ~2.7x.
  if (speedup <= 1.5) {
    std::fprintf(stderr,
                 "bench_fleet_scale: warning: 1->8 shard speedup %.2fx <= "
                 "1.5x on this machine\n",
                 speedup);
  }
  return 0;
}
