// Figure 1c: performance interference from co-locating homogeneous function
// instances on one VM, for four micro functions dominated by CPU, memory,
// IO, and network.  The paper reports slowdowns up to 8.1x at six
// co-located instances, ordered network > memory > IO > CPU.
//
// Measured two ways: (a) directly from the interference model's contention
// curves, and (b) end to end through the DES platform with endogenous
// co-location (instances packed on one node by the placement policy).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/platform.hpp"
#include "stats/summary.hpp"

using namespace janus;

int main() {
  std::printf("%s",
              banner("Fig 1c: interference from same-function co-location").c_str());

  const InterferenceModel model;  // §II-B stress-test slopes
  const std::vector<ResourceDim> dims{ResourceDim::Cpu, ResourceDim::Memory,
                                      ResourceDim::Io, ResourceDim::Network};

  std::vector<std::string> header{"co-located"};
  for (auto dim : dims) header.push_back(to_string(dim));
  std::vector<std::vector<std::string>> rows;
  for (int n = 1; n <= 6; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    for (auto dim : dims) {
      row.push_back(fmt(model.mean_multiplier(dim, n), 2) + "x");
    }
    rows.push_back(std::move(row));
  }
  std::printf("model contention curves (normalized latency):\n%s",
              render_table(header, rows).c_str());

  // End-to-end through the platform: issue n concurrent invocations of the
  // network-bound micro function and compare the slowest against a solo run.
  std::printf("\nDES validation (network-bound function, endogenous co-location):\n");
  std::vector<FunctionModel> functions;
  for (auto dim : dims) functions.push_back(make_micro_function(dim));
  for (int n : {1, 3, 6}) {
    SimEngine engine;
    PlatformConfig config;
    config.nodes = 1;  // one VM, as in the §II-B experiment
    config.pool.prewarm_per_function = 8;
    Platform platform(engine, config, functions, model);
    Summary exec;
    for (int i = 0; i < n; ++i) {
      platform.invoke(3, 2000, 1, 1.0, std::nullopt,
                      [&](const InvocationOutcome& o) { exec.add(o.exec_s); });
    }
    engine.run();
    std::printf("  %d instance(s): max exec %.3fs (mean %.3fs)\n", n,
                exec.max(), exec.mean());
  }
  std::printf("\npaper reference: up to 8.1x at 6 instances; ordering "
              "network > memory > IO > CPU\n");
  return 0;
}
