// Policy-robustness scorecard under deterministic chaos.
//
// Runs every §V policy family as a homogeneous fleet through six chaos
// scenarios — calm, node failures, pod preemption, cold-start storms,
// flash crowds, and all four at once — with the SAME tenant set, seed,
// and chaos schedule, and reports per (family, scenario):
//
//   * SLO attainment under chaos and its drop vs the family's calm run
//     (how much of the damage the policy absorbs);
//   * recovery epochs: how many barriers after the last injection the
//     fleet's per-epoch violation rate stays above the calm run's overall
//     rate (0 = absorbed instantly; censored at the run's end);
//   * stranded pods, killed pods, and re-queued invocations (the raw
//     damage the schedule dealt, identical across families by
//     construction for failures/storm/flash — preemption kills busy pods,
//     so its totals vary with how many pods the policy keeps busy).
//
// The second half pins the determinism contract for chaos runs: the
// adversarial policy mix under the "all" scenario swept over 1/2/4/8
// shards plus a same-config rerun, asserting fleet metrics, the epoch
// audit trail (including its chaos columns), and the chaos event log stay
// bit-identical.  Exits nonzero if anything diverges, if the chaos
// schedule injected nothing (the scorecard would be vacuous), or if a
// calm run reports chaos.
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "fleet/fleet.hpp"
#include "obs/timeline.hpp"

using namespace janus;

namespace {

constexpr int kTenants = 6;
constexpr int kRequestsPerTenant = 1500;
constexpr Seconds kEpochS = 20.0;

const std::vector<std::string> kFamilies{"fixed",      "janus",
                                         "orion",      "grandslam+",
                                         "mean_based", "optimal"};
const std::vector<std::string> kScenarios{"calm",  "failures", "preemption",
                                          "storm", "flash",    "all"};

ChaosConfig scenario_chaos(const std::string& scenario) {
  if (scenario == "calm") return ChaosConfig{};
  ChaosConfig chaos =
      chaos_config_from_spec(scenario == "storm" ? "storms" : scenario);
  chaos.seed = 11;
  // Aggressive enough that a ~7-barrier run injects every armed family.
  chaos.node_fail_per_epoch = 0.35;
  chaos.min_nodes = 2;
  chaos.preempt_per_epoch = 0.45;
  chaos.preempt_fraction = 0.5;
  chaos.storm_per_epoch = 0.35;
  chaos.storm_multiplier = 10.0;
  chaos.storm_epochs = 1;
  chaos.flash_k = 6.0;
  chaos.flash_start_s = 20.0;
  chaos.flash_spread_s = 60.0;
  chaos.flash_window_s = 25.0;
  return chaos;
}

FleetConfig scorecard_fleet(PolicyCatalog& catalog,
                            const std::vector<std::string>& policies,
                            const std::string& scenario, int shards) {
  FleetConfig config;
  config.tenants = make_tenant_mix(kTenants, kRequestsPerTenant,
                                   /*base_rate=*/10.0, ArrivalKind::Poisson,
                                   /*mixed_kinds=*/true, policies);
  config.shards = shards;
  config.seed = 2026;
  config.epoch_s = kEpochS;  // finite for every scenario: same control plane
  config.cluster.nodes = 8;  // small enough that one failure is felt
  config.autoscale.enabled = true;  // the fleet may re-grow lost nodes
  config.autoscale.scale_out_latency_epochs = 1;
  config.catalog = &catalog;
  config.obs.timeline = true;  // per-epoch violation rates for recovery
  config.chaos = scenario_chaos(scenario);
  return config;
}

/// Epochs after the last injection whose per-epoch violation rate exceeds
/// `calm_rate` (the family's calm-run overall rate).  0 = the fleet is
/// back at calm violation levels by the first post-injection barrier;
/// censored at the last barrier when it never recovers inside the run.
int recovery_epochs(const FleetResult& result, double calm_rate) {
  if (result.epoch_log.empty()) return 0;
  // Last barrier that injected anything (a storm's whole span counts).
  int last_inject = -1;
  for (const EpochSnapshot& snap : result.epoch_log) {
    const bool injected = snap.chaos.failed_nodes > 0 ||
                          snap.chaos.preempted_pods > 0 ||
                          snap.chaos.storm_multiplier != 1.0;
    if (injected) last_inject = snap.epoch;
  }
  // Flash windows live on the arrival axis: epoch e spans
  // (e*epoch_s, (e+1)*epoch_s], so a window [t0, t1) disrupts every epoch
  // its span overlaps.
  for (const ChaosEvent& ev : result.chaos_log) {
    if (ev.family != ChaosFamily::FlashCrowd) continue;
    const int last_covered = static_cast<int>(ev.until_s / kEpochS);
    if (last_covered > last_inject) last_inject = last_covered;
  }
  if (last_inject < 0) return 0;

  // Cumulative (completed, violations) per epoch, fleet-summed from the
  // stage-0 timeline rows (every stage row of a tenant repeats them).
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> by_epoch;
  for (const TimelineRow& row : result.obs.timeline) {
    if (row.stage != 0) continue;
    auto& cell = by_epoch[row.epoch];
    cell.first += static_cast<std::uint64_t>(row.completed);
    cell.second += static_cast<std::uint64_t>(row.violations);
  }
  int max_epoch = -1;
  for (const auto& [epoch, cell] : by_epoch) max_epoch = epoch;
  std::uint64_t prev_done = 0, prev_viol = 0;
  if (by_epoch.count(last_inject)) {
    prev_done = by_epoch[last_inject].first;
    prev_viol = by_epoch[last_inject].second;
  }
  for (int e = last_inject + 1; e <= max_epoch; ++e) {
    if (!by_epoch.count(e)) break;
    const auto [done, viol] = by_epoch[e];
    const std::uint64_t d_done = done - prev_done;
    const std::uint64_t d_viol = viol - prev_viol;
    prev_done = done;
    prev_viol = viol;
    const double rate = d_done > 0
                            ? static_cast<double>(d_viol) /
                                  static_cast<double>(d_done)
                            : 0.0;
    if (rate <= calm_rate + 1e-12) return e - last_inject - 1;
  }
  return max_epoch >= last_inject ? max_epoch - last_inject : 0;  // censored
}

bool metrics_identical(const FleetResult& a, const FleetResult& b) {
  if (a.fleet_p50 != b.fleet_p50 || a.fleet_p99 != b.fleet_p99 ||
      a.fleet_violation_rate != b.fleet_violation_rate ||
      a.fleet_mean_cpu_mc != b.fleet_mean_cpu_mc ||
      a.total_requests != b.total_requests ||
      a.fleet_e2e.sorted_samples() != b.fleet_e2e.sorted_samples()) {
    return false;
  }
  if (a.tenants.size() != b.tenants.size()) return false;
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    if (a.tenants[t].e2e.sorted_samples() !=
            b.tenants[t].e2e.sorted_samples() ||
        a.tenants[t].violation_rate != b.tenants[t].violation_rate) {
      return false;
    }
  }
  return true;
}

bool chaos_identical(const FleetResult& a, const FleetResult& b) {
  if (a.epochs != b.epochs || a.final_nodes != b.final_nodes ||
      a.epoch_log.size() != b.epoch_log.size()) {
    return false;
  }
  for (std::size_t e = 0; e < a.epoch_log.size(); ++e) {
    const EpochSnapshot& x = a.epoch_log[e];
    const EpochSnapshot& y = b.epoch_log[e];
    if (x.sim_time != y.sim_time || x.nodes != y.nodes ||
        x.utilization != y.utilization ||
        x.displaced_pods != y.displaced_pods ||
        x.chaos.failed_nodes != y.chaos.failed_nodes ||
        x.chaos.displaced_pods != y.chaos.displaced_pods ||
        x.chaos.stranded_pods != y.chaos.stranded_pods ||
        x.chaos.preempted_pods != y.chaos.preempted_pods ||
        x.chaos.storm_multiplier != y.chaos.storm_multiplier) {
      return false;
    }
  }
  if (a.chaos.node_failures != b.chaos.node_failures ||
      a.chaos.displaced_pods != b.chaos.displaced_pods ||
      a.chaos.stranded_pods != b.chaos.stranded_pods ||
      a.chaos.preemption_bursts != b.chaos.preemption_bursts ||
      a.chaos.preempted_pods != b.chaos.preempted_pods ||
      a.chaos.storms != b.chaos.storms ||
      a.chaos.flash_windows != b.chaos.flash_windows ||
      a.chaos.requeued_invocations != b.chaos.requeued_invocations ||
      a.chaos_log.size() != b.chaos_log.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.chaos_log.size(); ++i) {
    const ChaosEvent& x = a.chaos_log[i];
    const ChaosEvent& y = b.chaos_log[i];
    if (x.family != y.family || x.epoch != y.epoch ||
        x.sim_time != y.sim_time || x.tenant != y.tenant ||
        x.node != y.node || x.pods != y.pods || x.stranded != y.stranded ||
        x.magnitude != y.magnitude || x.until_s != y.until_s) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  PolicyCatalogConfig catalog_config;  // fleet-grade defaults
  PolicyCatalog catalog(catalog_config);

  // ---- Scorecard: policy family x chaos scenario. ---------------------
  std::printf("%s",
              banner("Chaos scorecard: " + std::to_string(kTenants) +
                     " tenants x " + std::to_string(kRequestsPerTenant) +
                     " requests, homogeneous fleets, shared schedule")
                  .c_str());
  bool calm_is_calm = true;
  bool all_injected = true;
  std::vector<std::vector<std::string>> rows;
  for (const std::string& family : kFamilies) {
    double calm_rate = 0.0;
    for (const std::string& scenario : kScenarios) {
      const FleetResult r =
          run_fleet(scorecard_fleet(catalog, {family}, scenario, 1));
      if (scenario == "calm") {
        calm_rate = r.fleet_violation_rate;
        calm_is_calm = calm_is_calm && !r.chaos_enabled &&
                       r.chaos_log.empty() && r.chaos.preempted_pods == 0;
      } else if (scenario == "all") {
        all_injected = all_injected &&
                       (r.chaos.node_failures > 0 ||
                        r.chaos.preempted_pods > 0 || r.chaos.storms > 0) &&
                       r.chaos.flash_windows == kTenants;
      }
      const double attain = 100.0 * (1.0 - r.fleet_violation_rate);
      const double drop =
          100.0 * (r.fleet_violation_rate - calm_rate);  // percentage points
      rows.push_back(
          {family, scenario, fmt(attain, 2) + "%", fmt(drop, 2) + "pp",
           fmt(r.fleet_p99, 3),
           std::to_string(r.chaos.preempted_pods),
           std::to_string(static_cast<int>(r.chaos.requeued_invocations)),
           std::to_string(r.chaos.stranded_pods),
           std::to_string(recovery_epochs(r, calm_rate))});
    }
  }
  std::printf("%s",
              render_table({"policy", "scenario", "SLO met", "drop", "P99 (s)",
                            "killed", "requeued", "stranded", "recov"},
                           rows)
                  .c_str());

  // ---- Determinism: adversarial mix, "all" scenario, shard sweep. -----
  std::printf("%s", banner("Chaos determinism: policy mix under 'all', "
                           "shard sweep + rerun")
                        .c_str());
  const std::vector<std::string> mix{"janus",  "orion",       "mean_based",
                                     "fixed",  "optimal",     "grandslam+"};
  FleetResult reference;
  bool identical = true;
  std::vector<std::vector<std::string>> sweep_rows;
  for (int shards : {1, 2, 4, 8}) {
    const FleetResult result =
        run_fleet(scorecard_fleet(catalog, mix, "all", shards));
    const bool match = shards == 1 || (metrics_identical(reference, result) &&
                                       chaos_identical(reference, result));
    identical = identical && match;
    if (shards == 1) reference = result;
    sweep_rows.push_back(
        {std::to_string(shards), fmt(result.wall_seconds, 3),
         std::to_string(result.epochs),
         std::to_string(result.chaos.node_failures),
         std::to_string(result.chaos.preempted_pods),
         std::to_string(result.chaos.storms),
         std::to_string(result.chaos.flash_windows),
         fmt(100.0 * result.fleet_violation_rate, 2) + "%",
         match ? "yes" : "NO"});
  }
  const FleetResult rerun = run_fleet(scorecard_fleet(catalog, mix, "all", 1));
  const bool rerun_match =
      metrics_identical(reference, rerun) && chaos_identical(reference, rerun);
  identical = identical && rerun_match;
  sweep_rows.push_back({"1 (rerun)", fmt(rerun.wall_seconds, 3),
                        std::to_string(rerun.epochs),
                        std::to_string(rerun.chaos.node_failures),
                        std::to_string(rerun.chaos.preempted_pods),
                        std::to_string(rerun.chaos.storms),
                        std::to_string(rerun.chaos.flash_windows),
                        fmt(100.0 * rerun.fleet_violation_rate, 2) + "%",
                        rerun_match ? "yes" : "NO"});
  std::printf("%s",
              render_table({"shards", "wall (s)", "epochs", "failures",
                            "killed", "storms", "flash", ">SLO", "identical"},
                           sweep_rows)
                  .c_str());

  std::printf("bit_identical_chaos: %s\n", identical ? "yes" : "no");
  std::printf("calm_runs_stay_calm: %s\n", calm_is_calm ? "yes" : "no");
  std::printf("all_scenario_injected: %s\n", all_injected ? "yes" : "no");
  std::printf("mix_epochs: %d\n", reference.epochs);
  std::printf("mix_stranded_pods: %d\n", reference.chaos.stranded_pods);

  if (!identical) {
    std::fprintf(stderr,
                 "bench_chaos: chaos-run metrics, epoch audit trail, or "
                 "event log changed with the shard count or across reruns "
                 "— determinism contract broken\n");
    return 1;
  }
  if (!calm_is_calm) {
    std::fprintf(stderr,
                 "bench_chaos: a calm scenario reported chaos activity — "
                 "the chaos-off zero-branch contract broke\n");
    return 1;
  }
  if (!all_injected) {
    std::fprintf(stderr,
                 "bench_chaos: the 'all' scenario injected nothing for "
                 "some family — the scorecard is vacuous; retune the "
                 "schedule knobs\n");
    return 1;
  }
  if (reference.epochs < 2) {
    std::fprintf(stderr,
                 "bench_chaos: the mix ran %d epochs — chaos barriers "
                 "never exercised reconciliation\n",
                 reference.epochs);
    return 1;
  }
  return 0;
}
