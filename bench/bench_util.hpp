// Shared setup for the bench binaries: standard profiling/synthesis
// configurations matching §V-A's setup (grid 1000..3000 step 100,
// percentiles P1..P99, budget grid 1 ms-class) and a policy-suite builder
// covering every system compared in the paper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "model/workloads.hpp"
#include "policy/early_binding.hpp"
#include "policy/janus_policy.hpp"
#include "policy/optimal.hpp"
#include "policy/orion.hpp"
#include "profiler/profiler.hpp"

namespace janus::bench {

/// Paper-grade profiling for one concurrency level.
inline std::vector<LatencyProfile> profile(const WorkloadSpec& workload,
                                           Concurrency c,
                                           int samples = 3000) {
  ProfilerConfig config = default_profiler_config(workload);
  config.grid.concurrencies = {c};
  config.samples_per_point = samples;
  return profile_workload(workload, config);
}

/// Synthesis configuration at a concurrency level.  Janus/Janus− use the
/// 1 ms budget grid; Janus+ gets a coarser sweep (its per-budget search is
/// ~two orders of magnitude heavier, which is exactly the Fig 6b story).
inline SynthesisConfig synth_config(Concurrency c, double weight = 1.0,
                                    BudgetMs budget_step = 1) {
  SynthesisConfig config;
  config.concurrency = c;
  config.weight = weight;
  config.budget_step = budget_step;
  return config;
}

/// The full §V policy suite for one workload/SLO/concurrency.
struct PolicySuite {
  std::unique_ptr<OptimalPolicy> optimal;
  std::unique_ptr<JanusPolicy> janus;
  std::unique_ptr<JanusPolicy> janus_minus;
  std::unique_ptr<JanusPolicy> janus_plus;  // may be null (see make_suite)
  std::unique_ptr<FixedSizingPolicy> orion;
  std::unique_ptr<FixedSizingPolicy> grandslam;
  std::unique_ptr<FixedSizingPolicy> grandslam_plus;

  std::vector<SizingPolicy*> all() const {
    // reserve + push_back (not an initializer list that then grows):
    // GCC 12 under -fsanitize=undefined otherwise flags the growth with
    // a false-positive -Warray-bounds against the 3-element alloc.
    std::vector<SizingPolicy*> out;
    out.reserve(7);
    out.push_back(optimal.get());
    out.push_back(janus.get());
    out.push_back(janus_minus.get());
    if (janus_plus) out.push_back(janus_plus.get());
    out.push_back(orion.get());
    out.push_back(grandslam_plus.get());
    out.push_back(grandslam.get());
    return out;
  }
};

inline PolicySuite make_suite(const WorkloadSpec& workload,
                              const std::vector<LatencyProfile>& profiles,
                              Seconds slo, Concurrency c,
                              bool with_janus_plus = true) {
  PolicySuite suite;
  OptimalInputs opt;
  opt.models = workload.chain_models();
  opt.slo = slo;
  opt.concurrency = c;
  suite.optimal = make_optimal(opt);

  suite.janus = make_janus(profiles, synth_config(c), slo);
  suite.janus_minus =
      make_janus(profiles, synth_config(c), slo, Exploration::FixedP99);
  if (with_janus_plus) {
    // Budget step 5 ms keeps the quadratic (p,k) x (p,k) sweep tractable
    // without the coarse-grid conservatism a wider step would introduce.
    suite.janus_plus = make_janus(profiles, synth_config(c, 1.0, 5), slo,
                                  Exploration::HeadAndNext);
  }

  EarlyBindingInputs eb;
  eb.profiles = &profiles;
  eb.slo = slo;
  eb.concurrency = c;
  suite.orion = make_orion(eb);
  suite.grandslam = make_grandslam(eb);
  suite.grandslam_plus = make_grandslam_plus(eb);
  return suite;
}

inline RunConfig run_config(Seconds slo, Concurrency c, int requests = 1000) {
  RunConfig config;
  config.slo = slo;
  config.concurrency = c;
  config.requests = requests;
  return config;
}

}  // namespace janus::bench
