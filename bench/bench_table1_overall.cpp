// Table I: overall resource reduction by Janus versus each baseline when
// serving IA (SLO 3 s) and VA (SLO 1.5 s) at concurrency 1, over 1000
// requests, normalized by the clairvoyant Optimal.
//
// Paper reference rows:
//            ORION  GrandSLAM+  GrandSLAM  Janus-  Janus+
//   IA (%)    22.6     31.3        31.3      2.9     0
//   VA (%)    26.9     35.2        32.4      4.7    -0.2
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"

using namespace janus;

namespace {

std::map<std::string, double> measure(const WorkloadSpec& workload,
                                      Seconds slo) {
  const auto profiles = bench::profile(workload, 1);
  auto suite = bench::make_suite(workload, profiles, slo, 1);
  const RunConfig config = bench::run_config(slo, 1, 1000);
  std::map<std::string, double> cpu;
  for (SizingPolicy* policy : suite.all()) {
    cpu[policy->name()] = run_workload(workload, *policy, config).mean_cpu();
  }
  return cpu;
}

}  // namespace

int main() {
  std::printf("%s",
              banner("Table I: resource reduction by Janus vs baselines").c_str());

  const std::vector<std::string> baselines{"ORION", "GrandSLAM+", "GrandSLAM",
                                           "Janus-", "Janus+"};
  std::vector<std::string> header{"workload"};
  for (const auto& b : baselines) header.push_back(b + " (%)");

  std::vector<std::vector<std::string>> rows;
  for (const auto& [workload, slo] :
       std::vector<std::pair<WorkloadSpec, Seconds>>{{make_ia(), 3.0},
                                                     {make_va(), 1.5}}) {
    const auto cpu = measure(workload, slo);
    const double optimal = cpu.at("Optimal");
    const double janus_cpu = cpu.at("Janus");
    std::vector<std::string> row{workload.name};
    for (const auto& b : baselines) {
      // Reduction of Janus relative to the baseline, both normalized by
      // Optimal: (baseline - Janus) / baseline.
      const double reduction =
          100.0 * (cpu.at(b) - janus_cpu) / cpu.at(b);
      row.push_back(fmt(reduction, 1));
    }
    rows.push_back(std::move(row));
    std::printf("%s raw CPU (mc): Optimal %.1f | Janus %.1f | Janus- %.1f | "
                "Janus+ %.1f | ORION %.1f | GrandSLAM+ %.1f | GrandSLAM %.1f\n",
                workload.name.c_str(), optimal, janus_cpu, cpu.at("Janus-"),
                cpu.at("Janus+"), cpu.at("ORION"), cpu.at("GrandSLAM+"),
                cpu.at("GrandSLAM"));
  }
  std::printf("\n%s", render_table(header, rows).c_str());
  std::printf("\npaper: IA 22.6/31.3/31.3/2.9/0; VA 26.9/35.2/32.4/4.7/-0.2\n");
  return 0;
}
