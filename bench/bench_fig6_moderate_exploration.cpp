// Figure 6: effectiveness of moderate percentile exploration, IA with SLOs
// from 3 s to 7 s.
//   (a) workflow CPU of Janus+ vs Janus — Janus+ saves only ~0.6% on
//       average (the wider search space buys almost nothing),
//   (b) hint-synthesis time cost — Janus+ pays up to ~107x.
//
// Both variants run here on an identical (coarsened) budget/size grid so
// the wall-clock ratio isolates the search-space blowup, not grid effects.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace janus;

int main() {
  std::printf("%s",
              banner("Fig 6: Janus vs Janus+ across SLOs (IA)").c_str());

  const WorkloadSpec ia = make_ia();
  const auto profiles = bench::profile(ia, 1);

  // Identical fine grids for a fair comparison: the wall-clock ratio then
  // isolates the quadratic search-space blowup of Janus+.
  auto make_config = [](Exploration e) {
    SynthesisConfig config;
    config.concurrency = 1;
    config.budget_step = 2;
    config.kstep = 100;
    config.exploration = e;
    return config;
  };

  std::vector<std::vector<std::string>> rows;
  for (Seconds slo = 3.0; slo <= 7.0; slo += 1.0) {
    auto janus_policy = make_janus(profiles, make_config(Exploration::HeadOnly),
                                   slo, Exploration::HeadOnly);
    auto plus_policy = make_janus(profiles,
                                  make_config(Exploration::HeadAndNext), slo,
                                  Exploration::HeadAndNext);
    const RunConfig config = bench::run_config(slo, 1, 600);
    const double cpu = run_workload(ia, *janus_policy, config).mean_cpu();
    const double cpu_plus = run_workload(ia, *plus_policy, config).mean_cpu();
    const double t = janus_policy->adapter().bundle().stats.elapsed_s;
    const double t_plus = plus_policy->adapter().bundle().stats.elapsed_s;
    rows.push_back({fmt(slo, 1), fmt(cpu, 1), fmt(cpu_plus, 1),
                    fmt(100.0 * (cpu - cpu_plus) / cpu, 2) + "%",
                    fmt(t, 3), fmt(t_plus, 3), fmt(t_plus / t, 1) + "x"});
  }
  std::printf("%s",
              render_table({"SLO (s)", "Janus CPU", "Janus+ CPU",
                            "Janus+ saving", "Janus synth (s)",
                            "Janus+ synth (s)", "time ratio"},
                           rows)
                  .c_str());
  std::printf("\npaper: Janus+ saves ~0.6%% on average but costs up to "
              "107.2x more synthesis time; Janus's time grows mildly with "
              "looser SLOs\n");
  return 0;
}
