// Per-policy-family sustainable-throughput scorecard.
//
// For each §V policy family, runs the latency–throughput frontier
// explorer over a shared heterogeneous tenant mix (Poisson/MMPP/diurnal
// arrivals) and reports the knee: the max offered fleet req/s the family
// sustains under the SLO-met target.  The trailing
// `sustainable_rps_<family>:` lines are the CI regression gate —
// tools/compare_bench.py diffs them against the committed baseline, so a
// sizing-policy regression shows up as "the knee moved left", not "wall
// time got 3% slower".
//
// The second half pins the determinism contract: the same frontier sweep
// over a policy mix across shard counts {1, 2, 4}, process counts {1, 2},
// and a rerun, asserting every deterministic column of every operating
// point (offered/achieved rps, SLO-met, P50/P99/P999, sim_end_s) and the
// knee itself stay bit-identical.  peak_pending and peak_rss_kb are the
// documented machine/layout-dependent carve-outs and are excluded.
//
// When JANUS_FRONTIER_OUT is set, writes frontier_<family>.{json,csv}
// artifacts there (ci/verify.sh points it at the bench-report directory).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "fleet/frontier.hpp"

using namespace janus;

namespace {

constexpr int kTenants = 4;
constexpr int kRequestsPerTenant = 300;
constexpr double kSloTarget = 0.9;
constexpr double kStepRps = 10.0;
constexpr double kStopRps = 120.0;
constexpr int kBisectIters = 4;

const std::vector<std::string> kFamilies{"fixed", "janus", "orion",
                                         "mean_based"};

FrontierConfig frontier_config(PolicyCatalog& catalog,
                               const std::vector<std::string>& policies,
                               int shards, int processes) {
  FrontierConfig config;
  config.fleet.tenants =
      make_tenant_mix(kTenants, kRequestsPerTenant, /*base_rate=*/10.0,
                      ArrivalKind::Poisson, /*mixed_kinds=*/true, policies);
  config.fleet.shards = shards;
  config.fleet.processes = processes;
  config.fleet.seed = 2026;
  config.fleet.cluster.nodes = 8;
  config.fleet.catalog = &catalog;
  config.slo_target = kSloTarget;
  config.step_rps = kStepRps;
  config.stop_rps = kStopRps;
  config.bisect_iters = kBisectIters;
  return config;
}

/// Bitwise equality over the deterministic columns (peak_pending and
/// peak_rss_kb are the documented machine/layout-dependent carve-outs).
bool frontier_identical(const FrontierResult& a, const FrontierResult& b) {
  if (a.knee_rps != b.knee_rps || a.knee_index != b.knee_index ||
      a.censored_low != b.censored_low ||
      a.censored_high != b.censored_high ||
      a.base_rps != b.base_rps || a.points.size() != b.points.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const FrontierPoint& x = a.points[i];
    const FrontierPoint& y = b.points[i];
    if (x.phase != y.phase || x.offered_rps != y.offered_rps ||
        x.achieved_rps != y.achieved_rps || x.slo_met != y.slo_met ||
        x.sustained != y.sustained || x.p50_s != y.p50_s ||
        x.p99_s != y.p99_s || x.p999_s != y.p999_s ||
        x.sim_end_s != y.sim_end_s) {
      return false;
    }
  }
  return true;
}

void write_artifacts(const char* outdir, const std::string& family,
                     const FrontierResult& result) {
  for (const char* ext : {"json", "csv"}) {
    const std::string path =
        std::string(outdir) + "/frontier_" + family + "." + ext;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_frontier: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    out << (std::string(ext) == "json" ? result.to_json() : result.to_csv());
  }
}

}  // namespace

int main() {
  PolicyCatalogConfig catalog_config;  // fleet-grade defaults
  PolicyCatalog catalog(catalog_config);
  const char* outdir = std::getenv("JANUS_FRONTIER_OUT");

  // ---- Scorecard: one frontier per homogeneous policy family. ---------
  std::printf("%s", banner("Sustainable-throughput frontier: " +
                           std::to_string(kTenants) + " tenants x " +
                           std::to_string(kRequestsPerTenant) +
                           " requests, SLO-met target " +
                           fmt(100.0 * kSloTarget, 0) + "%")
                        .c_str());
  std::vector<std::vector<std::string>> rows;
  std::vector<double> knees;
  bool any_bracketed = false;
  bool ceiling_hit = false;
  for (const std::string& family : kFamilies) {
    const FrontierResult r =
        explore_frontier(frontier_config(catalog, {family}, 1, 1));
    // censored-low is a legitimate verdict, not a tuning failure:
    // mean_based sizes to the mean, so its tail misses the SLO at *any*
    // load and its sustainable rate under a 90% target is genuinely 0.
    // The baseline pins that 0; a knee appearing would trip the gate just
    // like one moving left.  censored-high always means the ceiling is
    // too low to say anything — that fails the bench below.
    any_bracketed = any_bracketed || !(r.censored_low || r.censored_high);
    ceiling_hit = ceiling_hit || r.censored_high;
    knees.push_back(r.knee_rps);
    const FrontierPoint* knee =
        r.knee_index >= 0 ? &r.points[static_cast<std::size_t>(r.knee_index)]
                          : nullptr;
    rows.push_back({family, fmt(r.knee_rps, 3),
                    knee ? fmt(knee->achieved_rps, 3) : "-",
                    knee ? fmt(100.0 * knee->slo_met, 2) + "%" : "-",
                    knee ? fmt(knee->p99_s, 3) : "-",
                    knee ? fmt(knee->p999_s, 3) : "-",
                    std::to_string(r.points.size()),
                    r.censored_low ? "low" : r.censored_high ? "high" : "no"});
    if (outdir != nullptr) write_artifacts(outdir, family, r);
  }
  std::printf("%s",
              render_table({"policy", "knee r/s", "achieved r/s", "SLO met",
                            "P99 (s)", "P999 (s)", "points", "censored"},
                           rows)
                  .c_str());

  // ---- Determinism: policy-mix frontier across shards, processes, rerun.
  std::printf("%s", banner("Frontier determinism: policy mix, shard sweep + "
                           "process sweep + rerun")
                        .c_str());
  const std::vector<std::string> mix{"janus", "orion", "mean_based", "fixed"};
  FrontierResult reference;
  bool identical = true;
  std::vector<std::vector<std::string>> sweep_rows;
  bool first = true;
  for (const auto& [shards, processes] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 1}, {4, 1}, {1, 2}, {2, 2}}) {
    const FrontierResult result =
        explore_frontier(frontier_config(catalog, mix, shards, processes));
    const bool match = first || frontier_identical(reference, result);
    identical = identical && match;
    if (first) reference = result;
    first = false;
    sweep_rows.push_back({std::to_string(shards), std::to_string(processes),
                          fmt(result.knee_rps, 3),
                          std::to_string(result.points.size()),
                          match ? "yes" : "NO"});
  }
  const FrontierResult rerun =
      explore_frontier(frontier_config(catalog, mix, 1, 1));
  const bool rerun_match = frontier_identical(reference, rerun);
  identical = identical && rerun_match;
  sweep_rows.push_back({"1 (rerun)", "1", fmt(rerun.knee_rps, 3),
                        std::to_string(rerun.points.size()),
                        rerun_match ? "yes" : "NO"});
  std::printf("%s",
              render_table({"shards", "procs", "knee r/s", "points",
                            "identical"},
                           sweep_rows)
                  .c_str());
  if (outdir != nullptr) write_artifacts(outdir, "mix", reference);

  // Machine-readable gate lines (compare_bench.py sustainable-rps gate).
  double total = 0.0;
  for (std::size_t f = 0; f < kFamilies.size(); ++f) {
    std::printf("sustainable_rps_%s: %.10g\n", kFamilies[f].c_str(),
                knees[f]);
    total += knees[f];
  }
  std::printf("sustainable_rps_mix: %.10g\n", reference.knee_rps);
  std::printf("sustainable_rps_total: %.10g\n", total + reference.knee_rps);
  std::printf("bit_identical_frontier: %s\n", identical ? "yes" : "no");

  if (!identical) {
    std::fprintf(stderr,
                 "bench_frontier: the frontier (knee or operating-point "
                 "metrics) changed with the shard count, process count, or "
                 "across reruns — determinism contract broken\n");
    return 1;
  }
  if (ceiling_hit || !any_bracketed) {
    std::fprintf(stderr,
                 "bench_frontier: %s — the scorecard is vacuous; retune "
                 "kStepRps/kStopRps\n",
                 ceiling_hit ? "a family's knee sits beyond the ramp ceiling"
                             : "every family's knee was censored");
    return 1;
  }
  if (reference.censored_low || reference.censored_high) {
    std::fprintf(stderr,
                 "bench_frontier: the determinism mix's knee was censored; "
                 "retune kStepRps/kStopRps\n");
    return 1;
  }
  return 0;
}
