// Figure 1b: function latency variance caused by varying input working
// sets for OD / QA / TS at a fixed size.  The paper reports a spread of up
// to 3.8x between P99 and P1.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace janus;

int main() {
  std::printf("%s",
              banner("Fig 1b: latency variance from varying working sets").c_str());

  const WorkloadSpec ia = make_ia();
  const auto profiles = bench::profile(ia, 1);
  const Millicores k = 2000;  // fixed mid-grid size, as in the motivation

  std::vector<std::vector<std::string>> rows;
  double worst_ratio = 0.0;
  for (const auto& profile : profiles) {
    const double p1 = profile.latency(1, k, 1);
    const double p50 = profile.latency(50, k, 1);
    const double p99 = profile.latency(99, k, 1);
    worst_ratio = std::max(worst_ratio, p99 / p1);
    rows.push_back({profile.function_name(), fmt(p1, 3), fmt(p50, 3),
                    fmt(p99, 3), fmt(p99 / p1, 2) + "x",
                    fmt(p99 / p50, 2) + "x"});
  }
  std::printf("%s", render_table({"function", "P1 (s)", "P50 (s)", "P99 (s)",
                                  "P99/P1", "P99/P50"},
                                 rows)
                        .c_str());
  std::printf("\nmax P99/P1 variance: %.2fx  (paper: up to 3.8x)\n",
              worst_ratio);
  return 0;
}
