// Figure 5: (a) CPU consumption (millicores) of IA and VA at concurrency 1
// for every system; (b) CPU normalized by Optimal for IA at concurrency 2
// and 3 (SLOs 4 s / 5 s).
//
// Paper reference: early binders over-allocate by up to 1.75x at higher
// concurrency because batching inflates runtime variability (QA's P99/P50
// grows from 2.17 to 2.32), which early binding must absorb statically.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace janus;

namespace {

void run_panel(const WorkloadSpec& workload, Concurrency c, Seconds slo,
               bool normalized) {
  std::printf("%s", banner("Fig 5: " + workload.name + " conc=" +
                           std::to_string(c) + " SLO=" + fmt(slo, 1) + "s")
                        .c_str());
  const auto profiles = bench::profile(workload, c);
  auto suite = bench::make_suite(workload, profiles, slo, c);
  const RunConfig config = bench::run_config(slo, c, 800);

  double optimal_cpu = 0.0;
  std::vector<std::vector<std::string>> rows;
  for (SizingPolicy* policy : suite.all()) {
    const double cpu = run_workload(workload, *policy, config).mean_cpu();
    if (policy->name() == "Optimal") optimal_cpu = cpu;
    if (normalized) {
      rows.push_back({policy->name(), fmt(cpu / optimal_cpu, 3)});
    } else {
      rows.push_back({policy->name(), fmt(cpu, 1),
                      fmt(cpu / optimal_cpu, 3)});
    }
  }
  if (normalized) {
    std::printf("%s", render_table({"policy", "CPU (normalized)"}, rows).c_str());
  } else {
    std::printf("%s",
                render_table({"policy", "CPU (mc)", "normalized"}, rows).c_str());
  }
}

}  // namespace

int main() {
  const WorkloadSpec ia = make_ia();
  const WorkloadSpec va = make_va();
  // (a) concurrency 1, raw millicores.
  run_panel(ia, 1, ia.slo(1), /*normalized=*/false);
  run_panel(va, 1, va.slo(1), /*normalized=*/false);
  // (b) IA at concurrency 2 and 3, normalized by Optimal.
  run_panel(ia, 2, ia.slo(2), /*normalized=*/true);
  run_panel(ia, 3, ia.slo(3), /*normalized=*/true);
  std::printf("\npaper: early binding over-allocates up to 1.75x at higher "
              "concurrency; Janus tracks Optimal via runtime adaptation\n");
  return 0;
}
