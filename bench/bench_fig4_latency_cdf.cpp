// Figure 4: end-to-end latency distributions for IA (concurrency 1, 2, 3)
// and VA (concurrency 1) under every system, with the SLO marked.
//
// Paper reference: all Janus variants fulfill their SLOs (at ~P99) despite
// running closer to the deadline than the over-provisioned early binders —
// "Janus trades in time for resource efficiency".
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace janus;

namespace {

void panel(const WorkloadSpec& workload, Concurrency c, Seconds slo,
           int requests) {
  std::printf("%s", banner(workload.name + " concurrency=" +
                           std::to_string(c) + " SLO=" + fmt(slo, 1) + "s")
                        .c_str());
  const auto profiles = bench::profile(workload, c);
  auto suite = bench::make_suite(workload, profiles, slo, c);
  const RunConfig config = bench::run_config(slo, c, requests);

  std::vector<std::vector<std::string>> rows;
  for (SizingPolicy* policy : suite.all()) {
    const RunResult result = run_workload(workload, *policy, config);
    const auto dist = result.e2e_distribution();
    rows.push_back({policy->name(), fmt(dist.percentile(50), 3),
                    fmt(dist.percentile(90), 3), fmt(dist.percentile(99), 3),
                    fmt(dist.percentile(99.9), 3),
                    fmt(100.0 * result.violation_rate(), 2) + "%"});
  }
  std::printf("%s", render_table({"policy", "P50 (s)", "P90 (s)", "P99 (s)",
                                  "P99.9 (s)", ">SLO"},
                                 rows)
                        .c_str());
}

}  // namespace

int main() {
  const WorkloadSpec ia = make_ia();
  const WorkloadSpec va = make_va();
  panel(ia, 1, ia.slo(1), 1000);
  panel(va, 1, va.slo(1), 1000);
  panel(ia, 2, ia.slo(2), 600);
  panel(ia, 3, ia.slo(3), 600);
  std::printf("\npaper: every system obeys its SLO at ~P99; Janus variants "
              "sit closest to the deadline (they trade time for resources)\n");
  return 0;
}
