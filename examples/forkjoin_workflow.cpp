// Fork-join workflows (the paper's future work): Janus on a social-feed
// pipeline
//
//            ┌─ thumbnail ──┐
//   ingest ──┼─ moderation ─┼── rank
//            └─ captioning ─┘
//
// The DAG collapses to a chain of levels; each level's profile is the
// conservative (comonotonic) max of its members, each level's members share
// one size, and the adapter re-budgets at every join from the slowest
// branch.
//
// Build & run:  cmake --build build && ./build/examples/forkjoin_workflow
#include <cstdio>

#include "branching/level_workflow.hpp"
#include "exp/report.hpp"
#include "policy/early_binding.hpp"
#include "policy/janus_policy.hpp"
#include "policy/policy.hpp"

using namespace janus;

int main() {
  const WorkloadSpec sf = make_social_feed();
  const Seconds slo = sf.slo(1);
  std::printf("Social-feed workflow: %zu functions, SLO %.1fs\n",
              sf.workflow.size(), slo);

  ProfilerConfig prof;
  prof.interference = InterferenceModel(workload_interference_params());
  const LevelWorkload lw = build_level_workload(sf, prof);
  std::printf("collapsed to %zu levels:", lw.level_count());
  for (std::size_t l = 0; l < lw.level_count(); ++l) {
    std::printf(" %s(x%d)", lw.level_profiles[l].function_name().c_str(),
                lw.widths[l]);
  }
  std::printf("\n\n");

  // Janus over level profiles with width-weighted costs.
  auto janus_policy =
      make_janus(lw.level_profiles, level_synthesis_config(lw), slo);

  // Early-binding reference: every level at the size meeting its P99 share.
  EarlyBindingInputs eb;
  eb.profiles = &lw.level_profiles;
  eb.slo = slo;
  auto fixed = make_grandslam_plus(eb);

  RunConfig run;
  run.slo = slo;
  run.requests = 600;

  std::vector<std::vector<std::string>> rows;
  for (SizingPolicy* policy : {static_cast<SizingPolicy*>(janus_policy.get()),
                               static_cast<SizingPolicy*>(fixed.get())}) {
    const RunResult result = run_level_workload(lw, *policy, run);
    rows.push_back({policy->name(), fmt(result.mean_cpu(), 1),
                    fmt(result.e2e_percentile(50), 3),
                    fmt(result.e2e_percentile(99), 3),
                    fmt(100.0 * result.violation_rate(), 2) + "%"});
  }
  std::printf("%s", render_table({"policy", "CPU (mc, all 5 fns)",
                                  "P50 E2E (s)", "P99 E2E (s)", ">SLO"},
                                 rows)
                        .c_str());
  std::printf("\nJanus sizes 5 pods per request (fan-out level counts 3x) "
              "and still recovers the fork's slack at the join.\n");
  return 0;
}
