// Quickstart: the full Janus pipeline on the Intelligent Assistant workflow.
//
//   1. profile the workflow's functions (developer side, offline),
//   2. synthesize + condense the hints table,
//   3. hand the hints to the provider-side adapter,
//   4. serve requests with runtime resource adaptation,
//   5. compare against early binding and the clairvoyant optimum.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "model/workloads.hpp"
#include "policy/early_binding.hpp"
#include "policy/janus_policy.hpp"
#include "policy/optimal.hpp"
#include "policy/orion.hpp"
#include "profiler/profiler.hpp"

using namespace janus;

int main() {
  // --- 1. Developer side: profile the workflow. -------------------------
  const WorkloadSpec ia = make_ia();
  ProfilerConfig prof_config = default_profiler_config(ia);
  prof_config.samples_per_point = 2000;
  const std::vector<LatencyProfile> profiles = profile_workload(ia, prof_config);

  std::printf("Profiled %zu functions of %s across %zu sizes\n",
              profiles.size(), ia.name.c_str(),
              prof_config.grid.cores().size());
  for (const auto& p : profiles) {
    std::printf("  %-3s  L(P50,1000mc)=%.3fs  L(P99,1000mc)=%.3fs  "
                "L(P99,3000mc)=%.3fs\n",
                p.function_name().c_str(), p.latency(50, 1000, 1),
                p.latency(99, 1000, 1), p.latency(99, 3000, 1));
  }

  // --- 2+3. Synthesize hints and build the Janus policy. ----------------
  const Seconds slo = ia.slo(1);
  SynthesisConfig synth;
  synth.concurrency = 1;
  auto janus_policy = make_janus(profiles, synth, slo);
  const auto& stats = janus_policy->adapter().bundle().stats;
  std::printf("\nHints: %zu raw -> %zu condensed (%.1f%% compression), "
              "synthesized in %.2fs\n",
              stats.raw_hints, stats.condensed_hints,
              100.0 * (1.0 - static_cast<double>(stats.condensed_hints) /
                                 static_cast<double>(stats.raw_hints)),
              stats.elapsed_s);

  // --- Baselines. --------------------------------------------------------
  EarlyBindingInputs eb;
  eb.profiles = &profiles;
  eb.slo = slo;
  auto grandslam = make_grandslam(eb);
  auto orion = make_orion(eb);
  OptimalInputs opt;
  opt.models = ia.chain_models();
  opt.slo = slo;
  auto optimal = make_optimal(opt);

  // --- 4+5. Serve 500 requests under each policy. -----------------------
  RunConfig run;
  run.slo = slo;
  run.requests = 500;

  std::vector<std::vector<std::string>> rows;
  double optimal_cpu = 0.0;
  for (SizingPolicy* policy :
       {static_cast<SizingPolicy*>(optimal.get()),
        static_cast<SizingPolicy*>(janus_policy.get()),
        static_cast<SizingPolicy*>(orion.get()),
        static_cast<SizingPolicy*>(grandslam.get())}) {
    const RunResult result = run_workload(ia, *policy, run);
    if (policy == optimal.get()) optimal_cpu = result.mean_cpu();
    rows.push_back({policy->name(), fmt(result.mean_cpu(), 1),
                    fmt(result.mean_cpu() / optimal_cpu, 3),
                    fmt(result.e2e_percentile(99), 3),
                    fmt(100.0 * result.violation_rate(), 2) + "%"});
  }
  std::printf("\n%s\n",
              render_table({"policy", "CPU (mc)", "norm", "P99 E2E (s)",
                            "violations"},
                           rows)
                  .c_str());
  std::printf("SLO: %.1fs; adapter hit/miss: %llu/%llu\n", slo,
              static_cast<unsigned long long>(
                  janus_policy->adapter().stats().hits +
                  janus_policy->adapter().stats().clamped),
              static_cast<unsigned long long>(
                  janus_policy->adapter().stats().misses));
  return 0;
}
