// Video Analyze pipeline (FE -> ICL -> ICO) under realistic platform
// conditions: open-loop Poisson arrivals and *endogenous* interference —
// the slowdown each invocation suffers comes from the pods actually
// co-located with it on the simulated cluster, not from a pre-drawn value.
//
// Demonstrates: non-batchable functions, SLO compliance under load, and
// the resource gap between Janus and a fixed early-binding deployment.
//
// Build & run:  cmake --build build && ./build/examples/video_pipeline
#include <cstdio>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "model/workloads.hpp"
#include "policy/early_binding.hpp"
#include "policy/janus_policy.hpp"
#include "profiler/profiler.hpp"

using namespace janus;

int main() {
  const WorkloadSpec va = make_va();
  const Seconds slo = va.slo(1);

  std::printf("Video Analyze: %zu-stage chain, SLO %.1fs\n",
              va.workflow.size(), slo);
  std::printf("  FE  batchable=%d (frame extraction cannot batch)\n",
              va.chain_models()[0].batchable());
  std::printf("  ICL batchable=%d\n", va.chain_models()[1].batchable());
  std::printf("  ICO batchable=%d\n", va.chain_models()[2].batchable());

  const auto profiles = profile_workload(va, default_profiler_config(va));
  SynthesisConfig synth;
  auto janus_policy = make_janus(profiles, synth, slo);

  EarlyBindingInputs eb;
  eb.profiles = &profiles;
  eb.slo = slo;
  auto grandslam = make_grandslam(eb);

  RunConfig run;
  run.slo = slo;
  run.requests = 500;
  run.open_loop_rate = 1.5;            // ~1.5 videos/second arrive
  run.endogenous_interference = true;  // contention from real co-location
  run.platform.nodes = 4;

  std::vector<std::vector<std::string>> rows;
  for (SizingPolicy* policy : {static_cast<SizingPolicy*>(janus_policy.get()),
                               static_cast<SizingPolicy*>(grandslam.get())}) {
    const RunResult result = run_workload(va, *policy, run);
    rows.push_back({policy->name(), fmt(result.mean_cpu(), 1),
                    fmt(result.e2e_percentile(50), 3),
                    fmt(result.e2e_percentile(99), 3),
                    fmt(100.0 * result.violation_rate(), 2) + "%"});
  }
  std::printf("\n%s", render_table({"policy", "CPU (mc)", "P50 E2E (s)",
                                    "P99 E2E (s)", ">SLO"},
                                   rows)
                          .c_str());

  const auto& stats = janus_policy->adapter().stats();
  std::printf("\nadapter: %llu lookups, %.2f%% misses (threshold 1%%)\n",
              static_cast<unsigned long long>(stats.lookups()),
              100.0 * stats.miss_rate());
  return 0;
}
