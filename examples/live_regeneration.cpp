// The §III-D supervision loop, end to end:
//
//   1. serve in-distribution traffic — hit rate stays near 100%,
//   2. the interference regime shifts (e.g. a noisy neighbour moves in) —
//      budgets start missing the table and the adapter scales to Kmax,
//   3. the miss rate crosses the 1% threshold: the adapter notifies the
//      developer, who re-profiles under the new conditions and regenerates
//      the hints asynchronously,
//   4. the fresh bundle is installed and the hit rate recovers.
//
// Build & run:  cmake --build build && ./build/examples/live_regeneration
#include <cstdio>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "model/workloads.hpp"
#include "policy/janus_policy.hpp"
#include "profiler/profiler.hpp"

using namespace janus;

namespace {

InterferenceParams shifted_regime() {
  // Harsher contention than the profiled baseline.
  InterferenceParams params = workload_interference_params();
  params.slope_cpu *= 5.0;
  params.slope_memory *= 5.0;
  params.slope_io *= 5.0;
  params.slope_network *= 5.0;
  return params;
}

void report(const char* phase, const JanusPolicy& policy,
            const RunResult& result) {
  const auto& stats = policy.adapter().stats();
  std::printf("%-28s miss-rate %5.2f%%  P99 %.3fs  >SLO %.2f%%  CPU %.0f mc\n",
              phase, 100.0 * stats.miss_rate(), result.e2e_percentile(99),
              100.0 * result.violation_rate(), result.mean_cpu());
}

}  // namespace

int main() {
  const WorkloadSpec ia = make_ia();
  const Seconds slo = ia.slo(1);

  ProfilerConfig prof = default_profiler_config(ia);
  const auto profiles = profile_workload(ia, prof);
  SynthesisConfig synth;
  auto policy = make_janus(profiles, synth, slo);

  bool regeneration_requested = false;
  policy->adapter().set_feedback([&](double miss_rate) {
    regeneration_requested = true;
    std::printf(">> adapter feedback: miss rate %.1f%% crossed the "
                "threshold; suggesting profile + hints regeneration\n",
                100.0 * miss_rate);
  });

  // Phase 1: in-distribution traffic.
  RunConfig steady;
  steady.slo = slo;
  steady.requests = 400;
  report("phase 1 (steady state):", *policy,
         run_workload(ia, *policy, steady));

  // Phase 2: the runtime regime shifts away from the profiles.
  RunConfig shifted = steady;
  shifted.requests = 300;
  shifted.seed = 77;
  shifted.interference = InterferenceModel(shifted_regime());
  report("phase 2 (regime shift):", *policy,
         run_workload(ia, *policy, shifted));
  std::printf("   regeneration requested: %s\n",
              regeneration_requested ? "yes" : "no");

  // Phase 3: asynchronous regeneration — re-profile under the observed
  // conditions, re-synthesize, install.  Traffic keeps flowing meanwhile
  // (with sub-optimal Kmax fallbacks); here we re-serve after the install.
  ProfilerConfig reprof = prof;
  reprof.interference = InterferenceModel(shifted_regime());
  reprof.seed = 101;
  const auto new_profiles = profile_workload(ia, reprof);
  policy->adapter().install_bundle(synthesize_bundle(new_profiles, synth));
  std::printf(">> regenerated hints installed (%zu entries)\n",
              policy->adapter().bundle().total_entries());

  RunConfig recovered = shifted;
  recovered.seed = 99;
  report("phase 3 (after regen):", *policy,
         run_workload(ia, *policy, recovered));
  return 0;
}
