// Developer tooling: inspect what the synthesizer actually ships to the
// provider.  Profiles IA, synthesizes hints, prints the condensed
// ⟨start, end, size⟩ tables per sub-workflow, exports them as CSV (the
// interchange format between the developer and provider sides), and
// answers what-if queries against the tables.
//
// Build & run:  cmake --build build && ./build/examples/hints_inspector
#include <cstdio>

#include "adapter/adapter.hpp"
#include "common/csv.hpp"
#include "exp/report.hpp"
#include "hints/generator.hpp"
#include "hints/metrics.hpp"
#include "model/workloads.hpp"
#include "profiler/profiler.hpp"

using namespace janus;

int main() {
  const WorkloadSpec ia = make_ia();
  const auto profiles = profile_workload(ia, default_profiler_config(ia));

  SynthesisConfig config;
  const HintsBundle bundle = synthesize_bundle(profiles, config);
  std::printf("Synthesized %zu raw hints -> %zu condensed entries in %.2fs "
              "(%llu search probes)\n",
              bundle.stats.raw_hints, bundle.stats.condensed_hints,
              bundle.stats.elapsed_s,
              static_cast<unsigned long long>(bundle.stats.probes));

  const char* suffix_names[] = {"OD->QA->TS", "QA->TS", "TS"};
  for (std::size_t j = 0; j < bundle.suffix_tables.size(); ++j) {
    const HintsTable& table = bundle.suffix_tables[j];
    std::printf("%s", banner(std::string("sub-workflow ") + suffix_names[j] +
                             " (" + std::to_string(table.size()) + " entries)")
                          .c_str());
    std::vector<std::vector<std::string>> rows;
    for (const auto& e : table.entries()) {
      rows.push_back({std::to_string(e.start) + " ms",
                      std::to_string(e.end) + " ms",
                      std::to_string(e.size) + " mc"});
    }
    // Print at most 12 rows to keep the output browsable.
    if (rows.size() > 12) {
      rows.resize(12);
      rows.push_back({"...", "...", "..."});
    }
    std::printf("%s", render_table({"start", "end", "size"}, rows).c_str());

    const std::string path = "/tmp/janus_hints_suffix" + std::to_string(j) +
                             ".csv";
    csv_write_file(path, csv_decode(table.to_csv()));
    std::printf("exported: %s\n", path.c_str());
  }

  // What-if queries through the provider-side adapter.
  Adapter adapter(bundle);
  std::printf("%s", banner("what-if queries").c_str());
  for (double budget : {2.8, 2.0, 1.2, 0.6, 0.2}) {
    const auto result = adapter.peek(1, budget);
    const char* kind = result.kind == HintsTable::LookupKind::Hit ? "hit"
                       : result.kind == HintsTable::LookupKind::ClampedHigh
                           ? "clamped-high"
                           : "MISS->Kmax";
    std::printf("  %.1fs left before QA->TS : %-12s -> QA gets %d mc\n",
                budget, kind,
                result.kind == HintsTable::LookupKind::Miss ? kDefaultKmax
                                                            : result.size);
  }

  // The §III-B risk metrics for the head function.
  std::printf("%s", banner("OD timeout/resilience at 1500 mc").c_str());
  for (Percentile p : {25, 50, 75, 95}) {
    std::printf("  P%-2d: timeout D=%.3fs  resilience R=%.3fs\n", p,
                timeout_metric(profiles[0], p, 1500, 1),
                resilience_metric(profiles[0], p, 1500, 1, 3000));
  }
  return 0;
}
