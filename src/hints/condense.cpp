#include "hints/condense.hpp"

#include <algorithm>

#include "common/types.hpp"

namespace janus {

HintsTable condense_hints(const SuffixHints& raw) {
  if (raw.hints.empty()) return HintsTable{};

  // Algorithm 2 sorts by budget (the paper walks descending; ascending with
  // run-length fusion is equivalent and keeps entries ready-ordered).
  std::vector<const RawHint*> sorted;
  sorted.reserve(raw.hints.size());
  for (const auto& h : raw.hints) {
    require(!h.sizes.empty(), "raw hint without sizes");
    sorted.push_back(&h);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const RawHint* a, const RawHint* b) {
              return a->budget < b->budget;
            });

  std::vector<CondensedEntry> entries;
  CondensedEntry current{sorted.front()->budget, sorted.front()->budget,
                         sorted.front()->sizes.front()};
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const RawHint& h = *sorted[i];
    const Millicores k1 = h.sizes.front();
    if (k1 == current.size) {
      current.end = h.budget;  // fuse (Insight-5)
    } else {
      // Close the run at the midpoint-free boundary: the new run starts at
      // this hint's budget; budgets strictly between grid points belong to
      // the lower run (conservative: they get the larger size, since head
      // sizes shrink as budgets grow in the common case).
      current.end = std::max(current.end, h.budget - 1);
      entries.push_back(current);
      current = {h.budget, h.budget, k1};
    }
  }
  entries.push_back(current);
  return HintsTable(std::move(entries));
}

double compression_ratio(std::size_t raw_rows, std::size_t condensed_rows) {
  if (raw_rows == 0) return 0.0;
  if (condensed_rows >= raw_rows) return 0.0;
  return 1.0 -
         static_cast<double>(condensed_rows) / static_cast<double>(raw_rows);
}

}  // namespace janus
