// Suffix dynamic program over the budget grid.
//
// Algorithm 1's recursive generate(F \ f1, t', {P99}) minimizes the total
// millicores of the non-head functions at a fixed P99.  Implemented
// directly, that recursion re-solves identical subproblems for every
// (budget, head-size, head-percentile) combination; tabulating it once per
// suffix over the 1 ms budget grid makes the head-level sweep O(1) per
// probe.  The DP also carries the total downstream resilience
// Σ R_i(99, k_i*) of the minimal allocation, which Eq. (6) checks against
// the head's timeout.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "profiler/profile.hpp"

namespace janus {

class TailPlan {
 public:
  /// `chain` holds profiles in execution order; `horizon` bounds the budget
  /// grid (budgets above it are clamped by callers).  `widths` gives the
  /// number of parallel function instances each stage provisions (1 for a
  /// plain chain; >1 for a fork-join level whose members share a size) —
  /// stage j then contributes widths[j] * k to the cost.
  TailPlan(std::vector<const LatencyProfile*> chain, Concurrency concurrency,
           Millicores kmin, Millicores kmax, Millicores kstep,
           BudgetMs horizon, std::vector<int> widths = {});

  std::size_t chain_length() const noexcept { return chain_.size(); }
  BudgetMs horizon() const noexcept { return horizon_; }

  /// True when functions j..N-1 can finish within `budget` at P99.
  bool feasible(std::size_t j, BudgetMs budget) const;

  /// Minimal total millicores for suffix j within `budget` (P99 for every
  /// function).  Throws when infeasible.
  Millicores total_cost(std::size_t j, BudgetMs budget) const;

  /// Total resilience Σ R_i(99, k_i*) of the minimal allocation, in ms.
  BudgetMs resilience(std::size_t j, BudgetMs budget) const;

  /// Reconstructs the minimal allocation (sizes for functions j..N-1).
  std::vector<Millicores> allocation(std::size_t j, BudgetMs budget) const;

  /// Smallest feasible budget for suffix j (ms).
  BudgetMs min_feasible(std::size_t j) const;

 private:
  struct Cell {
    std::int32_t cost;        // min total millicores; kInfeasible when none
    std::int32_t resilience;  // ms
    std::int32_t choice;      // millicores for function j
  };
  static constexpr std::int32_t kInfeasible = -1;

  const Cell& cell(std::size_t j, BudgetMs budget) const;
  BudgetMs clamp_budget(BudgetMs budget) const noexcept;

  std::vector<const LatencyProfile*> chain_;
  Concurrency concurrency_;
  std::vector<int> widths_;
  Millicores kmin_, kmax_, kstep_;
  BudgetMs horizon_;
  /// cells_[j][t], t in [0, horizon_].
  std::vector<std::vector<Cell>> cells_;
  std::vector<BudgetMs> min_feasible_;
};

}  // namespace janus
