// Hints condensing — Algorithm 2 (§IV-B).
//
// The raw table has one row per millisecond of budget; resource adaptation
// is discrete (millicore grid, batch sizes), so long budget runs share the
// same head size (Insight-5), and only the head's field is ever consulted
// at runtime (Insight-6).  Condensing fuses maximal consecutive runs of
// identical head sizes into ⟨Tstart, Tend, k⟩ ranges; the paper reports
// compression ratios of up to 99.6% (IA) and 98.2% (VA) with no loss of
// adaptation accuracy.
#pragma once

#include "hints/table.hpp"

namespace janus {

/// Condenses a raw suffix table.  Accepts hints in any order (sorts
/// internally, Algorithm 2 line 2).  Infeasible budgets (no hint row) stay
/// uncovered and surface as lookup misses.
HintsTable condense_hints(const SuffixHints& raw);

/// Compression ratio 1 - condensed/raw in [0, 1]; 0 for empty input.
double compression_ratio(std::size_t raw_rows, std::size_t condensed_rows);

}  // namespace janus
