#include "hints/metrics.hpp"

namespace janus {

Seconds timeout_metric(const LatencyProfile& profile, Percentile p,
                       Millicores k, Concurrency c) {
  return profile.latency(99, k, c) - profile.latency(p, k, c);
}

Seconds resilience_metric(const LatencyProfile& profile, Percentile p,
                          Millicores k, Concurrency c, Millicores kmax) {
  return profile.latency(p, k, c) - profile.latency(p, kmax, c);
}

BudgetMs timeout_metric_ms(const LatencyProfile& profile, Percentile p,
                           Millicores k, Concurrency c) {
  return profile.latency_ms(99, k, c) - profile.latency_ms(p, k, c);
}

BudgetMs resilience_metric_ms(const LatencyProfile& profile, Percentile p,
                              Millicores k, Concurrency c, Millicores kmax) {
  return profile.latency_ms(p, k, c) - profile.latency_ms(p, kmax, c);
}

}  // namespace janus
