// Hints tables: the artifact the developer ships to the provider.
//
// A *raw* hint maps one time budget to a full allocation (plus the head
// percentile the synthesizer chose).  The *condensed* table (Algorithm 2)
// keeps only ⟨start, end, size⟩ ranges for the head function — Insight-5
// fuses budgets sharing a head size, Insight-6 drops non-head fields.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace janus {

/// One row of the raw hints table H = {⟨t, {k1..kN}⟩} from Algorithm 1.
struct RawHint {
  BudgetMs budget = 0;
  /// Provisioned millicores, head first.
  std::vector<Millicores> sizes;
  /// Percentile the synthesizer selected for the head function.
  Percentile head_percentile = 99;
  /// Expected resource consumption (Eq. 4) of this hint.
  double expected_cost = 0.0;
};

/// Raw hints for one sub-workflow suffix, ascending by budget.  Budgets
/// below `feasible_from` have no hint (no allocation can meet them).
struct SuffixHints {
  std::vector<RawHint> hints;
  BudgetMs tmin = 0;          // explored range (Eq. 3)
  BudgetMs tmax = 0;
  BudgetMs feasible_from = 0; // first budget with a feasible allocation
};

/// Condensed entry: budgets in [start, end] resize the head to `size`.
struct CondensedEntry {
  BudgetMs start = 0;
  BudgetMs end = 0;
  Millicores size = 0;
};

class HintsTable {
 public:
  enum class LookupKind {
    Hit,          // budget inside a condensed range
    ClampedHigh,  // budget above Tend of the last range: more slack than
                  // explored, the top entry's (cheapest) size is safe
    Miss,         // budget below every range: unexpected dynamics
  };
  struct Lookup {
    LookupKind kind = LookupKind::Miss;
    Millicores size = 0;
  };

  HintsTable() = default;
  /// Entries must be non-overlapping; they are sorted by start.
  explicit HintsTable(std::vector<CondensedEntry> entries);

  Lookup lookup(BudgetMs budget) const noexcept;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const std::vector<CondensedEntry>& entries() const noexcept { return entries_; }
  BudgetMs min_budget() const;
  BudgetMs max_budget() const;

  /// CSV round-trip with the paper's three fields: start,end,size.
  std::string to_csv() const;
  static HintsTable from_csv(const std::string& text);

  std::size_t memory_bytes() const noexcept;

 private:
  std::vector<CondensedEntry> entries_;
};

}  // namespace janus
