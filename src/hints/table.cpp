#include "hints/table.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "common/types.hpp"

namespace janus {

HintsTable::HintsTable(std::vector<CondensedEntry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const CondensedEntry& a, const CondensedEntry& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    require(entries_[i].end >= entries_[i].start, "entry range inverted");
    require(entries_[i].size > 0, "entry size must be > 0");
    if (i > 0) {
      require(entries_[i].start > entries_[i - 1].end,
              "entries must not overlap");
    }
  }
}

HintsTable::Lookup HintsTable::lookup(BudgetMs budget) const noexcept {
  if (entries_.empty()) return {LookupKind::Miss, 0};
  if (budget > entries_.back().end) {
    return {LookupKind::ClampedHigh, entries_.back().size};
  }
  // First entry whose end >= budget.
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), budget,
      [](const CondensedEntry& e, BudgetMs b) { return e.end < b; });
  if (it == entries_.end() || budget < it->start) {
    return {LookupKind::Miss, 0};
  }
  return {LookupKind::Hit, it->size};
}

BudgetMs HintsTable::min_budget() const {
  require(!entries_.empty(), "empty hints table");
  return entries_.front().start;
}

BudgetMs HintsTable::max_budget() const {
  require(!entries_.empty(), "empty hints table");
  return entries_.back().end;
}

std::string HintsTable::to_csv() const {
  CsvDoc doc;
  doc.header = {"start", "end", "size"};
  for (const auto& e : entries_) {
    doc.rows.push_back({std::to_string(e.start), std::to_string(e.end),
                        std::to_string(e.size)});
  }
  return csv_encode(doc);
}

HintsTable HintsTable::from_csv(const std::string& text) {
  const CsvDoc doc = csv_decode(text);
  std::vector<CondensedEntry> entries;
  const std::size_t s = doc.column("start");
  const std::size_t e = doc.column("end");
  const std::size_t k = doc.column("size");
  for (const auto& row : doc.rows) {
    entries.push_back({std::stoll(row[s]), std::stoll(row[e]),
                       std::stoi(row[k])});
  }
  return HintsTable(std::move(entries));
}

std::size_t HintsTable::memory_bytes() const noexcept {
  return sizeof(*this) + entries_.capacity() * sizeof(CondensedEntry);
}

}  // namespace janus
