#include "hints/tail_plan.hpp"

#include <algorithm>

#include "hints/metrics.hpp"

namespace janus {

TailPlan::TailPlan(std::vector<const LatencyProfile*> chain,
                   Concurrency concurrency, Millicores kmin, Millicores kmax,
                   Millicores kstep, BudgetMs horizon, std::vector<int> widths)
    : chain_(std::move(chain)),
      concurrency_(concurrency),
      widths_(std::move(widths)),
      kmin_(kmin),
      kmax_(kmax),
      kstep_(kstep),
      horizon_(horizon) {
  require(!chain_.empty(), "tail plan needs >= 1 function");
  require(horizon_ >= 0, "horizon must be >= 0");
  require(kmin_ > 0 && kmax_ >= kmin_ && kstep_ > 0, "bad millicore grid");
  if (widths_.empty()) widths_.assign(chain_.size(), 1);
  require(widths_.size() == chain_.size(), "widths size mismatch");
  for (int w : widths_) require(w >= 1, "stage width must be >= 1");

  const std::size_t n = chain_.size();
  const auto width = static_cast<std::size_t>(horizon_) + 1;
  cells_.assign(n, std::vector<Cell>(width, {kInfeasible, 0, 0}));
  min_feasible_.assign(n, horizon_ + 1);

  // Pre-extract per-function L(99, k) and R(99, k) on the grid.
  std::vector<Millicores> ks;
  for (Millicores k = kmin_; k <= kmax_; k += kstep_) ks.push_back(k);
  std::vector<std::vector<BudgetMs>> lat(n), res(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (Millicores k : ks) {
      lat[j].push_back(chain_[j]->latency_ms(99, k, concurrency_));
      res[j].push_back(
          resilience_metric_ms(*chain_[j], 99, k, concurrency_, kmax_));
    }
  }

  // Backward induction.  Last function: smallest size that fits.
  for (BudgetMs t = 0; t <= horizon_; ++t) {
    Cell& c = cells_[n - 1][static_cast<std::size_t>(t)];
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      if (lat[n - 1][ki] <= t) {
        c.cost = ks[ki] * widths_[n - 1];
        c.resilience = static_cast<std::int32_t>(res[n - 1][ki]);
        c.choice = ks[ki];
        break;  // grid ascending: the first fitting size is the cheapest
      }
    }
  }
  for (std::size_t jj = n - 1; jj-- > 0;) {
    const auto& next = cells_[jj + 1];
    for (BudgetMs t = 0; t <= horizon_; ++t) {
      Cell best{kInfeasible, 0, 0};
      for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        const BudgetMs rem = t - lat[jj][ki];
        if (rem < 0) continue;
        const Cell& tail = next[static_cast<std::size_t>(rem)];
        if (tail.cost == kInfeasible) continue;
        const std::int32_t cost = tail.cost + ks[ki] * widths_[jj];
        const std::int32_t resilience =
            tail.resilience + static_cast<std::int32_t>(res[jj][ki]);
        // Minimize cost; among ties prefer the larger resilience (safer
        // hint for the same price).
        if (best.cost == kInfeasible || cost < best.cost ||
            (cost == best.cost && resilience > best.resilience)) {
          best = {cost, resilience, ks[ki]};
        }
      }
      cells_[jj][static_cast<std::size_t>(t)] = best;
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (BudgetMs t = 0; t <= horizon_; ++t) {
      if (cells_[j][static_cast<std::size_t>(t)].cost != kInfeasible) {
        min_feasible_[j] = t;
        break;
      }
    }
  }
}

BudgetMs TailPlan::clamp_budget(BudgetMs budget) const noexcept {
  return std::min(budget, horizon_);
}

const TailPlan::Cell& TailPlan::cell(std::size_t j, BudgetMs budget) const {
  require(j < chain_.size(), "suffix index out of range");
  require(budget >= 0, "budget must be >= 0");
  return cells_[j][static_cast<std::size_t>(clamp_budget(budget))];
}

bool TailPlan::feasible(std::size_t j, BudgetMs budget) const {
  if (budget < 0) return false;
  return cell(j, budget).cost != kInfeasible;
}

Millicores TailPlan::total_cost(std::size_t j, BudgetMs budget) const {
  const Cell& c = cell(j, budget);
  require(c.cost != kInfeasible, "infeasible suffix budget");
  return c.cost;
}

BudgetMs TailPlan::resilience(std::size_t j, BudgetMs budget) const {
  const Cell& c = cell(j, budget);
  require(c.cost != kInfeasible, "infeasible suffix budget");
  return c.resilience;
}

std::vector<Millicores> TailPlan::allocation(std::size_t j,
                                             BudgetMs budget) const {
  std::vector<Millicores> out;
  BudgetMs t = clamp_budget(budget);
  for (std::size_t i = j; i < chain_.size(); ++i) {
    const Cell& c = cell(i, t);
    require(c.cost != kInfeasible, "infeasible suffix budget");
    out.push_back(c.choice);
    t -= chain_[i]->latency_ms(99, c.choice, concurrency_);
  }
  return out;
}

BudgetMs TailPlan::min_feasible(std::size_t j) const {
  require(j < chain_.size(), "suffix index out of range");
  return min_feasible_[j];
}

}  // namespace janus
