#include "hints/generator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/thread_pool.hpp"
#include "hints/condense.hpp"
#include "hints/metrics.hpp"

namespace janus {

const char* to_string(Exploration e) noexcept {
  switch (e) {
    case Exploration::FixedP99: return "FixedP99";
    case Exploration::HeadOnly: return "HeadOnly";
    case Exploration::HeadAndNext: return "HeadAndNext";
  }
  return "?";
}

void SynthesisConfig::validate() const {
  require(kmin > 0 && kmax >= kmin && kstep > 0, "bad millicore grid");
  require(weight >= 1.0, "head weight must be >= 1");
  require(concurrency >= 1, "concurrency must be >= 1");
  require(budget_step >= 1, "budget step must be >= 1 ms");
  for (Percentile p : head_percentiles) {
    require(p >= 1 && p <= 99, "head percentile outside [1,99]");
  }
}

std::vector<Millicores> SynthesisConfig::cores() const {
  std::vector<Millicores> out;
  for (Millicores k = kmin; k <= kmax; k += kstep) out.push_back(k);
  return out;
}

namespace {
std::vector<const LatencyProfile*> as_pointers(
    const std::vector<LatencyProfile>& profiles) {
  std::vector<const LatencyProfile*> out;
  out.reserve(profiles.size());
  for (const auto& p : profiles) out.push_back(&p);
  return out;
}

BudgetMs horizon_for(const std::vector<const LatencyProfile*>& chain,
                     const SynthesisConfig& config) {
  // Upper end of Eq. (3) for the full workflow: Σ L(99, Kmin).
  BudgetMs sum = 0;
  for (const auto* p : chain) {
    sum += p->latency_ms(99, config.kmin, config.concurrency);
  }
  return std::max(sum, config.tmax);
}
}  // namespace

HintsGenerator::HintsGenerator(const std::vector<LatencyProfile>& profiles,
                               SynthesisConfig config)
    : chain_(as_pointers(profiles)),
      config_(std::move(config)),
      cores_(config_.cores()),
      tail_(chain_, config_.concurrency, config_.kmin, config_.kmax,
            config_.kstep, horizon_for(chain_, config_),
            config_.stage_widths) {
  require(!chain_.empty(), "generator needs >= 1 profile");
  config_.validate();
  widths_ = config_.stage_widths;
  if (widths_.empty()) widths_.assign(chain_.size(), 1);
  require(widths_.size() == chain_.size(), "stage_widths size mismatch");
  suffix_width_.assign(chain_.size() + 1, 0);
  for (std::size_t j = chain_.size(); j-- > 0;) {
    suffix_width_[j] = suffix_width_[j + 1] + widths_[j];
  }
  if (config_.head_percentiles.empty()) {
    config_.head_percentiles = default_percentiles();
  }
  if (config_.exploration == Exploration::FixedP99) {
    config_.head_percentiles = {99};
  }

  // Flatten the profile tables once; the search loops below probe them
  // millions of times.
  lat_cache_.resize(chain_.size());
  for (std::size_t j = 0; j < chain_.size(); ++j) {
    lat_cache_[j].resize(cores_.size() * 99);
    for (std::size_t ki = 0; ki < cores_.size(); ++ki) {
      for (Percentile p = 1; p <= 99; ++p) {
        lat_cache_[j][ki * 99 + static_cast<std::size_t>(p - 1)] =
            chain_[j]->latency_ms(p, cores_[ki], config_.concurrency);
      }
    }
  }
  tail_floor_.assign(chain_.size(), 0);
  for (std::size_t j = chain_.size(); j-- > 0;) {
    if (j + 1 < chain_.size()) {
      tail_floor_[j] =
          tail_floor_[j + 1] + lat(j + 1, 99, cores_.size() - 1);
    }
  }
}

std::pair<BudgetMs, BudgetMs> HintsGenerator::budget_range(
    std::size_t j) const {
  require(j < chain_.size(), "suffix index out of range");
  if (config_.tmin > 0 && config_.tmax > 0 && j == 0) {
    return {config_.tmin, config_.tmax};
  }
  BudgetMs tmin = 0, tmax = 0;
  for (std::size_t i = j; i < chain_.size(); ++i) {
    tmin += chain_[i]->latency_ms(1, config_.kmax, config_.concurrency);
    tmax += chain_[i]->latency_ms(99, config_.kmin, config_.concurrency);
  }
  return {tmin, tmax};
}

std::vector<Percentile> HintsGenerator::explore_percentile(std::size_t j,
                                                           BudgetMs t) const {
  // Tail at Kmax and P99 — the cheapest time the rest can promise.
  const std::size_t kmax_i = cores_.size() - 1;
  std::vector<Percentile> out;
  for (Percentile p : config_.head_percentiles) {
    if (lat(j, p, kmax_i) + tail_floor_[j] <= t) out.push_back(p);
  }
  return out;
}

RawHint HintsGenerator::solve_single(std::size_t j, BudgetMs t) const {
  // min_resource(f, t): the last function runs at P99 (no downstream
  // resilience left to absorb a timeout).
  RawHint hint;
  hint.budget = t;
  for (std::size_t ki = 0; ki < cores_.size(); ++ki) {
    ++probes_;
    if (lat(j, 99, ki) <= t) {
      hint.sizes = {cores_[ki]};
      hint.head_percentile = 99;
      hint.expected_cost = config_.weight * widths_[j] * cores_[ki];
      return hint;
    }
  }
  return hint;  // infeasible: empty sizes
}

RawHint HintsGenerator::solve_head_only(
    std::size_t j, BudgetMs t, const std::vector<Percentile>& candidates) const {
  RawHint best;
  best.budget = t;
  double best_cost = -1.0;
  Percentile best_p = 0;
  std::size_t best_ki = 0;
  BudgetMs best_rem = 0;

  for (Percentile p : candidates) {
    const double prob = static_cast<double>(p) / 100.0;
    for (std::size_t ki = 0; ki < cores_.size(); ++ki) {
      ++probes_;
      const BudgetMs rem = t - lat(j, p, ki);
      if (rem < 0 || !tail_.feasible(j + 1, rem)) continue;
      const BudgetMs d = lat(j, 99, ki) - lat(j, p, ki);
      if (config_.enforce_resilience && d > tail_.resilience(j + 1, rem)) {
        continue;  // Eq. (6)
      }
      const double tail_cost = tail_.total_cost(j + 1, rem);
      const double s =
          config_.weight * widths_[j] * cores_[ki] + prob * tail_cost +
          (1.0 - prob) * static_cast<double>(suffix_width_[j + 1]) *
              config_.kmax;  // Eq. (4), widths generalize (N-1)
      // Strictly better cost wins; ties prefer the higher percentile
      // (less timeout risk for the same expected spend).
      if (best_cost < 0.0 || s < best_cost ||
          (s == best_cost && p > best_p)) {
        best_cost = s;
        best_p = p;
        best_ki = ki;
        best_rem = rem;
      }
    }
  }
  if (best_cost >= 0.0) {
    best.sizes.push_back(cores_[best_ki]);
    const auto z = tail_.allocation(j + 1, best_rem);
    best.sizes.insert(best.sizes.end(), z.begin(), z.end());
    best.head_percentile = best_p;
    best.expected_cost = best_cost;
  }
  return best;
}

RawHint HintsGenerator::solve_head_and_next(
    std::size_t j, BudgetMs t, const std::vector<Percentile>& candidates) const {
  const auto n_sub = chain_.size() - j;
  const std::size_t kmax_i = cores_.size() - 1;
  RawHint best;
  best.budget = t;
  double best_cost = -1.0;
  Percentile best_p1 = 99, best_p2 = 99;
  std::size_t best_k1 = 0, best_k2 = 0;
  BudgetMs best_rem2 = 0;

  const bool has_deep_tail = n_sub > 2;
  for (Percentile p1 : candidates) {
    const double prob1 = static_cast<double>(p1) / 100.0;
    for (std::size_t k1 = 0; k1 < cores_.size(); ++k1) {
      const BudgetMs rem1 = t - lat(j, p1, k1);
      if (rem1 < 0) continue;
      const BudgetMs d1 = lat(j, 99, k1) - lat(j, p1, k1);
      for (Percentile p2 : config_.head_percentiles) {
        const double prob2 = static_cast<double>(p2) / 100.0;
        if (!has_deep_tail && p2 != 99) continue;
        for (std::size_t k2 = 0; k2 < cores_.size(); ++k2) {
          ++probes_;
          const BudgetMs rem2 = rem1 - lat(j + 1, p2, k2);
          if (rem2 < 0) continue;
          const BudgetMs d2 = lat(j + 1, 99, k2) - lat(j + 1, p2, k2);
          double s;
          if (has_deep_tail) {
            if (!tail_.feasible(j + 2, rem2)) continue;
            // Both explored timeouts must fit in the remaining resilience.
            if (d1 + d2 > tail_.resilience(j + 2, rem2)) continue;
            const double tail_cost = tail_.total_cost(j + 2, rem2);
            s = config_.weight * widths_[j] * cores_[k1] +
                prob1 * (widths_[j + 1] * cores_[k2] + prob2 * tail_cost +
                         (1.0 - prob2) *
                             static_cast<double>(suffix_width_[j + 2]) *
                             config_.kmax) +
                (1.0 - prob1) * static_cast<double>(suffix_width_[j + 1]) *
                    config_.kmax;
          } else {
            // Two-function suffix: the "next" function is last, so it has
            // no downstream resilience; only P99 keeps Eq. (6) satisfiable.
            const BudgetMs r2 = lat(j + 1, 99, k2) - lat(j + 1, 99, kmax_i);
            if (d1 > r2) continue;
            s = config_.weight * widths_[j] * cores_[k1] +
                prob1 * widths_[j + 1] * cores_[k2] +
                (1.0 - prob1) * static_cast<double>(suffix_width_[j + 1]) *
                    config_.kmax;
          }
          if (best_cost < 0.0 || s < best_cost) {
            best_cost = s;
            best_p1 = p1;
            best_p2 = p2;
            best_k1 = k1;
            best_k2 = k2;
            best_rem2 = rem2;
          }
        }
      }
    }
  }
  if (best_cost >= 0.0) {
    best.sizes = {cores_[best_k1], cores_[best_k2]};
    if (has_deep_tail) {
      const auto z = tail_.allocation(j + 2, best_rem2);
      best.sizes.insert(best.sizes.end(), z.begin(), z.end());
    }
    best.head_percentile = best_p1;
    best.expected_cost = best_cost;
    (void)best_p2;
  }
  return best;
}

RawHint HintsGenerator::solve_budget(std::size_t j, BudgetMs t) const {
  require(j < chain_.size(), "suffix index out of range");
  require(t >= 0, "budget must be >= 0");
  if (chain_.size() - j == 1) return solve_single(j, t);
  const auto candidates = explore_percentile(j, t);
  if (candidates.empty()) {
    RawHint infeasible;
    infeasible.budget = t;
    return infeasible;
  }
  if (config_.exploration == Exploration::HeadAndNext) {
    return solve_head_and_next(j, t, candidates);
  }
  return solve_head_only(j, t, candidates);
}

SuffixHints HintsGenerator::generate_suffix(std::size_t j) const {
  const auto [tmin, tmax] = budget_range(j);
  SuffixHints out;
  out.tmin = tmin;
  out.tmax = tmax;
  auto count = static_cast<std::size_t>(
      (tmax - tmin) / config_.budget_step + 1);
  // Always include the exact Tmax endpoint even when the step does not
  // divide the range (lookups clamp above it, so it must carry a hint).
  const bool needs_endpoint =
      tmin + static_cast<BudgetMs>(count - 1) * config_.budget_step < tmax;
  if (needs_endpoint) ++count;
  std::vector<RawHint> slots(count);

  // Parallel budget sweep ("the synthesizer explores different percentiles
  // concurrently"): each worker solves a disjoint set of budgets.
  ThreadPool pool(config_.threads);
  pool.parallel_for(count, [&](std::size_t i) {
    const BudgetMs t =
        (needs_endpoint && i == count - 1)
            ? tmax
            : tmin + static_cast<BudgetMs>(i) * config_.budget_step;
    slots[i] = solve_budget(j, t);
  });

  for (auto& hint : slots) {
    if (hint.sizes.empty()) continue;  // infeasible budget
    if (out.hints.empty()) out.feasible_from = hint.budget;
    out.hints.push_back(std::move(hint));
  }
  return out;
}

std::size_t HintsBundle::total_entries() const {
  std::size_t n = 0;
  for (const auto& t : suffix_tables) n += t.size();
  return n;
}

std::size_t HintsBundle::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& t : suffix_tables) bytes += t.memory_bytes();
  return bytes;
}

HintsBundle synthesize_bundle(const std::vector<LatencyProfile>& profiles,
                              const SynthesisConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  HintsGenerator generator(profiles, config);
  HintsBundle bundle;
  bundle.concurrency = config.concurrency;
  bundle.weight = config.weight;
  for (std::size_t j = 0; j < generator.chain_length(); ++j) {
    const SuffixHints raw = generator.generate_suffix(j);
    bundle.stats.raw_hints += raw.hints.size();
    bundle.suffix_tables.push_back(condense_hints(raw));
  }
  bundle.stats.condensed_hints = bundle.total_entries();
  bundle.stats.probes = generator.probes();
  bundle.stats.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return bundle;
}

}  // namespace janus
