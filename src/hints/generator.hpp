// Hints generation — Algorithm 1 (§IV-A).
//
// For every candidate time budget t on a 1 ms grid (Insight-1: the broad
// range of Eq. 3), the synthesizer picks the head function's percentile p
// and size k plus a P99 allocation Z for the tail, minimizing the expected
// resource consumption of Eq. (4)
//
//     s = W·k + (p/100)·ΣZ + (1 − p/100)·(N−1)·Kmax
//
// subject to the budget (Eq. 5) and to the resilience guard (Eq. 6):
// the head's timeout D(p,k) must not exceed the tail's total resilience.
// Only the head explores percentiles below P99 (Insight-2, "moderate
// percentile exploration"); W > 1 magnifies the head's weight (Insight-4).
//
// Variants (§V-A baselines):
//   FixedP99    — Janus−: the head is pinned to P99.
//   HeadOnly    — Janus: head explores the percentile list.
//   HeadAndNext — Janus+: head *and* the next function explore percentiles;
//                 richer but with a multiplicatively larger search space
//                 (the paper reports up to 107.2× synthesis time).
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "hints/table.hpp"
#include "hints/tail_plan.hpp"
#include "profiler/profile.hpp"

namespace janus {

enum class Exploration { FixedP99, HeadOnly, HeadAndNext };

const char* to_string(Exploration e) noexcept;

struct SynthesisConfig {
  Millicores kmin = kDefaultKmin;
  Millicores kmax = kDefaultKmax;
  Millicores kstep = kDefaultKstep;
  /// Head-function objective weight W (Insight-4).
  double weight = 1.0;
  /// Candidate percentiles for exploring heads (default P1..P96 step 5 ∪ P99).
  std::vector<Percentile> head_percentiles;
  Exploration exploration = Exploration::HeadOnly;
  Concurrency concurrency = 1;
  /// Budget grid step (ms); the paper uses 1 ms.
  BudgetMs budget_step = 1;
  /// Optional explicit budget range (ms); 0 → derive per Eq. (3).
  BudgetMs tmin = 0;
  BudgetMs tmax = 0;
  /// Workers for the parallel budget sweep; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Ablation switch: when false, Eq. (6)'s resilience guard is skipped and
  /// head timeouts may exceed what the tail can absorb.  Only exists so the
  /// ablation bench can demonstrate why Insight-3 is load-bearing.
  bool enforce_resilience = true;
  /// Parallel instances per stage (fork-join levels); empty = all 1.  A
  /// stage of width w provisions w same-sized instances, so it contributes
  /// w * k to every cost term.
  std::vector<int> stage_widths;

  void validate() const;
  std::vector<Millicores> cores() const;
};

/// Synthesis statistics (drives the Fig 6b / Fig 8 benches).
struct SynthesisStats {
  std::size_t raw_hints = 0;        // rows before condensing
  std::size_t condensed_hints = 0;  // rows after condensing
  std::uint64_t probes = 0;         // (p, k) combinations evaluated
  double elapsed_s = 0.0;           // wall time of generate+condense
};

class HintsGenerator {
 public:
  /// `profiles` in chain execution order.  The generator keeps pointers
  /// into `profiles`; the caller owns their lifetime.
  HintsGenerator(const std::vector<LatencyProfile>& profiles,
                 SynthesisConfig config);

  std::size_t chain_length() const noexcept { return chain_.size(); }
  const SynthesisConfig& config() const noexcept { return config_; }

  /// Eq. (3) budget range for the suffix starting at function j.
  std::pair<BudgetMs, BudgetMs> budget_range(std::size_t j) const;

  /// Generates the raw hints table for suffix j (the outer loop of
  /// Algorithm 1), sweeping budgets in parallel.
  SuffixHints generate_suffix(std::size_t j) const;

  /// Solves one budget (the `generate` function of Algorithm 1).  Returns
  /// a hint with empty `sizes` when the budget is infeasible.
  RawHint solve_budget(std::size_t j, BudgetMs t) const;

  std::uint64_t probes() const noexcept {
    return probes_.load(std::memory_order_relaxed);
  }

 private:
  /// Line 8-9 of Algorithm 1: percentiles able to finish within t at Kmax.
  std::vector<Percentile> explore_percentile(std::size_t j, BudgetMs t) const;

  RawHint solve_head_only(std::size_t j, BudgetMs t,
                          const std::vector<Percentile>& candidates) const;
  RawHint solve_head_and_next(std::size_t j, BudgetMs t,
                              const std::vector<Percentile>& candidates) const;
  /// |F| = 1: min_resource(f, t).
  RawHint solve_single(std::size_t j, BudgetMs t) const;

  /// Flattened L(p, k) cache for the hot search loops (profile lookups
  /// carry bounds checks that dominate the quadratic Janus+ sweep).
  BudgetMs lat(std::size_t j, Percentile p, std::size_t ki) const noexcept {
    return lat_cache_[j][ki * 99 + static_cast<std::size_t>(p - 1)];
  }

  std::vector<const LatencyProfile*> chain_;
  SynthesisConfig config_;
  std::vector<Millicores> cores_;
  TailPlan tail_;
  /// lat_cache_[j][ki * 99 + (p-1)] = L_j(p, cores_[ki]) in ms.
  std::vector<std::vector<BudgetMs>> lat_cache_;
  /// Per-suffix floor: Σ_{i>j} L_i(99, Kmax) in ms (explore_percentile).
  std::vector<BudgetMs> tail_floor_;
  /// widths_[j]: instances stage j provisions; suffix_width_[j]: Σ_{i>=j}.
  std::vector<int> widths_;
  std::vector<int> suffix_width_;
  /// Probe counter is shared by the parallel budget sweep.
  mutable std::atomic<std::uint64_t> probes_{0};
};

/// The shippable bundle: one condensed table per sub-workflow suffix.
struct HintsBundle {
  std::vector<HintsTable> suffix_tables;
  Concurrency concurrency = 1;
  double weight = 1.0;
  SynthesisStats stats;

  std::size_t total_entries() const;
  std::size_t memory_bytes() const;
};

/// End-to-end synthesis: generate every suffix (Algorithm 1), condense
/// (Algorithm 2), collect stats.
HintsBundle synthesize_bundle(const std::vector<LatencyProfile>& profiles,
                              const SynthesisConfig& config);

}  // namespace janus
