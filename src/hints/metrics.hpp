// Timeout and resilience metrics (§III-B).
//
// timeout   D(p,k) = L(99,k) - L(p,k)   — by how much an execution profiled
//   at percentile p can overshoot (up to the P99 worst case) at size k.
// resilience R(p,k) = L(p,k) - L(p,Kmax) — how much execution time can be
//   recovered by scaling the function from k up to Kmax.
//
// Note on sign: the paper's Eq. (2) literally reads L(p,Kmax) - L(p,k),
// which is non-positive since latency decreases with cores; the text and
// Fig 7b make clear resilience is the *achievable reduction*, so we use the
// positive orientation.  Any head-function timeout must fit within the
// total downstream resilience (Eq. 6) for SLO compliance to stay possible.
#pragma once

#include "common/types.hpp"
#include "profiler/profile.hpp"

namespace janus {

/// D(p,k) in seconds.
Seconds timeout_metric(const LatencyProfile& profile, Percentile p,
                       Millicores k, Concurrency c);

/// R(p,k) in seconds, relative to `kmax`.
Seconds resilience_metric(const LatencyProfile& profile, Percentile p,
                          Millicores k, Concurrency c, Millicores kmax);

/// Millisecond versions on the synthesizer's budget grid.
BudgetMs timeout_metric_ms(const LatencyProfile& profile, Percentile p,
                           Millicores k, Concurrency c);
BudgetMs resilience_metric_ms(const LatencyProfile& profile, Percentile p,
                              Millicores k, Concurrency c, Millicores kmax);

}  // namespace janus
