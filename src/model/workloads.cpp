#include "model/workloads.hpp"

#include "stats/distributions.hpp"

namespace janus {

const FunctionModel& WorkloadSpec::model_of(FunctionId id) const {
  const auto& spec = workflow.function(id);
  require(spec.model_index >= 0 &&
              static_cast<std::size_t>(spec.model_index) < models.size(),
          "model index out of range");
  return models[static_cast<std::size_t>(spec.model_index)];
}

std::vector<FunctionModel> WorkloadSpec::chain_models() const {
  std::vector<FunctionModel> out;
  for (FunctionId id : workflow.chain_order()) out.push_back(model_of(id));
  return out;
}

Seconds WorkloadSpec::slo(Concurrency c) const {
  require(c >= 1 && static_cast<std::size_t>(c) <= slo_by_concurrency.size(),
          "no SLO configured for this concurrency");
  return slo_by_concurrency[static_cast<std::size_t>(c - 1)];
}

namespace {

FunctionModel ia_od() {
  FunctionModelParams p;
  p.name = "OD";
  p.serial_s = 0.12;
  p.work_s = 0.85;
  // Object detection latency tracks objects-per-image (1..15 in COCO2014);
  // Fig 1b shows P99/P1 variance up to ~3.8x at a fixed size.
  p.ws_sigma = LogNormal::sigma_for_p99_over_p50(2.10);
  p.dim = ResourceDim::Cpu;
  return FunctionModel(p);
}

FunctionModel ia_qa() {
  FunctionModelParams p;
  p.name = "QA";
  p.serial_s = 0.10;
  p.work_s = 0.80;
  // Calibrated to the published dispersion: P99/P50 = 2.17 at conc 1,
  // growing to 2.32 at conc 2 (ws_sigma_batch_growth default).
  p.ws_sigma = LogNormal::sigma_for_p99_over_p50(2.17);
  p.dim = ResourceDim::Memory;
  return FunctionModel(p);
}

FunctionModel ia_ts() {
  FunctionModelParams p;
  p.name = "TS";
  p.serial_s = 0.08;
  p.work_s = 0.65;
  p.ws_sigma = LogNormal::sigma_for_p99_over_p50(1.95);
  p.dim = ResourceDim::Cpu;
  return FunctionModel(p);
}

FunctionModel va_fe() {
  FunctionModelParams p;
  p.name = "FE";
  p.serial_s = 0.06;
  p.work_s = 0.60;
  p.ws_sigma = LogNormal::sigma_for_p99_over_p50(1.46);
  p.dim = ResourceDim::Io;
  p.batchable = false;  // cannot process frames in batch form
  return FunctionModel(p);
}

FunctionModel va_icl() {
  FunctionModelParams p;
  p.name = "ICL";
  p.serial_s = 0.07;
  p.work_s = 0.75;
  p.ws_sigma = LogNormal::sigma_for_p99_over_p50(1.56);
  p.dim = ResourceDim::Cpu;
  return FunctionModel(p);
}

FunctionModel va_ico() {
  FunctionModelParams p;
  p.name = "ICO";
  p.serial_s = 0.05;
  p.work_s = 0.55;
  p.ws_sigma = LogNormal::sigma_for_p99_over_p50(1.37);
  p.dim = ResourceDim::Io;
  p.batchable = false;
  return FunctionModel(p);
}

}  // namespace

WorkloadSpec make_ia() {
  WorkloadSpec spec;
  spec.name = "IA";
  spec.models = {ia_od(), ia_qa(), ia_ts()};
  spec.workflow = Workflow::chain(
      "IA", {{"OD", 0}, {"QA", 1}, {"TS", 2}});
  // SLOs from §V-A (3 s) and §V-B ("we increase SLOs to 4 s and 5 s" for
  // concurrency 2 and 3).
  spec.slo_by_concurrency = {3.0, 4.0, 5.0};
  spec.max_concurrency = 3;
  return spec;
}

WorkloadSpec make_va() {
  WorkloadSpec spec;
  spec.name = "VA";
  spec.models = {va_fe(), va_icl(), va_ico()};
  spec.workflow = Workflow::chain(
      "VA", {{"FE", 0}, {"ICL", 1}, {"ICO", 2}});
  spec.slo_by_concurrency = {1.5};
  spec.max_concurrency = 1;  // FE and ICO are non-batchable
  return spec;
}

FunctionModel make_micro_function(ResourceDim dim) {
  FunctionModelParams p;
  p.dim = dim;
  p.ws_sigma = 0.08;  // micro benchmarks use fixed inputs; little ws spread
  switch (dim) {
    case ResourceDim::Cpu:
      p.name = "aes-encrypt";
      p.serial_s = 0.02;
      p.work_s = 0.30;
      break;
    case ResourceDim::Memory:
      p.name = "redis-read";
      p.serial_s = 0.03;
      p.work_s = 0.22;
      break;
    case ResourceDim::Io:
      p.name = "disk-write";
      p.serial_s = 0.04;
      p.work_s = 0.20;
      break;
    case ResourceDim::Network:
      p.name = "socket-comm";
      p.serial_s = 0.03;
      p.work_s = 0.18;
      break;
  }
  return FunctionModel(p);
}

WorkloadSpec workload_by_name(const std::string& name) {
  if (name == "ia" || name == "IA") return make_ia();
  if (name == "va" || name == "VA") return make_va();
  throw_invalid("unknown workload (expected ia or va): " + name);
}

}  // namespace janus
