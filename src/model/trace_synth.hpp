// Synthetic production-trace generator (substitute for the Azure Functions
// 2019 dataset used in Fig 1a).
//
// The published analysis needs, per invocation, the end-to-end latency l and
// the function's SLO T (set from its P99 latency, as in ORION/WISEFUSE), and
// reports the CDF of slack = 1 - l/T, overall and for the 100 most popular
// functions (81.6% of invocations).  We synthesize a function population
// with Zipf popularity and heavy-tailed lognormal per-function duration
// distributions, matching the trace's qualitative statistics: most
// invocations are far faster than the P99 their sizing was chosen for.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace janus {

struct TraceSynthConfig {
  std::size_t num_functions = 2000;
  std::size_t num_invocations = 200000;
  /// Zipf popularity exponent across functions.
  double zipf_s = 1.10;
  /// Log-space sigma of each function's duration distribution is drawn
  /// uniformly from this range; production traces show P50-P99 gaps up to
  /// two orders of magnitude, i.e. sigma up to ~2.
  double sigma_lo = 0.55;
  double sigma_hi = 1.60;
  /// Popular functions are better tuned in production; cap their sigma.
  double popular_sigma_hi = 1.15;
  std::size_t popular_count = 100;
  /// Median duration range (seconds) sampled per function (bounded Pareto).
  double median_lo = 0.005;
  double median_hi = 10.0;
  double median_alpha = 1.2;
  std::uint64_t seed = 42;
};

struct SlackSample {
  double slack;       // 1 - l / T, clamped to [0, 1]
  bool popular;       // invocation of a top-`popular_count` function
};

struct SyntheticTrace {
  std::vector<SlackSample> samples;

  std::vector<double> all_slacks() const;
  std::vector<double> popular_slacks() const;
  /// Fraction of all invocations issued to popular functions (the paper
  /// reports 81.6%).
  double popular_fraction() const;
};

SyntheticTrace synthesize_trace(const TraceSynthConfig& config);

/// Synthesizes a production-shaped inter-arrival trace for replay through
/// `ArrivalKind::Trace`: lognormal gaps (bursts of near-back-to-back
/// requests separated by long lulls, the qualitative shape of serverless
/// arrival logs) rescaled so the long-run mean rate is exactly
/// `mean_rate`.  All gaps are > 0; a fixed seed fixes the trace.
std::vector<double> synthesize_interarrivals(std::size_t count,
                                             double mean_rate,
                                             std::uint64_t seed,
                                             double burstiness_sigma = 1.2);

}  // namespace janus
