#include "model/function_model.hpp"

#include <cmath>

#include "stats/distributions.hpp"

namespace janus {

FunctionModel::FunctionModel(FunctionModelParams params)
    : params_(std::move(params)) {
  require(params_.serial_s >= 0.0, "serial time must be >= 0");
  require(params_.work_s > 0.0, "work must be > 0");
  require(params_.ws_sigma >= 0.0, "ws sigma must be >= 0");
}

Seconds FunctionModel::serial(Concurrency c) const {
  require(c >= 1, "concurrency must be >= 1");
  return params_.serial_s *
         (1.0 + params_.serial_batch_growth * static_cast<double>(c - 1));
}

Seconds FunctionModel::work(Concurrency c) const {
  require(c >= 1, "concurrency must be >= 1");
  return params_.work_s *
         (1.0 + params_.work_batch_growth * static_cast<double>(c - 1));
}

double FunctionModel::ws_sigma(Concurrency c) const {
  require(c >= 1, "concurrency must be >= 1");
  return params_.ws_sigma *
         (1.0 + params_.ws_sigma_batch_growth * static_cast<double>(c - 1));
}

double FunctionModel::sample_ws(Concurrency c, Rng& rng) const {
  return std::exp(ws_sigma(c) * rng.normal());
}

double FunctionModel::ws_quantile(Concurrency c, double q) const {
  const double sigma = ws_sigma(c);
  if (sigma == 0.0) return 1.0;
  return std::exp(sigma * inverse_normal_cdf(q));
}

Seconds FunctionModel::exec_time(Millicores k, Concurrency c, double ws_factor,
                                 double interference) const {
  require(k > 0, "millicores must be > 0");
  require(ws_factor > 0.0, "working-set factor must be > 0");
  require(interference >= 1.0, "interference multiplier must be >= 1");
  const double cores = static_cast<double>(k) / 1000.0;
  return (serial(c) + work(c) * ws_factor / cores) * interference;
}

Seconds FunctionModel::sample_exec_time(Millicores k, Concurrency c,
                                        const InterferenceModel& interf,
                                        int colocated, Rng& rng) const {
  const double ws = sample_ws(c, rng);
  const double mult = interf.sample_multiplier(params_.dim, colocated, rng);
  return exec_time(k, c, ws, mult);
}

}  // namespace janus
