#include "model/interference.hpp"

#include <cmath>
#include <numeric>

namespace janus {

const char* to_string(ResourceDim dim) noexcept {
  switch (dim) {
    case ResourceDim::Cpu: return "CPU";
    case ResourceDim::Memory: return "Memory";
    case ResourceDim::Io: return "IO";
    case ResourceDim::Network: return "Network";
  }
  return "?";
}

double InterferenceModel::slope(ResourceDim dim) const noexcept {
  switch (dim) {
    case ResourceDim::Cpu: return params_.slope_cpu;
    case ResourceDim::Memory: return params_.slope_memory;
    case ResourceDim::Io: return params_.slope_io;
    case ResourceDim::Network: return params_.slope_network;
  }
  return 0.0;
}

double InterferenceModel::mean_multiplier(ResourceDim dim, int colocated) const {
  require(colocated >= 1, "co-location count must be >= 1");
  return 1.0 + slope(dim) * static_cast<double>(colocated - 1);
}

double InterferenceModel::sample_multiplier(ResourceDim dim, int colocated,
                                            Rng& rng) const {
  const double base = mean_multiplier(dim, colocated);
  const double contention = base - 1.0;
  if (contention <= 0.0) {
    // Alone on the node: still a little system noise.
    return 1.0 + 0.02 * rng.uniform();
  }
  const double jitter = rng.lognormal(0.0, params_.jitter_sigma);
  return 1.0 + contention * jitter;
}

int CoLocationDistribution::sample(Rng& rng) const {
  require(!weights.empty(), "co-location distribution is empty");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  require(total > 0.0, "co-location weights sum to zero");
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(weights.size());
}

double CoLocationDistribution::mean() const {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double m = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    m += weights[i] * static_cast<double>(i + 1);
  }
  return total > 0.0 ? m / total : 1.0;
}

CoLocationDistribution CoLocationDistribution::for_concurrency(Concurrency c) {
  CoLocationDistribution dist;
  if (c <= 1) {
    dist.weights = {0.70, 0.20, 0.10};
  } else if (c == 2) {
    dist.weights = {0.45, 0.30, 0.15, 0.10};
  } else {
    dist.weights = {0.30, 0.30, 0.20, 0.12, 0.08};
  }
  return dist;
}

CoLocationDistribution CoLocationDistribution::concentrated(double mean) {
  CoLocationDistribution dist;
  if (!(mean > 1.0)) {  // also catches NaN
    dist.weights = {1.0};
    return dist;
  }
  const double lo = std::floor(mean);
  const double frac = mean - lo;
  dist.weights.assign(static_cast<std::size_t>(std::ceil(mean)), 0.0);
  dist.weights[static_cast<std::size_t>(lo) - 1] = 1.0 - frac;
  if (frac > 0.0) dist.weights.back() = frac;
  return dist;
}

CoLocationDistribution StaticCoLocation::stage_distribution(
    std::size_t stage) const {
  require(stage < per_stage_.size(),
          "co-location provider does not cover this chain stage");
  return per_stage_[stage];
}

}  // namespace janus
