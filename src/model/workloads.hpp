// Workload catalog: the paper's two evaluation workflows and the §II-B
// micro-benchmark functions, calibrated to the published dispersion numbers.
//
//   IA (Intelligent Assistant): object detection (OD) -> question answering
//     (QA) -> text-to-speech (TS).  SLO 3 s at concurrency 1 (4 s / 5 s at
//     concurrency 2 / 3).  QA's P99/P50 = 2.17 at conc 1 and 2.32 at conc 2.
//   VA (Video Analyze): frame extraction (FE) -> image classification (ICL)
//     -> image compression (ICO).  SLO 1.5 s.  P99/P50 per function:
//     1.46 / 1.56 / 1.37.  FE and ICO are not batchable.
//   Micro functions (Fig 1c): CPU-, memory-, IO-, network-intensive.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dag/workflow.hpp"
#include "model/function_model.hpp"
#include "model/interference.hpp"

namespace janus {

/// A fully described workload: the DAG plus per-function latency models and
/// evaluation defaults.
struct WorkloadSpec {
  std::string name;
  Workflow workflow;
  /// models[i] is the latency model of workflow function with
  /// FunctionSpec::model_index == i.
  std::vector<FunctionModel> models;
  /// Default end-to-end latency SLO per concurrency level (index c-1).
  std::vector<Seconds> slo_by_concurrency;
  /// Highest batch size the workload supports.
  Concurrency max_concurrency = 1;

  const FunctionModel& model_of(FunctionId id) const;
  /// Models in chain order (throws if the workflow is not a chain).
  std::vector<FunctionModel> chain_models() const;
  Seconds slo(Concurrency c) const;
};

/// Intelligent Assistant chain (OD -> QA -> TS).
WorkloadSpec make_ia();

/// Video Analyze chain (FE -> ICL -> ICO).
WorkloadSpec make_va();

/// Catalog lookup by name ("ia"/"IA" or "va"/"VA"; throws otherwise).
/// Single source of truth for every front end that names workloads
/// (janus_cli, fleet tenant specs).
WorkloadSpec workload_by_name(const std::string& name);

/// §II-B micro-benchmark function dominated by `dim` (AES encryption,
/// Redis read, local-disk write, socket communication).
FunctionModel make_micro_function(ResourceDim dim);

}  // namespace janus
