// Generative latency model for one serverless function.
//
// Execution time of an invocation with `k` millicores, batch size `c`,
// working-set factor X, and interference multiplier I:
//
//   t(k, c, X, I) = ( serial(c) + work(c) * X / cores(k) ) * I
//
// where cores(k) = k / 1000, serial(c) and work(c) grow affinely with the
// batch size, X is lognormal (median 1) with a sigma calibrated to the
// paper's published P99/P50 dispersion, and I comes from the interference
// model.  The serial term produces diminishing returns from extra cores —
// exactly the behaviour behind Fig 7b's flattening resilience ("attributed
// to non-parallelizable operations within functions") — and the work term's
// batch growth makes resilience rise with concurrency.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "model/interference.hpp"

namespace janus {

struct FunctionModelParams {
  std::string name;
  /// Non-parallelizable time at batch size 1, seconds.
  Seconds serial_s = 0.05;
  /// Parallelizable work at batch size 1 and one full core, seconds.
  Seconds work_s = 0.40;
  /// Lognormal sigma of the working-set factor X at batch size 1.
  double ws_sigma = 0.30;
  /// Relative growth of ws_sigma per extra batched request, calibrated so
  /// QA's P99/P50 grows from 2.17 to 2.32 when batching from 1 to 2 (§V-B):
  /// ln(2.32)/ln(2.17) - 1 ≈ 0.087.
  double ws_sigma_batch_growth = 0.087;
  /// Relative growth of serial/work per extra batched request.
  double serial_batch_growth = 0.20;
  double work_batch_growth = 0.35;
  /// Dominant contended resource (drives interference).
  ResourceDim dim = ResourceDim::Cpu;
  /// True when the function can process batched inputs (FE and ICO in the
  /// VA workflow cannot: "concurrency of VA is limited to one").
  bool batchable = true;
};

class FunctionModel {
 public:
  FunctionModel() = default;
  explicit FunctionModel(FunctionModelParams params);

  const std::string& name() const noexcept { return params_.name; }
  const FunctionModelParams& params() const noexcept { return params_; }
  ResourceDim dim() const noexcept { return params_.dim; }
  bool batchable() const noexcept { return params_.batchable; }

  Seconds serial(Concurrency c) const;
  Seconds work(Concurrency c) const;
  double ws_sigma(Concurrency c) const;

  /// Draws a working-set factor for one invocation.
  double sample_ws(Concurrency c, Rng& rng) const;

  /// Working-set factor at quantile q in (0,1) — analytic counterpart used
  /// by the clairvoyant Optimal oracle and by tests.
  double ws_quantile(Concurrency c, double q) const;

  /// Deterministic latency for known factors.
  Seconds exec_time(Millicores k, Concurrency c, double ws_factor,
                    double interference) const;

  /// Full random draw: samples X and (through `interf` and `coloc`) I.
  Seconds sample_exec_time(Millicores k, Concurrency c,
                           const InterferenceModel& interf, int colocated,
                           Rng& rng) const;

 private:
  FunctionModelParams params_;
};

}  // namespace janus
