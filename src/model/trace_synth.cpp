#include "model/trace_synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/types.hpp"
#include "stats/distributions.hpp"

namespace janus {

std::vector<double> SyntheticTrace::all_slacks() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.slack);
  return out;
}

std::vector<double> SyntheticTrace::popular_slacks() const {
  std::vector<double> out;
  for (const auto& s : samples) {
    if (s.popular) out.push_back(s.slack);
  }
  return out;
}

double SyntheticTrace::popular_fraction() const {
  if (samples.empty()) return 0.0;
  std::size_t popular = 0;
  for (const auto& s : samples) popular += s.popular ? 1 : 0;
  return static_cast<double>(popular) / static_cast<double>(samples.size());
}

SyntheticTrace synthesize_trace(const TraceSynthConfig& config) {
  require(config.num_functions > 0, "trace needs >= 1 function");
  require(config.sigma_hi >= config.sigma_lo, "sigma range inverted");
  Rng rng(config.seed);

  // Per-function duration distributions.  Popularity rank doubles as the
  // function id: rank 0 is the most popular.
  struct FnDist {
    double median;
    double sigma;
    double slo;  // P99 of the duration distribution
  };
  BoundedPareto median_dist(config.median_lo, config.median_hi,
                            config.median_alpha);
  std::vector<FnDist> fns;
  fns.reserve(config.num_functions);
  for (std::size_t i = 0; i < config.num_functions; ++i) {
    FnDist fn;
    fn.median = median_dist.sample(rng);
    const double hi =
        i < config.popular_count ? config.popular_sigma_hi : config.sigma_hi;
    const double lo = std::min(config.sigma_lo, hi);
    fn.sigma = rng.uniform(lo, hi);
    fn.slo = LogNormal(fn.median, fn.sigma).quantile(0.99);
    fns.push_back(fn);
  }

  Zipf popularity(config.num_functions, config.zipf_s);
  SyntheticTrace trace;
  trace.samples.reserve(config.num_invocations);
  for (std::size_t i = 0; i < config.num_invocations; ++i) {
    const std::size_t rank = popularity.sample(rng);
    const FnDist& fn = fns[rank];
    const double latency = LogNormal(fn.median, fn.sigma).sample(rng);
    double slack = 1.0 - latency / fn.slo;
    slack = std::clamp(slack, 0.0, 1.0);
    trace.samples.push_back({slack, rank < config.popular_count});
  }
  return trace;
}

std::vector<double> synthesize_interarrivals(std::size_t count,
                                             double mean_rate,
                                             std::uint64_t seed,
                                             double burstiness_sigma) {
  require(count > 0, "inter-arrival trace needs >= 1 gap");
  require(mean_rate > 0.0, "inter-arrival trace needs a positive mean rate");
  require(burstiness_sigma >= 0.0, "burstiness sigma must be >= 0");
  Rng rng = Rng(seed).split(0x7ea5ULL);
  std::vector<double> gaps;
  gaps.reserve(count);
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double gap = rng.lognormal(0.0, burstiness_sigma);
    gaps.push_back(gap);
    total += gap;
  }
  // Rescale so the replayed loop's long-run rate is exactly mean_rate.
  const double scale =
      static_cast<double>(count) / (mean_rate * total);
  for (double& gap : gaps) gap *= scale;
  return gaps;
}

}  // namespace janus
