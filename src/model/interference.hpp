// Performance-interference model.
//
// Commercial platforms co-locate instances of the *same* function on one VM
// (the paper cites 65% of Alibaba Function Compute VMs hosting a single
// function), which contends on the VM's shared bandwidths.  Figure 1c
// reports slowdowns up to 8.1x at six co-located instances, ordered by the
// function's dominant resource: network > memory > IO > CPU (CPU is cgroup-
// partitioned, so it contends least).
//
// We model the slowdown as  1 + slope(dim) * (n - 1) * J  where n is the
// number of co-located instances of the function on the node and J is a
// lognormal jitter capturing the "hard to model and predict" variability.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace janus {

/// Dominant resource dimension of a function (micro-benchmarks in §II-B:
/// AES encryption, Redis read, socket communication, local-disk write).
enum class ResourceDim { Cpu, Memory, Io, Network };

const char* to_string(ResourceDim dim) noexcept;

struct InterferenceParams {
  /// Per-extra-instance slowdown slope by dimension.  Defaults reproduce
  /// Fig 1c: at n=6, network ~8.1x, memory ~5.1x, IO ~3.6x, CPU ~1.8x.
  double slope_cpu = 0.16;
  double slope_memory = 0.82;
  double slope_io = 0.52;
  double slope_network = 1.42;
  /// Lognormal sigma of the jitter J (median 1).
  double jitter_sigma = 0.10;
};

class InterferenceModel {
 public:
  InterferenceModel() = default;
  explicit InterferenceModel(InterferenceParams params) : params_(params) {}

  double slope(ResourceDim dim) const noexcept;

  /// Deterministic mean slowdown at `colocated` same-function instances
  /// (>= 1; the instance itself counts).
  double mean_multiplier(ResourceDim dim, int colocated) const;

  /// Random slowdown draw (>= 1).
  double sample_multiplier(ResourceDim dim, int colocated, Rng& rng) const;

  const InterferenceParams& params() const noexcept { return params_; }

 private:
  InterferenceParams params_;
};

/// Distribution of co-location counts seen by an invocation.  Profiling and
/// runtime both draw from one of these; shifting the runtime distribution
/// away from the profiled one is how benches inject "unexpected runtime
/// dynamics" (hints-table misses).
struct CoLocationDistribution {
  /// Probability of observing 1, 2, ... co-located instances (normalized on
  /// use).  Default: mostly alone, occasionally 2-3 (conc=1 steady state).
  std::vector<double> weights{0.70, 0.20, 0.10};

  int sample(Rng& rng) const;
  double mean() const;

  /// Heavier co-location for higher batch concurrency (the paper drives
  /// higher loads through larger batch sizes, which packs more instances).
  static CoLocationDistribution for_concurrency(Concurrency c);

  /// Distribution concentrated at a (possibly fractional) mean count:
  /// mass split between floor(mean) and ceil(mean) so that mean() equals
  /// the input (clamped to >= 1).  This is how the fleet feeds endogenous
  /// co-location — computed from cluster bin-packing — back into the
  /// interference model.
  static CoLocationDistribution concentrated(double mean);
};

/// Source of per-stage co-location distributions for a request stream.
///
/// A *static* provider (live() == false) is a frozen snapshot: the runner
/// pre-draws every request's interference from it up front, which keeps the
/// paired-request contract and reproduces the plan-once pipeline exactly.
/// A *live* provider (live() == true) may change between epochs — the
/// fleet's control plane updates it at every reconciliation barrier — so
/// the runner samples the multiplier at stage-launch time instead, from a
/// per-(request, stage) derived rng stream that no event interleaving can
/// shift.
class CoLocationProvider {
 public:
  virtual ~CoLocationProvider() = default;
  /// Distribution currently in effect for chain stage `stage`; throws when
  /// the provider does not cover the stage.
  virtual CoLocationDistribution stage_distribution(std::size_t stage)
      const = 0;
  /// Number of stages covered.
  virtual std::size_t stages() const noexcept = 0;
  /// Whether the distributions can shift mid-run (epoch feed).
  virtual bool live() const noexcept { return false; }
};

/// Frozen per-stage distributions (the plan-time special case).
class StaticCoLocation final : public CoLocationProvider {
 public:
  StaticCoLocation() = default;
  explicit StaticCoLocation(std::vector<CoLocationDistribution> per_stage)
      : per_stage_(std::move(per_stage)) {}

  CoLocationDistribution stage_distribution(std::size_t stage) const override;
  std::size_t stages() const noexcept override { return per_stage_.size(); }

 private:
  std::vector<CoLocationDistribution> per_stage_;
};

}  // namespace janus
