#include "sim/engine.hpp"

namespace janus {

void SimEngine::schedule_at(Seconds t, std::function<void()> fn) {
  if (t < now_) t = now_;  // clamp: the past is served "now" (see header)
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void SimEngine::schedule_after(Seconds delay, std::function<void()> fn) {
  require(delay >= 0.0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

bool SimEngine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately and Event's members are moved-from only.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void SimEngine::run() {
  while (step()) {
  }
}

void SimEngine::run_until(Seconds t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

}  // namespace janus
