#include "sim/engine.hpp"

namespace janus {

SimEngine::~SimEngine() {
  // Destroy closures of any never-executed events (run_until stopped, or
  // the owner tore down mid-simulation).
  for (const EventNode& n : current_) release_slot(n.slot());
  for (std::size_t r = next_rung_; r < active_rungs_; ++r) {
    for (const EventNode& n : rungs_[r]) release_slot(n.slot());
  }
  for (const EventNode& n : far_) release_slot(n.slot());
}

void SimEngine::grow_pool() {
  require(slabs_.size() * kSlabSlots < (kSlotMask + 1) - kSlabSlots,
          "event slot space exhausted (16M in-flight events)");
  const std::uint32_t base =
      static_cast<std::uint32_t>(slabs_.size() * kSlabSlots);
  slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
  free_slots_.reserve(slabs_.size() * kSlabSlots);
  // Reversed so the new slab's slots hand out in ascending order.
  for (std::size_t i = kSlabSlots; i > 0; --i) {
    free_slots_.push_back(base + static_cast<std::uint32_t>(i - 1));
  }
}

void SimEngine::rebucket() {
  // Epoch advance: the ladder is spent, so the far list becomes the new
  // ladder.  Width adapts to the observed density (~kTargetRungSize events
  // per bucket); everything is distributed O(1) per event and each bucket
  // is heapified only when it becomes current.
  Seconds lo = kInf, hi = -kInf;
  for (const EventNode& n : far_) {
    lo = std::min(lo, n.time);
    hi = std::max(hi, n.time);
  }
  std::size_t buckets =
      std::min(std::max<std::size_t>(far_.size() / kTargetRungSize, 1),
               kMaxRungs);
  Seconds width = buckets > 1 ? (hi - lo) / static_cast<Seconds>(buckets) : 0.0;
  if (!(width > 0.0)) {  // all-equal times (or a single bucket)
    buckets = 1;
    width = 1.0;
  }
  if (rungs_.size() < buckets) rungs_.resize(buckets);
  ladder_start_ = lo;
  width_ = width;
  inv_width_ = 1.0 / width;
  // ladder_end_ must sit at or above every time placed in the ladder, so
  // the far-overflow routing in schedule_at can never send an event behind
  // one already laddered (lo + width*buckets can round below hi).
  ladder_end_ = std::max(lo + width * static_cast<Seconds>(buckets), hi);
  next_rung_ = 0;
  active_rungs_ = buckets;
  for (const EventNode& n : far_) {
    const double didx = (n.time - ladder_start_) * inv_width_;
    const std::size_t idx = didx >= static_cast<double>(buckets)
                                ? buckets - 1
                                : static_cast<std::size_t>(didx);
    rungs_[idx].push_back(n);
  }
  far_.clear();
}

JANUS_HOT bool SimEngine::prepare_next() {
  for (;;) {
    if (!current_.empty()) return true;
    while (next_rung_ < active_rungs_) {
      std::vector<EventNode>& rung = rungs_[next_rung_];
      ++next_rung_;
      if (rung.empty()) continue;
      current_.swap(rung);  // recycles current_'s capacity into the rung
      const bool last = next_rung_ == active_rungs_;
      // The last rung's boundary is ladder_end_, NOT infinity: far_ may
      // already hold events (>= ladder_end_), and an event scheduled
      // during this drain must join them — inserting it into current_
      // would let it overtake an older far event with a smaller time.
      current_end_ = last ? ladder_end_
                          : ladder_start_ +
                                width_ * static_cast<Seconds>(next_rung_);
      if (!last) {
        // FP stragglers: boundary-time events the index placed one bucket
        // early.  Push them into the next rung so the current_ invariant
        // (all times < current_end_) holds exactly.
        for (std::size_t i = 0; i < current_.size();) {
          if (current_[i].time >= current_end_) {
            // janus-lint: allow(hot-path-growth) FP stragglers are a
            // handful per rung at most, into a capacity-retaining bucket.
            rungs_[next_rung_].push_back(current_[i]);
            current_[i] = current_.back();
            current_.pop_back();
          } else {
            ++i;
          }
        }
      }
      std::make_heap(current_.begin(), current_.end(), Later{});
      if (!current_.empty()) return true;
    }
    if (far_.empty()) {
      current_end_ = -kInf;  // fully drained: next schedule starts fresh
      ladder_end_ = -kInf;
      active_rungs_ = 0;
      next_rung_ = 0;
      return false;
    }
    rebucket();
  }
}

JANUS_HOT void SimEngine::run() {
  while (step()) {
  }
}

JANUS_HOT void SimEngine::run_until(Seconds t) {
  // prepare_next materializes the next bucket so its heap root is the
  // earliest pending event — the peek the boundary test needs.  An event
  // scheduled at <= t by a firing event is picked up on the next
  // iteration.
  while ((!current_.empty() || prepare_next()) &&
         current_.front().time <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace janus
