#include "sim/platform.hpp"

#include <algorithm>

namespace janus {

Platform::Platform(SimEngine& engine, PlatformConfig config,
                   std::vector<FunctionModel> functions,
                   InterferenceModel interference)
    : engine_(engine),
      config_(config),
      functions_(std::move(functions)),
      interference_(interference),
      rng_(config.seed) {
  require(config_.nodes > 0, "platform needs >= 1 node");
  require(!functions_.empty(), "platform needs >= 1 function");
  nodes_.resize(static_cast<std::size_t>(config_.nodes),
                Node{config_.node.capacity_mc, 0});
  pods_per_function_.assign(functions_.size(), 0);
  idle_.resize(functions_.size() + 1);
  pending_.resize(functions_.size());
  busy_per_cell_.assign(nodes_.size() * functions_.size(), 0);
  pods_per_cell_.assign(nodes_.size() * functions_.size(), 0);
  busy_per_function_.assign(functions_.size(), 0);
  peak_busy_per_function_.assign(functions_.size(), 0);

  // Pre-warm the generic pool, spread round-robin across nodes (Fission's
  // PoolManager keeps a pool of generic pods that get specialized on first
  // use, which is what gives it "excellent performance against cold starts").
  const int generic = config_.pool.prewarm_per_function *
                      static_cast<int>(functions_.size());
  for (int i = 0; i < generic; ++i) {
    Pod pod;
    pod.node = i % config_.nodes;
    pods_.push_back(pod);
    idle_[0].push_back(static_cast<int>(pods_.size()) - 1);
  }
}

const FunctionModel& Platform::function(int fn_index) const {
  require(fn_index >= 0 &&
              static_cast<std::size_t>(fn_index) < functions_.size(),
          "function index out of range");
  return functions_[static_cast<std::size_t>(fn_index)];
}

JANUS_HOT int Platform::place(int fn_index, Millicores size) {
  // Prefer the node already hosting the most pods of this function
  // (co-location packing), then the least-loaded node with room.  The
  // per-node counts come from the incremental pods_per_cell_ counters, not
  // a scan over all pods.
  int best = -1;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].used + size > nodes_[n].capacity) continue;
    if (best < 0 ||
        pods_per_cell_[cell(static_cast<int>(n), fn_index)] >
            pods_per_cell_[cell(best, fn_index)]) {
      best = static_cast<int>(n);
    }
  }
  if (best < 0) {
    // Saturated cluster: fall back to the least-used node (the simulator
    // allows oversubscription rather than rejecting, like CPU shares).
    best = 0;
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
      if (nodes_[n].used < nodes_[static_cast<std::size_t>(best)].used) {
        best = static_cast<int>(n);
      }
    }
  }
  return best;
}

JANUS_HOT Platform::Acquired Platform::acquire(int fn_index, Millicores size) {
  // 1. Warm pod already specialized for this function.
  auto& warm = idle_[static_cast<std::size_t>(fn_index) + 1];
  if (!warm.empty()) {
    const int pod = warm.back();
    warm.pop_back();
    // Resize in place: adjust the node's accounting to the new size.
    auto& p = pods_[static_cast<std::size_t>(pod)];
    nodes_[static_cast<std::size_t>(p.node)].used += size - p.size;
    p.size = size;
    return {pod, 0.0, false};
  }
  // Startup delays below scale with the cold-start-storm multiplier
  // (startup_mult_ == 1.0 outside a storm window, which multiplies
  // exactly, so calm runs stay bit-identical to the pre-chaos code).
  // 2. Specialize a generic pre-warmed pod.
  auto& generic = idle_[0];
  const bool can_grow =
      config_.pool.max_pods_per_function <= 0 ||
      pods_per_function_[static_cast<std::size_t>(fn_index)] <
          config_.pool.max_pods_per_function;
  if (!generic.empty() && can_grow) {
    const int pod = generic.back();
    generic.pop_back();
    auto& p = pods_[static_cast<std::size_t>(pod)];
    p.fn_index = fn_index;
    // Keep the historical placement input: the pod being specialized used
    // to be counted on its generic (round-robin) node during the pods_
    // scan, and that +1 participates in packing tie-breaks.  Reproduce it
    // exactly so placements — and therefore Table I and fleet metrics —
    // stay bit-identical with the pre-counter code.
    ++pods_per_cell_[cell(p.node, fn_index)];
    const int placed = place(fn_index, size);
    --pods_per_cell_[cell(p.node, fn_index)];
    p.node = placed;
    p.size = size;
    nodes_[static_cast<std::size_t>(p.node)].used += size;
    ++pods_per_cell_[cell(p.node, fn_index)];
    ++pods_per_function_[static_cast<std::size_t>(fn_index)];
    return {pod, config_.pool.warm_start_s * startup_mult_, false};
  }
  // 3. Cold start a fresh pod — unless the scale-out limit is reached, in
  // which case the invocation must wait for a pod to free up.
  if (!can_grow) return {-1, 0.0, false};
  Pod p;
  p.fn_index = fn_index;
  p.node = place(fn_index, size);
  p.size = size;
  nodes_[static_cast<std::size_t>(p.node)].used += size;
  // janus-lint: allow(hot-path-growth) cold-start pod creation: the fleet
  // reaches a steady pod population, after which this branch never runs
  // (and a simulated cold start already pays 450 ms, dwarfing the alloc).
  pods_.push_back(p);
  ++pods_per_cell_[cell(p.node, fn_index)];
  ++pods_per_function_[static_cast<std::size_t>(fn_index)];
  ++cold_starts_;
  return {static_cast<int>(pods_.size()) - 1,
          config_.pool.cold_start_s * startup_mult_, true};
}

JANUS_HOT void Platform::invoke(int fn_index, Millicores size, Concurrency c,
                                double ws_factor,
                                std::optional<double> exogenous_interference,
                                InvokeFn done) {
  const FunctionModel& model = function(fn_index);
  require(size > 0, "size must be > 0 millicores");
  require(c >= 1, "concurrency must be >= 1");
  require(c == 1 || model.batchable(), "function is not batchable");

  const Acquired got = acquire(fn_index, size);
  if (got.pod < 0) {
    // Scale-out limit hit: queue until a pod of this function frees up.
    ++queued_total_;
    JANUS_OBS(obs_, ++obs_->queued);
    // janus-lint: allow(hot-path-growth) saturation slow path — the
    // invocation is about to wait a pod's service time anyway.
    pending_[static_cast<std::size_t>(fn_index)].push_back(
        {size, c, ws_factor, exogenous_interference, std::move(done),
         engine_.now()});
    return;
  }
  start_on_pod(fn_index, got, size, c, ws_factor, exogenous_interference,
               /*queued_s=*/0.0, std::move(done));
}

JANUS_HOT void Platform::start_on_pod(
    int fn_index, const Acquired& got, Millicores size, Concurrency c,
    double ws_factor, std::optional<double> exogenous_interference,
    Seconds queued_s, InvokeFn done) {
  const FunctionModel& model = function(fn_index);
  auto& pod = pods_[static_cast<std::size_t>(got.pod)];
  pod.busy = true;
  ++invocations_;

  InvocationOutcome outcome;
  outcome.queued_s = queued_s;
  outcome.startup_s = got.startup;
  outcome.cold_start = got.cold;
  outcome.pod = got.pod;
  outcome.node = pod.node;
  // Counter already includes this pod (just marked busy), so it is >= 1 —
  // same value the old O(pods) scan produced.
  outcome.colocated =
      std::max(++busy_per_cell_[cell(pod.node, fn_index)], 1);
  const int busy_now = ++busy_per_function_[static_cast<std::size_t>(fn_index)];
  peak_busy_per_function_[static_cast<std::size_t>(fn_index)] =
      std::max(peak_busy_per_function_[static_cast<std::size_t>(fn_index)],
               busy_now);
  if (exogenous_interference.has_value()) {
    outcome.interference = *exogenous_interference;
  } else {
    outcome.interference =
        interference_.sample_multiplier(model.dim(), outcome.colocated, rng_);
  }
  outcome.exec_s = model.exec_time(size, c, ws_factor, outcome.interference);
  pod.exec_single = outcome.exec_s;

  schedule_completion(got.startup + outcome.exec_s, got.pod, fn_index,
                      outcome, std::move(done));
}

JANUS_HOT void Platform::schedule_completion(Seconds delay, int pod_index,
                                             int fn_index,
                                             const InvocationOutcome& outcome,
                                             InvokeFn done) {
  engine_.schedule_after(
      delay, [this, pod_index, fn_index, outcome,
              done = std::move(done)]() mutable {
        finish_invocation(pod_index, fn_index, outcome, std::move(done));
      });
}

JANUS_HOT void Platform::finish_invocation(int pod_index, int fn_index,
                                           InvocationOutcome outcome,
                                           InvokeFn done) {
  auto& p = pods_[static_cast<std::size_t>(pod_index)];
  if (p.preempted) {
    // The pod was killed mid-flight (chaos preemption): its accounting was
    // unwound at kill time and it never returns to the idle pool.  The
    // invocation loses its work and re-enters the acquire path, re-paying
    // the execution the pod recorded when this attempt started.
    const Millicores size = p.size;
    const Seconds exec_single = p.exec_single;
    p.preempted = false;
    p.size = 0;       // tombstone: not on any idle list, never reused,
    p.fn_index = -1;  // never counted again
    ++requeued_;
    if (outcome.preempted < 255) ++outcome.preempted;
    retry_invocation(fn_index, size, exec_single, outcome, std::move(done));
    return;  // no pod went idle, so nothing to drain
  }
  p.busy = false;
  --busy_per_cell_[cell(p.node, fn_index)];
  --busy_per_function_[static_cast<std::size_t>(fn_index)];
  // janus-lint: allow(hot-path-growth) the idle list previously held
  // this pod, so its capacity is already sufficient.
  idle_[static_cast<std::size_t>(fn_index) + 1].push_back(pod_index);
  done(outcome);

  // Drain one queued invocation of this function, if any (FIFO).
  auto& waiting = pending_[static_cast<std::size_t>(fn_index)];
  if (!waiting.empty()) {
    PendingInvocation next = std::move(waiting.front());
    waiting.erase(waiting.begin());
    const Acquired reacquired = acquire(fn_index, next.size);
    // A pod just went idle, so reacquisition cannot fail.
    const Seconds queued_s = engine_.now() - next.enqueued_at;
    if (next.retry_exec_s >= 0.0) {
      resume_retry(fn_index, reacquired, next.size, next.retry_exec_s,
                   next.prior, queued_s, std::move(next.done));
    } else {
      start_on_pod(fn_index, reacquired, next.size, next.concurrency,
                   next.ws_factor, next.exogenous_interference, queued_s,
                   std::move(next.done));
    }
  }
}

JANUS_HOT void Platform::retry_invocation(int fn_index, Millicores size,
                                          Seconds exec_single,
                                          InvocationOutcome prior,
                                          InvokeFn done) {
  const Acquired got = acquire(fn_index, size);
  if (got.pod < 0) {
    // Scale-out limit: the retry waits in the same FIFO as fresh
    // invocations, resuming with its accumulated outcome.
    ++queued_total_;
    JANUS_OBS(obs_, ++obs_->queued);
    PendingInvocation entry;
    entry.size = size;
    entry.concurrency = 1;   // unused on retry: exec is re-paid verbatim
    entry.ws_factor = 0.0;   // likewise
    entry.done = std::move(done);
    entry.enqueued_at = engine_.now();
    entry.retry_exec_s = exec_single;
    entry.prior = prior;
    // janus-lint: allow(hot-path-growth) saturation slow path — the retry
    // is about to wait a pod's service time anyway.
    pending_[static_cast<std::size_t>(fn_index)].push_back(std::move(entry));
    return;
  }
  resume_retry(fn_index, got, size, exec_single, prior, /*queued_s=*/0.0,
               std::move(done));
}

JANUS_HOT void Platform::resume_retry(int fn_index, const Acquired& got,
                                      Millicores size, Seconds exec_single,
                                      InvocationOutcome prior,
                                      Seconds queued_s, InvokeFn done) {
  (void)size;
  auto& pod = pods_[static_cast<std::size_t>(got.pod)];
  pod.busy = true;
  pod.exec_single = exec_single;
  // Not a new invocation (invocations_ untouched): the same request
  // re-pays startup + exec with its original interference draw, so
  // preemption perturbs no rng stream.
  InvocationOutcome outcome = prior;
  outcome.queued_s += queued_s;
  outcome.startup_s += got.startup;
  outcome.exec_s += exec_single;
  outcome.cold_start = outcome.cold_start || got.cold;
  outcome.pod = got.pod;
  outcome.node = pod.node;
  outcome.colocated =
      std::max(++busy_per_cell_[cell(pod.node, fn_index)], 1);
  const int busy_now =
      ++busy_per_function_[static_cast<std::size_t>(fn_index)];
  peak_busy_per_function_[static_cast<std::size_t>(fn_index)] =
      std::max(peak_busy_per_function_[static_cast<std::size_t>(fn_index)],
               busy_now);
  schedule_completion(got.startup + exec_single, got.pod, fn_index, outcome,
                      std::move(done));
}

int Platform::preempt_busy(int fn_index, int max_pods) {
  (void)function(fn_index);  // range check
  if (max_pods <= 0) return 0;
  int killed = 0;
  for (std::size_t i = 0; i < pods_.size() && killed < max_pods; ++i) {
    Pod& p = pods_[i];
    if (!p.busy || p.preempted || p.fn_index != fn_index) continue;
    // Kill: leave placement + busy accounting immediately; the pending
    // completion event sees the flag and retries the invocation.
    p.busy = false;
    p.preempted = true;
    --busy_per_cell_[cell(p.node, fn_index)];
    --busy_per_function_[static_cast<std::size_t>(fn_index)];
    --pods_per_cell_[cell(p.node, fn_index)];
    --pods_per_function_[static_cast<std::size_t>(fn_index)];
    nodes_[static_cast<std::size_t>(p.node)].used -= p.size;
    ++preempted_pods_;
    ++killed;
  }
  return killed;
}

void Platform::set_startup_multiplier(double m) {
  require(m > 0.0, "startup multiplier must be > 0");
  startup_mult_ = m;
}

int Platform::peak_colocation(int fn_index) const {
  int peak = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    peak = std::max(peak, busy_per_cell_[cell(static_cast<int>(n), fn_index)]);
  }
  return peak;
}

int Platform::pods_for_function(int fn_index) const {
  (void)function(fn_index);  // range check
  return pods_per_function_[static_cast<std::size_t>(fn_index)];
}

int Platform::busy_pods_for(int fn_index) const {
  (void)function(fn_index);
  return busy_per_function_[static_cast<std::size_t>(fn_index)];
}

int Platform::peak_busy_for(int fn_index) const {
  (void)function(fn_index);
  return peak_busy_per_function_[static_cast<std::size_t>(fn_index)];
}

void Platform::reset_peak_busy() {
  peak_busy_per_function_ = busy_per_function_;
}

std::size_t Platform::queued_invocations() const noexcept {
  std::size_t total = 0;
  for (const auto& waiting : pending_) total += waiting.size();
  return total;
}

Millicores Platform::busy_millicores() const {
  Millicores total = 0;
  for (const auto& pod : pods_) {
    if (pod.busy) total += pod.size;
  }
  return total;
}

}  // namespace janus
