// Serverless platform simulator (the Fission-on-Kubernetes substitute).
//
// Models the pieces of the provider stack that Janus's adapter touches:
//  * cluster nodes with millicore capacity,
//  * function pods with a Fission-PoolManager-style warm pool (pre-warmed
//    generic pods are specialized on first use; warm reuse is cheap, cold
//    starts pay a penalty),
//  * same-function co-location on nodes (the placement policy packs
//    instances of one function together, as commercial platforms do, which
//    is what creates the interference of Fig 1c),
//  * a resize API: each invocation carries the millicore size decided by
//    the active sizing policy — the late-binding hook.
//
// Interference can be *exogenous* (the caller pre-draws the multiplier, so
// clairvoyant baselines can see it — mirrors replaying a recorded run) or
// *endogenous* (derived from the actual number of busy co-located pods).
#pragma once

#include <optional>
#include <vector>

#include "common/annotations.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "model/function_model.hpp"
#include "model/interference.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace janus {

struct NodeConfig {
  Millicores capacity_mc = 52000;  // testbed: 52 physical cores
};

struct PoolConfig {
  /// Pods kept warm per function (Fission PoolManager poolsize).
  int prewarm_per_function = 8;
  /// Specializing a generic warm pod (package load) — cheap.
  Seconds warm_start_s = 0.005;
  /// Full cold start when the warm pool is exhausted.
  Seconds cold_start_s = 0.450;
  /// Upper bound on pods per function (scale-out limit); 0 = unlimited.
  int max_pods_per_function = 0;
};

struct PlatformConfig {
  int nodes = 4;
  NodeConfig node;
  PoolConfig pool;
  std::uint64_t seed = 1;
};

/// Outcome handed to the invocation's completion callback.  Field order
/// packs pod/node/colocated into what used to be padding: the struct must
/// stay 48 bytes because it is embedded (with the caller's InvokeFn) in
/// Platform's completion closure, which sits exactly at the engine's
/// 128-byte event capture budget.
struct InvocationOutcome {
  Seconds queued_s = 0.0;     // wait for pod capacity (summed over retries)
  Seconds startup_s = 0.0;    // warm specialize or cold start (summed)
  Seconds exec_s = 0.0;       // model execution time (re-paid per retry)
  double interference = 1.0;  // multiplier actually applied
  int colocated = 1;          // same-function busy pods on the node
  int pod = -1;               // pod the invocation (last) ran on
  int node = -1;              // node hosting that pod
  bool cold_start = false;    // true if any attempt cold-started
  /// Times this invocation's pod was preempted mid-flight (chaos): each
  /// preemption loses the work in progress and re-pays startup + exec on a
  /// freshly acquired pod.  Saturates at 255 (packed into what used to be
  /// padding, keeping the struct at 48 bytes).
  std::uint8_t preempted = 0;

  Seconds total() const noexcept { return queued_s + startup_s + exec_s; }
};
static_assert(sizeof(InvocationOutcome) == 48,
              "InvocationOutcome must stay 48 bytes: it is embedded (with "
              "the caller's InvokeFn) in the completion closure at the "
              "engine's event capture budget");

/// Completion callback for one invocation.  Inline (no heap fallback) so
/// the platform's completion closure — which embeds one of these — fits a
/// single EventFn slot and the steady-state event path never allocates.
/// The budget covers exp/runner's launch_stage capture (two shared_ptrs +
/// a size) with headroom; an oversized capture fails to compile.  Kept
/// tight deliberately: this type is embedded in every scheduled completion
/// event, so its size sets the event slot pool's cache footprint.
inline constexpr std::size_t kInvokeCaptureBytes = 48;
using InvokeFn =
    InlineFunction<void(const InvocationOutcome&), kInvokeCaptureBytes>;

class Platform {
 public:
  Platform(SimEngine& engine, PlatformConfig config,
           std::vector<FunctionModel> functions,
           InterferenceModel interference = InterferenceModel{});

  /// Number of registered functions.
  std::size_t function_count() const noexcept { return functions_.size(); }
  const FunctionModel& function(int fn_index) const;

  /// Invokes function `fn_index` with `size` millicores and batch size `c`.
  /// `ws_factor` is the invocation's working-set draw (the caller owns the
  /// randomness so clairvoyant policies can share it).  When
  /// `exogenous_interference` is set it is applied verbatim; otherwise the
  /// multiplier is sampled from the co-location actually present.
  /// `done` fires at completion with the outcome.
  void invoke(int fn_index, Millicores size, Concurrency c, double ws_factor,
              std::optional<double> exogenous_interference, InvokeFn done);

  /// Busy same-function pods currently on the node hosting most instances
  /// of `fn_index` (diagnostic; used by tests and the fig1c bench).
  int peak_colocation(int fn_index) const;

  /// Invocations currently waiting for a pod (scale-out limit reached).
  std::size_t queued_invocations() const noexcept;

  /// Pods currently specialized for `fn_index` (the function's actual
  /// footprint — what the fleet control plane publishes at each epoch
  /// barrier instead of a Little's-law estimate).
  int pods_for_function(int fn_index) const;

  /// Busy pods of `fn_index` right now.
  int busy_pods_for(int fn_index) const;

  /// High-water mark of concurrently busy pods of `fn_index` since the
  /// last reset_peak_busy() — the per-epoch demand signal.
  int peak_busy_for(int fn_index) const;

  /// Restarts the peak tracking window at the current busy level (pods
  /// still running carry their demand into the next window).
  void reset_peak_busy();

  /// Total millicores currently allocated to busy pods (diagnostic).
  Millicores busy_millicores() const;

  std::uint64_t cold_starts() const noexcept { return cold_starts_; }
  std::uint64_t invocations() const noexcept { return invocations_; }
  /// Pods killed by preempt_busy so far.
  std::uint64_t preempted_pods() const noexcept { return preempted_pods_; }
  /// Invocations that lost a pod mid-flight and re-entered the acquire
  /// path (each re-pays startup and the full execution).
  std::uint64_t requeued() const noexcept { return requeued_; }
  /// Invocations that ever waited for a pod (scale-out limit), cumulative.
  /// Unlike ObsCounters::queued this plain tally is always on, so the
  /// chaos scorecard can report queueing without arming observability.
  std::uint64_t queued_total() const noexcept { return queued_total_; }

  /// Chaos injection: kills up to `max_pods` busy pods of `fn_index`, in
  /// ascending pod-index order (deterministic).  A killed pod leaves the
  /// placement accounting immediately and never returns to the idle pool;
  /// its in-flight invocation, when its completion event fires, re-enters
  /// the acquire path — re-paying startup (possibly a cold start, possibly
  /// queueing at the scale-out limit) plus the full execution.  Returns
  /// the number of pods actually killed.  Cold path: called at epoch
  /// barriers, never from the event loop.
  int preempt_busy(int fn_index, int max_pods);

  /// Chaos injection: multiplies warm and cold startup delays for every
  /// acquisition from now on (cold-start storm windows; 1 = normal).
  void set_startup_multiplier(double m);
  double startup_multiplier() const noexcept { return startup_mult_; }

  /// Current simulated time of the owning engine (spans are reconstructed
  /// from completion callbacks as now() - outcome.total()).
  Seconds now() const noexcept { return engine_.now(); }

  /// Arms the observability hooks on this platform's event path; null
  /// (the default) keeps them a single never-taken branch.  The sink must
  /// outlive the run and is written only from this platform's shard.
  void set_obs(ObsCounters* obs) noexcept { obs_ = obs; }

 private:
  struct Pod {
    int fn_index = -1;  // -1 while generic (not yet specialized)
    int node = 0;
    Millicores size = 0;
    bool busy = false;
    /// Killed by preempt_busy while its invocation was in flight; the
    /// pending completion event consumes the flag, retries the invocation
    /// elsewhere, and tombstones the pod (it never returns to idle).
    bool preempted = false;
    /// Single-execution service time of the in-flight invocation, written
    /// when it starts.  Lives here (not in the completion closure, which
    /// sits exactly at the engine's capture budget) so a preemption retry
    /// can re-pay the execution verbatim.
    Seconds exec_single = 0.0;
  };
  struct Node {
    Millicores capacity = 0;
    Millicores used = 0;
  };

  /// Chooses a node for a new pod of `fn_index`: prefer the node already
  /// hosting the most pods of that function (co-location packing), subject
  /// to capacity.
  int place(int fn_index, Millicores size);

  /// Finds an idle pod of the function or specializes/creates one.
  /// Returns pod index and the startup delay + cold flag; pod == -1 means
  /// the per-function scale-out limit is reached and the caller must queue.
  struct Acquired {
    int pod;
    Seconds startup;
    bool cold;
  };
  Acquired acquire(int fn_index, Millicores size);

  /// A queued invocation waiting for a pod of its function to free up.
  struct PendingInvocation {
    Millicores size;
    Concurrency concurrency;
    double ws_factor;
    std::optional<double> exogenous_interference;
    InvokeFn done;
    Seconds enqueued_at;
    /// Retry state for a preempted invocation re-entering the queue: when
    /// retry_exec_s >= 0 the entry resumes with `prior` already
    /// accumulated and the execution re-paid verbatim instead of being
    /// re-derived from the model.
    Seconds retry_exec_s = -1.0;
    InvocationOutcome prior{};
  };

  /// Runs an invocation on an acquired pod (after any startup delay).
  void start_on_pod(int fn_index, const Acquired& got, Millicores size,
                    Concurrency c, double ws_factor,
                    std::optional<double> exogenous_interference,
                    Seconds queued_s, InvokeFn done);

  /// Completion-event body shared by first runs and retries: frees the pod
  /// and delivers the outcome — or, if the pod was preempted mid-flight,
  /// tombstones it and re-runs the invocation (re-paying the pod's
  /// recorded exec_single in full; the accumulated outcome.exec_s cannot
  /// recover it once a retry happened).
  void finish_invocation(int pod_index, int fn_index,
                         InvocationOutcome outcome, InvokeFn done);

  /// Re-runs a preempted invocation: re-enters the standard acquire path
  /// (warm, generic, cold, or the pending queue at the scale-out limit),
  /// accumulating times into `prior`.  The interference multiplier — and
  /// hence the execution time — stays the original draw: same work, drawn
  /// once, so preemption perturbs no other tenant's rng stream.
  void retry_invocation(int fn_index, Millicores size, Seconds exec_single,
                        InvocationOutcome prior, InvokeFn done);

  /// Starts a retry on an acquired pod, accumulating into `prior`.
  void resume_retry(int fn_index, const Acquired& got, Millicores size,
                    Seconds exec_single, InvocationOutcome prior,
                    Seconds queued_s, InvokeFn done);

  /// Schedules the completion event for a running invocation, `delay` from
  /// now.  The delay is explicit because outcome times are accumulated
  /// across retries and cannot recover the current attempt's duration.
  void schedule_completion(Seconds delay, int pod_index, int fn_index,
                           const InvocationOutcome& outcome, InvokeFn done);

  /// Flat (node, function) cell index for the incremental counters.
  JANUS_HOT std::size_t cell(int node, int fn) const noexcept {
    return static_cast<std::size_t>(node) * functions_.size() +
           static_cast<std::size_t>(fn);
  }

  SimEngine& engine_;
  PlatformConfig config_;
  std::vector<FunctionModel> functions_;
  InterferenceModel interference_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<Pod> pods_;
  // Idle pod indices: slot 0 is the generic pool, slot fn+1 the warm pods
  // of function fn.  Flat vectors (not a map) — this is touched on every
  // invocation and completion.
  std::vector<std::vector<int>> idle_;
  // FIFO of invocations blocked on the scale-out limit, per function.
  std::vector<std::vector<PendingInvocation>> pending_;
  std::vector<int> pods_per_function_;
  // Incremental per-(node, function) counters replacing the O(pods) scans
  // the old code did on every invocation: busy pods (co-location seen by
  // an invocation) and specialized pods (placement packing preference).
  std::vector<int> busy_per_cell_;
  std::vector<int> pods_per_cell_;
  // Per-function busy count and its high-water mark since the last
  // reset_peak_busy() — the epoch demand signal for the fleet control
  // plane.
  std::vector<int> busy_per_function_;
  std::vector<int> peak_busy_per_function_;
  std::uint64_t cold_starts_ = 0;
  std::uint64_t invocations_ = 0;
  std::uint64_t preempted_pods_ = 0;
  std::uint64_t requeued_ = 0;
  std::uint64_t queued_total_ = 0;
  /// Cold-start-storm multiplier applied to startup delays (1 = calm).
  double startup_mult_ = 1.0;
  ObsCounters* obs_ = nullptr;
};

}  // namespace janus
