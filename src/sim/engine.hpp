// Discrete-event simulation engine.
//
// The calendar is a bucketed ladder queue instead of one binary heap:
//
//  * `current_` — the bucket being drained, kept as a small binary
//    min-heap of 16-byte (time, seq|slot) nodes: pops and mid-bucket
//    inserts cost O(log bucket) sifts over cache-hot nodes, never a
//    closure move or a vector memmove.
//  * `rungs_` — the ladder: fixed-width time buckets covering
//    [ladder_start_, ladder_end_).  Insertion is an O(1) push_back into
//    the right bucket; a bucket is heapified only when it becomes current.
//  * `far_` — unsorted overflow for events at or beyond ladder_end_.
//    When the ladder drains, far_ is re-bucketed into a fresh ladder whose
//    width adapts to the observed event density (epoch advance).
//
// Near-sorted arrival streams (open-loop load generators) make both
// enqueue and dequeue amortized O(1) versus the heap's O(log n), and the
// constant factor shrinks further because closures are placement-built
// directly into a per-engine slot pool (no per-event malloc/free, no
// relocation) and the ordering structures move 24-byte nodes, not
// closures.
//
// Ordering contract (unchanged from the heap engine, and what keeps fleet
// metrics bit-identical at any shard count): events execute in strict
// (time, insertion-seq) order, and a schedule_at with t < now() is clamped
// to now() — it fires as soon as possible, after any already-queued events
// at now().
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/inline_function.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"

namespace janus {

/// Inline capture budget for one scheduled event.  The largest producer is
/// Platform's completion closure (this + indices + InvocationOutcome + the
/// caller's InvokeFn); exp/runner's open-loop arrival closures are far
/// smaller.  Both are static_asserted against this budget at their
/// construction sites by InlineFunction itself.  Keep this as small as
/// those captures allow: slot size times pending events is the pool's
/// working set, and large-fleet runs keep ~100k events pending.
inline constexpr std::size_t kEventCaptureBytes = 128;
using EventFn = InlineFunction<void(), kEventCaptureBytes>;

class SimEngine {
 public:
  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;
  ~SimEngine();

  Seconds now() const noexcept { return now_; }

  /// Time of the most recently executed event (0.0 before any ran).
  /// Unlike now(), run_until's boundary clamp never advances it, so after
  /// a drain-to-infinity run it still reads the true makespan — what the
  /// fleet reports as sim_end_s for achieved-throughput accounting.
  Seconds last_event_s() const noexcept { return last_event_; }

  /// Schedules `fn` at absolute simulated time `t`.  A `t` earlier than
  /// now() is clamped to now(): the event fires "as soon as possible",
  /// after any already-queued events at now() (insertion order still
  /// breaks the tie).  Load generators that draw arrivals lazily can
  /// therefore hand the engine a time that slipped into the past without
  /// special-casing; time never flows backwards.
  ///
  /// The callable is placement-built directly into the engine's slot pool
  /// (through EventFn, which bounds and static_asserts its capture size);
  /// on the steady-state path scheduling performs zero heap allocations.
  template <typename F>
  JANUS_HOT void schedule_at(Seconds t, F&& fn) {
    if (t < now_) t = now_;  // clamp: the past is served "now"
    require(next_seq_ < kMaxSeq, "event sequence space exhausted");
    const EventNode node{
        t, (next_seq_++ << kSlotBits) | acquire_slot(std::forward<F>(fn))};
    ++size_;
    JANUS_OBS(obs_, obs_->note_pending(size_));
    if (t < current_end_) {
      // Into the bucket being drained: O(log bucket) sift.  The node's
      // globally-largest seq makes it drain after already-queued peers at
      // the same time — the clamp contract.
      // janus-lint: allow(hot-path-growth) drain bucket keeps its capacity
      // across epochs (swap in prepare_next recycles it); amortized-free.
      current_.push_back(node);
      std::push_heap(current_.begin(), current_.end(), Later{});
    } else if (next_rung_ < active_rungs_ && t < ladder_end_) {
      // O(1) bucket append.  The double-precision index is weakly
      // monotone in t, so bucket membership can never invert event order;
      // the clamps guard the FP edges (a boundary-time event must not
      // land in a bucket the drain already passed, nor off the ladder).
      const double didx = (t - ladder_start_) * inv_width_;
      std::size_t idx = didx >= static_cast<double>(active_rungs_)
                            ? active_rungs_ - 1
                            : static_cast<std::size_t>(didx);
      idx = std::min(std::max(idx, next_rung_), active_rungs_ - 1);
      // janus-lint: allow(hot-path-growth) rungs_ never shrinks, so bucket
      // vectors retain their high-water capacity across epochs.
      rungs_[idx].push_back(node);
    } else {
      // janus-lint: allow(hot-path-growth) far_ is cleared (capacity kept)
      // on every rebucket; growth settles after the first epoch.
      far_.push_back(node);
    }
  }

  /// Schedules `fn` after `delay` seconds (>= 0).
  template <typename F>
  JANUS_HOT void schedule_after(Seconds delay, F&& fn) {
    require(delay >= 0.0, "negative delay");
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Executes the next event; returns false when the calendar is empty.
  JANUS_HOT bool step() {
    if (current_.empty() && !prepare_next()) return false;
    std::pop_heap(current_.begin(), current_.end(), Later{});
    const EventNode node = current_.back();
    current_.pop_back();
    --size_;
    now_ = node.time;
    last_event_ = node.time;
    ++executed_;
#if defined(__GNUC__) || defined(__clang__)
    // Overlap the next closure's (possibly cold) slot fetch with this
    // event's execution; with 100k+ pending events the pool outgrows
    // cache and this hides most of the dequeue's DRAM latency.
    if (!current_.empty()) {
      __builtin_prefetch(slot_ptr(current_.front().slot()));
    }
#endif
    // Invoke in place — no relocation.  The Slot[] slabs never move even
    // if a re-entrant schedule_at grows the pool, so the pointer stays
    // valid; the guard releases the slot after the closure returns — or
    // during unwinding if it throws, so the capture is still destroyed
    // (matching the old engine, where the heap Event died with the stack).
    struct SlotGuard {
      SimEngine* engine;
      std::uint32_t slot;
      ~SlotGuard() { engine->release_slot(slot); }
    } guard{this, node.slot()};
    (*slot_ptr(guard.slot))();
    return true;
  }

  /// Runs until the calendar drains.
  void run();

  /// Runs until simulated time passes `t` or the calendar drains.  An
  /// event at exactly `t` still fires; now() ends at `t` even when the
  /// calendar drains earlier (or was empty).
  void run_until(Seconds t);

  std::size_t pending() const noexcept { return size_; }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Arms the calendar-occupancy gauge (self-profiling pillar); null (the
  /// default) keeps the hook a single never-taken branch in schedule_at.
  /// The sink must outlive the engine's run and is written only from the
  /// thread driving this engine.
  void set_obs(EngineObs* obs) noexcept { obs_ = obs; }

 private:
  /// 16-byte calendar node: time plus (seq << 24 | slot).  seq lives in
  /// the high 40 bits so comparing the packed word compares seq (unique
  /// per event, so the slot bits never decide anything); the closure lives
  /// in the slot pool.  Every sort/heap/bucket operation therefore moves
  /// 16 hot bytes and never touches capture bytes.
  struct EventNode {
    Seconds time;
    std::uint64_t seq_slot;

    std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }
  };
  static constexpr std::uint64_t kSlotBits = 24;  // 16M in-flight closures
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = 1ULL << (64 - kSlotBits);

  /// Strict (time, seq) total order, expressed as "executes later" so the
  /// STL heap helpers keep the soonest event at the root.  seq is unique,
  /// which is what makes the ladder reproduce the reference binary heap's
  /// execution order exactly.
  struct Later {
    bool operator()(const EventNode& a, const EventNode& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq_slot > b.seq_slot;
    }
  };

  static constexpr std::size_t kSlabSlots = 256;  // closures per slab
  static constexpr std::size_t kTargetRungSize = 64;  // events per bucket
  static constexpr std::size_t kMaxRungs = 1u << 14;
  struct Slot {
    alignas(std::max_align_t) unsigned char bytes[sizeof(EventFn)];
  };

  JANUS_HOT EventFn* slot_ptr(std::uint32_t slot) noexcept {
    return reinterpret_cast<EventFn*>(
        slabs_[slot / kSlabSlots][slot % kSlabSlots].bytes);
  }

  /// Placement-builds the callable into a pooled slot (freed slots recycle
  /// LIFO, so the line is usually still hot) and returns its index.
  template <typename F>
  JANUS_HOT std::uint32_t acquire_slot(F&& fn) {
    if (free_slots_.empty()) grow_pool();
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    ::new (static_cast<void*>(slot_ptr(slot))) EventFn(std::forward<F>(fn));
    return slot;
  }

  JANUS_HOT void release_slot(std::uint32_t slot) noexcept {
    slot_ptr(slot)->~EventFn();
    // janus-lint: allow(hot-path-growth) free list capacity is reserved in
    // grow_pool for every slot that exists; push_back never reallocates.
    free_slots_.push_back(slot);
  }

  void grow_pool();

  /// Materializes the next non-empty bucket (or re-buckets far_) into
  /// current_; returns false when the whole calendar is empty.
  bool prepare_next();
  void rebucket();

  static constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();

  // Drain bucket: min-heap on (time, seq); holds events < current_end_.
  std::vector<EventNode> current_;
  Seconds current_end_ = -kInf;

  // Ladder: rungs_[i] spans [ladder_start_ + i*width, + width); only
  // rungs_[next_rung_ .. active_rungs_) still hold events.  rungs_ never
  // shrinks, so bucket vectors keep their capacity across epochs.
  std::vector<std::vector<EventNode>> rungs_;
  std::size_t next_rung_ = 0;
  std::size_t active_rungs_ = 0;
  Seconds ladder_start_ = 0.0;
  Seconds ladder_end_ = -kInf;
  double inv_width_ = 0.0;
  Seconds width_ = 0.0;

  // Overflow beyond ladder_end_, re-bucketed on epoch advance.
  std::vector<EventNode> far_;

  // Closure slot pool: slabs never move, freed slots recycle LIFO.
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<std::uint32_t> free_slots_;

  Seconds now_ = 0.0;
  Seconds last_event_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t size_ = 0;
  EngineObs* obs_ = nullptr;
};

}  // namespace janus
