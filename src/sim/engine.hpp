// Discrete-event simulation engine.
//
// A minimal calendar: events are (time, sequence, closure) triples executed
// in time order; ties break by insertion sequence so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace janus {

class SimEngine {
 public:
  Seconds now() const noexcept { return now_; }

  /// Schedules `fn` at absolute simulated time `t`.  A `t` earlier than
  /// now() is clamped to now(): the event fires "as soon as possible",
  /// after any already-queued events at now() (insertion order still
  /// breaks the tie).  Load generators that draw arrivals lazily can
  /// therefore hand the engine a time that slipped into the past without
  /// special-casing; time never flows backwards.
  void schedule_at(Seconds t, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  void schedule_after(Seconds delay, std::function<void()> fn);

  /// Executes the next event; returns false when the calendar is empty.
  bool step();

  /// Runs until the calendar drains.
  void run();

  /// Runs until simulated time passes `t` or the calendar drains.
  void run_until(Seconds t);

  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace janus
