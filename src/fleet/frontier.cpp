#include "fleet/frontier.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hpp"

namespace janus {

const char* to_string(FrontierPhase phase) noexcept {
  switch (phase) {
    case FrontierPhase::Ramp: return "ramp";
    case FrontierPhase::Bisect: return "bisect";
  }
  return "?";
}

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

/// Cumulative process high-water mark — monotone across points, so the
/// column reads as "RSS needed to get this far through the sweep".
long peak_rss_kb_now() {
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;
}

void validate(const FrontierConfig& config) {
  require(!config.fleet.tenants.empty(), "frontier needs >= 1 tenant");
  require(config.slo_target > 0.0 && config.slo_target <= 1.0,
          "frontier SLO target must be in (0, 1]");
  require(config.step_rps > 0.0 && std::isfinite(config.step_rps),
          "frontier step must be finite and > 0");
  require(config.stop_rps >= config.step_rps &&
              std::isfinite(config.stop_rps),
          "frontier stop must be finite and >= step");
  require(config.bisect_iters >= 0 && config.bisect_iters <= 32,
          "frontier bisection budget must be in [0, 32]");
}

/// Runs one operating point: the template fleet with every tenant's
/// arrival process rescaled so the fleet's summed mean rate is `rps`.
FrontierPoint run_point(const FrontierConfig& config, double base_rps,
                        double rps, FrontierPhase phase) {
  FleetConfig fc = config.fleet;
  const double factor = rps / base_rps;
  for (TenantSpec& tenant : fc.tenants) {
    tenant.arrivals = scale_arrivals(tenant.arrivals, factor);
  }
  // Arm the cheapest obs pillar so the calendar-occupancy gauge records
  // peak_pending.  Observability is non-perturbing by construction (the
  // obs suite pins obs-on == obs-off metrics), so this changes nothing in
  // the deterministic columns.
  if (!fc.obs.enabled()) fc.obs.timeline = true;

  const FleetResult result = run_fleet(fc);

  FrontierPoint point;
  point.phase = phase;
  point.offered_rps = rps;
  point.sim_end_s = result.sim_end_s;
  point.achieved_rps =
      result.sim_end_s > 0.0
          ? static_cast<double>(result.total_requests) / result.sim_end_s
          : 0.0;
  point.slo_met = 1.0 - result.fleet_violation_rate;
  point.p50_s = result.fleet_p50;
  point.p99_s = result.fleet_p99;
  // P999 mirrors the fleet's p50/p99 sourcing: exact order statistics on
  // the dense path, histogram interpolation when the run streamed.
  point.p999_s = result.streamed ? result.fleet_hist.percentile(99.9)
                                 : result.fleet_e2e.percentile(99.9);
  point.peak_pending = result.obs.peak_pending;
  point.peak_rss_kb = peak_rss_kb_now();
  return point;
}

}  // namespace

FrontierResult explore_frontier(const FrontierConfig& config) {
  validate(config);
  FrontierResult out;
  out.slo_target = config.slo_target;
  for (const TenantSpec& tenant : config.fleet.tenants) {
    out.base_rps += tenant.arrivals.mean_rate();
  }
  require(out.base_rps > 0.0,
          "frontier template fleet has zero offered load");

  // ---- Coarse ramp (mutated's step_size/step_stop): run step, 2*step,
  // ... until the first point misses the target or the ceiling passes.
  // step * i (not an accumulator) keeps every point's rate an exact
  // function of (step, i).
  double lo = 0.0;
  double hi = 0.0;
  for (int i = 1;; ++i) {
    const double rps = config.step_rps * static_cast<double>(i);
    if (rps > config.stop_rps * (1.0 + 1e-12)) break;
    FrontierPoint point = run_point(config, out.base_rps, rps,
                                    FrontierPhase::Ramp);
    point.sustained = point.slo_met >= config.slo_target;
    log_info("frontier: ramp ", rps, " req/s -> slo_met=", point.slo_met,
             point.sustained ? " (sustained)" : " (missed)");
    out.points.push_back(point);
    if (point.sustained) {
      lo = rps;
      out.knee_index = static_cast<int>(out.points.size()) - 1;
    } else {
      hi = rps;
      break;
    }
  }

  if (hi == 0.0) {
    // Every ramp point sustained: the knee is censored at the ceiling.
    out.censored_high = true;
    out.knee_rps = lo;
    return out;
  }

  // ---- Bisection inside [lo, hi) — lo may be 0 when the very first step
  // failed.  Fixed iteration budget: the schedule consumes only each
  // point's pass/fail bit, never a measured magnitude, so it is a pure
  // function of (seed, config).
  for (int it = 0; it < config.bisect_iters; ++it) {
    const double mid = 0.5 * (lo + hi);
    FrontierPoint point = run_point(config, out.base_rps, mid,
                                    FrontierPhase::Bisect);
    point.sustained = point.slo_met >= config.slo_target;
    log_info("frontier: bisect [", lo, ", ", hi, "] -> ", mid,
             " req/s, slo_met=", point.slo_met,
             point.sustained ? " (sustained)" : " (missed)");
    out.points.push_back(point);
    if (point.sustained) {
      lo = mid;
      out.knee_index = static_cast<int>(out.points.size()) - 1;
    } else {
      hi = mid;
    }
  }
  out.knee_rps = lo;
  out.censored_low = out.knee_index < 0;
  return out;
}

namespace {

void append_point_json(std::ostringstream& os, const FrontierPoint& p) {
  os << "{\"phase\": \"" << to_string(p.phase)
     << "\", \"offered_rps\": " << fmt_double(p.offered_rps)
     << ", \"achieved_rps\": " << fmt_double(p.achieved_rps)
     << ", \"slo_met\": " << fmt_double(p.slo_met)
     << ", \"sustained\": " << (p.sustained ? "true" : "false")
     << ", \"p50_s\": " << fmt_double(p.p50_s)
     << ", \"p99_s\": " << fmt_double(p.p99_s)
     << ", \"p999_s\": " << fmt_double(p.p999_s)
     << ", \"sim_end_s\": " << fmt_double(p.sim_end_s)
     << ", \"peak_pending\": " << p.peak_pending
     << ", \"peak_rss_kb\": " << p.peak_rss_kb << "}";
}

}  // namespace

std::string FrontierResult::to_json() const {
  std::ostringstream os;
  os << "{\n  \"slo_target\": " << fmt_double(slo_target)
     << ",\n  \"base_rps\": " << fmt_double(base_rps)
     << ",\n  \"knee_rps\": " << fmt_double(knee_rps)
     << ",\n  \"censored_low\": " << (censored_low ? "true" : "false")
     << ",\n  \"censored_high\": " << (censored_high ? "true" : "false")
     << ",\n  \"knee\": ";
  if (knee_index >= 0) {
    append_point_json(os, points[static_cast<std::size_t>(knee_index)]);
  } else {
    os << "null";
  }
  os << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << "    ";
    append_point_json(os, points[i]);
    os << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string FrontierResult::to_csv() const {
  std::ostringstream os;
  os << "phase,offered_rps,achieved_rps,slo_met,sustained,p50_s,p99_s,"
        "p999_s,sim_end_s,peak_pending,peak_rss_kb\n";
  for (const FrontierPoint& p : points) {
    os << to_string(p.phase) << ',' << fmt_double(p.offered_rps) << ','
       << fmt_double(p.achieved_rps) << ',' << fmt_double(p.slo_met) << ','
       << (p.sustained ? 1 : 0) << ',' << fmt_double(p.p50_s) << ','
       << fmt_double(p.p99_s) << ',' << fmt_double(p.p999_s) << ','
       << fmt_double(p.sim_end_s) << ',' << p.peak_pending << ','
       << p.peak_rss_kb << '\n';
  }
  return os.str();
}

}  // namespace janus
