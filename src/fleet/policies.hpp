// Per-tenant sizing policies for the fleet simulator.
//
// The fleet of PRs 2-4 ran every tenant at a fixed allocation; this layer
// wires the paper's §V policy suite (Janus variants, ORION, GrandSLAM,
// mean-based late binding, the clairvoyant Optimal) into the multi-tenant
// simulation so policy *mixes* can be studied under the endogenous
// co-residency contention the epoch control plane produces.
//
// Expensive shared artifacts are synthesized offline, once, and shared
// read-only:
//
//   * latency profiles — once per (workload, concurrency); every policy of
//     that workload reads the same profile set;
//   * condensed hints bundles — once per (workload, concurrency, Janus
//     exploration variant); every Janus tenant's adapter holds a
//     shared_ptr<const HintsBundle> to the same immutable tables, so the
//     synthesis cost is paid once no matter how many tenants or shards
//     consume it;
//   * ORION allocations — once per (workload, concurrency, SLO); the
//     Monte-Carlo convolution is the one early-binding solve worth caching.
//
// Per-tenant *policy objects* are never shared: adapters carry hit/miss
// statistics and each tenant runs on exactly one shard thread, so giving
// every tenant its own instance keeps the hot path lock-free while the
// tables behind it stay shared.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.hpp"
#include "hints/generator.hpp"
#include "policy/early_binding.hpp"
#include "model/interference.hpp"
#include "model/workloads.hpp"
#include "policy/policy.hpp"
#include "profiler/profile.hpp"

namespace janus {

/// Canonical policy names accepted by TenantSpec::policy and the CLI's
/// `fleet --policy`: fixed, janus, janus-, janus+, orion, grandslam,
/// grandslam+, mean_based, optimal.
const std::vector<std::string>& fleet_policy_names();

bool is_fleet_policy(const std::string& name) noexcept;

/// "fixed, janus, janus-, ..." — for one-line error messages.
std::string fleet_policy_list();

/// Throws std::invalid_argument with the canonical one-line message —
/// "unknown sizing policy 'X' (valid: ...)" — unless `name` is a catalog
/// policy.  The single source of that wording: every validation site
/// (run_fleet, make_tenant_mix, PolicyCatalog) goes through here so the
/// CLI error contract cannot drift between them.
void require_fleet_policy(const std::string& name);

/// Knobs for the catalog's offline synthesis.  The defaults are
/// "fleet-grade": a lighter profile/budget grid than the paper benches
/// (bench_util.hpp uses 3000 samples and a 1 ms budget grid) because a
/// fleet run amortizes one synthesis over many tenants, not over a
/// publication figure.  Everything stays deterministic for a fixed config.
struct PolicyCatalogConfig {
  /// Profiler draws per grid point.
  int profile_samples = 1200;
  /// Janus budget-grid step (ms); the paper uses 1.
  BudgetMs budget_step = 2;
  Millicores kmin = kDefaultKmin;
  Millicores kmax = kDefaultKmax;
  Millicores kstep = kDefaultKstep;
  /// Per-remaining-stage safety margin for Janus (JanusPolicy default).
  Seconds janus_safety_margin = 0.012;
  /// Directory of committed hints tables (canonical filenames from
  /// hints_bundle_filename, as written by `janus_cli synthesize`).  When
  /// non-empty, bundle() loads matching tables from disk instead of
  /// synthesizing — the cross-process reuse path: one synthesis run (or a
  /// committed artifact) feeds any number of fleet processes.  The CSV
  /// round trip is exact (integer fields), so a loaded bundle yields
  /// bit-identical fleet results.  Workloads without a complete committed
  /// bundle fall back to in-process synthesis.
  std::string hints_dir;
};

/// What the catalog has built so far (tests assert the share-once
/// contract through these counters).
struct PolicyCatalogStats {
  int profiles_built = 0;
  int bundles_built = 0;
  /// Bundles loaded from PolicyCatalogConfig::hints_dir (no synthesis).
  int bundles_loaded = 0;
  int orion_solved = 0;
};

/// Canonical hints-table filename for suffix table `suffix` of (workload,
/// concurrency, exploration) — shared by `janus_cli synthesize` (writer)
/// and PolicyCatalogConfig::hints_dir (reader), so the two can never
/// disagree: "<workload>_c<conc>_<exploration>_suffix<j>.csv".
std::string hints_bundle_filename(const std::string& workload,
                                  Concurrency conc, Exploration exploration,
                                  std::size_t suffix);

class PolicyCatalog {
 public:
  explicit PolicyCatalog(PolicyCatalogConfig config = {});

  /// Fresh per-tenant policy instance backed by the shared artifacts.
  /// Throws std::invalid_argument for unknown names (the list in the
  /// message) — there is no silent fallback.
  std::unique_ptr<SizingPolicy> make_policy(const std::string& name,
                                            const WorkloadSpec& workload,
                                            Seconds slo, Concurrency conc,
                                            Millicores fixed_mc);

  /// Deterministic per-stage allocation estimate used for cluster plan
  /// packing (pod sizes at plan time).  Early-binding policies report
  /// their actual sizes; late-binding policies are walked through the
  /// chain at mean (ws = 1, interference = 1) latencies.
  std::vector<Millicores> plan_sizes(const std::string& name,
                                     const WorkloadSpec& workload,
                                     Seconds slo, Concurrency conc,
                                     Millicores fixed_mc);

  /// Shared profiles for (workload, concurrency); built on first use.
  /// The reference stays valid for the catalog's lifetime.
  const std::vector<LatencyProfile>& profiles(const WorkloadSpec& workload,
                                              Concurrency conc);

  /// Shared condensed hints for (workload, concurrency, exploration).
  std::shared_ptr<const HintsBundle> bundle(const WorkloadSpec& workload,
                                            Concurrency conc,
                                            Exploration exploration);

  const PolicyCatalogConfig& config() const noexcept { return config_; }
  const PolicyCatalogStats& stats() const noexcept { return stats_; }

 private:
  const std::vector<Millicores>& orion(const WorkloadSpec& workload,
                                       Seconds slo, Concurrency conc);
  /// Shared early-binding inputs (profiles + grid + SLO): one builder so
  /// make_policy and plan_sizes can never disagree on the setup.
  EarlyBindingInputs early_inputs(const WorkloadSpec& workload, Seconds slo,
                                  Concurrency conc);

  PolicyCatalogConfig config_;
  PolicyCatalogStats stats_;
  // std::map: node-based, so the references/pointers handed out stay
  // valid as the caches grow.
  std::map<std::pair<std::string, Concurrency>, std::vector<LatencyProfile>>
      profiles_;
  std::map<std::tuple<std::string, Concurrency, int>,
           std::shared_ptr<const HintsBundle>>
      bundles_;
  std::map<std::tuple<std::string, Concurrency, Seconds>,
           std::vector<Millicores>>
      orion_;
};

/// Decorator making any sizing policy react *directly* to the epoch
/// control plane's co-residency signal (late-binding policies already
/// react indirectly, through the inflated stage latencies the live
/// interference draws produce): the wrapped policy's allocation is scaled
/// by 1 + alpha * (stage co-residency - 1) and clamped to [base, kmax].
/// The provider is read at stage-launch time; between reconciliation
/// barriers it is constant, and its state is a pure function of (epoch,
/// fleet seed, tenant set), so the fleet's bit-identical-at-any-shard-
/// count contract is preserved.
class ContentionAwarePolicy final : public SizingPolicy {
 public:
  /// `base` must not be null; `feed` must outlive the policy.
  ContentionAwarePolicy(std::unique_ptr<SizingPolicy> base,
                        const CoLocationProvider& feed, double alpha,
                        Millicores kmax = kDefaultKmax);

  const std::string& name() const noexcept override { return base_->name(); }
  void on_request_start(const RequestDraw& draw) override {
    base_->on_request_start(draw);
  }
  Millicores size_for_stage(std::size_t stage, Seconds elapsed,
                            const RequestDraw& draw) override;
  bool late_binding() const noexcept override { return true; }

  double alpha() const noexcept { return alpha_; }

 private:
  std::unique_ptr<SizingPolicy> base_;
  const CoLocationProvider* feed_;
  double alpha_;
  Millicores kmax_;
};

}  // namespace janus
