#include "fleet/arrivals.hpp"

#include <cmath>

namespace janus {

const char* to_string(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Mmpp: return "mmpp";
    case ArrivalKind::Diurnal: return "diurnal";
  }
  return "?";
}

ArrivalKind arrival_kind_from_string(const std::string& name) {
  if (name == "poisson") return ArrivalKind::Poisson;
  if (name == "mmpp") return ArrivalKind::Mmpp;
  if (name == "diurnal") return ArrivalKind::Diurnal;
  throw_invalid("unknown arrival kind (expected poisson, mmpp, or diurnal): " +
                name);
}

double ArrivalSpec::mean_rate() const {
  switch (kind) {
    case ArrivalKind::Mmpp:
      // Time-weighted average over the two states' stationary shares.
      return (rate * base_dwell_s + burst_rate * burst_dwell_s) /
             (base_dwell_s + burst_dwell_s);
    case ArrivalKind::Poisson:
    case ArrivalKind::Diurnal:
      return rate;
  }
  return rate;
}

namespace {

void validate_common(const ArrivalSpec& spec) {
  require(spec.rate > 0.0, "arrival rate must be > 0");
}

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(const ArrivalSpec& spec) : rate_(spec.rate) {}

  ArrivalKind kind() const noexcept override { return ArrivalKind::Poisson; }

  Seconds next(Seconds now, Rng& rng) override {
    return now + rng.exponential(rate_);
  }

 private:
  double rate_;
};

class MmppArrivals final : public ArrivalProcess {
 public:
  explicit MmppArrivals(const ArrivalSpec& spec) : spec_(spec) {
    require(spec.burst_rate >= spec.rate,
            "MMPP burst rate must be >= base rate");
    require(spec.base_dwell_s > 0.0 && spec.burst_dwell_s > 0.0,
            "MMPP dwell times must be > 0");
  }

  ArrivalKind kind() const noexcept override { return ArrivalKind::Mmpp; }

  Seconds next(Seconds now, Rng& rng) override {
    Seconds t = now;
    for (;;) {
      if (t >= state_until_) {
        // Enter the other state; draw its dwell.  The first call lands
        // here too (state_until_ starts at 0), seeding the base state.
        if (started_) bursting_ = !bursting_;
        started_ = true;
        const Seconds dwell = bursting_ ? spec_.burst_dwell_s
                                        : spec_.base_dwell_s;
        state_until_ = t + rng.exponential(1.0 / dwell);
      }
      const double rate = bursting_ ? spec_.burst_rate : spec_.rate;
      const Seconds candidate = t + rng.exponential(rate);
      if (candidate <= state_until_) return candidate;
      // The draw crossed a state boundary: discard it and redraw in the
      // next state (valid because the exponential is memoryless).
      t = state_until_;
    }
  }

 private:
  ArrivalSpec spec_;
  bool started_ = false;
  bool bursting_ = false;
  Seconds state_until_ = 0.0;
};

class DiurnalArrivals final : public ArrivalProcess {
 public:
  explicit DiurnalArrivals(const ArrivalSpec& spec) : spec_(spec) {
    require(spec.period_s > 0.0, "diurnal period must be > 0");
    require(spec.amplitude >= 0.0 && spec.amplitude <= 1.0,
            "diurnal amplitude must be in [0, 1]");
  }

  ArrivalKind kind() const noexcept override { return ArrivalKind::Diurnal; }

  Seconds next(Seconds now, Rng& rng) override {
    // Lewis-Shedler thinning against the curve's peak rate.
    const double peak = spec_.rate * (1.0 + spec_.amplitude);
    Seconds t = now;
    for (;;) {
      t += rng.exponential(peak);
      if (rng.uniform() * peak <= rate_at(t)) return t;
    }
  }

 private:
  double rate_at(Seconds t) const {
    constexpr double kTwoPi = 6.283185307179586;
    return spec_.rate *
           (1.0 + spec_.amplitude * std::sin(kTwoPi * t / spec_.period_s));
  }

  ArrivalSpec spec_;
};

}  // namespace

std::unique_ptr<ArrivalProcess> make_arrivals(const ArrivalSpec& spec) {
  validate_common(spec);
  switch (spec.kind) {
    case ArrivalKind::Poisson:
      return std::make_unique<PoissonArrivals>(spec);
    case ArrivalKind::Mmpp:
      return std::make_unique<MmppArrivals>(spec);
    case ArrivalKind::Diurnal:
      return std::make_unique<DiurnalArrivals>(spec);
  }
  throw_invalid("unknown arrival kind");
}

}  // namespace janus
