#include "fleet/arrivals.hpp"

#include <cmath>

namespace janus {

const char* to_string(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Mmpp: return "mmpp";
    case ArrivalKind::Diurnal: return "diurnal";
    case ArrivalKind::Trace: return "trace";
  }
  return "?";
}

ArrivalKind arrival_kind_from_string(const std::string& name) {
  if (name == "poisson") return ArrivalKind::Poisson;
  if (name == "mmpp") return ArrivalKind::Mmpp;
  if (name == "diurnal") return ArrivalKind::Diurnal;
  if (name == "trace") return ArrivalKind::Trace;
  throw_invalid(
      "unknown arrival kind (expected poisson, mmpp, diurnal, or trace): " +
      name);
}

double ArrivalSpec::mean_rate() const {
  switch (kind) {
    case ArrivalKind::Mmpp:
      // Time-weighted average over the two states' stationary shares.
      return (rate * base_dwell_s + burst_rate * burst_dwell_s) /
             (base_dwell_s + burst_dwell_s);
    case ArrivalKind::Trace: {
      Seconds total = 0.0;
      for (Seconds gap : trace_gaps) total += gap;
      return total > 0.0
                 ? static_cast<double>(trace_gaps.size()) / total
                 : 0.0;
    }
    case ArrivalKind::Poisson:
    case ArrivalKind::Diurnal:
      return rate;
  }
  return rate;
}

namespace {

void validate_common(const ArrivalSpec& spec) {
  // A trace defines its own rate; everything else needs the knob.
  if (spec.kind != ArrivalKind::Trace) {
    require(spec.rate > 0.0, "arrival rate must be > 0");
  }
}

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(const ArrivalSpec& spec) : rate_(spec.rate) {}

  ArrivalKind kind() const noexcept override { return ArrivalKind::Poisson; }

  Seconds next(Seconds now, Rng& rng) override {
    return now + rng.exponential(rate_);
  }

 private:
  double rate_;
};

class MmppArrivals final : public ArrivalProcess {
 public:
  explicit MmppArrivals(const ArrivalSpec& spec) : spec_(spec) {
    require(spec.burst_rate >= spec.rate,
            "MMPP burst rate must be >= base rate");
    require(spec.base_dwell_s > 0.0 && spec.burst_dwell_s > 0.0,
            "MMPP dwell times must be > 0");
  }

  ArrivalKind kind() const noexcept override { return ArrivalKind::Mmpp; }

  Seconds next(Seconds now, Rng& rng) override {
    Seconds t = now;
    for (;;) {
      if (t >= state_until_) {
        // Enter the other state; draw its dwell.  The first call lands
        // here too (state_until_ starts at 0), seeding the base state.
        if (started_) bursting_ = !bursting_;
        started_ = true;
        const Seconds dwell = bursting_ ? spec_.burst_dwell_s
                                        : spec_.base_dwell_s;
        state_until_ = t + rng.exponential(1.0 / dwell);
      }
      const double rate = bursting_ ? spec_.burst_rate : spec_.rate;
      const Seconds candidate = t + rng.exponential(rate);
      if (candidate <= state_until_) return candidate;
      // The draw crossed a state boundary: discard it and redraw in the
      // next state (valid because the exponential is memoryless).
      t = state_until_;
    }
  }

 private:
  ArrivalSpec spec_;
  bool started_ = false;
  bool bursting_ = false;
  Seconds state_until_ = 0.0;
};

class DiurnalArrivals final : public ArrivalProcess {
 public:
  explicit DiurnalArrivals(const ArrivalSpec& spec) : spec_(spec) {
    require(spec.period_s > 0.0, "diurnal period must be > 0");
    require(spec.amplitude >= 0.0 && spec.amplitude <= 1.0,
            "diurnal amplitude must be in [0, 1]");
  }

  ArrivalKind kind() const noexcept override { return ArrivalKind::Diurnal; }

  Seconds next(Seconds now, Rng& rng) override {
    // Lewis-Shedler thinning against the curve's peak rate.
    const double peak = spec_.rate * (1.0 + spec_.amplitude);
    Seconds t = now;
    for (;;) {
      t += rng.exponential(peak);
      if (rng.uniform() * peak <= rate_at(t)) return t;
    }
  }

 private:
  double rate_at(Seconds t) const {
    constexpr double kTwoPi = 6.283185307179586;
    return spec_.rate *
           (1.0 + spec_.amplitude * std::sin(kTwoPi * t / spec_.period_s));
  }

  ArrivalSpec spec_;
};

class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(const ArrivalSpec& spec) : gaps_(spec.trace_gaps) {
    require(!gaps_.empty(), "trace replay needs >= 1 inter-arrival gap");
    for (Seconds gap : gaps_) {
      require(gap > 0.0, "trace inter-arrival gaps must be > 0");
    }
  }

  ArrivalKind kind() const noexcept override { return ArrivalKind::Trace; }

  Seconds next(Seconds now, Rng& rng) override {
    // Pure replay: no randomness consumed; the cursor loops over the
    // recorded gaps so requests can outnumber samples deterministically.
    (void)rng;
    const Seconds gap = gaps_[cursor_];
    cursor_ = (cursor_ + 1) % gaps_.size();
    return now + gap;
  }

 private:
  std::vector<Seconds> gaps_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::unique_ptr<ArrivalProcess> make_arrivals(const ArrivalSpec& spec) {
  validate_common(spec);
  switch (spec.kind) {
    case ArrivalKind::Poisson:
      return std::make_unique<PoissonArrivals>(spec);
    case ArrivalKind::Mmpp:
      return std::make_unique<MmppArrivals>(spec);
    case ArrivalKind::Diurnal:
      return std::make_unique<DiurnalArrivals>(spec);
    case ArrivalKind::Trace:
      return std::make_unique<TraceArrivals>(spec);
  }
  throw_invalid("unknown arrival kind");
}

}  // namespace janus
