#include "fleet/arrivals.hpp"

#include <cmath>
#include <limits>

namespace janus {

const char* to_string(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Mmpp: return "mmpp";
    case ArrivalKind::Diurnal: return "diurnal";
    case ArrivalKind::Trace: return "trace";
  }
  return "?";
}

ArrivalKind arrival_kind_from_string(const std::string& name) {
  if (name == "poisson") return ArrivalKind::Poisson;
  if (name == "mmpp") return ArrivalKind::Mmpp;
  if (name == "diurnal") return ArrivalKind::Diurnal;
  if (name == "trace") return ArrivalKind::Trace;
  throw_invalid(
      "unknown arrival kind (expected poisson, mmpp, diurnal, or trace): " +
      name);
}

double ArrivalSpec::mean_rate() const {
  switch (kind) {
    case ArrivalKind::Mmpp:
      // Time-weighted average over the two states' stationary shares.
      return (rate * base_dwell_s + burst_rate * burst_dwell_s) /
             (base_dwell_s + burst_dwell_s);
    case ArrivalKind::Trace: {
      Seconds total = 0.0;
      for (Seconds gap : trace_gaps) total += gap;
      return total > 0.0
                 ? static_cast<double>(trace_gaps.size()) / total
                 : 0.0;
    }
    case ArrivalKind::Poisson:
    case ArrivalKind::Diurnal:
      return rate;
  }
  return rate;
}

ArrivalSpec scale_arrivals(const ArrivalSpec& spec, double factor) {
  require(factor > 0.0 && std::isfinite(factor),
          "arrival scale factor must be finite and > 0");
  ArrivalSpec out = spec;
  switch (spec.kind) {
    case ArrivalKind::Poisson:
    case ArrivalKind::Diurnal:
      out.rate = spec.rate * factor;
      break;
    case ArrivalKind::Mmpp:
      out.rate = spec.rate * factor;
      out.burst_rate = spec.burst_rate * factor;
      break;
    case ArrivalKind::Trace:
      for (Seconds& gap : out.trace_gaps) gap /= factor;
      break;
  }
  return out;
}

namespace {

void validate_common(const ArrivalSpec& spec) {
  // A trace defines its own rate; everything else needs the knob.
  if (spec.kind != ArrivalKind::Trace) {
    require(spec.rate > 0.0, "arrival rate must be > 0");
  }
  require(spec.flash_k > 0.0, "flash multiplier must be > 0");
  if (spec.has_flash()) {
    require(spec.flash_t0_s >= 0.0 && spec.flash_t1_s > spec.flash_t0_s,
            "flash window must satisfy 0 <= t0 < t1");
  }
}

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(const ArrivalSpec& spec) : rate_(spec.rate) {}

  ArrivalKind kind() const noexcept override { return ArrivalKind::Poisson; }

  Seconds next(Seconds now, Rng& rng) override {
    return now + rng.exponential(rate_);
  }

 private:
  double rate_;
};

class MmppArrivals final : public ArrivalProcess {
 public:
  explicit MmppArrivals(const ArrivalSpec& spec) : spec_(spec) {
    require(spec.burst_rate >= spec.rate,
            "MMPP burst rate must be >= base rate");
    require(spec.base_dwell_s > 0.0 && spec.burst_dwell_s > 0.0,
            "MMPP dwell times must be > 0");
  }

  ArrivalKind kind() const noexcept override { return ArrivalKind::Mmpp; }

  Seconds next(Seconds now, Rng& rng) override {
    Seconds t = now;
    for (;;) {
      if (t >= state_until_) {
        // Enter the other state; draw its dwell.  The first call lands
        // here too (state_until_ starts at 0), seeding the base state.
        if (started_) bursting_ = !bursting_;
        started_ = true;
        const Seconds dwell = bursting_ ? spec_.burst_dwell_s
                                        : spec_.base_dwell_s;
        state_until_ = t + rng.exponential(1.0 / dwell);
      }
      const double rate = bursting_ ? spec_.burst_rate : spec_.rate;
      const Seconds candidate = t + rng.exponential(rate);
      if (candidate <= state_until_) return candidate;
      // The draw crossed a state boundary: discard it and redraw in the
      // next state (valid because the exponential is memoryless).
      t = state_until_;
    }
  }

 private:
  ArrivalSpec spec_;
  bool started_ = false;
  bool bursting_ = false;
  Seconds state_until_ = 0.0;
};

class DiurnalArrivals final : public ArrivalProcess {
 public:
  explicit DiurnalArrivals(const ArrivalSpec& spec) : spec_(spec) {
    require(spec.period_s > 0.0, "diurnal period must be > 0");
    require(spec.amplitude >= 0.0 && spec.amplitude <= 1.0,
            "diurnal amplitude must be in [0, 1]");
  }

  ArrivalKind kind() const noexcept override { return ArrivalKind::Diurnal; }

  Seconds next(Seconds now, Rng& rng) override {
    // Lewis-Shedler thinning against the curve's peak rate.
    const double peak = spec_.rate * (1.0 + spec_.amplitude);
    Seconds t = now;
    for (;;) {
      t += rng.exponential(peak);
      if (rng.uniform() * peak <= rate_at(t)) return t;
    }
  }

 private:
  double rate_at(Seconds t) const {
    constexpr double kTwoPi = 6.283185307179586;
    return spec_.rate *
           (1.0 + spec_.amplitude * std::sin(kTwoPi * t / spec_.period_s));
  }

  ArrivalSpec spec_;
};

class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(const ArrivalSpec& spec) : gaps_(spec.trace_gaps) {
    require(!gaps_.empty(), "trace replay needs >= 1 inter-arrival gap");
    for (Seconds gap : gaps_) {
      require(gap > 0.0, "trace inter-arrival gaps must be > 0");
    }
  }

  ArrivalKind kind() const noexcept override { return ArrivalKind::Trace; }

  Seconds next(Seconds now, Rng& rng) override {
    // Pure replay: no randomness consumed; the cursor loops over the
    // recorded gaps so requests can outnumber samples deterministically.
    (void)rng;
    const Seconds gap = gaps_[cursor_];
    cursor_ = (cursor_ + 1) % gaps_.size();
    return now + gap;
  }

 private:
  std::vector<Seconds> gaps_;
  std::size_t cursor_ = 0;
};

/// Flash-crowd window: a deterministic time warp around any base process.
///
/// Warped time u(t) runs K times faster than real time inside
/// [t0, t1) and at unit speed outside, so the base process — asked for
/// its next arrival in warped time — fires K times more often inside the
/// window.  The warp is strictly increasing (K > 0), so the arrival
/// sequence stays strictly monotone, and it composes with every kind:
/// a Poisson base yields exactly rate x K inside the window, MMPP keeps
/// its burst structure, a trace replays K times faster.
class FlashArrivals final : public ArrivalProcess {
 public:
  FlashArrivals(std::unique_ptr<ArrivalProcess> base, Seconds t0, Seconds t1,
                double k)
      : base_(std::move(base)), t0_(t0), t1_(t1), k_(k) {}

  ArrivalKind kind() const noexcept override { return base_->kind(); }

  Seconds next(Seconds now, Rng& rng) override {
    const Seconds t = unwarp(base_->next(warp(now), rng));
    // Rounding through warp/unwarp can collapse a sub-ulp gap; nudge so
    // the sequence stays strictly monotone (deterministic — no draw).
    if (t <= now) {
      return std::nextafter(now, std::numeric_limits<Seconds>::infinity());
    }
    return t;
  }

 private:
  Seconds warp(Seconds t) const {
    if (t <= t0_) return t;
    if (t < t1_) return t0_ + (t - t0_) * k_;
    return t + (t1_ - t0_) * (k_ - 1.0);
  }
  Seconds unwarp(Seconds u) const {
    if (u <= t0_) return u;
    const Seconds u1 = t0_ + (t1_ - t0_) * k_;  // warp(t1)
    if (u < u1) return t0_ + (u - t0_) / k_;
    return u - (t1_ - t0_) * (k_ - 1.0);
  }

  std::unique_ptr<ArrivalProcess> base_;
  Seconds t0_;
  Seconds t1_;
  double k_;
};

}  // namespace

std::unique_ptr<ArrivalProcess> make_arrivals(const ArrivalSpec& spec) {
  validate_common(spec);
  std::unique_ptr<ArrivalProcess> base;
  switch (spec.kind) {
    case ArrivalKind::Poisson:
      base = std::make_unique<PoissonArrivals>(spec);
      break;
    case ArrivalKind::Mmpp:
      base = std::make_unique<MmppArrivals>(spec);
      break;
    case ArrivalKind::Diurnal:
      base = std::make_unique<DiurnalArrivals>(spec);
      break;
    case ArrivalKind::Trace:
      base = std::make_unique<TraceArrivals>(spec);
      break;
  }
  if (base == nullptr) throw_invalid("unknown arrival kind");
  if (spec.has_flash()) {
    return std::make_unique<FlashArrivals>(std::move(base), spec.flash_t0_s,
                                           spec.flash_t1_s, spec.flash_k);
  }
  return base;
}

}  // namespace janus
