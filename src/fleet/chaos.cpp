#include "fleet/chaos.hpp"

#include <sstream>

#include "common/log.hpp"

namespace janus {

const char* to_string(ChaosFamily family) noexcept {
  switch (family) {
    case ChaosFamily::NodeFailure: return "node_failure";
    case ChaosFamily::Preemption: return "preemption";
    case ChaosFamily::ColdStorm: return "cold_storm";
    case ChaosFamily::FlashCrowd: return "flash_crowd";
  }
  return "?";
}

ChaosConfig chaos_config_from_spec(const std::string& spec) {
  ChaosConfig out;
  std::stringstream ss(spec);
  std::string token;
  bool any = false;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    any = true;
    if (token == "failures") {
      out.node_failures = true;
    } else if (token == "preemption") {
      out.preemption = true;
    } else if (token == "storms") {
      out.cold_storms = true;
    } else if (token == "flash") {
      out.flash_crowds = true;
    } else if (token == "all") {
      out.node_failures = out.preemption = out.cold_storms =
          out.flash_crowds = true;
    } else if (token == "none") {
      // Explicitly calm (lets scripts pass a variable spec).
    } else {
      throw_invalid(
          "unknown chaos family (expected a comma-separated subset of "
          "failures, preemption, storms, flash — or all, or none): " +
          token);
    }
  }
  if (!any) {
    throw_invalid(
        "empty chaos spec (expected a comma-separated subset of failures, "
        "preemption, storms, flash — or all, or none)");
  }
  return out;
}

namespace {

/// Stream keys for the chaos rng derivations: distinct constants per use
/// so barrier draws, flash windows, and tenant workload streams (which mix
/// the fleet seed differently in fleet.cpp) can never collide.
constexpr std::uint64_t kBarrierStream = 0xc4a05'5eedULL;
constexpr std::uint64_t kFlashStream = 0xf1a5'840bULL;

std::uint64_t mix(std::uint64_t root, std::uint64_t stream,
                  std::uint64_t index) {
  return SplitMix64(root ^ stream ^
                    (0x9e3779b97f4a7c15ULL * (index + 1)))
      .next();
}

}  // namespace

ChaosEngine::ChaosEngine(ChaosConfig config, std::uint64_t fleet_seed,
                         std::size_t tenants)
    : config_(config),
      root_(SplitMix64(fleet_seed ^ (config.seed * 0xda942042e4dd58b5ULL))
                .next()),
      tenants_(tenants) {
  require(tenants >= 1, "chaos engine needs >= 1 tenant");
  require(config.node_fail_per_epoch >= 0.0 &&
              config.node_fail_per_epoch <= 1.0,
          "node failure probability must be in [0, 1]");
  require(config.min_nodes >= 0, "chaos min_nodes must be >= 0");
  require(config.preempt_per_epoch >= 0.0 && config.preempt_per_epoch <= 1.0,
          "preemption probability must be in [0, 1]");
  require(config.preempt_fraction > 0.0 && config.preempt_fraction <= 1.0,
          "preemption fraction must be in (0, 1]");
  require(config.storm_per_epoch >= 0.0 && config.storm_per_epoch <= 1.0,
          "storm probability must be in [0, 1]");
  require(config.storm_multiplier > 0.0, "storm multiplier must be > 0");
  require(config.storm_epochs >= 1, "storms must last >= 1 epoch");
  require(config.flash_k > 0.0, "flash multiplier must be > 0");
  require(config.flash_start_s >= 0.0 && config.flash_spread_s >= 0.0,
          "flash window start/spread must be >= 0");
  require(config.flash_window_s > 0.0, "flash window length must be > 0");
}

ChaosEngine::BarrierPlan ChaosEngine::plan_barrier(int epoch,
                                                   int cluster_nodes) {
  BarrierPlan plan;
  // One rng per barrier, keyed on (root, epoch) alone, consumed in a fixed
  // order regardless of which families are armed — so arming one family
  // never shifts another family's schedule.
  Rng rng(mix(root_, kBarrierStream, static_cast<std::uint64_t>(epoch)));
  const double u_fail = rng.uniform();
  const double u_victim = rng.uniform();
  if (config_.node_failures && u_fail < config_.node_fail_per_epoch &&
      cluster_nodes > config_.min_nodes) {
    plan.failed_nodes.push_back(static_cast<int>(
        u_victim * static_cast<double>(cluster_nodes)) % cluster_nodes);
  }
  for (std::size_t t = 0; t < tenants_; ++t) {
    const double u = rng.uniform();
    if (config_.preemption && u < config_.preempt_per_epoch) {
      plan.preempt_tenants.push_back(t);
    }
  }
  const double u_storm = rng.uniform();
  if (config_.cold_storms) {
    if (storm_remaining_ == 0 && u_storm < config_.storm_per_epoch) {
      storm_remaining_ = config_.storm_epochs;
      plan.storm_started = true;
    }
    if (storm_remaining_ > 0) {
      plan.storm_multiplier = config_.storm_multiplier;
      --storm_remaining_;
    }
  }
  return plan;
}

ArrivalSpec ChaosEngine::apply_flash(std::size_t tenant, ArrivalSpec spec) {
  if (!config_.flash_crowds) return spec;
  // Per-tenant window, keyed on (root, tenant) alone: adding tenants never
  // moves an existing tenant's crowd.
  Rng rng(mix(root_, kFlashStream, tenant));
  const Seconds t0 = config_.flash_start_s +
                     rng.uniform() * config_.flash_spread_s;
  const Seconds t1 = t0 + config_.flash_window_s;
  spec.flash_k = config_.flash_k;
  spec.flash_t0_s = t0;
  spec.flash_t1_s = t1;
  ChaosEvent event;
  event.family = ChaosFamily::FlashCrowd;
  event.epoch = -1;
  event.sim_time = t0;
  event.tenant = static_cast<int>(tenant);
  event.magnitude = config_.flash_k;
  event.until_s = t1;
  log_.push_back(event);
  ++stats_.flash_windows;
  log_debug("chaos: tenant ", tenant, " flash crowd x", config_.flash_k,
            " over [", t0, ", ", t1, ")s");
  return spec;
}

void ChaosEngine::record_failure(int epoch, Seconds sim_time, int node,
                                 int displaced, int stranded) {
  ChaosEvent event;
  event.family = ChaosFamily::NodeFailure;
  event.epoch = epoch;
  event.sim_time = sim_time;
  event.node = node;
  event.pods = displaced;
  event.stranded = stranded;
  log_.push_back(event);
  ++stats_.node_failures;
  stats_.displaced_pods += displaced;
  log_debug("chaos: epoch ", epoch, " node ", node, " failed (", displaced,
            " pods re-packed, ", stranded, " stranded)");
}

void ChaosEngine::record_preemption(int epoch, Seconds sim_time, int tenant,
                                    int pods) {
  ChaosEvent event;
  event.family = ChaosFamily::Preemption;
  event.epoch = epoch;
  event.sim_time = sim_time;
  event.tenant = tenant;
  event.pods = pods;
  log_.push_back(event);
  ++stats_.preemption_bursts;
  stats_.preempted_pods += pods;
  log_debug("chaos: epoch ", epoch, " tenant ", tenant, " preempted ", pods,
            " busy pods");
}

void ChaosEngine::record_storm(int epoch, Seconds sim_time, Seconds until_s) {
  ChaosEvent event;
  event.family = ChaosFamily::ColdStorm;
  event.epoch = epoch;
  event.sim_time = sim_time;
  event.magnitude = config_.storm_multiplier;
  event.until_s = until_s;
  log_.push_back(event);
  ++stats_.storms;
  log_debug("chaos: epoch ", epoch, " cold-start storm x",
            config_.storm_multiplier, " until ", until_s, "s");
}

}  // namespace janus
