// Latency–throughput frontier explorer.
//
// The paper's evaluation reports point latencies at fixed offered loads;
// the question an operator actually asks is "how many req/s can this
// (workload, policy, autoscale/chaos) configuration sustain before the
// SLO breaks?"  explore_frontier answers it by sweeping offered load:
// every operating point copies the template fleet, rescales each tenant's
// arrival process (scale_arrivals — shape-preserving, flash windows
// compose) so the fleet's total mean rate equals the point's, runs the
// full simulation, and records {offered req/s, achieved req/s, SLO-met
// fraction, P50/P99/P999, peak_pending, peak RSS}.
//
// The search borrows mutated's stepped-load idiom (step_size/step_stop):
// a coarse ramp in step_rps increments brackets the knee — the first
// point that misses the SLO-met target — then a fixed-iteration-budget
// bisection pins the max sustainable load inside the bracket.  The whole
// schedule is a pure function of (seed, config): no adaptive stopping on
// measured noise, no wall-clock input, so the knee is bit-identical at
// any shard count, any process count, and across reruns — which is what
// lets bench_frontier gate it in CI as "the knee moved left", a far
// sharper regression signal than wall time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace janus {

struct FrontierConfig {
  /// Template fleet.  Every operating point copies it verbatim — tenants,
  /// policies, epochs, autoscale, chaos — and only rescales the tenants'
  /// arrival specs so the fleet's summed mean rate equals the point's
  /// offered load.
  FleetConfig fleet;
  /// Fraction of requests that must meet their SLO for a point to count
  /// as sustained (SLO-met = 1 - fleet violation rate).  In (0, 1].
  double slo_target = 0.95;
  /// Ramp increment and ceiling in fleet req/s (mutated's
  /// step_size/step_stop): points step_rps, 2*step_rps, ... are run until
  /// the first one misses the target or stop_rps is passed.
  double step_rps = 0.0;  // required > 0
  double stop_rps = 0.0;  // required >= step_rps
  /// Bisection iterations inside the bracketed step.  Fixed budget — the
  /// knee's resolution is step_rps / 2^bisect_iters, and the point
  /// schedule never depends on measured values beyond the pass/fail bit.
  int bisect_iters = 6;
};

enum class FrontierPhase { Ramp, Bisect };
const char* to_string(FrontierPhase phase) noexcept;

/// One operating point of the sweep, in run order.
struct FrontierPoint {
  FrontierPhase phase = FrontierPhase::Ramp;
  /// Offered fleet load (Σ tenant mean rates after scaling), req/s.
  double offered_rps = 0.0;
  /// Completed requests / sim_end_s (the simulated makespan), req/s.
  double achieved_rps = 0.0;
  /// Fraction of requests inside their SLO (1 - fleet violation rate).
  double slo_met = 0.0;
  /// slo_met >= the config's slo_target.
  bool sustained = false;
  Seconds p50_s = 0.0;
  Seconds p99_s = 0.0;
  Seconds p999_s = 0.0;
  Seconds sim_end_s = 0.0;
  // ---- Machine/layout-dependent (reporting only, never compared
  // bit-for-bit — the FleetObs carve-outs).
  std::uint64_t peak_pending = 0;
  long peak_rss_kb = 0;
};

struct FrontierResult {
  double slo_target = 0.0;
  /// The template fleet's own offered load (Σ tenant mean rates) — the
  /// reference every point's scale factor is computed against.
  double base_rps = 0.0;
  /// Every operating point in run order: the ramp first, then bisection.
  std::vector<FrontierPoint> points;
  /// Max offered load that sustained the target — the knee.  0 with
  /// censored_low.
  double knee_rps = 0.0;
  /// Index into `points` of the knee's run (-1 with censored_low).
  int knee_index = -1;
  /// Even the first ramp step missed the target after the bisection
  /// budget: the knee sits below step_rps / 2^bisect_iters.
  bool censored_low = false;
  /// Every ramp point sustained the target: the knee sits at or beyond
  /// stop_rps — rerun with a higher ceiling.
  bool censored_high = false;

  /// Stable machine-readable renderings (the CLI's --json-out/--csv-out
  /// frontier artifacts; both deterministic except the peak_pending and
  /// peak_rss_kb reporting columns).
  std::string to_json() const;
  std::string to_csv() const;
};

/// Runs the sweep.  Deterministic for a fixed (config minus shards minus
/// processes): the point schedule depends only on step/stop/bisect_iters
/// and each point's pass/fail bit, and every point is a run_fleet call —
/// bit-identical at any shard and process count.
FrontierResult explore_frontier(const FrontierConfig& config);

}  // namespace janus
