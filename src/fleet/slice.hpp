// Slice outcomes: the unit of fleet merging.
//
// A "slice" is a contiguous tenant-index range [lo, hi) executed by one
// process.  Every run_fleet execution — single-process, forked multi-
// process (FleetConfig::processes), or a standalone `janus_cli fleet
// --shard-slice` worker — produces FleetSliceOutcome values, and one
// merge path (merge_fleet_slices) assembles them into a FleetResult in
// tenant-index order.  One code path means the multi-process result is
// the in-process result by construction, not by parallel maintenance.
//
// Outcomes are self-contained: they carry the slice bounds, the streaming
// flag, the folded metrics, and the control-plane summary (identical in
// every worker — each reconciles the same full observation matrix), so a
// blob written by one process can be decoded and merged by another with
// nothing but the original FleetConfig.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fleet/control.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "stats/empirical.hpp"
#include "stats/histogram.hpp"

namespace janus {

/// One tenant's folded metrics (kept per tenant only when streaming is
/// off; the streaming path folds straight into the slice aggregates).
struct TenantFold {
  std::uint64_t requests = 0;
  std::uint64_t violations = 0;
  /// Σ per-request cpu_mc.  Every addend is an integer-valued double
  /// (stage sizes are integral millicores), so partial sums re-associate
  /// exactly — per-tenant subtotals folded in any grouping produce the
  /// same bits as one running sum.
  double cpu_sum = 0.0;
  double coresidency = 1.0;
  EmpiricalDistribution e2e;
  Histogram e2e_hist{0.0, 1.0, 1};
};

struct FleetSliceOutcome {
  std::size_t lo = 0;
  std::size_t hi = 0;
  bool stream = false;
  std::uint64_t fleet_seed = 0;  // cross-check against the merging config

  // Slice aggregates (always filled; exact under re-association).
  std::uint64_t requests_total = 0;
  std::uint64_t violations_total = 0;
  double cpu_total = 0.0;
  /// Streaming latency summary: per-request e2e folded into the fleet
  /// histogram layout as tenants complete (integer counts — the merge is
  /// exactly commutative/associative, so fold order cannot show through).
  Histogram slice_hist{0.0, 1.0, 1};
  /// Per-tenant folds, hi - lo entries; empty when `stream`.
  std::vector<TenantFold> tenants;

  /// Simulated time of the slice's last executed event — the makespan the
  /// frontier's achieved-rps accounting divides by.  Each tenant's event
  /// times are independent of engine grouping, so the fleet-wide max is
  /// bit-identical at any shard/process/wave layout (unlike peak_pending).
  Seconds sim_end_s = 0.0;

  ObsCounters counters;
  std::vector<SpanRecord> spans;        // slice tenants, tenant order
  std::vector<TimelineRow> timeline;    // slice tenants, (epoch, t, s) order
  std::uint64_t events_executed = 0;
  std::uint64_t peak_pending = 0;       // machine/layout-dependent

  // Control-plane summary — identical across slices of one run.
  int epochs = 0;
  int final_nodes = 0;
  double cluster_utilization = 0.0;
  int overcommitted_pods = 0;
  std::vector<EpochSnapshot> epoch_log;
};

/// Binary round trip via the src/stats codec (versioned envelope; doubles
/// travel as IEEE bit patterns, so decode(encode(x)) == x bit-for-bit).
std::vector<std::uint8_t> encode_slice(const FleetSliceOutcome& s);
FleetSliceOutcome decode_slice(const std::uint8_t* data, std::size_t size);
inline FleetSliceOutcome decode_slice(const std::vector<std::uint8_t>& b) {
  return decode_slice(b.data(), b.size());
}

}  // namespace janus
