// Sharded multi-tenant fleet simulator.
//
// Runs N tenant workloads concurrently: tenants are dealt round-robin
// across S shards, each shard owns one deterministic SimEngine driven on
// the shared ThreadPool, and every tenant's randomness derives from the
// fleet seed and its tenant index alone — so fleet results are
// bit-identical regardless of the shard count.
//
// Each tenant sizes its stages with a pluggable policy (fleet/policies):
// the default "fixed" allocation, or any of the paper's §V systems —
// Janus variants, ORION, GrandSLAM, mean-based, Optimal — so policy mixes
// can be compared under shared-cluster contention.  Hints tables and
// profiles are synthesized once per (workload, policy) by a PolicyCatalog
// and shared read-only across tenants and shards.
//
// Tenants contend through a shared ClusterCapacity driven by the epoch
// control plane (fleet/control): the plan-time packing seeds each stage's
// pod group from Little's law at the policy's plan allocation, and — when
// epoch_s is finite — every epoch
// all shards pause at a reconciliation barrier, publish the pod counts
// their Platforms actually ran, and receive the repacked (and possibly
// autoscaled) co-residency back through live EpochFeeds, so interference
// draws shift mid-run.  epoch_s = kNoEpochs freezes the plan packing: the
// old static pipeline as a one-epoch special case of the same code.
// Fleet-wide metrics (latency distribution, histogram, SLO violation rate,
// CPU cost) fold per-tenant results with EmpiricalDistribution::merge and
// Histogram::merge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "fleet/arrivals.hpp"
#include "fleet/chaos.hpp"
#include "fleet/cluster.hpp"
#include "fleet/control.hpp"
#include "fleet/policies.hpp"
#include "fleet/slice.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "stats/histogram.hpp"

namespace janus {

struct TenantSpec {
  std::string name;
  std::string workload = "ia";  // "ia" | "va"
  /// Open-loop arrival process (rate must be > 0; the fleet has no
  /// closed-loop tenants — provider traffic does not wait politely).
  ArrivalSpec arrivals{};
  int requests = 1000;
  /// End-to-end SLO; 0 = the workload's default at `concurrency`.
  Seconds slo = 0.0;
  Concurrency concurrency = 1;
  /// Sizing policy by catalog name (fleet_policy_names()): "fixed" (the
  /// default, reproducing the PR 2-4 fixed-allocation fleet bit-for-bit),
  /// "janus"/"janus-"/"janus+", "orion", "grandslam"/"grandslam+",
  /// "mean_based", or "optimal".  Unknown names fail run_fleet up front.
  std::string policy = "fixed";
  /// Per-stage allocation of the "fixed" policy (ignored by the others).
  Millicores size_mc = 1800;
  /// > 0 makes the tenant's allocations react *directly* to the epoch
  /// control plane: the policy's size is scaled by
  /// 1 + alpha * (live stage co-residency - 1), clamped to Kmax (see
  /// ContentionAwarePolicy).  0 (default) leaves the policy untouched.
  double contention_alpha = 0.0;
};

struct FleetConfig {
  std::vector<TenantSpec> tenants;
  int shards = 1;
  /// Worker *processes*: > 1 forks workers, each owning a contiguous slice
  /// of tenants with its own `shards` engines.  Barriers synchronize over
  /// pipes (every worker reconciles the identical full observation
  /// matrix), and slice outcomes merge in tenant-index order — results are
  /// bit-identical to processes = 1.  Requires chaos off (chaos preemption
  /// mutates platforms across the whole fleet at a barrier).
  int processes = 1;
  /// Streaming merge: fold each tenant's metrics into the slice
  /// accumulator the moment it completes and release its request log,
  /// platform, and policy — memory stays O(active tenants) instead of
  /// O(total requests).  The cost is per-tenant reporting: no TenantResult
  /// rows, fleet_e2e stays empty, and fleet p50/p99 come from the merged
  /// histogram (Histogram::percentile) rather than exact order statistics.
  /// Requires span tracing and chaos off.  The epoch audit trail, counter
  /// set, and scalar fleet metrics are bit-identical to the default path.
  bool stream_metrics = false;
  std::uint64_t seed = 2026;
  ClusterConfig cluster{};
  /// Per-tenant platform template (each tenant gets its own Platform so
  /// shards never share mutable simulator state).
  PlatformConfig platform{};
  /// Fleet-wide latency histogram layout; every tenant uses the same
  /// layout so the histograms merge exactly.
  double hist_max_s = 10.0;
  std::size_t hist_bins = 50;
  /// Simulated seconds between cross-shard reconciliation barriers; the
  /// default (kNoEpochs = infinity) freezes the plan-time packing — the
  /// pre-control-plane static pipeline as a one-epoch special case.
  Seconds epoch_s = kNoEpochs;
  /// Node-pool autoscaler (acts at epoch barriers; inert without them).
  AutoscaleConfig autoscale{};
  /// Offline-synthesis knobs for the per-tenant sizing policies (profile
  /// samples, Janus budget grid); only consulted when `catalog` is null.
  PolicyCatalogConfig policy_catalog{};
  /// Optional caller-owned catalog shared across run_fleet calls so a
  /// shard sweep pays the (workload, policy) synthesis cost once; null =
  /// build a private one.  The catalog's caches do not affect results,
  /// only the time spent building them.
  PolicyCatalog* catalog = nullptr;
  /// Observability plane (span tracing, epoch timeline, sampling, ring
  /// sizing).  Off by default: the hot-path hooks then cost one
  /// never-taken null-pointer branch per event.  Everything recorded is
  /// deterministic — see FleetObs for the machine-dependent carve-outs.
  ObsConfig obs{};
  /// Deterministic chaos engine (fleet/chaos): node failures, preemption,
  /// cold-start storms, flash crowds.  All families off (the default)
  /// takes zero different branches from a chaos-free build; the barrier
  /// families require a finite epoch_s.
  ChaosConfig chaos{};
};

struct TenantResult {
  std::string name;
  std::string workload;
  std::string policy;
  ArrivalKind arrivals = ArrivalKind::Poisson;
  int requests = 0;
  Seconds slo = 0.0;
  double violation_rate = 0.0;
  double mean_cpu_mc = 0.0;
  double e2e_p50 = 0.0;
  double e2e_p99 = 0.0;
  /// Mean same-function co-residency across the tenant's stages, from the
  /// cluster packing (>= 1; higher means more interference).
  double coresidency = 1.0;
  EmpiricalDistribution e2e;
  Histogram e2e_hist{0.0, 1.0, 1};
};

/// The run's observability record.  Split by determinism class:
/// `counters`, `spans`, `timeline`, and `events_executed` are pure
/// functions of (seed, config) — merged in tenant-index order and
/// bit-identical at any shard count — while `phases` (wall-clock) and
/// `peak_pending` (calendar occupancy, which depends on which tenants
/// share a shard) are machine/layout-dependent, the same carve-out
/// FleetResult makes for wall_seconds.
struct FleetObs {
  ObsCounters counters;
  /// Sampled spans, drained from the per-tenant rings in tenant order
  /// (empty unless FleetConfig::obs.trace).
  std::vector<SpanRecord> spans;
  /// One row per (barrier, tenant, stage) (empty unless obs.timeline).
  std::vector<TimelineRow> timeline;
  /// Σ events executed across shard engines (a per-tenant sum, so it is
  /// shard-independent).
  std::uint64_t events_executed = 0;
  // ---- Machine-dependent (reporting only, never compared bit-for-bit).
  /// Wall-clock breakdown of run_fleet: plan / simulate / reconcile /
  /// merge, in first-entry order.
  std::vector<PhaseProfiler::Phase> phases;
  /// Max calendar occupancy across shard engines (0 when obs is off).
  std::uint64_t peak_pending = 0;
};

struct FleetResult {
  std::vector<TenantResult> tenants;
  /// Merged across tenants (in tenant order, so the fold is reproducible).
  EmpiricalDistribution fleet_e2e;
  Histogram fleet_hist{0.0, 1.0, 1};
  std::size_t total_requests = 0;
  double fleet_violation_rate = 0.0;
  double fleet_mean_cpu_mc = 0.0;
  double fleet_p50 = 0.0;
  double fleet_p99 = 0.0;
  /// Simulated time of the fleet's last executed event (the makespan).
  /// Deterministic and shard/process-independent, unlike wall_seconds —
  /// achieved throughput is total_requests / sim_end_s.
  Seconds sim_end_s = 0.0;
  double cluster_utilization = 0.0;
  int overcommitted_pods = 0;
  int shards = 0;
  int processes = 1;
  /// True when the run used the streaming merge (FleetConfig); per-tenant
  /// rows are then absent and p50/p99 are histogram-interpolated.
  bool streamed = false;
  // ---- Control plane (all deterministic; part of the bit-identical set).
  /// Reconciliation barriers that ran (0 on the static path).
  int epochs = 0;
  int final_nodes = 0;
  int nodes_added = 0;
  int nodes_removed = 0;
  /// Per-barrier audit trail (empty on the static path).
  std::vector<EpochSnapshot> epoch_log;
  // ---- Chaos (deterministic; part of the bit-identical set). ----
  /// True when any chaos family was armed for this run.
  bool chaos_enabled = false;
  /// Aggregate chaos tallies (all zeros when chaos is off).
  ChaosStats chaos;
  /// Every injected event in injection order (flash windows first — they
  /// are scheduled at plan time — then barrier events by epoch).
  std::vector<ChaosEvent> chaos_log;
  /// Wall-clock of the shard execution (not part of the deterministic
  /// metric set — machine-dependent, like obs.phases).
  double wall_seconds = 0.0;
  /// Observability record (always carries phases + events_executed; spans
  /// and timeline fill in when the matching FleetConfig::obs pillar is on).
  FleetObs obs;

  /// Stable machine-readable rendering (for `janus_cli fleet --json` and
  /// the fleet benches).
  std::string to_json() const;
};

/// Runs the whole fleet; deterministic for a fixed (config minus shards
/// minus processes) at any shard and process count.  Shards execute on an
/// internally owned ThreadPool; processes > 1 forks workers that each run
/// a tenant slice and return outcomes over pipes (see FleetConfig).
FleetResult run_fleet(const FleetConfig& config);

/// Executes tenants [lo, hi) of `config` in this process and returns the
/// slice outcome — the worker half of the file-based sharding path
/// (`janus_cli fleet --shard-slice LO:HI --result-bin FILE`).  Plans the
/// whole fleet (the plan is a pure function of the config, so every slice
/// process derives the identical packing) but simulates only the slice.
/// Restricted to the static path (epoch_s == kNoEpochs): live barriers
/// need the coordination channel only run_fleet's fork path provides.
FleetSliceOutcome run_fleet_slice(const FleetConfig& config, std::size_t lo,
                                  std::size_t hi);

/// Merges slice outcomes (contiguous, covering every tenant exactly once)
/// into a FleetResult, folding in tenant-index order — the single merge
/// path shared by run_fleet itself, its forked workers' blobs, and
/// `janus_cli fleet --merge-slices`.  Bit-identical to an in-process run
/// of the same config.
FleetResult merge_fleet_slices(const FleetConfig& config,
                               std::vector<FleetSliceOutcome> slices);

/// Deterministic heterogeneous tenant catalog used by the CLI and the
/// fleet benches: alternates IA/VA, staggers rates around `base_rate`,
/// and — when `mixed_kinds` — cycles Poisson/MMPP/diurnal arrivals.
/// `policies`, when non-empty, is dealt round-robin over the tenants
/// (tenant i gets policies[i % size]); every name must be a catalog
/// policy (fleet_policy_names()), validated here so front ends get the
/// one-line unknown-policy error before any simulation work starts.
std::vector<TenantSpec> make_tenant_mix(
    int tenants, int requests_each, double base_rate, ArrivalKind kind,
    bool mixed_kinds, const std::vector<std::string>& policies = {});

}  // namespace janus
