#include "fleet/policies.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iterator>
#include <utility>

#include "adapter/adapter.hpp"
#include "common/log.hpp"
#include "policy/early_binding.hpp"
#include "policy/janus_policy.hpp"
#include "policy/mean_based.hpp"
#include "policy/optimal.hpp"
#include "policy/orion.hpp"
#include "profiler/profiler.hpp"

namespace janus {

namespace {

/// Catalog names in the order error messages list them.
const char* const kPolicyNames[] = {"fixed",      "janus",     "janus-",
                                    "janus+",     "orion",     "grandslam",
                                    "grandslam+", "mean_based", "optimal"};

Exploration exploration_of(const std::string& name) {
  if (name == "janus-") return Exploration::FixedP99;
  if (name == "janus+") return Exploration::HeadAndNext;
  return Exploration::HeadOnly;
}

/// Neutral request draw (ws = 1, interference = 1) for plan-time probing
/// of late-binding policies.
RequestDraw neutral_draw(std::size_t stages) {
  RequestDraw draw;
  draw.ws.assign(stages, 1.0);
  draw.interference.assign(stages, 1.0);
  return draw;
}

}  // namespace

const std::vector<std::string>& fleet_policy_names() {
  static const std::vector<std::string> names(std::begin(kPolicyNames),
                                              std::end(kPolicyNames));
  return names;
}

bool is_fleet_policy(const std::string& name) noexcept {
  for (const auto& known : fleet_policy_names()) {
    if (known == name) return true;
  }
  return false;
}

std::string fleet_policy_list() {
  std::string out;
  for (const auto& name : fleet_policy_names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

void require_fleet_policy(const std::string& name) {
  if (!is_fleet_policy(name)) {
    throw_invalid("unknown sizing policy '" + name +
                  "' (valid: " + fleet_policy_list() + ")");
  }
}

PolicyCatalog::PolicyCatalog(PolicyCatalogConfig config) : config_(config) {
  require(config_.profile_samples > 0, "catalog needs >= 1 profile sample");
  require(config_.budget_step > 0, "catalog budget step must be > 0");
  require(config_.kmin > 0 && config_.kmax >= config_.kmin &&
              config_.kstep > 0,
          "catalog millicore grid is degenerate");
}

const std::vector<LatencyProfile>& PolicyCatalog::profiles(
    const WorkloadSpec& workload, Concurrency conc) {
  const auto key = std::make_pair(workload.name, conc);
  auto it = profiles_.find(key);
  if (it != profiles_.end()) return it->second;
  ProfilerConfig prof = default_profiler_config(workload);
  prof.grid.kmin = config_.kmin;
  prof.grid.kmax = config_.kmax;
  prof.grid.kstep = config_.kstep;
  prof.grid.concurrencies = {conc};
  prof.samples_per_point = config_.profile_samples;
  ++stats_.profiles_built;
  log_info("catalog: profiling workload '", workload.name, "' @conc=", conc,
           " (", config_.profile_samples, " samples/point)");
  return profiles_
      .emplace(key, profile_workload(workload, prof))
      .first->second;
}

std::string hints_bundle_filename(const std::string& workload,
                                  Concurrency conc, Exploration exploration,
                                  std::size_t suffix) {
  return workload + "_c" + std::to_string(conc) + "_" +
         to_string(exploration) + "_suffix" + std::to_string(suffix) +
         ".csv";
}

std::shared_ptr<const HintsBundle> PolicyCatalog::bundle(
    const WorkloadSpec& workload, Concurrency conc, Exploration exploration) {
  const auto key =
      std::make_tuple(workload.name, conc, static_cast<int>(exploration));
  auto it = bundles_.find(key);
  if (it != bundles_.end()) return it->second;
  if (!config_.hints_dir.empty()) {
    // Cross-process reuse: committed tables (canonical filenames) replace
    // synthesis.  The CSV round trip is exact, so a loaded bundle is the
    // synthesized bundle bit-for-bit.
    std::vector<HintsTable> tables;
    for (std::size_t j = 0;; ++j) {
      std::ifstream in(config_.hints_dir + "/" +
                           hints_bundle_filename(workload.name, conc,
                                                 exploration, j),
                       std::ios::binary);
      if (!in) break;
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      tables.push_back(HintsTable::from_csv(text));
    }
    if (!tables.empty()) {
      if (tables.size() != workload.chain_models().size()) {
        throw_invalid("hints dir holds a partial bundle for workload '" +
                      workload.name + "' (one CSV per suffix required)");
      }
      ++stats_.bundles_loaded;
      log_info("catalog: loaded hints for workload '", workload.name,
               "' @conc=", conc, " from ", config_.hints_dir);
      // janus-lint: allow(mutable-hints-bundle) construction staging only —
      // frozen into a shared_ptr<const HintsBundle> two lines down.
      HintsBundle loaded;
      loaded.suffix_tables = std::move(tables);
      loaded.concurrency = conc;
      auto built = std::make_shared<const HintsBundle>(std::move(loaded));
      return bundles_.emplace(key, std::move(built)).first->second;
    }
  }
  SynthesisConfig synth;
  synth.kmin = config_.kmin;
  synth.kmax = config_.kmax;
  synth.kstep = config_.kstep;
  synth.concurrency = conc;
  synth.exploration = exploration;
  // Janus+ sweeps (p, k) x (p, k); a coarser budget grid keeps it
  // tractable (same trade bench_util.hpp makes for the paper benches).
  synth.budget_step = exploration == Exploration::HeadAndNext
                          ? std::max<BudgetMs>(config_.budget_step, 5)
                          : config_.budget_step;
  ++stats_.bundles_built;
  log_info("catalog: synthesizing hints for workload '", workload.name,
           "' @conc=", conc, " exploration=", static_cast<int>(exploration));
  auto built = std::make_shared<const HintsBundle>(
      synthesize_bundle(profiles(workload, conc), synth));
  return bundles_.emplace(key, std::move(built)).first->second;
}

EarlyBindingInputs PolicyCatalog::early_inputs(const WorkloadSpec& workload,
                                               Seconds slo, Concurrency conc) {
  EarlyBindingInputs in;
  in.profiles = &profiles(workload, conc);
  in.slo = slo;
  in.concurrency = conc;
  in.kmin = config_.kmin;
  in.kmax = config_.kmax;
  in.kstep = config_.kstep;
  return in;
}

const std::vector<Millicores>& PolicyCatalog::orion(
    const WorkloadSpec& workload, Seconds slo, Concurrency conc) {
  const auto key = std::make_tuple(workload.name, conc, slo);
  auto it = orion_.find(key);
  if (it != orion_.end()) return it->second;
  ++stats_.orion_solved;
  return orion_.emplace(key, orion_sizes(early_inputs(workload, slo, conc)))
      .first->second;
}

std::unique_ptr<SizingPolicy> PolicyCatalog::make_policy(
    const std::string& name, const WorkloadSpec& workload, Seconds slo,
    Concurrency conc, Millicores fixed_mc) {
  const std::size_t stages = workload.chain_models().size();
  if (name == "fixed") {
    require(fixed_mc > 0, "fixed policy needs a positive allocation");
    return std::make_unique<FixedSizingPolicy>(
        "fixed", std::vector<Millicores>(stages, fixed_mc));
  }
  if (name == "janus" || name == "janus-" || name == "janus+") {
    AdapterConfig adapter_config;
    adapter_config.kmax = config_.kmax;
    return std::make_unique<JanusPolicy>(
        janus_variant_name(exploration_of(name)),
        Adapter(bundle(workload, conc, exploration_of(name)), adapter_config),
        slo, config_.janus_safety_margin);
  }
  if (name == "orion") {
    return std::make_unique<FixedSizingPolicy>("ORION",
                                               orion(workload, slo, conc));
  }
  if (name == "grandslam" || name == "grandslam+") {
    const EarlyBindingInputs in = early_inputs(workload, slo, conc);
    return name == "grandslam" ? make_grandslam(in) : make_grandslam_plus(in);
  }
  if (name == "mean_based") {
    return make_mean_based(profiles(workload, conc), slo, conc, config_.kmin,
                           config_.kmax, config_.kstep);
  }
  if (name == "optimal") {
    OptimalInputs in;
    in.models = workload.chain_models();
    in.slo = slo;
    in.concurrency = conc;
    in.kmin = config_.kmin;
    in.kmax = config_.kmax;
    return make_optimal(std::move(in));
  }
  require_fleet_policy(name);
  // Registered but without a construction branch above: a catalog bug,
  // not a caller error.
  throw_invalid("sizing policy '" + name + "' is registered but has no "
                "constructor in PolicyCatalog::make_policy");
}

std::vector<Millicores> PolicyCatalog::plan_sizes(const std::string& name,
                                                  const WorkloadSpec& workload,
                                                  Seconds slo,
                                                  Concurrency conc,
                                                  Millicores fixed_mc) {
  const auto models = workload.chain_models();
  const std::size_t stages = models.size();
  if (name == "fixed") {
    require(fixed_mc > 0, "fixed policy needs a positive allocation");
    return std::vector<Millicores>(stages, fixed_mc);
  }
  if (name == "orion") return orion(workload, slo, conc);
  if (name == "grandslam" || name == "grandslam+") {
    const EarlyBindingInputs in = early_inputs(workload, slo, conc);
    return name == "grandslam" ? grandslam_sizes(in)
                               : grandslam_plus_sizes(in);
  }
  // Late-binding policies: walk the chain once at mean conditions (ws = 1,
  // interference = 1), advancing elapsed time with the model's mean
  // latency at each chosen size.  Pure function of the catalog artifacts,
  // so packing stays shard-independent.
  auto policy = make_policy(name, workload, slo, conc, fixed_mc);
  const RequestDraw draw = neutral_draw(stages);
  std::vector<Millicores> sizes;
  sizes.reserve(stages);
  Seconds elapsed = 0.0;
  for (std::size_t s = 0; s < stages; ++s) {
    const Millicores k = policy->size_for_stage(s, elapsed, draw);
    sizes.push_back(k);
    elapsed += models[s].exec_time(k, conc, 1.0, 1.0);
  }
  return sizes;
}

ContentionAwarePolicy::ContentionAwarePolicy(
    std::unique_ptr<SizingPolicy> base, const CoLocationProvider& feed,
    double alpha, Millicores kmax)
    : base_(std::move(base)), feed_(&feed), alpha_(alpha), kmax_(kmax) {
  require(base_ != nullptr, "contention-aware policy needs a base policy");
  require(alpha_ >= 0.0, "contention alpha must be >= 0");
  require(kmax_ > 0, "kmax must be > 0");
}

Millicores ContentionAwarePolicy::size_for_stage(std::size_t stage,
                                                 Seconds elapsed,
                                                 const RequestDraw& draw) {
  const Millicores base = base_->size_for_stage(stage, elapsed, draw);
  const double coresidency =
      std::max(1.0, feed_->stage_distribution(stage).mean());
  const double scaled =
      static_cast<double>(base) * (1.0 + alpha_ * (coresidency - 1.0));
  const auto bumped = static_cast<Millicores>(std::lround(scaled));
  // Growth saturates at kmax, but the decorator never *shrinks* the base
  // policy's allocation — a base already past kmax stays as-is (zero
  // contention must be a no-op for any base).
  return std::max(base, std::min(kmax_, bumped));
}

}  // namespace janus
