// Pluggable open-loop load generation.
//
// An ArrivalProcess turns a deterministic Rng stream into a monotone
// sequence of absolute request arrival times.  Three processes cover the
// fleet's traffic shapes:
//
//   * Poisson  — memoryless arrivals at a constant rate (the paper's
//     open-loop measurement setup; `RunConfig::open_loop_rate` semantics).
//   * MMPP     — a 2-state Markov-modulated Poisson process alternating
//     between a base and a burst rate, with exponentially distributed
//     dwell times (bursty tenant traffic).
//   * Diurnal  — a sinusoidal rate curve sampled by Lewis-Shedler
//     thinning (slow daily load swing).
//   * Trace    — deterministic replay of a recorded inter-arrival vector
//     (synthesized by model/trace_synth or loaded from a CSV), looping
//     when requests outnumber samples, so fleet tenants can follow
//     recorded production rhythms instead of parametric processes.
//
// The split between arrival process, service model, and measurement follows
// load-generator practice (cf. mutated's generator/config separation): the
// process owns *when* requests arrive and nothing else.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace janus {

enum class ArrivalKind { Poisson, Mmpp, Diurnal, Trace };

const char* to_string(ArrivalKind kind) noexcept;

/// Parses "poisson" | "mmpp" | "diurnal" (throws on anything else).
ArrivalKind arrival_kind_from_string(const std::string& name);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::Poisson;
  /// Base rate in requests/s (> 0).  Poisson: the rate; MMPP: the
  /// non-burst rate; Diurnal: the mean of the rate curve.
  double rate = 10.0;
  // --- MMPP ---
  /// Rate while bursting (>= rate).
  double burst_rate = 50.0;
  /// Mean dwell times of the base and burst states, seconds (> 0).
  Seconds base_dwell_s = 20.0;
  Seconds burst_dwell_s = 2.0;
  // --- Diurnal ---
  /// Period of the rate curve, seconds (> 0).
  Seconds period_s = 600.0;
  /// Peak-to-mean swing in [0, 1]: rate(t) = rate * (1 + a sin(2πt/T)).
  double amplitude = 0.5;
  // --- Trace ---
  /// Inter-arrival gaps in seconds, replayed in order and looped
  /// deterministically when requests outnumber samples.  All gaps must be
  /// > 0 (arrival sequences are strictly monotone); `rate` is ignored —
  /// the trace defines its own rate.
  std::vector<Seconds> trace_gaps{};
  // --- Flash crowd (composable with every kind) ---
  /// Rate multiplier over the scheduled window [flash_t0_s, flash_t1_s):
  /// 1 (the default) disables the window.  Implemented as a deterministic
  /// time warp around the base process, so the window composes with
  /// Poisson/MMPP/Diurnal/Trace alike and inside it the instantaneous
  /// rate is exactly K x the base process's.  Must be > 0 (K < 1 models a
  /// brown-out instead of a crowd); when != 1 the window must satisfy
  /// 0 <= flash_t0_s < flash_t1_s.
  double flash_k = 1.0;
  Seconds flash_t0_s = 0.0;
  Seconds flash_t1_s = 0.0;

  /// Long-run mean arrival rate of the process (used for capacity
  /// planning, e.g. the fleet's pod estimates).  Deliberately excludes the
  /// flash window: a flash crowd is a transient the capacity plan does not
  /// see coming — that blindness is what the chaos benches measure.
  double mean_rate() const;

  /// True when a flash window is armed (flash_k != 1).
  bool has_flash() const noexcept { return flash_k != 1.0; }
};

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual ArrivalKind kind() const noexcept = 0;
  /// Absolute time of the next arrival after `now`.  Successive calls with
  /// the previous return value generate the arrival sequence; all
  /// randomness comes from `rng`, so a fixed seed fixes the sequence.
  virtual Seconds next(Seconds now, Rng& rng) = 0;
};

/// Builds the process described by `spec` (validates the spec).
std::unique_ptr<ArrivalProcess> make_arrivals(const ArrivalSpec& spec);

/// Returns `spec` with its long-run offered rate scaled by `factor` (> 0)
/// and its *shape* untouched — the frontier explorer's one knob:
///
///   * Poisson/Diurnal: rate is multiplied (period and amplitude stay).
///   * MMPP: both state rates are multiplied; the dwell times stay, so the
///     burst structure keeps its footprint on the absolute time axis and
///     mean_rate() scales exactly (it is a dwell-weighted average of the
///     two rates).
///   * Trace: every inter-arrival gap is divided by `factor`.
///   * Flash windows pass through unchanged: the multiplier composes with
///     the warp, exactly as flash_k composes with every base kind.
///
/// mean_rate() scales by `factor` up to FP rounding for every kind; with a
/// power-of-two factor the per-gap scaling is IEEE-exact, which is what
/// the frontier determinism tests pin.
ArrivalSpec scale_arrivals(const ArrivalSpec& spec, double factor);

}  // namespace janus
