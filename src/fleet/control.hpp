// Epoch-based fleet control plane.
//
// Replaces the plan-once cluster snapshot with a closed loop between what
// the shards' Platforms actually ran and the co-residency the interference
// draws see:
//
//   every epoch_s of simulated time, all shards pause at a barrier and
//   publish, per (tenant, stage), the peak number of concurrently busy
//   pods their Platform observed; the control plane merges the
//   observations in tenant-index order, resizes each stage's pod group on
//   the shared ClusterCapacity (autoscaling the node pool as it goes), and
//   broadcasts the new per-stage co-residency through each tenant's
//   EpochFeed.
//
// Determinism contract: a tenant's simulation between barriers is a pure
// function of its own seed and the feed state (never of shard layout), so
// the observations — and therefore the merged epoch state — are a pure
// function of (epoch index, fleet seed, tenant set).  Fleet metrics stay
// bit-identical at any shard count, with the control loop running.
//
// epoch_s = infinity is the plan-once special case: the feed freezes at
// the Little's-law plan packing and the runner pre-draws from it, which
// reproduces the static pipeline exactly.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <vector>

#include "common/types.hpp"
#include "fleet/cluster.hpp"
#include "model/interference.hpp"

namespace janus {

/// "Never reconcile": the plan-once static path.
inline constexpr Seconds kNoEpochs = std::numeric_limits<Seconds>::infinity();

struct ControlConfig {
  /// Simulated seconds between reconciliation barriers; kNoEpochs (the
  /// default) disables the loop and freezes the plan-time packing.
  Seconds epoch_s = kNoEpochs;
  AutoscaleConfig autoscale{};
};

/// What chaos injected at one barrier (all zeros / 1.0 when the chaos
/// engine is off or idle this epoch) — carried on the snapshot so the
/// audit trail and the obs timeline can attribute disturbances.
struct EpochChaos {
  int failed_nodes = 0;
  int displaced_pods = 0;   // evicted by failures and re-packed
  int stranded_pods = 0;    // evicted and droppable nowhere
  int preempted_pods = 0;   // busy pods killed across victim tenants
  /// Startup multiplier in force for the next epoch (1 = calm).
  double storm_multiplier = 1.0;
};

/// One reconciliation barrier's outcome (the deterministic audit trail —
/// compared bit-for-bit across shard counts by the tests and benches).
struct EpochSnapshot {
  int epoch = 0;
  Seconds sim_time = 0.0;
  int nodes = 0;
  int pending_nodes = 0;
  double utilization = 0.0;
  int nodes_ordered = 0;
  int nodes_added = 0;
  int nodes_removed = 0;
  int groups_resized = 0;
  int displaced_pods = 0;
  EpochChaos chaos{};
};

/// Per-tenant co-location source, updated by the control plane at each
/// barrier and read by the tenant's serve_workload stage launches.  Writes
/// and reads never overlap: shards only run between barriers, and the
/// ThreadPool's dispatch/join orders the accesses.
class EpochFeed final : public CoLocationProvider {
 public:
  EpochFeed(std::size_t stages, bool live) : per_stage_(stages), live_(live) {}

  CoLocationDistribution stage_distribution(std::size_t stage) const override {
    require(stage < per_stage_.size(),
            "epoch feed does not cover this chain stage");
    return per_stage_[stage];
  }
  std::size_t stages() const noexcept override { return per_stage_.size(); }
  bool live() const noexcept override { return live_; }

  void set_stage(std::size_t stage, CoLocationDistribution dist);

 private:
  std::vector<CoLocationDistribution> per_stage_;
  bool live_ = false;
};

class ControlPlane {
 public:
  ControlPlane(ClusterConfig cluster, ControlConfig config);

  bool live() const noexcept { return config_.epoch_s != kNoEpochs; }
  Seconds epoch_s() const noexcept { return config_.epoch_s; }

  /// Plan-time registration: places `stage_pods[s]` pods of
  /// `stage_mc[s]` millicores for each stage (the Little's-law pod count
  /// at the tenant policy's plan allocation — per-stage, because sizing
  /// policies allocate stages differently) and returns the tenant's feed,
  /// initialized to the plan packing.  The reference stays valid for the
  /// ControlPlane's lifetime.
  EpochFeed& plan_tenant(const std::vector<int>& stage_pods,
                         const std::vector<Millicores>& stage_mc);

  /// One reconciliation barrier at simulated time `sim_time`:
  /// `observed[t][s]` is tenant t's stage-s pod demand (peak busy pods
  /// this epoch; clamped to >= 1 — an idle stage still keeps one pod
  /// warm).  Merges in tenant-index order, autoscales, rebroadcasts.
  /// `chaos` is what the chaos engine injected just before this barrier
  /// (defaults to calm), recorded on the snapshot.
  void reconcile(Seconds sim_time,
                 const std::vector<std::vector<int>>& observed,
                 const EpochChaos& chaos = {});

  /// Chaos injection: fails cluster node `node` outright (pods evicted,
  /// re-packed in group-id order, stranded when nothing can take them) and
  /// rebroadcasts every tenant's post-failure co-residency — so
  /// contention-aware policies see the crowding the failure created even
  /// before the next reconcile.  Returns what happened to the node's pods.
  ClusterCapacity::RemoveOutcome inject_node_failure(int node);

  std::size_t tenants() const noexcept { return tenants_.size(); }
  /// Tenant's current mean co-residency across stages (reporting).
  double tenant_coresidency(std::size_t tenant) const;
  /// Cluster group id backing (tenant, stage) — lets the observability
  /// timeline read the group's post-reconcile allocation and placement.
  int tenant_group(std::size_t tenant, std::size_t stage) const;

  const ClusterCapacity& cluster() const noexcept { return cluster_; }
  int epochs_run() const noexcept { return static_cast<int>(history_.size()); }
  const std::vector<EpochSnapshot>& history() const noexcept {
    return history_;
  }

 private:
  struct TenantGroups {
    std::vector<int> group_ids;  // one cluster group per chain stage
  };

  /// Pushes the current packing of tenant t into its feed.
  void broadcast(std::size_t tenant);

  ClusterCapacity cluster_;
  ControlConfig config_;
  std::deque<EpochFeed> feeds_;  // deque: stable addresses across growth
  std::vector<TenantGroups> tenants_;
  std::vector<EpochSnapshot> history_;
};

}  // namespace janus
