#include "fleet/control.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace janus {

void EpochFeed::set_stage(std::size_t stage, CoLocationDistribution dist) {
  require(stage < per_stage_.size(),
          "epoch feed does not cover this chain stage");
  per_stage_[stage] = std::move(dist);
}

ControlPlane::ControlPlane(ClusterConfig cluster, ControlConfig config)
    : cluster_(cluster), config_(config) {
  require(config.epoch_s > 0.0, "epoch length must be > 0 (or kNoEpochs)");
}

EpochFeed& ControlPlane::plan_tenant(const std::vector<int>& stage_pods,
                                     const std::vector<Millicores>& stage_mc) {
  require(!stage_pods.empty(), "tenant needs >= 1 chain stage");
  require(stage_pods.size() == stage_mc.size(),
          "plan needs one pod size per chain stage");
  TenantGroups groups;
  groups.group_ids.reserve(stage_pods.size());
  for (std::size_t s = 0; s < stage_pods.size(); ++s) {
    groups.group_ids.push_back(cluster_.add_group(stage_pods[s], stage_mc[s]));
  }
  tenants_.push_back(std::move(groups));
  feeds_.emplace_back(stage_pods.size(), live());
  broadcast(tenants_.size() - 1);
  return feeds_.back();
}

void ControlPlane::broadcast(std::size_t tenant) {
  const TenantGroups& groups = tenants_[tenant];
  EpochFeed& feed = feeds_[tenant];
  for (std::size_t s = 0; s < groups.group_ids.size(); ++s) {
    feed.set_stage(s, CoLocationDistribution::concentrated(
                          cluster_.group_coresidency(groups.group_ids[s])));
  }
}

ClusterCapacity::RemoveOutcome ControlPlane::inject_node_failure(int node) {
  const ClusterCapacity::RemoveOutcome out = cluster_.fail_node(node);
  // Rebroadcast immediately: the failure just concentrated surviving pods,
  // and the feeds must reflect that even if no reconcile follows (tests
  // drive this standalone; run_fleet reconciles right after anyway).
  for (std::size_t t = 0; t < tenants_.size(); ++t) broadcast(t);
  return out;
}

void ControlPlane::reconcile(Seconds sim_time,
                             const std::vector<std::vector<int>>& observed,
                             const EpochChaos& chaos) {
  require(live(), "reconcile needs a finite epoch length");
  require(observed.size() == tenants_.size(),
          "reconcile needs one observation row per tenant");
  EpochSnapshot snap;
  snap.epoch = static_cast<int>(history_.size());
  snap.sim_time = sim_time;
  snap.chaos = chaos;
  // Merge in tenant-index order — the fixed fold that keeps the packing a
  // pure function of (epoch, fleet seed, tenant set) at any shard count.
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantGroups& groups = tenants_[t];
    require(observed[t].size() == groups.group_ids.size(),
            "reconcile needs one observation per tenant stage");
    for (std::size_t s = 0; s < groups.group_ids.size(); ++s) {
      // An idle stage still keeps one warm pod; demand never drops to 0.
      const int want = std::max(1, observed[t][s]);
      const int group = groups.group_ids[s];
      if (want != static_cast<int>(cluster_.assignment(group).size())) {
        cluster_.resize_group(group, want);
        ++snap.groups_resized;
      }
    }
  }
  const ClusterCapacity::ScaleEvent event =
      cluster_.autoscale_step(config_.autoscale);
  snap.nodes_ordered = event.ordered;
  snap.nodes_added = event.added;
  snap.nodes_removed = event.removed;
  snap.displaced_pods = event.displaced_pods;
  snap.nodes = cluster_.nodes();
  snap.pending_nodes = cluster_.pending_nodes();
  snap.utilization = cluster_.utilization();
  // Broadcast the post-repack co-residency (scale-in may have moved pods).
  for (std::size_t t = 0; t < tenants_.size(); ++t) broadcast(t);
  log_debug("control: epoch ", snap.epoch, " @", sim_time, "s: ",
            snap.groups_resized, " groups resized, nodes=", snap.nodes, " (+",
            snap.nodes_added, "/-", snap.nodes_removed, ", ",
            snap.nodes_ordered, " ordered, ", snap.displaced_pods,
            " pods displaced), utilization=", snap.utilization);
  history_.push_back(snap);
}

int ControlPlane::tenant_group(std::size_t tenant, std::size_t stage) const {
  require(tenant < tenants_.size(), "tenant index out of range");
  const TenantGroups& groups = tenants_[tenant];
  require(stage < groups.group_ids.size(), "stage index out of range");
  return groups.group_ids[stage];
}

double ControlPlane::tenant_coresidency(std::size_t tenant) const {
  require(tenant < tenants_.size(), "tenant index out of range");
  const TenantGroups& groups = tenants_[tenant];
  double total = 0.0;
  for (int group : groups.group_ids) {
    // Reporting matches the plan-time convention: a pod is co-resident at
    // least with itself, so an empty (idle) stage reads as 1.
    total += std::max(1.0, cluster_.group_coresidency(group));
  }
  return total / static_cast<double>(groups.group_ids.size());
}

}  // namespace janus
