#include "fleet/cluster.hpp"

namespace janus {

ClusterCapacity::ClusterCapacity(ClusterConfig config) : config_(config) {
  require(config.nodes > 0, "cluster needs >= 1 node");
  require(config.node_capacity_mc > 0, "node capacity must be > 0");
  used_.assign(static_cast<std::size_t>(config.nodes), 0);
}

Millicores ClusterCapacity::used_mc(int node) const {
  require(node >= 0 && static_cast<std::size_t>(node) < used_.size(),
          "node index out of range");
  return used_[static_cast<std::size_t>(node)];
}

double ClusterCapacity::utilization() const {
  double total = 0.0;
  for (Millicores u : used_) total += static_cast<double>(u);
  return total / (static_cast<double>(config_.node_capacity_mc) *
                  static_cast<double>(used_.size()));
}

std::vector<int> ClusterCapacity::place_group(int count, Millicores pod_mc) {
  require(count >= 0, "pod count must be >= 0");
  require(pod_mc > 0, "pod size must be > 0");
  std::vector<int> per_node(used_.size(), 0);  // this group's pods per node
  std::vector<int> assignment;
  assignment.reserve(static_cast<std::size_t>(count));
  for (int p = 0; p < count; ++p) {
    int best = -1;
    for (std::size_t n = 0; n < used_.size(); ++n) {
      if (used_[n] + pod_mc > config_.node_capacity_mc) continue;
      // Pack with the group's own pods first; among group-free nodes pick
      // the emptiest, so distinct groups only share once capacity forces
      // them to (contention comes from load, not from tie-breaking).
      if (best < 0 ||
          per_node[n] > per_node[static_cast<std::size_t>(best)] ||
          (per_node[n] == per_node[static_cast<std::size_t>(best)] &&
           used_[n] < used_[static_cast<std::size_t>(best)])) {
        best = static_cast<int>(n);
      }
    }
    if (best < 0) {
      // Saturated: overcommit the least-used node (ties to the lowest
      // index, keeping the packing deterministic).
      best = 0;
      for (std::size_t n = 1; n < used_.size(); ++n) {
        if (used_[n] < used_[static_cast<std::size_t>(best)]) {
          best = static_cast<int>(n);
        }
      }
      ++overcommitted_;
    }
    used_[static_cast<std::size_t>(best)] += pod_mc;
    ++per_node[static_cast<std::size_t>(best)];
    assignment.push_back(best);
  }
  return assignment;
}

double ClusterCapacity::mean_coresidency(const std::vector<int>& assignment) {
  if (assignment.empty()) return 1.0;
  int max_node = 0;
  for (int n : assignment) max_node = n > max_node ? n : max_node;
  std::vector<int> per_node(static_cast<std::size_t>(max_node) + 1, 0);
  for (int n : assignment) ++per_node[static_cast<std::size_t>(n)];
  double total = 0.0;
  for (int n : assignment) {
    total += static_cast<double>(per_node[static_cast<std::size_t>(n)]);
  }
  return total / static_cast<double>(assignment.size());
}

}  // namespace janus
