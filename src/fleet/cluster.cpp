#include "fleet/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace janus {

ClusterCapacity::ClusterCapacity(ClusterConfig config) : config_(config) {
  require(config.nodes > 0, "cluster needs >= 1 node");
  require(config.node_capacity_mc > 0, "node capacity must be > 0");
  used_.assign(static_cast<std::size_t>(config.nodes), 0);
}

int ClusterCapacity::pending_nodes() const noexcept {
  int total = 0;
  for (const auto& order : orders_) total += order.second;
  return total;
}

Millicores ClusterCapacity::used_mc(int node) const {
  require(node >= 0 && static_cast<std::size_t>(node) < used_.size(),
          "node index out of range");
  return used_[static_cast<std::size_t>(node)];
}

double ClusterCapacity::utilization() const {
  // Every node failed: nothing is allocatable, report 0 rather than 0/0.
  if (used_.empty()) return 0.0;
  double total = 0.0;
  for (Millicores u : used_) total += static_cast<double>(u);
  return total / (static_cast<double>(config_.node_capacity_mc) *
                  static_cast<double>(used_.size()));
}

int ClusterCapacity::pack_pods(Group& group, int count) {
  if (count > 0 && used_.empty()) {
    // No node survives (chaos can fail the last one): the pods are
    // stranded — counted and dropped, never an assert.  The overcommit
    // fallback below indexes used_[0], so this must be handled first.
    stranded_ += count;
    log_warn("cluster: ", count, " pods stranded (no nodes left)");
    return 0;
  }
  const Millicores pod_mc = group.pod_mc;
  // This group's pods per node, from its current placement.
  std::vector<int> per_node(used_.size(), 0);
  for (int n : group.nodes) ++per_node[static_cast<std::size_t>(n)];
  for (int p = 0; p < count; ++p) {
    int best = -1;
    for (std::size_t n = 0; n < used_.size(); ++n) {
      if (used_[n] + pod_mc > config_.node_capacity_mc) continue;
      // Pack with the group's own pods first; among group-free nodes pick
      // the emptiest, so distinct groups only share once capacity forces
      // them to (contention comes from load, not from tie-breaking).
      if (best < 0 ||
          per_node[n] > per_node[static_cast<std::size_t>(best)] ||
          (per_node[n] == per_node[static_cast<std::size_t>(best)] &&
           used_[n] < used_[static_cast<std::size_t>(best)])) {
        best = static_cast<int>(n);
      }
    }
    if (best < 0) {
      // Saturated: overcommit the least-used node (ties to the lowest
      // index, keeping the packing deterministic).
      best = 0;
      for (std::size_t n = 1; n < used_.size(); ++n) {
        if (used_[n] < used_[static_cast<std::size_t>(best)]) {
          best = static_cast<int>(n);
        }
      }
      ++overcommitted_;
    }
    used_[static_cast<std::size_t>(best)] += pod_mc;
    ++per_node[static_cast<std::size_t>(best)];
    group.nodes.push_back(best);
  }
  return count;
}

void ClusterCapacity::release_pods(Group& group, int count) {
  std::vector<int> per_node(used_.size(), 0);
  for (int n : group.nodes) ++per_node[static_cast<std::size_t>(n)];
  for (int p = 0; p < count; ++p) {
    // Release from the node where the group is thinnest (spills unwind
    // before the packed core), ties to the highest index.
    int victim = -1;
    for (std::size_t n = 0; n < used_.size(); ++n) {
      if (per_node[n] == 0) continue;
      if (victim < 0 ||
          per_node[n] <= per_node[static_cast<std::size_t>(victim)]) {
        victim = static_cast<int>(n);
      }
    }
    require(victim >= 0, "release_pods: group has no pods left");
    used_[static_cast<std::size_t>(victim)] -= group.pod_mc;
    --per_node[static_cast<std::size_t>(victim)];
    // Drop the last placement entry on that node, keeping earlier order.
    for (std::size_t i = group.nodes.size(); i > 0; --i) {
      if (group.nodes[i - 1] == victim) {
        group.nodes.erase(group.nodes.begin() +
                          static_cast<std::ptrdiff_t>(i - 1));
        break;
      }
    }
  }
}

int ClusterCapacity::add_group(int count, Millicores pod_mc) {
  require(count >= 0, "pod count must be >= 0");
  // A zero-pod group is legal (an idle stage); only a real placement
  // needs a real pod size.
  require(count == 0 || pod_mc > 0, "pod size must be > 0");
  Group group;
  group.pod_mc = pod_mc;
  groups_.push_back(std::move(group));
  pack_pods(groups_.back(), count);
  return static_cast<int>(groups_.size()) - 1;
}

std::vector<int> ClusterCapacity::place_group(int count, Millicores pod_mc) {
  return groups_[static_cast<std::size_t>(add_group(count, pod_mc))].nodes;
}

const std::vector<int>& ClusterCapacity::assignment(int group) const {
  require(group >= 0 && static_cast<std::size_t>(group) < groups_.size(),
          "group id out of range");
  return groups_[static_cast<std::size_t>(group)].nodes;
}

Millicores ClusterCapacity::group_pod_mc(int group) const {
  require(group >= 0 && static_cast<std::size_t>(group) < groups_.size(),
          "group id out of range");
  return groups_[static_cast<std::size_t>(group)].pod_mc;
}

double ClusterCapacity::group_coresidency(int group) const {
  return mean_coresidency(assignment(group));
}

void ClusterCapacity::resize_group(int group, int count) {
  require(group >= 0 && static_cast<std::size_t>(group) < groups_.size(),
          "group id out of range");
  require(count >= 0, "pod count must be >= 0");
  Group& g = groups_[static_cast<std::size_t>(group)];
  const int current = static_cast<int>(g.nodes.size());
  if (count > current) {
    require(g.pod_mc > 0, "cannot grow a group placed with zero-size pods");
    pack_pods(g, count - current);
  } else if (count < current) {
    release_pods(g, current - count);
  }
}

ClusterCapacity::RemoveOutcome ClusterCapacity::fail_node(int victim) {
  require(victim >= 0 && static_cast<std::size_t>(victim) < used_.size(),
          "node index out of range");
  // Evict the victim's pods, group by group in id order.
  std::vector<int> displaced(groups_.size(), 0);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    Group& group = groups_[g];
    for (std::size_t i = group.nodes.size(); i > 0; --i) {
      if (group.nodes[i - 1] == victim) {
        group.nodes.erase(group.nodes.begin() +
                          static_cast<std::ptrdiff_t>(i - 1));
        used_[static_cast<std::size_t>(victim)] -= group.pod_mc;
        ++displaced[g];
      }
    }
  }
  // Retire the node and renumber every assignment past it.
  used_.erase(used_.begin() + victim);
  for (Group& group : groups_) {
    for (int& n : group.nodes) {
      if (n > victim) --n;
    }
  }
  // Re-pack the displaced pods, groups in id order — the deterministic
  // repacking shared by scale-in and chaos node failure.  pack_pods
  // strands what it cannot place (zero nodes left).
  RemoveOutcome out;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (displaced[g] == 0) continue;
    const int placed = pack_pods(groups_[g], displaced[g]);
    out.displaced += placed;
    out.stranded += displaced[g] - placed;
  }
  return out;
}

int ClusterCapacity::remove_one_node() {
  // Victim: the emptiest node, ties to the highest index (so renumbering
  // disturbs as few assignments as possible).
  int victim = 0;
  for (std::size_t n = 1; n < used_.size(); ++n) {
    if (used_[n] <= used_[static_cast<std::size_t>(victim)]) {
      victim = static_cast<int>(n);
    }
  }
  // Scale-in never removes the last node (autoscale min_nodes >= 1), so
  // the displaced pods always re-pack; stranding is a chaos-only outcome.
  const RemoveOutcome out = fail_node(victim);
  return out.displaced + out.stranded;
}

ClusterCapacity::ScaleEvent ClusterCapacity::autoscale_step(
    const AutoscaleConfig& cfg) {
  ScaleEvent event;
  // Mature pending orders first: a node ordered with latency L becomes
  // usable on the L-th step after the order.
  for (auto& order : orders_) --order.first;
  for (std::size_t i = 0; i < orders_.size();) {
    if (orders_[i].first <= 0) {
      used_.insert(used_.end(), static_cast<std::size_t>(orders_[i].second),
                   0);
      event.added += orders_[i].second;
      orders_.erase(orders_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (!cfg.enabled) return event;
  require(cfg.min_nodes >= 1 && cfg.max_nodes >= cfg.min_nodes,
          "autoscale node bounds must satisfy 1 <= min <= max");
  require(cfg.max_step_nodes >= 1, "autoscale step must be >= 1 node");
  require(cfg.scale_in_utilization < cfg.scale_out_utilization,
          "autoscale band must satisfy scale_in < scale_out");

  const double u = utilization();
  const int total = nodes() + pending_nodes();
  if (u > cfg.scale_out_utilization && total < cfg.max_nodes) {
    // Order enough nodes to bring allocation back to the target, counting
    // nodes already on order so back-to-back hot epochs don't double-buy.
    double used_total = 0.0;
    for (Millicores m : used_) used_total += static_cast<double>(m);
    const int want = static_cast<int>(
        std::ceil(used_total / (cfg.scale_out_utilization *
                                static_cast<double>(config_.node_capacity_mc))));
    const int deficit =
        std::min({want - total, cfg.max_step_nodes, cfg.max_nodes - total});
    if (deficit > 0) {
      if (cfg.scale_out_latency_epochs <= 0) {
        used_.insert(used_.end(), static_cast<std::size_t>(deficit), 0);
        event.added += deficit;
      } else {
        orders_.emplace_back(cfg.scale_out_latency_epochs, deficit);
        event.ordered = deficit;
      }
    }
  } else if (u < cfg.scale_in_utilization) {
    while (event.removed < cfg.max_step_nodes && nodes() > cfg.min_nodes &&
           utilization() < cfg.scale_in_utilization) {
      event.displaced_pods += remove_one_node();
      ++event.removed;
    }
  }
  if (event.ordered > 0 || event.added > 0 || event.removed > 0) {
    log_debug("cluster: autoscale ordered=", event.ordered,
              " added=", event.added, " removed=", event.removed,
              " displaced_pods=", event.displaced_pods, " nodes=", nodes(),
              " pending=", pending_nodes(), " utilization=", u);
  }
  return event;
}

double ClusterCapacity::mean_coresidency(const std::vector<int>& assignment) {
  if (assignment.empty()) return 0.0;
  int max_node = 0;
  for (int n : assignment) max_node = n > max_node ? n : max_node;
  std::vector<int> per_node(static_cast<std::size_t>(max_node) + 1, 0);
  for (int n : assignment) ++per_node[static_cast<std::size_t>(n)];
  double total = 0.0;
  for (int n : assignment) {
    total += static_cast<double>(per_node[static_cast<std::size_t>(n)]);
  }
  return total / static_cast<double>(assignment.size());
}

}  // namespace janus
