#include "fleet/slice.hpp"

#include "stats/codec.hpp"

namespace janus {

std::vector<std::uint8_t> encode_slice(const FleetSliceOutcome& s) {
  codec::ByteWriter w;
  codec::write_header(w);
  w.u64(s.lo);
  w.u64(s.hi);
  w.u8(s.stream ? 1 : 0);
  w.u64(s.fleet_seed);
  w.u64(s.requests_total);
  w.u64(s.violations_total);
  w.f64(s.cpu_total);
  codec::encode(w, s.slice_hist);
  require(s.stream ? s.tenants.empty() : s.tenants.size() == s.hi - s.lo,
          "slice outcome has the wrong tenant fold count");
  w.u64(s.tenants.size());
  for (const TenantFold& t : s.tenants) {
    w.u64(t.requests);
    w.u64(t.violations);
    w.f64(t.cpu_sum);
    w.f64(t.coresidency);
    codec::encode(w, t.e2e);
    codec::encode(w, t.e2e_hist);
  }
  w.f64(s.sim_end_s);
  codec::encode(w, s.counters);
  codec::encode(w, s.spans);
  codec::encode(w, s.timeline);
  w.u64(s.events_executed);
  w.u64(s.peak_pending);
  w.i32(s.epochs);
  w.i32(s.final_nodes);
  w.f64(s.cluster_utilization);
  w.i32(s.overcommitted_pods);
  codec::encode(w, s.epoch_log);
  return w.take();
}

FleetSliceOutcome decode_slice(const std::uint8_t* data, std::size_t size) {
  codec::ByteReader r(data, size);
  codec::read_header(r);
  FleetSliceOutcome s;
  s.lo = static_cast<std::size_t>(r.u64());
  s.hi = static_cast<std::size_t>(r.u64());
  require(s.lo <= s.hi, "slice bounds are inverted");
  s.stream = r.u8() != 0;
  s.fleet_seed = r.u64();
  s.requests_total = r.u64();
  s.violations_total = r.u64();
  s.cpu_total = r.f64();
  s.slice_hist = codec::decode_histogram(r);
  const std::uint64_t folds = r.u64();
  require(s.stream ? folds == 0 : folds == s.hi - s.lo,
          "slice blob has the wrong tenant fold count");
  s.tenants.reserve(static_cast<std::size_t>(folds));
  for (std::uint64_t i = 0; i < folds; ++i) {
    TenantFold t;
    t.requests = r.u64();
    t.violations = r.u64();
    t.cpu_sum = r.f64();
    t.coresidency = r.f64();
    t.e2e = codec::decode_empirical(r);
    t.e2e_hist = codec::decode_histogram(r);
    s.tenants.push_back(std::move(t));
  }
  s.sim_end_s = r.f64();
  s.counters = codec::decode_obs_counters(r);
  s.spans = codec::decode_spans(r);
  s.timeline = codec::decode_timeline(r);
  s.events_executed = r.u64();
  s.peak_pending = r.u64();
  s.epochs = r.i32();
  s.final_nodes = r.i32();
  s.cluster_utilization = r.f64();
  s.overcommitted_pods = r.i32();
  s.epoch_log = codec::decode_epoch_log(r);
  require(r.done(), "slice blob has trailing bytes");
  return s;
}

}  // namespace janus
