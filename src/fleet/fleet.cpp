#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "model/workloads.hpp"
#include "sim/engine.hpp"

namespace janus {

namespace {

/// Per-tenant seed from the fleet seed and the tenant index alone: shard
/// assignment must never leak into the randomness.
std::uint64_t tenant_seed(std::uint64_t fleet_seed, std::size_t tenant) {
  return SplitMix64(fleet_seed ^
                    (0x9e3779b97f4a7c15ULL * (tenant + 1)))
      .next();
}

/// Everything one tenant needs, derived up front (shard-independent).
struct TenantSetup {
  WorkloadSpec workload;
  RunConfig run;
};

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace

std::string FleetResult::to_json() const {
  std::ostringstream os;
  os << "{\n  \"shards\": " << shards << ",\n  \"tenants\": [\n";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantResult& tr = tenants[t];
    os << "    {\"name\": \"" << json_escape(tr.name) << "\", \"workload\": \""
       << json_escape(tr.workload) << "\", \"policy\": \""
       << json_escape(tr.policy) << "\", \"arrivals\": \""
       << to_string(tr.arrivals)
       << "\", \"requests\": " << tr.requests
       << ", \"slo_s\": " << fmt_double(tr.slo)
       << ", \"violation_rate\": " << fmt_double(tr.violation_rate)
       << ", \"mean_cpu_mc\": " << fmt_double(tr.mean_cpu_mc)
       << ", \"p50_e2e_s\": " << fmt_double(tr.e2e_p50)
       << ", \"p99_e2e_s\": " << fmt_double(tr.e2e_p99)
       << ", \"coresidency\": " << fmt_double(tr.coresidency) << "}"
       << (t + 1 < tenants.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"fleet\": {\"requests\": " << total_requests
     << ", \"violation_rate\": " << fmt_double(fleet_violation_rate)
     << ", \"mean_cpu_mc\": " << fmt_double(fleet_mean_cpu_mc)
     << ", \"p50_e2e_s\": " << fmt_double(fleet_p50)
     << ", \"p99_e2e_s\": " << fmt_double(fleet_p99)
     << ", \"cluster_utilization\": " << fmt_double(cluster_utilization)
     << ", \"overcommitted_pods\": " << overcommitted_pods << "},\n"
     << "  \"control\": {\"epochs\": " << epochs
     << ", \"final_nodes\": " << final_nodes
     << ", \"nodes_added\": " << nodes_added
     << ", \"nodes_removed\": " << nodes_removed << "},\n";
  if (chaos_enabled) {
    os << "  \"chaos\": {\"node_failures\": " << chaos.node_failures
       << ", \"displaced_pods\": " << chaos.displaced_pods
       << ", \"stranded_pods\": " << chaos.stranded_pods
       << ", \"preemption_bursts\": " << chaos.preemption_bursts
       << ", \"preempted_pods\": " << chaos.preempted_pods
       << ", \"requeued_invocations\": " << chaos.requeued_invocations
       << ", \"storms\": " << chaos.storms
       << ", \"flash_windows\": " << chaos.flash_windows
       << ", \"events\": [";
    for (std::size_t e = 0; e < chaos_log.size(); ++e) {
      const ChaosEvent& ev = chaos_log[e];
      os << (e > 0 ? ", " : "") << "{\"family\": \"" << to_string(ev.family)
         << "\", \"epoch\": " << ev.epoch
         << ", \"sim_time_s\": " << fmt_double(ev.sim_time)
         << ", \"tenant\": " << ev.tenant << ", \"node\": " << ev.node
         << ", \"pods\": " << ev.pods << ", \"stranded\": " << ev.stranded
         << ", \"magnitude\": " << fmt_double(ev.magnitude)
         << ", \"until_s\": " << fmt_double(ev.until_s) << "}";
    }
    os << "]},\n";
  }
  os << "  \"obs\": {\"events_executed\": " << obs.events_executed
     << ", \"invocations\": " << obs.counters.invocations
     << ", \"cold_starts\": " << obs.counters.cold_starts
     << ", \"queued\": " << obs.counters.queued
     << ", \"spans_recorded\": " << obs.counters.spans_recorded
     << ", \"spans_dropped\": " << obs.counters.spans_dropped
     << ", \"spans_retained\": " << obs.spans.size()
     << ", \"timeline_rows\": " << obs.timeline.size()
     << ", \"peak_pending\": " << obs.peak_pending
     << ", \"phases\": [";
  for (std::size_t p = 0; p < obs.phases.size(); ++p) {
    os << (p > 0 ? ", " : "") << "{\"name\": \""
       << json_escape(obs.phases[p].name)
       << "\", \"seconds\": " << fmt_double(obs.phases[p].seconds)
       << ", \"entries\": " << obs.phases[p].entries << "}";
  }
  os << "]},\n"
     << "  \"wall_seconds\": " << fmt_double(wall_seconds) << "\n}\n";
  return os.str();
}

FleetResult run_fleet(const FleetConfig& config) {
  const std::size_t n = config.tenants.size();
  require(n >= 1, "fleet needs >= 1 tenant");
  require(config.shards >= 1, "fleet needs >= 1 shard");
  require(config.hist_max_s > 0.0 && config.hist_bins > 0,
          "fleet histogram layout must be non-degenerate");
  require(config.obs.sample_every >= 1, "obs sampling stride must be >= 1");
  if (config.chaos.needs_epochs()) {
    require(config.epoch_s != kNoEpochs,
            "chaos barrier families (failures, preemption, storms) need a "
            "finite epoch_s");
  }
  // Built only when a family is armed: a calm run never constructs the
  // engine, so chaos-off takes zero different branches (and stays
  // bit-identical to builds that predate chaos).
  std::unique_ptr<ChaosEngine> chaos_eng;
  if (config.chaos.enabled()) {
    chaos_eng = std::make_unique<ChaosEngine>(config.chaos, config.seed, n);
  }
  log_info("fleet: ", n, " tenants on ", config.shards,
           " shards, epoch_s=", config.epoch_s, ", seed=", config.seed,
           chaos_eng ? ", chaos on" : "");

  // Self-profiling is always on: it is pure cold-path wall-clock
  // bookkeeping (a handful of steady_clock reads per epoch), reported in
  // the machine-dependent section alongside wall_seconds.
  PhaseProfiler prof;
  prof.begin("plan");

  // ---- Plan (shard-independent): workloads, seeds, cluster packing. ----
  // One policy catalog serves every tenant: profiles and hints bundles are
  // synthesized once per (workload, policy) here, before any shard thread
  // exists, and only read afterwards.
  PolicyCatalog own_catalog(config.policy_catalog);
  PolicyCatalog& catalog =
      config.catalog != nullptr ? *config.catalog : own_catalog;
  ControlPlane control(config.cluster,
                       ControlConfig{config.epoch_s, config.autoscale});
  std::vector<TenantSetup> setups;
  std::vector<EpochFeed*> feeds;
  setups.reserve(n);
  feeds.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const TenantSpec& spec = config.tenants[t];
    require(spec.requests > 0, "tenant needs >= 1 request");
    require(spec.contention_alpha >= 0.0,
            "tenant contention alpha must be >= 0");
    require_fleet_policy(spec.policy);
    TenantSetup setup;
    setup.workload = workload_by_name(spec.workload);
    // Validate the arrival spec *now*: the fleet has no closed-loop
    // tenants, and a bad spec must fail here, not as NaN inside the pod
    // estimate or as a throw on a shard thread.
    (void)make_arrivals(spec.arrivals);
    const auto models = setup.workload.chain_models();

    RunConfig rc;
    rc.slo = spec.slo > 0.0 ? spec.slo : setup.workload.slo(spec.concurrency);
    rc.concurrency = spec.concurrency;
    rc.requests = spec.requests;
    rc.seed = tenant_seed(config.seed, t);
    // Trace replay carries its own rhythm: the open-loop gate just needs a
    // positive rate (the process ignores it), so use the trace's mean.
    rc.open_loop_rate = spec.arrivals.kind == ArrivalKind::Trace
                            ? spec.arrivals.mean_rate()
                            : spec.arrivals.rate;
    rc.arrivals = spec.arrivals;
    if (chaos_eng) {
      // Flash crowds rewrite the arrival spec at plan time (the runner
      // pre-schedules the whole open-loop sequence, so the window must
      // live inside the process).  The pod plan below deliberately keeps
      // using mean_rate(), which excludes the window: the crowd is a
      // transient the capacity plan does not see coming.
      rc.arrivals = chaos_eng->apply_flash(t, rc.arrivals);
    }
    rc.platform = config.platform;
    rc.colocation_is_default = false;

    // Steady-state pods per stage (Little's law over the arrival process's
    // long-run rate) at the policy's plan-time allocation seed the control
    // plane's packing; its feed becomes the tenant's co-location source —
    // frozen on the static path, shifted at every barrier on the live
    // path.
    const std::vector<Millicores> plan_mc = catalog.plan_sizes(
        spec.policy, setup.workload, rc.slo, spec.concurrency, spec.size_mc);
    const double rate = spec.arrivals.mean_rate();
    std::vector<int> stage_pods;
    stage_pods.reserve(models.size());
    for (std::size_t s = 0; s < models.size(); ++s) {
      const Seconds stage_s =
          models[s].exec_time(plan_mc[s], spec.concurrency, 1.0, 1.0);
      stage_pods.push_back(
          std::max(1, static_cast<int>(std::ceil(rate * stage_s))));
    }
    EpochFeed& feed = control.plan_tenant(stage_pods, plan_mc);
    feeds.push_back(&feed);
    rc.colocation_provider = &feed;
    setup.run = std::move(rc);
    setups.push_back(std::move(setup));
  }

  // ---- Execute: one SimEngine per shard, tenants dealt round-robin,
  // engines advanced epoch by epoch with a reconciliation barrier between.
  std::vector<RunResult> results(n);
  const auto shards = static_cast<std::size_t>(config.shards);
  std::vector<std::unique_ptr<SimEngine>> engines;
  engines.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    engines.push_back(std::make_unique<SimEngine>());
  }
  // Observability sinks.  Sized up front so the addresses handed to the
  // hot-path hooks stay stable; each shard writes only its own tenants'
  // sinks (and its own engine gauge), so recording needs no locks.  When
  // obs is off no sink is armed and every hook stays a null-test branch.
  std::vector<TraceRing> rings;
  std::vector<ObsCounters> counters(n);
  std::vector<EngineObs> engine_obs(shards);
  if (config.obs.trace) {
    rings.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      rings.emplace_back(config.obs.ring_capacity);
    }
  }
  std::vector<std::unique_ptr<Platform>> platforms;
  std::vector<std::unique_ptr<SizingPolicy>> policies;
  platforms.reserve(n);
  policies.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    TenantSetup& setup = setups[t];
    const TenantSpec& spec = config.tenants[t];
    SimEngine& engine = *engines[t % shards];
    PlatformConfig pc = setup.run.platform;
    pc.seed = setup.run.seed ^ 0x9e3779b97f4a7c15ULL;
    platforms.push_back(std::make_unique<Platform>(
        engine, pc, setup.workload.chain_models(), setup.run.interference));
    if (config.obs.enabled()) {
      platforms[t]->set_obs(&counters[t]);
      engines[t % shards]->set_obs(&engine_obs[t % shards]);
    }
    if (config.obs.trace) {
      setup.run.trace_ring = &rings[t];
      setup.run.trace_sample_every = config.obs.sample_every;
      setup.run.trace_tenant = static_cast<std::uint32_t>(t);
    }
    std::unique_ptr<SizingPolicy> policy =
        catalog.make_policy(spec.policy, setup.workload, setup.run.slo,
                            spec.concurrency, spec.size_mc);
    if (spec.contention_alpha > 0.0) {
      policy = std::make_unique<ContentionAwarePolicy>(
          std::move(policy), *feeds[t], spec.contention_alpha,
          catalog.config().kmax);
    }
    policies.push_back(std::move(policy));
    serve_workload(engine, *platforms[t], setup.workload, *policies[t],
                   setup.run, results[t]);
  }

  // Per-tenant cursor over the (append-only) request records so the
  // timeline's cumulative SLO attainment costs one pass over new records
  // per barrier, not a rescan.
  std::vector<TimelineRow> timeline;
  std::vector<std::size_t> slo_cursor(n, 0);
  std::vector<std::uint64_t> slo_violations(n, 0);

  const auto started = std::chrono::steady_clock::now();
  {
    ThreadPool pool(shards);
    Seconds epoch_end = control.live() ? control.epoch_s() : kNoEpochs;
    for (;;) {
      // Advance every shard to the barrier (run_until(inf) = run to
      // drain — the static path does exactly one pass).
      prof.begin("simulate");
      pool.parallel_for(shards, [&](std::size_t s) {
        engines[s]->run_until(epoch_end);
      });
      prof.end();
      bool pending = false;
      for (const auto& engine : engines) {
        pending = pending || engine->pending() > 0;
      }
      if (!pending || !control.live()) break;
      // Reconcile: shards publish the per-(tenant, stage) pod demand their
      // Platforms actually observed this epoch (peak concurrently-busy
      // pods), in tenant-index order.
      prof.begin("reconcile");
      std::vector<std::vector<int>> observed(n);
      for (std::size_t t = 0; t < n; ++t) {
        const std::size_t stages = setups[t].workload.chain_models().size();
        observed[t].reserve(stages);
        for (std::size_t s = 0; s < stages; ++s) {
          observed[t].push_back(
              platforms[t]->peak_busy_for(static_cast<int>(s)));
        }
        platforms[t]->reset_peak_busy();
      }
      // Chaos injection happens here — all shards paused, observations
      // already collected — so every injection is a pure function of the
      // (deterministic) barrier state and the chaos schedule.
      EpochChaos epoch_chaos;
      if (chaos_eng) {
        const int epoch_idx = control.epochs_run();
        const ChaosEngine::BarrierPlan plan =
            chaos_eng->plan_barrier(epoch_idx, control.cluster().nodes());
        for (int node : plan.failed_nodes) {
          const ClusterCapacity::RemoveOutcome rm =
              control.inject_node_failure(node);
          ++epoch_chaos.failed_nodes;
          epoch_chaos.displaced_pods += rm.displaced;
          epoch_chaos.stranded_pods += rm.stranded;
          chaos_eng->record_failure(epoch_idx, epoch_end, node, rm.displaced,
                                    rm.stranded);
        }
        for (std::size_t t : plan.preempt_tenants) {
          int killed = 0;
          const std::size_t stages =
              setups[t].workload.chain_models().size();
          for (std::size_t s = 0; s < stages; ++s) {
            const int busy = platforms[t]->busy_pods_for(static_cast<int>(s));
            const int want = static_cast<int>(
                std::ceil(config.chaos.preempt_fraction *
                          static_cast<double>(busy)));
            killed +=
                platforms[t]->preempt_busy(static_cast<int>(s), want);
          }
          if (killed > 0) {
            chaos_eng->record_preemption(epoch_idx, epoch_end,
                                         static_cast<int>(t), killed);
          }
          epoch_chaos.preempted_pods += killed;
        }
        epoch_chaos.storm_multiplier = plan.storm_multiplier;
        if (config.chaos.cold_storms) {
          // x1.0 when calm — IEEE-exact, so arming storms without a storm
          // this epoch perturbs nothing.
          for (auto& platform : platforms) {
            platform->set_startup_multiplier(plan.storm_multiplier);
          }
          if (plan.storm_started) {
            chaos_eng->record_storm(
                epoch_idx, epoch_end,
                epoch_end + static_cast<double>(config.chaos.storm_epochs) *
                                control.epoch_s());
          }
        }
      }
      control.reconcile(epoch_end, observed, epoch_chaos);
      if (config.obs.timeline) {
        // One row per (tenant, stage), in tenant-index order, reading the
        // *post-reconcile* packing — all simulated state, so the timeline
        // is part of the bit-identical artifact set.
        const EpochSnapshot& snap = control.history().back();
        const ClusterCapacity& cl = control.cluster();
        for (std::size_t t = 0; t < n; ++t) {
          for (; slo_cursor[t] < results[t].requests.size();
               ++slo_cursor[t]) {
            if (results[t].requests[slo_cursor[t]].violated) {
              ++slo_violations[t];
            }
          }
          for (std::size_t s = 0; s < observed[t].size(); ++s) {
            const int group = control.tenant_group(t, s);
            TimelineRow row;
            row.epoch = snap.epoch;
            row.sim_time = epoch_end;
            row.tenant = static_cast<std::uint32_t>(t);
            row.stage = static_cast<std::uint16_t>(s);
            row.observed_peak_busy = observed[t][s];
            row.allocated_pods =
                static_cast<int>(cl.assignment(group).size());
            row.pod_mc = cl.group_pod_mc(group);
            row.coresidency = cl.group_coresidency(group);
            row.completed = slo_cursor[t];
            row.violations = slo_violations[t];
            row.nodes = snap.nodes;
            row.nodes_ordered = snap.nodes_ordered;
            row.nodes_added = snap.nodes_added;
            row.nodes_removed = snap.nodes_removed;
            row.displaced_pods = snap.displaced_pods;
            row.utilization = snap.utilization;
            row.chaos_failed_nodes = snap.chaos.failed_nodes;
            row.chaos_preempted_pods = snap.chaos.preempted_pods;
            row.chaos_stranded_pods = snap.chaos.stranded_pods;
            row.chaos_storm_mult = snap.chaos.storm_multiplier;
            timeline.push_back(row);
          }
        }
      }
      prof.end();
      epoch_end += control.epoch_s();
    }
  }
  const auto finished = std::chrono::steady_clock::now();
  const ClusterCapacity& cluster = control.cluster();

  // ---- Aggregate in tenant order (fixed fold => reproducible bits). ----
  prof.begin("merge");
  FleetResult out;
  out.shards = config.shards;
  out.wall_seconds =
      std::chrono::duration<double>(finished - started).count();
  out.cluster_utilization = cluster.utilization();
  out.overcommitted_pods = cluster.overcommitted_pods();
  out.epochs = control.epochs_run();
  out.final_nodes = cluster.nodes();
  out.epoch_log = control.history();
  for (const EpochSnapshot& snap : out.epoch_log) {
    out.nodes_added += snap.nodes_added;
    out.nodes_removed += snap.nodes_removed;
  }
  out.fleet_hist = Histogram(0.0, config.hist_max_s, config.hist_bins);
  double cpu_total = 0.0;
  std::size_t violations = 0;
  std::size_t total = 0;
  out.tenants.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const TenantSpec& spec = config.tenants[t];
    const RunResult& r = results[t];
    TenantResult tr;
    tr.name = spec.name.empty() ? spec.workload + "-" + std::to_string(t)
                                : spec.name;
    tr.workload = spec.workload;
    tr.policy = spec.policy;
    tr.arrivals = spec.arrivals.kind;
    tr.requests = static_cast<int>(r.requests.size());
    tr.slo = setups[t].run.slo;
    tr.violation_rate = r.violation_rate();
    tr.mean_cpu_mc = r.mean_cpu();
    tr.coresidency = control.tenant_coresidency(t);
    tr.e2e = r.e2e_distribution();
    tr.e2e_p50 = tr.e2e.percentile(50.0);
    tr.e2e_p99 = tr.e2e.percentile(99.0);
    tr.e2e_hist = Histogram(0.0, config.hist_max_s, config.hist_bins);
    for (double x : tr.e2e.sorted_samples()) tr.e2e_hist.add(x);

    out.fleet_e2e.merge(tr.e2e);
    out.fleet_hist.merge(tr.e2e_hist);
    for (const auto& req : r.requests) {
      cpu_total += req.cpu_mc;
      violations += req.violated ? 1 : 0;
    }
    total += r.requests.size();
    // Tenant-order counter fold: platform tallies + hook tallies + ring
    // bookkeeping, merged exactly like the metric distributions.
    ObsCounters tenant_counters = counters[t];
    tenant_counters.invocations = platforms[t]->invocations();
    tenant_counters.cold_starts = platforms[t]->cold_starts();
    if (config.obs.trace) {
      tenant_counters.spans_recorded = rings[t].recorded();
      tenant_counters.spans_dropped = rings[t].dropped();
      rings[t].drain_to(out.obs.spans);
    }
    out.obs.counters.merge(tenant_counters);
    out.tenants.push_back(std::move(tr));
  }
  if (chaos_eng) {
    out.chaos_enabled = true;
    // Tenant-order fold, like every other merged tally.
    for (std::size_t t = 0; t < n; ++t) {
      chaos_eng->add_requeued(platforms[t]->requeued());
    }
    // The cluster's counter is authoritative: it also covers stranding
    // during post-failure regrowth at reconcile, not just eviction time.
    chaos_eng->set_stranded_total(cluster.stranded_pods());
    out.chaos = chaos_eng->stats();
    out.chaos_log = chaos_eng->log();
  }
  out.obs.timeline = std::move(timeline);
  for (std::size_t s = 0; s < shards; ++s) {
    out.obs.events_executed += engines[s]->executed();
    out.obs.peak_pending =
        std::max(out.obs.peak_pending, engine_obs[s].peak_pending);
  }
  out.total_requests = total;
  out.fleet_violation_rate =
      total > 0 ? static_cast<double>(violations) / static_cast<double>(total)
                : 0.0;
  out.fleet_mean_cpu_mc =
      total > 0 ? cpu_total / static_cast<double>(total) : 0.0;
  out.fleet_p50 = out.fleet_e2e.percentile(50.0);
  out.fleet_p99 = out.fleet_e2e.percentile(99.0);
  prof.end();
  out.obs.phases = prof.phases();
  return out;
}

std::vector<TenantSpec> make_tenant_mix(
    int tenants, int requests_each, double base_rate, ArrivalKind kind,
    bool mixed_kinds, const std::vector<std::string>& policies) {
  require(tenants >= 1, "tenant mix needs >= 1 tenant");
  require(requests_each >= 1, "tenant mix needs >= 1 request per tenant");
  require(base_rate > 0.0, "tenant mix needs a positive base rate");
  for (const auto& policy : policies) {
    require_fleet_policy(policy);
  }
  std::vector<TenantSpec> out;
  out.reserve(static_cast<std::size_t>(tenants));
  constexpr ArrivalKind kCycle[] = {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                                    ArrivalKind::Diurnal};
  for (int i = 0; i < tenants; ++i) {
    TenantSpec t;
    t.workload = (i % 2 == 0) ? "ia" : "va";
    t.name = t.workload + "-" + std::to_string(i);
    t.requests = requests_each;
    t.size_mc = 1600 + 100 * (i % 5);
    if (!policies.empty()) {
      t.policy = policies[static_cast<std::size_t>(i) % policies.size()];
    }
    t.arrivals.kind = mixed_kinds ? kCycle[i % 3] : kind;
    t.arrivals.rate = base_rate * (0.8 + 0.05 * static_cast<double>(i % 8));
    t.arrivals.burst_rate = 3.0 * t.arrivals.rate;
    t.arrivals.period_s = 300.0 + 60.0 * static_cast<double>(i % 4);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace janus
