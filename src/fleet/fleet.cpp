#include "fleet/fleet.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "model/workloads.hpp"
#include "sim/engine.hpp"
#include "stats/codec.hpp"

namespace janus {

namespace {

/// Per-tenant seed from the fleet seed and the tenant index alone: shard
/// assignment must never leak into the randomness.
std::uint64_t tenant_seed(std::uint64_t fleet_seed, std::size_t tenant) {
  return SplitMix64(fleet_seed ^
                    (0x9e3779b97f4a7c15ULL * (tenant + 1)))
      .next();
}

/// Everything one tenant needs, derived up front (shard-independent).
struct TenantSetup {
  WorkloadSpec workload;
  RunConfig run;
};

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

/// The tenant's effective SLO — the one rule (explicit or the workload
/// default) shared by the plan phase and the slice merge, so a merge
/// process that never planned still labels rows identically.
Seconds tenant_slo(const TenantSpec& spec, const WorkloadSpec& workload) {
  return spec.slo > 0.0 ? spec.slo : workload.slo(spec.concurrency);
}

void validate_fleet(const FleetConfig& config) {
  const std::size_t n = config.tenants.size();
  require(n >= 1, "fleet needs >= 1 tenant");
  require(config.shards >= 1, "fleet needs >= 1 shard");
  require(config.processes >= 1, "fleet needs >= 1 process");
  require(config.hist_max_s > 0.0 && config.hist_bins > 0,
          "fleet histogram layout must be non-degenerate");
  require(config.obs.sample_every >= 1, "obs sampling stride must be >= 1");
  if (config.chaos.needs_epochs()) {
    require(config.epoch_s != kNoEpochs,
            "chaos barrier families (failures, preemption, storms) need a "
            "finite epoch_s");
  }
  if (config.processes > 1) {
    require(static_cast<std::size_t>(config.processes) <= n,
            "fleet cannot run more worker processes than tenants");
    require(!config.chaos.enabled(),
            "process sharding requires chaos off: chaos injection mutates "
            "platforms across the whole fleet at a barrier");
  }
  if (config.stream_metrics) {
    require(!config.obs.trace,
            "the streaming merge releases per-tenant state; span tracing "
            "needs it retained");
    require(!config.chaos.enabled(),
            "the streaming merge requires chaos off: preemption needs every "
            "tenant's platform alive at the barrier");
  }
}

/// The shard-independent plan: catalog artifacts, per-tenant run configs,
/// and the control plane's plan-time packing.  Built once; forked worker
/// processes inherit it copy-on-write, so the synthesis cost is paid once
/// no matter the process count.
struct FleetPlan {
  std::unique_ptr<PolicyCatalog> own_catalog;
  PolicyCatalog* catalog = nullptr;
  std::unique_ptr<ControlPlane> control;
  std::unique_ptr<ChaosEngine> chaos_eng;
  std::vector<TenantSetup> setups;
  std::vector<EpochFeed*> feeds;
};

FleetPlan plan_fleet(const FleetConfig& config) {
  const std::size_t n = config.tenants.size();
  FleetPlan plan;
  // One policy catalog serves every tenant: profiles and hints bundles are
  // synthesized once per (workload, policy) here, before any shard thread
  // or worker process exists, and only read afterwards.
  if (config.catalog != nullptr) {
    plan.catalog = config.catalog;
  } else {
    plan.own_catalog = std::make_unique<PolicyCatalog>(config.policy_catalog);
    plan.catalog = plan.own_catalog.get();
  }
  plan.control = std::make_unique<ControlPlane>(
      config.cluster, ControlConfig{config.epoch_s, config.autoscale});
  // Built only when a family is armed: a calm run never constructs the
  // engine, so chaos-off takes zero different branches (and stays
  // bit-identical to builds that predate chaos).
  if (config.chaos.enabled()) {
    plan.chaos_eng =
        std::make_unique<ChaosEngine>(config.chaos, config.seed, n);
  }
  plan.setups.reserve(n);
  plan.feeds.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const TenantSpec& spec = config.tenants[t];
    require(spec.requests > 0, "tenant needs >= 1 request");
    require(spec.contention_alpha >= 0.0,
            "tenant contention alpha must be >= 0");
    require_fleet_policy(spec.policy);
    TenantSetup setup;
    setup.workload = workload_by_name(spec.workload);
    // Validate the arrival spec *now*: the fleet has no closed-loop
    // tenants, and a bad spec must fail here, not as NaN inside the pod
    // estimate or as a throw on a shard thread.
    (void)make_arrivals(spec.arrivals);
    const auto models = setup.workload.chain_models();

    RunConfig rc;
    rc.slo = tenant_slo(spec, setup.workload);
    rc.concurrency = spec.concurrency;
    rc.requests = spec.requests;
    rc.seed = tenant_seed(config.seed, t);
    // Trace replay carries its own rhythm: the open-loop gate just needs a
    // positive rate (the process ignores it), so use the trace's mean.
    rc.open_loop_rate = spec.arrivals.kind == ArrivalKind::Trace
                            ? spec.arrivals.mean_rate()
                            : spec.arrivals.rate;
    rc.arrivals = spec.arrivals;
    if (plan.chaos_eng) {
      // Flash crowds rewrite the arrival spec at plan time (the window
      // must live inside the arrival process).  The pod plan below
      // deliberately keeps using mean_rate(), which excludes the window:
      // the crowd is a transient the capacity plan does not see coming.
      rc.arrivals = plan.chaos_eng->apply_flash(t, rc.arrivals);
    }
    rc.platform = config.platform;
    rc.colocation_is_default = false;
    // The fleet merge reads only the flat e2e/cpu/violated columns, so
    // per-stage detail stays off — at six-figure tenant counts the detail
    // columns would dominate peak RSS for nothing.
    rc.record_stage_detail = false;

    // Steady-state pods per stage (Little's law over the arrival process's
    // long-run rate) at the policy's plan-time allocation seed the control
    // plane's packing; its feed becomes the tenant's co-location source —
    // frozen on the static path, shifted at every barrier on the live
    // path.
    const std::vector<Millicores> plan_mc = plan.catalog->plan_sizes(
        spec.policy, setup.workload, rc.slo, spec.concurrency, spec.size_mc);
    const double rate = spec.arrivals.mean_rate();
    std::vector<int> stage_pods;
    stage_pods.reserve(models.size());
    for (std::size_t s = 0; s < models.size(); ++s) {
      const Seconds stage_s =
          models[s].exec_time(plan_mc[s], spec.concurrency, 1.0, 1.0);
      stage_pods.push_back(
          std::max(1, static_cast<int>(std::ceil(rate * stage_s))));
    }
    EpochFeed& feed = plan.control->plan_tenant(stage_pods, plan_mc);
    plan.feeds.push_back(&feed);
    rc.colocation_provider = &feed;
    setup.run = std::move(rc);
    plan.setups.push_back(std::move(setup));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Barrier links: how a slice synchronizes its epoch barriers with the rest
// of the fleet.  exchange() publishes the slice's observations and either
// returns the *full* fleet observation matrix (continue: reconcile it) or
// false (stop: every engine everywhere has drained, or the control plane
// is static).  Every process reconciles the identical matrix, so every
// process's control plane — packing, feeds, audit trail — stays
// bit-identical to the in-process run's.

class BarrierLink {
 public:
  virtual ~BarrierLink() = default;
  /// `local` has one row per slice tenant; on true, `full` has one row
  /// per fleet tenant.
  virtual bool exchange(bool local_pending,
                        const std::vector<std::vector<int>>& local,
                        std::vector<std::vector<int>>& full) = 0;
};

/// Single-process: the slice is the fleet, so the exchange is the
/// historical in-process break check plus an identity copy.
class LocalLink final : public BarrierLink {
 public:
  explicit LocalLink(const ControlPlane& control) : control_(&control) {}
  bool exchange(bool local_pending, const std::vector<std::vector<int>>& local,
                std::vector<std::vector<int>>& full) override {
    if (!local_pending || !control_->live()) return false;
    full = local;
    return true;
  }

 private:
  const ControlPlane* control_;
};

void write_all(int fd, const void* buf, std::size_t size) {
  const char* p = static_cast<const char*>(buf);
  while (size > 0) {
    const ssize_t w = ::write(fd, p, size);
    require(w > 0, "fleet worker pipe write failed");
    p += w;
    size -= static_cast<std::size_t>(w);
  }
}

void read_all(int fd, void* buf, std::size_t size) {
  char* p = static_cast<char*>(buf);
  while (size > 0) {
    const ssize_t r = ::read(fd, p, size);
    require(r > 0, "fleet worker pipe closed early");
    p += r;
    size -= static_cast<std::size_t>(r);
  }
}

/// Worker side of a forked run: ships the slice's observations to the
/// parent coordinator, receives 'S' (stop: no engine anywhere is pending)
/// or 'C' plus the full fleet matrix.  A worker never stops unilaterally —
/// its drained engines still publish (zero) observations until the global
/// OR says stop, exactly like drained tenants inside a single process.
class PipeLink final : public BarrierLink {
 public:
  PipeLink(int cmd_fd, int obs_fd, bool live, const std::vector<int>* stages)
      : cmd_fd_(cmd_fd), obs_fd_(obs_fd), live_(live), stages_(stages) {}

  bool exchange(bool local_pending, const std::vector<std::vector<int>>& local,
                std::vector<std::vector<int>>& full) override {
    if (!live_) return false;
    codec::ByteWriter w;
    w.u8(local_pending ? 1 : 0);
    for (const auto& row : local) {
      for (int v : row) w.i32(v);
    }
    write_all(obs_fd_, w.bytes().data(), w.bytes().size());
    std::uint8_t cmd = 0;
    read_all(cmd_fd_, &cmd, 1);
    if (cmd == 'S') return false;
    require(cmd == 'C', "fleet worker: unknown barrier command");
    std::size_t ints = 0;
    for (int s : *stages_) ints += static_cast<std::size_t>(s);
    std::vector<std::uint8_t> buf(ints * 4);
    read_all(cmd_fd_, buf.data(), buf.size());
    codec::ByteReader r(buf.data(), buf.size());
    full.resize(stages_->size());
    for (std::size_t t = 0; t < stages_->size(); ++t) {
      full[t].resize(static_cast<std::size_t>((*stages_)[t]));
      for (int& v : full[t]) v = r.i32();
    }
    return true;
  }

 private:
  int cmd_fd_;
  int obs_fd_;
  bool live_;
  const std::vector<int>* stages_;  // per-tenant stage counts, all tenants
};

// ---------------------------------------------------------------------------

/// Executes tenants [lo, hi) against the (already planned) control plane
/// and folds their metrics into a slice outcome.  This is the one
/// execution path: run_fleet's single-process mode runs it over the whole
/// fleet with a LocalLink, forked workers and CLI slice workers run it
/// over their range.
/// Static-streaming wave size: the most tenants whose simulator state
/// (platform, policy, request-log arena) is live at once on the
/// barrier-free path.  Large enough to amortize engine setup, small
/// enough that a six-figure fleet's peak RSS tracks the wave, not the
/// fleet.
constexpr std::size_t kStreamWaveTenants = 4096;

FleetSliceOutcome execute_slice(const FleetConfig& config, FleetPlan& plan,
                                std::size_t lo, std::size_t hi,
                                BarrierLink& link, PhaseProfiler* prof) {
  const std::size_t slice_n = hi - lo;
  ControlPlane& control = *plan.control;
  ChaosEngine* chaos_eng = plan.chaos_eng.get();
  const bool stream = config.stream_metrics;

  // Six-figure static path: without live barriers nothing triggers the
  // streaming fold mid-run, so one pass over the slice would hold every
  // tenant's platform and log simultaneously.  Tenant results are
  // independent of engine grouping (the same contract that makes shard
  // and process counts invisible), so run the slice in bounded waves —
  // each wave builds, simulates, folds, and releases its tenants before
  // the next begins, capping live simulator state at kStreamWaveTenants.
  // Every folded quantity is exact under re-association (integer counts,
  // integer-valued cpu sums, histogram merges), so the wave boundaries
  // cannot show through in any merged metric.
  if (stream && !control.live() && slice_n > kStreamWaveTenants) {
    FleetSliceOutcome acc;
    for (std::size_t wlo = lo; wlo < hi; wlo += kStreamWaveTenants) {
      const std::size_t whi = std::min(hi, wlo + kStreamWaveTenants);
      LocalLink wave_link(control);  // static: exchange never fires
      FleetSliceOutcome wave =
          execute_slice(config, plan, wlo, whi, wave_link, nullptr);
      if (wlo == lo) {
        acc = std::move(wave);
        continue;
      }
      acc.requests_total += wave.requests_total;
      acc.violations_total += wave.violations_total;
      acc.cpu_total += wave.cpu_total;
      acc.slice_hist.merge(wave.slice_hist);
      acc.counters.merge(wave.counters);
      acc.events_executed += wave.events_executed;
      acc.peak_pending = std::max(acc.peak_pending, wave.peak_pending);
      acc.sim_end_s = std::max(acc.sim_end_s, wave.sim_end_s);
      // Control summary and epoch log are wave-invariant on the static
      // path (epochs = 0, plan-time packing); keep the first wave's.
    }
    acc.lo = lo;
    acc.hi = hi;
    return acc;
  }

  FleetSliceOutcome out;
  out.lo = lo;
  out.hi = hi;
  out.stream = stream;
  out.fleet_seed = config.seed;
  out.slice_hist = Histogram(0.0, config.hist_max_s, config.hist_bins);

  const auto shards = static_cast<std::size_t>(config.shards);
  std::vector<std::unique_ptr<SimEngine>> engines;
  engines.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    engines.push_back(std::make_unique<SimEngine>());
  }
  // Observability sinks.  Sized up front so the addresses handed to the
  // hot-path hooks stay stable; each shard writes only its own tenants'
  // sinks (and its own engine gauge), so recording needs no locks.  When
  // obs is off no sink is armed and every hook stays a null-test branch.
  std::vector<TraceRing> rings;
  std::vector<ObsCounters> counters(slice_n);
  std::vector<EngineObs> engine_obs(shards);
  if (config.obs.trace) {
    rings.reserve(slice_n);
    for (std::size_t i = 0; i < slice_n; ++i) {
      rings.emplace_back(config.obs.ring_capacity);
    }
  }
  // Platforms and policies sit in unique_ptrs so the streaming fold can
  // release a completed tenant's simulator state, not just its metrics.
  std::vector<RunResult> results(slice_n);
  std::vector<std::unique_ptr<Platform>> platforms(slice_n);
  std::vector<std::unique_ptr<SizingPolicy>> policies(slice_n);
  for (std::size_t t = lo; t < hi; ++t) {
    const std::size_t i = t - lo;
    TenantSetup& setup = plan.setups[t];
    const TenantSpec& spec = config.tenants[t];
    SimEngine& engine = *engines[t % shards];
    PlatformConfig pc = setup.run.platform;
    pc.seed = setup.run.seed ^ 0x9e3779b97f4a7c15ULL;
    platforms[i] = std::make_unique<Platform>(
        engine, pc, setup.workload.chain_models(), setup.run.interference);
    if (config.obs.enabled()) {
      platforms[i]->set_obs(&counters[i]);
      engines[t % shards]->set_obs(&engine_obs[t % shards]);
    }
    if (config.obs.trace) {
      setup.run.trace_ring = &rings[i];
      setup.run.trace_sample_every = config.obs.sample_every;
      setup.run.trace_tenant = static_cast<std::uint32_t>(t);
    }
    std::unique_ptr<SizingPolicy> policy =
        plan.catalog->make_policy(spec.policy, setup.workload, setup.run.slo,
                                  spec.concurrency, spec.size_mc);
    if (spec.contention_alpha > 0.0) {
      policy = std::make_unique<ContentionAwarePolicy>(
          std::move(policy), *plan.feeds[t], spec.contention_alpha,
          plan.catalog->config().kmax);
    }
    policies[i] = std::move(policy);
    serve_workload(engine, *platforms[i], setup.workload, *policies[i],
                   setup.run, results[i]);
  }

  // Per-tenant cursor over the (append-only) request records so the
  // timeline's cumulative SLO attainment costs one pass over new records
  // per barrier, not a rescan.
  std::vector<std::size_t> slo_cursor(slice_n, 0);
  std::vector<std::uint64_t> slo_violations(slice_n, 0);
  std::vector<char> folded(slice_n, 0);

  // Streaming fold: one column scan, then the tenant's entire simulator
  // footprint — request log arena, platform, policy — is released.  The
  // aggregates are exact under any fold order (integer counts, integer-
  // valued cpu sums), so folding at completion time cannot show through.
  const auto stream_fold = [&](std::size_t i) {
    const RequestLog& log = results[i].requests;
    std::uint64_t viol = 0;
    double cpu = 0.0;
    for (const auto& req : log) {
      viol += req.violated ? 1 : 0;
      cpu += req.cpu_mc;
      out.slice_hist.add(req.e2e);
    }
    out.requests_total += log.size();
    out.violations_total += viol;
    out.cpu_total += cpu;
    slo_cursor[i] = log.size();
    slo_violations[i] = viol;
    ObsCounters tc = counters[i];
    tc.invocations = platforms[i]->invocations();
    tc.cold_starts = platforms[i]->cold_starts();
    out.counters.merge(tc);
    results[i].requests.release();
    platforms[i].reset();
    policies[i].reset();
    folded[i] = 1;
  };

  {
    ThreadPool pool(shards);
    Seconds epoch_end = control.live() ? control.epoch_s() : kNoEpochs;
    for (;;) {
      // Advance every shard to the barrier (run_until(inf) = run to
      // drain — the static path does exactly one pass).
      if (prof != nullptr) prof->begin("simulate");
      pool.parallel_for(shards, [&](std::size_t s) {
        engines[s]->run_until(epoch_end);
      });
      if (prof != nullptr) prof->end();
      bool pending = false;
      for (const auto& engine : engines) {
        pending = pending || engine->pending() > 0;
      }
      // Publish the per-(tenant, stage) pod demand the slice's Platforms
      // actually observed this epoch.  A tenant folded away by the
      // streaming path publishes zeros — exactly what its idle platform
      // would have reported.
      std::vector<std::vector<int>> observed(slice_n);
      for (std::size_t i = 0; i < slice_n; ++i) {
        const std::size_t stages =
            plan.setups[lo + i].workload.chain_models().size();
        observed[i].assign(stages, 0);
        if (platforms[i]) {
          for (std::size_t s = 0; s < stages; ++s) {
            observed[i][s] = platforms[i]->peak_busy_for(static_cast<int>(s));
          }
          platforms[i]->reset_peak_busy();
        }
      }
      std::vector<std::vector<int>> full;
      if (!link.exchange(pending, observed, full)) break;
      if (prof != nullptr) prof->begin("reconcile");
      // Chaos injection happens here — all shards paused, observations
      // already collected — so every injection is a pure function of the
      // (deterministic) barrier state and the chaos schedule.  Chaos
      // implies a single slice spanning the fleet (validated up front).
      EpochChaos epoch_chaos;
      if (chaos_eng != nullptr) {
        const int epoch_idx = control.epochs_run();
        const ChaosEngine::BarrierPlan barrier =
            chaos_eng->plan_barrier(epoch_idx, control.cluster().nodes());
        for (int node : barrier.failed_nodes) {
          const ClusterCapacity::RemoveOutcome rm =
              control.inject_node_failure(node);
          ++epoch_chaos.failed_nodes;
          epoch_chaos.displaced_pods += rm.displaced;
          epoch_chaos.stranded_pods += rm.stranded;
          chaos_eng->record_failure(epoch_idx, epoch_end, node, rm.displaced,
                                    rm.stranded);
        }
        for (std::size_t t : barrier.preempt_tenants) {
          int killed = 0;
          const std::size_t stages =
              plan.setups[t].workload.chain_models().size();
          for (std::size_t s = 0; s < stages; ++s) {
            const int busy =
                platforms[t - lo]->busy_pods_for(static_cast<int>(s));
            const int want = static_cast<int>(
                std::ceil(config.chaos.preempt_fraction *
                          static_cast<double>(busy)));
            killed +=
                platforms[t - lo]->preempt_busy(static_cast<int>(s), want);
          }
          if (killed > 0) {
            chaos_eng->record_preemption(epoch_idx, epoch_end,
                                         static_cast<int>(t), killed);
          }
          epoch_chaos.preempted_pods += killed;
        }
        epoch_chaos.storm_multiplier = barrier.storm_multiplier;
        if (config.chaos.cold_storms) {
          // x1.0 when calm — IEEE-exact, so arming storms without a storm
          // this epoch perturbs nothing.
          for (auto& platform : platforms) {
            if (platform) platform->set_startup_multiplier(
                barrier.storm_multiplier);
          }
          if (barrier.storm_started) {
            chaos_eng->record_storm(
                epoch_idx, epoch_end,
                epoch_end + static_cast<double>(config.chaos.storm_epochs) *
                                control.epoch_s());
          }
        }
      }
      control.reconcile(epoch_end, full, epoch_chaos);
      if (config.obs.timeline) {
        // One row per (slice tenant, stage), in tenant-index order,
        // reading the *post-reconcile* packing — all simulated state, so
        // the timeline is part of the bit-identical artifact set.
        const EpochSnapshot& snap = control.history().back();
        const ClusterCapacity& cl = control.cluster();
        for (std::size_t i = 0; i < slice_n; ++i) {
          const std::size_t t = lo + i;
          for (; slo_cursor[i] < results[i].requests.size();
               ++slo_cursor[i]) {
            if (results[i].requests[slo_cursor[i]].violated) {
              ++slo_violations[i];
            }
          }
          for (std::size_t s = 0; s < observed[i].size(); ++s) {
            const int group = control.tenant_group(t, s);
            TimelineRow row;
            row.epoch = snap.epoch;
            row.sim_time = epoch_end;
            row.tenant = static_cast<std::uint32_t>(t);
            row.stage = static_cast<std::uint16_t>(s);
            row.observed_peak_busy = observed[i][s];
            row.allocated_pods =
                static_cast<int>(cl.assignment(group).size());
            row.pod_mc = cl.group_pod_mc(group);
            row.coresidency = cl.group_coresidency(group);
            row.completed = slo_cursor[i];
            row.violations = slo_violations[i];
            row.nodes = snap.nodes;
            row.nodes_ordered = snap.nodes_ordered;
            row.nodes_added = snap.nodes_added;
            row.nodes_removed = snap.nodes_removed;
            row.displaced_pods = snap.displaced_pods;
            row.utilization = snap.utilization;
            row.chaos_failed_nodes = snap.chaos.failed_nodes;
            row.chaos_preempted_pods = snap.chaos.preempted_pods;
            row.chaos_stranded_pods = snap.chaos.stranded_pods;
            row.chaos_storm_mult = snap.chaos.storm_multiplier;
            out.timeline.push_back(row);
          }
        }
      }
      if (stream) {
        // Fold (and free) every tenant that finished its stream this
        // epoch — after the timeline read, which still wanted the log.
        for (std::size_t i = 0; i < slice_n; ++i) {
          if (folded[i] == 0 &&
              results[i].requests.size() ==
                  static_cast<std::size_t>(config.tenants[lo + i].requests)) {
            stream_fold(i);
          }
        }
      }
      if (prof != nullptr) prof->end();
      epoch_end += control.epoch_s();
    }
  }

  // ---- Fold the remainder in tenant order (fixed fold => reproducible
  // bits; in streaming mode only tenants finishing in the last partial
  // epoch are left).
  if (stream) {
    for (std::size_t i = 0; i < slice_n; ++i) {
      if (folded[i] == 0) stream_fold(i);
    }
  } else {
    out.tenants.reserve(slice_n);
    for (std::size_t i = 0; i < slice_n; ++i) {
      const std::size_t t = lo + i;
      const RunResult& r = results[i];
      TenantFold fold;
      fold.requests = r.requests.size();
      std::uint64_t viol = 0;
      double cpu = 0.0;
      for (const auto& req : r.requests) {
        viol += req.violated ? 1 : 0;
        cpu += req.cpu_mc;
      }
      fold.violations = viol;
      fold.cpu_sum = cpu;
      fold.coresidency = control.tenant_coresidency(t);
      fold.e2e = r.e2e_distribution();
      fold.e2e_hist = Histogram(0.0, config.hist_max_s, config.hist_bins);
      for (double x : fold.e2e.sorted_samples()) fold.e2e_hist.add(x);
      out.slice_hist.merge(fold.e2e_hist);
      out.requests_total += fold.requests;
      out.violations_total += viol;
      out.cpu_total += cpu;
      // Tenant-order counter fold: platform tallies + hook tallies + ring
      // bookkeeping, merged exactly like the metric distributions.
      ObsCounters tc = counters[i];
      tc.invocations = platforms[i]->invocations();
      tc.cold_starts = platforms[i]->cold_starts();
      if (config.obs.trace) {
        tc.spans_recorded = rings[i].recorded();
        tc.spans_dropped = rings[i].dropped();
        rings[i].drain_to(out.spans);
      }
      out.counters.merge(tc);
      out.tenants.push_back(std::move(fold));
    }
  }
  if (chaos_eng != nullptr) {
    // Tenant-order fold, like every other merged tally.
    for (std::size_t i = 0; i < slice_n; ++i) {
      chaos_eng->add_requeued(platforms[i]->requeued());
    }
    // The cluster's counter is authoritative: it also covers stranding
    // during post-failure regrowth at reconcile, not just eviction time.
    chaos_eng->set_stranded_total(control.cluster().stranded_pods());
  }
  for (std::size_t s = 0; s < shards; ++s) {
    out.events_executed += engines[s]->executed();
    out.peak_pending = std::max(out.peak_pending, engine_obs[s].peak_pending);
    // Makespan: per-tenant event times are grouping-independent, so the
    // max over engines is the same number at any shard layout.
    out.sim_end_s = std::max(out.sim_end_s, engines[s]->last_event_s());
  }
  out.epochs = control.epochs_run();
  out.final_nodes = control.cluster().nodes();
  out.cluster_utilization = control.cluster().utilization();
  out.overcommitted_pods = control.cluster().overcommitted_pods();
  out.epoch_log = control.history();
  return out;
}

// ---------------------------------------------------------------------------
// Forked multi-process execution.  The parent plans once, forks P workers
// that inherit the plan copy-on-write, coordinates their epoch barriers
// (global pending-OR + full-matrix broadcast; every worker reconciles the
// identical matrix), then collects one length-prefixed slice blob per
// worker.

struct WorkerProc {
  pid_t pid = -1;
  int cmd_fd = -1;   // parent -> worker: 'S' stop | 'C' + full matrix
  int data_fd = -1;  // worker -> parent: barrier observations, final blob
  std::size_t lo = 0;
  std::size_t hi = 0;
};

std::vector<FleetSliceOutcome> run_forked_slices(const FleetConfig& config,
                                                 FleetPlan& plan) {
  const std::size_t n = config.tenants.size();
  const auto processes = static_cast<std::size_t>(config.processes);
  std::vector<int> stages(n);
  for (std::size_t t = 0; t < n; ++t) {
    stages[t] =
        static_cast<int>(plan.setups[t].workload.chain_models().size());
  }
  std::vector<WorkerProc> workers(processes);
  for (std::size_t p = 0; p < processes; ++p) {
    const std::size_t lo = p * n / processes;
    const std::size_t hi = (p + 1) * n / processes;
    int cmd[2];
    int data[2];
    require(::pipe(cmd) == 0 && ::pipe(data) == 0,
            "fleet worker pipe() failed");
    const pid_t pid = ::fork();
    require(pid >= 0, "fleet worker fork() failed");
    if (pid == 0) {
      // Worker: drop the parent-side ends (ours and every earlier
      // worker's, inherited across fork), run the slice, ship the blob.
      ::close(cmd[1]);
      ::close(data[0]);
      for (std::size_t q = 0; q < p; ++q) {
        ::close(workers[q].cmd_fd);
        ::close(workers[q].data_fd);
      }
      int exit_code = 0;
      try {
        PipeLink link(cmd[0], data[1], plan.control->live(), &stages);
        const FleetSliceOutcome slice =
            execute_slice(config, plan, lo, hi, link, nullptr);
        const std::vector<std::uint8_t> blob = encode_slice(slice);
        const std::uint64_t len = blob.size();
        write_all(data[1], &len, sizeof(len));
        write_all(data[1], blob.data(), blob.size());
      } catch (...) {
        exit_code = 1;
      }
      // Skip atexit/static destructors: this address space is a fork of a
      // mid-run parent and must not run its teardown.
      std::_Exit(exit_code);
    }
    ::close(cmd[0]);
    ::close(data[1]);
    workers[p] = WorkerProc{pid, cmd[1], data[0], lo, hi};
  }

  // Barrier coordination (live control plane only; the static path has no
  // barriers — workers run to drain and ship their blob).
  if (plan.control->live()) {
    for (;;) {
      bool any_pending = false;
      std::vector<std::vector<int>> full(n);
      for (const WorkerProc& w : workers) {
        std::size_t ints = 0;
        for (std::size_t t = w.lo; t < w.hi; ++t) {
          ints += static_cast<std::size_t>(stages[t]);
        }
        std::vector<std::uint8_t> buf(1 + ints * 4);
        read_all(w.data_fd, buf.data(), buf.size());
        codec::ByteReader r(buf.data(), buf.size());
        any_pending = (r.u8() != 0) || any_pending;
        for (std::size_t t = w.lo; t < w.hi; ++t) {
          full[t].resize(static_cast<std::size_t>(stages[t]));
          for (int& v : full[t]) v = r.i32();
        }
      }
      if (!any_pending) {
        const std::uint8_t stop = 'S';
        for (const WorkerProc& w : workers) write_all(w.cmd_fd, &stop, 1);
        break;
      }
      codec::ByteWriter w;
      w.u8('C');
      for (const auto& row : full) {
        for (int v : row) w.i32(v);
      }
      for (const WorkerProc& worker : workers) {
        write_all(worker.cmd_fd, w.bytes().data(), w.bytes().size());
      }
    }
  }

  // Collect blobs (worker order == tenant-index order), then reap.
  std::vector<FleetSliceOutcome> slices;
  slices.reserve(processes);
  for (const WorkerProc& w : workers) {
    std::uint64_t len = 0;
    read_all(w.data_fd, &len, sizeof(len));
    std::vector<std::uint8_t> blob(static_cast<std::size_t>(len));
    read_all(w.data_fd, blob.data(), blob.size());
    slices.push_back(decode_slice(blob));
  }
  for (const WorkerProc& w : workers) {
    ::close(w.cmd_fd);
    ::close(w.data_fd);
    int status = 0;
    require(::waitpid(w.pid, &status, 0) == w.pid &&
                WIFEXITED(status) && WEXITSTATUS(status) == 0,
            "fleet worker process failed");
  }
  return slices;
}

}  // namespace

std::string FleetResult::to_json() const {
  std::ostringstream os;
  os << "{\n  \"shards\": " << shards << ",\n  \"processes\": " << processes
     << ",\n  \"streamed\": " << (streamed ? "true" : "false")
     << ",\n  \"tenants\": [\n";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantResult& tr = tenants[t];
    os << "    {\"name\": \"" << json_escape(tr.name) << "\", \"workload\": \""
       << json_escape(tr.workload) << "\", \"policy\": \""
       << json_escape(tr.policy) << "\", \"arrivals\": \""
       << to_string(tr.arrivals)
       << "\", \"requests\": " << tr.requests
       << ", \"slo_s\": " << fmt_double(tr.slo)
       << ", \"violation_rate\": " << fmt_double(tr.violation_rate)
       << ", \"mean_cpu_mc\": " << fmt_double(tr.mean_cpu_mc)
       << ", \"p50_e2e_s\": " << fmt_double(tr.e2e_p50)
       << ", \"p99_e2e_s\": " << fmt_double(tr.e2e_p99)
       << ", \"coresidency\": " << fmt_double(tr.coresidency) << "}"
       << (t + 1 < tenants.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"fleet\": {\"requests\": " << total_requests
     << ", \"violation_rate\": " << fmt_double(fleet_violation_rate)
     << ", \"mean_cpu_mc\": " << fmt_double(fleet_mean_cpu_mc)
     << ", \"p50_e2e_s\": " << fmt_double(fleet_p50)
     << ", \"p99_e2e_s\": " << fmt_double(fleet_p99)
     << ", \"sim_end_s\": " << fmt_double(sim_end_s)
     << ", \"cluster_utilization\": " << fmt_double(cluster_utilization)
     << ", \"overcommitted_pods\": " << overcommitted_pods << "},\n"
     << "  \"control\": {\"epochs\": " << epochs
     << ", \"final_nodes\": " << final_nodes
     << ", \"nodes_added\": " << nodes_added
     << ", \"nodes_removed\": " << nodes_removed << "},\n";
  if (chaos_enabled) {
    os << "  \"chaos\": {\"node_failures\": " << chaos.node_failures
       << ", \"displaced_pods\": " << chaos.displaced_pods
       << ", \"stranded_pods\": " << chaos.stranded_pods
       << ", \"preemption_bursts\": " << chaos.preemption_bursts
       << ", \"preempted_pods\": " << chaos.preempted_pods
       << ", \"requeued_invocations\": " << chaos.requeued_invocations
       << ", \"storms\": " << chaos.storms
       << ", \"flash_windows\": " << chaos.flash_windows
       << ", \"events\": [";
    for (std::size_t e = 0; e < chaos_log.size(); ++e) {
      const ChaosEvent& ev = chaos_log[e];
      os << (e > 0 ? ", " : "") << "{\"family\": \"" << to_string(ev.family)
         << "\", \"epoch\": " << ev.epoch
         << ", \"sim_time_s\": " << fmt_double(ev.sim_time)
         << ", \"tenant\": " << ev.tenant << ", \"node\": " << ev.node
         << ", \"pods\": " << ev.pods << ", \"stranded\": " << ev.stranded
         << ", \"magnitude\": " << fmt_double(ev.magnitude)
         << ", \"until_s\": " << fmt_double(ev.until_s) << "}";
    }
    os << "]},\n";
  }
  os << "  \"obs\": {\"events_executed\": " << obs.events_executed
     << ", \"invocations\": " << obs.counters.invocations
     << ", \"cold_starts\": " << obs.counters.cold_starts
     << ", \"queued\": " << obs.counters.queued
     << ", \"spans_recorded\": " << obs.counters.spans_recorded
     << ", \"spans_dropped\": " << obs.counters.spans_dropped
     << ", \"spans_retained\": " << obs.spans.size()
     << ", \"timeline_rows\": " << obs.timeline.size()
     << ", \"peak_pending\": " << obs.peak_pending
     << ", \"phases\": [";
  for (std::size_t p = 0; p < obs.phases.size(); ++p) {
    os << (p > 0 ? ", " : "") << "{\"name\": \""
       << json_escape(obs.phases[p].name)
       << "\", \"seconds\": " << fmt_double(obs.phases[p].seconds)
       << ", \"entries\": " << obs.phases[p].entries << "}";
  }
  os << "]},\n"
     << "  \"wall_seconds\": " << fmt_double(wall_seconds) << "\n}\n";
  return os.str();
}

FleetResult merge_fleet_slices(const FleetConfig& config,
                               std::vector<FleetSliceOutcome> slices) {
  const std::size_t n = config.tenants.size();
  require(!slices.empty(), "fleet merge needs >= 1 slice");
  std::sort(slices.begin(), slices.end(),
            [](const FleetSliceOutcome& a, const FleetSliceOutcome& b) {
              return a.lo < b.lo;
            });
  std::size_t covered = 0;
  for (const FleetSliceOutcome& s : slices) {
    require(s.lo == covered && s.hi > s.lo,
            "slices must tile the tenant range contiguously");
    require(s.stream == slices.front().stream,
            "cannot merge streaming and non-streaming slices");
    require(s.fleet_seed == config.seed,
            "slice was produced under a different fleet seed");
    require(s.epochs == slices.front().epochs &&
                s.final_nodes == slices.front().final_nodes,
            "slices disagree on the control-plane summary");
    covered = s.hi;
  }
  require(covered == n, "slices do not cover every tenant");
  const bool stream = slices.front().stream;

  FleetResult out;
  out.shards = config.shards;
  out.processes = config.processes;
  out.streamed = stream;
  // Control summary — identical in every slice (each reconciled the same
  // observation matrix), so the first one speaks for the fleet.
  out.epochs = slices.front().epochs;
  out.final_nodes = slices.front().final_nodes;
  out.cluster_utilization = slices.front().cluster_utilization;
  out.overcommitted_pods = slices.front().overcommitted_pods;
  out.epoch_log = std::move(slices.front().epoch_log);
  for (const EpochSnapshot& snap : out.epoch_log) {
    out.nodes_added += snap.nodes_added;
    out.nodes_removed += snap.nodes_removed;
  }

  out.fleet_hist = Histogram(0.0, config.hist_max_s, config.hist_bins);
  double cpu_total = 0.0;
  std::size_t violations = 0;
  std::size_t total = 0;
  if (!stream) out.tenants.reserve(n);
  for (FleetSliceOutcome& slice : slices) {
    if (stream) {
      out.fleet_hist.merge(slice.slice_hist);
      total += static_cast<std::size_t>(slice.requests_total);
      violations += static_cast<std::size_t>(slice.violations_total);
      cpu_total += slice.cpu_total;
    } else {
      for (std::size_t j = 0; j < slice.tenants.size(); ++j) {
        const std::size_t t = slice.lo + j;
        TenantFold& fold = slice.tenants[j];
        const TenantSpec& spec = config.tenants[t];
        TenantResult tr;
        tr.name = spec.name.empty()
                      ? spec.workload + "-" + std::to_string(t)
                      : spec.name;
        tr.workload = spec.workload;
        tr.policy = spec.policy;
        tr.arrivals = spec.arrivals.kind;
        tr.requests = static_cast<int>(fold.requests);
        tr.slo = tenant_slo(spec, workload_by_name(spec.workload));
        tr.violation_rate =
            fold.requests > 0 ? static_cast<double>(fold.violations) /
                                    static_cast<double>(fold.requests)
                              : 0.0;
        tr.mean_cpu_mc = fold.requests > 0
                             ? fold.cpu_sum /
                                   static_cast<double>(fold.requests)
                             : 0.0;
        tr.coresidency = fold.coresidency;
        tr.e2e = std::move(fold.e2e);
        tr.e2e_p50 = tr.e2e.percentile(50.0);
        tr.e2e_p99 = tr.e2e.percentile(99.0);
        tr.e2e_hist = std::move(fold.e2e_hist);
        out.fleet_e2e.merge(tr.e2e);
        out.fleet_hist.merge(tr.e2e_hist);
        cpu_total += fold.cpu_sum;
        violations += static_cast<std::size_t>(fold.violations);
        total += static_cast<std::size_t>(fold.requests);
        out.tenants.push_back(std::move(tr));
      }
    }
    out.obs.counters.merge(slice.counters);
    out.obs.spans.insert(out.obs.spans.end(), slice.spans.begin(),
                         slice.spans.end());
    out.obs.timeline.insert(out.obs.timeline.end(), slice.timeline.begin(),
                            slice.timeline.end());
    out.obs.events_executed += slice.events_executed;
    out.obs.peak_pending =
        std::max(out.obs.peak_pending, slice.peak_pending);
    out.sim_end_s = std::max(out.sim_end_s, slice.sim_end_s);
  }
  // Timeline rows arrive slice by slice but the artifact's canonical order
  // is (epoch, tenant, stage); a stable sort restores it — and is the
  // identity permutation for a single slice, so one code path serves both.
  std::stable_sort(out.obs.timeline.begin(), out.obs.timeline.end(),
                   [](const TimelineRow& a, const TimelineRow& b) {
                     if (a.epoch != b.epoch) return a.epoch < b.epoch;
                     if (a.tenant != b.tenant) return a.tenant < b.tenant;
                     return a.stage < b.stage;
                   });
  out.total_requests = total;
  out.fleet_violation_rate =
      total > 0 ? static_cast<double>(violations) / static_cast<double>(total)
                : 0.0;
  out.fleet_mean_cpu_mc =
      total > 0 ? cpu_total / static_cast<double>(total) : 0.0;
  if (stream) {
    out.fleet_p50 = total > 0 ? out.fleet_hist.percentile(50.0) : 0.0;
    out.fleet_p99 = total > 0 ? out.fleet_hist.percentile(99.0) : 0.0;
  } else {
    out.fleet_p50 = out.fleet_e2e.percentile(50.0);
    out.fleet_p99 = out.fleet_e2e.percentile(99.0);
  }
  return out;
}

FleetResult run_fleet(const FleetConfig& config) {
  validate_fleet(config);
  const std::size_t n = config.tenants.size();
  log_info("fleet: ", n, " tenants on ", config.shards, " shards, ",
           config.processes, " processes, epoch_s=", config.epoch_s,
           ", seed=", config.seed,
           config.stream_metrics ? ", streaming merge" : "",
           config.chaos.enabled() ? ", chaos on" : "");

  // Self-profiling is always on: it is pure cold-path wall-clock
  // bookkeeping (a handful of steady_clock reads per epoch), reported in
  // the machine-dependent section alongside wall_seconds.
  PhaseProfiler prof;
  prof.begin("plan");
  FleetPlan plan = plan_fleet(config);

  const auto started = std::chrono::steady_clock::now();
  std::vector<FleetSliceOutcome> slices;
  if (config.processes <= 1) {
    LocalLink link(*plan.control);
    slices.push_back(execute_slice(config, plan, 0, n, link, &prof));
  } else {
    prof.begin("coordinate");
    slices = run_forked_slices(config, plan);
  }
  const auto finished = std::chrono::steady_clock::now();

  prof.begin("merge");
  FleetResult out = merge_fleet_slices(config, std::move(slices));
  out.wall_seconds =
      std::chrono::duration<double>(finished - started).count();
  if (plan.chaos_eng) {
    out.chaos_enabled = true;
    out.chaos = plan.chaos_eng->stats();
    out.chaos_log = plan.chaos_eng->log();
  }
  prof.end();
  out.obs.phases = prof.phases();
  return out;
}

FleetSliceOutcome run_fleet_slice(const FleetConfig& config, std::size_t lo,
                                  std::size_t hi) {
  validate_fleet(config);
  require(lo < hi && hi <= config.tenants.size(),
          "slice bounds must satisfy lo < hi <= tenants");
  require(config.epoch_s == kNoEpochs,
          "slice workers are restricted to the static path (epoch_s = "
          "infinity): live barriers need run_fleet's in-process fork "
          "coordination channel");
  require(!config.chaos.enabled(),
          "slice workers require chaos off (chaos tallies are fleet-wide)");
  FleetPlan plan = plan_fleet(config);
  LocalLink link(*plan.control);  // static: exchange never continues
  return execute_slice(config, plan, lo, hi, link, nullptr);
}

std::vector<TenantSpec> make_tenant_mix(
    int tenants, int requests_each, double base_rate, ArrivalKind kind,
    bool mixed_kinds, const std::vector<std::string>& policies) {
  require(tenants >= 1, "tenant mix needs >= 1 tenant");
  require(requests_each >= 1, "tenant mix needs >= 1 request per tenant");
  require(base_rate > 0.0, "tenant mix needs a positive base rate");
  for (const auto& policy : policies) {
    require_fleet_policy(policy);
  }
  std::vector<TenantSpec> out;
  out.reserve(static_cast<std::size_t>(tenants));
  constexpr ArrivalKind kCycle[] = {ArrivalKind::Poisson, ArrivalKind::Mmpp,
                                    ArrivalKind::Diurnal};
  for (int i = 0; i < tenants; ++i) {
    TenantSpec t;
    t.workload = (i % 2 == 0) ? "ia" : "va";
    t.name = t.workload + "-" + std::to_string(i);
    t.requests = requests_each;
    t.size_mc = 1600 + 100 * (i % 5);
    if (!policies.empty()) {
      t.policy = policies[static_cast<std::size_t>(i) % policies.size()];
    }
    t.arrivals.kind = mixed_kinds ? kCycle[i % 3] : kind;
    t.arrivals.rate = base_rate * (0.8 + 0.05 * static_cast<double>(i % 8));
    t.arrivals.burst_rate = 3.0 * t.arrivals.rate;
    t.arrivals.period_s = 300.0 + 60.0 * static_cast<double>(i % 4);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace janus
