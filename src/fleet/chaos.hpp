// Deterministic chaos engine for the fleet simulator.
//
// Injects four failure families into a fleet run — node failures, pod
// preemption, cold-start storms, flash crowds — as a pure function of
// (fleet seed, epoch index, tenant set).  Nothing here reads wall clock,
// shard layout, or thread scheduling: every draw comes from an Rng keyed
// on the chaos root seed plus the epoch or tenant index alone, and every
// injection happens either at plan time (flash windows rewrite the
// tenant's ArrivalSpec before any shard thread exists) or at the global
// reconciliation barrier (failures, preemption, storms), where all shards
// are paused and the cluster state is itself a deterministic fold.  Chaos
// runs are therefore bit-identical at any shard count and across reruns;
// chaos disabled takes zero different branches from a run without the
// engine at all.
//
// The barrier families act through existing mechanisms rather than a
// parallel simulator path: node failures call ClusterCapacity::fail_node
// (displaced pods re-pack, the remainder strands), preemption calls
// Platform::preempt_busy (in-flight invocations re-queue and re-pay
// startup + execution), storms scale Platform's startup delays, and flash
// crowds are the ArrivalSpec time-warp window — so policies experience
// chaos exactly the way they experience ordinary load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fleet/arrivals.hpp"

namespace janus {

enum class ChaosFamily { NodeFailure, Preemption, ColdStorm, FlashCrowd };

const char* to_string(ChaosFamily family) noexcept;

struct ChaosConfig {
  // Which families are armed.  All off (the default) disables the engine.
  bool node_failures = false;
  bool preemption = false;
  bool cold_storms = false;
  bool flash_crowds = false;
  /// Mixed into the fleet seed so the same workload can face different
  /// chaos schedules (janus_cli --chaos-seed).
  std::uint64_t seed = 7;

  // --- Node failures (at barriers) ---
  /// Probability a node fails at any one barrier (at most one per barrier).
  double node_fail_per_epoch = 0.15;
  /// Never fail below this many nodes (0 allows losing the whole cluster,
  /// which strands every displaced pod).
  int min_nodes = 2;

  // --- Pod preemption (at barriers) ---
  /// Per-tenant probability of a preemption burst at any one barrier.
  double preempt_per_epoch = 0.30;
  /// Fraction of the victim tenant's busy pods killed per stage (ceil).
  double preempt_fraction = 0.5;

  // --- Cold-start storms (at barriers, lasting storm_epochs) ---
  /// Probability a storm starts at a barrier while none is active.
  double storm_per_epoch = 0.12;
  /// Startup-delay multiplier while the storm lasts (warm and cold).
  double storm_multiplier = 8.0;
  int storm_epochs = 2;

  // --- Flash crowds (plan time: one window per tenant) ---
  /// Arrival-rate multiplier inside the tenant's window.
  double flash_k = 6.0;
  /// Window start is drawn uniformly in
  /// [flash_start_s, flash_start_s + flash_spread_s) per tenant, so crowds
  /// hit tenants at staggered, seed-determined times.
  Seconds flash_start_s = 0.0;
  Seconds flash_spread_s = 60.0;
  Seconds flash_window_s = 30.0;

  bool enabled() const noexcept {
    return node_failures || preemption || cold_storms || flash_crowds;
  }
  /// Families that act at reconciliation barriers and therefore need a
  /// finite epoch_s (flash crowds alone work on the static path too).
  bool needs_epochs() const noexcept {
    return node_failures || preemption || cold_storms;
  }
};

/// Parses a CLI chaos spec: a comma-separated subset of
/// {failures, preemption, storms, flash}, or "all", or "none".  Throws
/// std::invalid_argument (a usage-class error) on anything else.
ChaosConfig chaos_config_from_spec(const std::string& spec);

/// One injected chaos event — part of the deterministic audit trail
/// (compared bit-for-bit across shard counts, like the epoch log).
struct ChaosEvent {
  ChaosFamily family = ChaosFamily::NodeFailure;
  /// Barrier index for barrier families; -1 for flash windows (scheduled
  /// at plan time, before any epoch exists).
  int epoch = -1;
  Seconds sim_time = 0.0;
  int tenant = -1;  // preemption / flash; -1 for cluster-wide events
  int node = -1;    // failed node index (valid at failure time)
  int pods = 0;     // pods displaced (failure) or killed (preemption)
  int stranded = 0; // pods that could not be re-packed (failure)
  /// Storm or flash multiplier; 0 for the other families.
  double magnitude = 0.0;
  /// Event end: flash window end, or storm end barrier time.
  Seconds until_s = 0.0;
};

/// Aggregate chaos tallies for the scorecard (one per run).
struct ChaosStats {
  int node_failures = 0;
  int displaced_pods = 0;
  /// Pods dropped because no node could take them — the cluster's total,
  /// including stranding during post-failure regrowth (set at merge from
  /// ClusterCapacity::stranded_pods()).
  int stranded_pods = 0;
  int preemption_bursts = 0;
  int preempted_pods = 0;
  int storms = 0;
  int flash_windows = 0;
  /// Invocations that lost their pod mid-flight and re-paid startup +
  /// execution (summed over tenants in tenant order).
  std::uint64_t requeued_invocations = 0;
};

class ChaosEngine {
 public:
  /// `fleet_seed` is FleetConfig::seed; `tenants` the tenant count.  The
  /// chaos stream is keyed on fleet_seed ^ config.seed, so chaos draws
  /// never overlap tenant workload streams (which derive from fleet_seed
  /// and tenant index via a different mix).
  ChaosEngine(ChaosConfig config, std::uint64_t fleet_seed,
              std::size_t tenants);

  const ChaosConfig& config() const noexcept { return config_; }

  /// What one barrier injects.  Drawn from (root seed, epoch index) with a
  /// fixed draw order — node failure, per-tenant preemption, storm — so
  /// the schedule is independent of cluster or platform state except where
  /// stated (the failure victim needs the current node count, itself a
  /// deterministic fold).
  struct BarrierPlan {
    /// Node indices to fail, valid against the cluster as each failure is
    /// applied in order (at most one today; a vector so multi-failure
    /// barriers stay an additive change).
    std::vector<int> failed_nodes;
    /// Tenants hit by a preemption burst this barrier.
    std::vector<std::size_t> preempt_tenants;
    /// Startup multiplier in force after this barrier (1 = calm).
    double storm_multiplier = 1.0;
    /// True exactly when a storm began at this barrier.
    bool storm_started = false;
  };
  BarrierPlan plan_barrier(int epoch, int cluster_nodes);

  /// Plan-time flash window for one tenant: returns `spec` with the flash
  /// fields armed (window start staggered per tenant by seed), recording
  /// the event.  Returns `spec` unchanged when flash crowds are off.
  ArrivalSpec apply_flash(std::size_t tenant, ArrivalSpec spec);

  // Outcome recording (run_fleet reports what each injection actually did;
  // the engine owns the log so events stay in injection order).
  void record_failure(int epoch, Seconds sim_time, int node, int displaced,
                      int stranded);
  void record_preemption(int epoch, Seconds sim_time, int tenant, int pods);
  void record_storm(int epoch, Seconds sim_time, Seconds until_s);

  void add_requeued(std::uint64_t n) { stats_.requeued_invocations += n; }
  void set_stranded_total(int n) { stats_.stranded_pods = n; }

  const std::vector<ChaosEvent>& log() const noexcept { return log_; }
  const ChaosStats& stats() const noexcept { return stats_; }

 private:
  ChaosConfig config_;
  std::uint64_t root_ = 0;
  std::size_t tenants_ = 0;
  /// Barriers the active storm still covers (counts down as barriers pass).
  int storm_remaining_ = 0;
  std::vector<ChaosEvent> log_;
  ChaosStats stats_;
};

}  // namespace janus
