// Shared cluster capacity for the fleet simulator.
//
// The fleet plans each tenant's steady-state pod footprint up front
// (Little's law over its offered load) and bin-packs those pods onto a
// shared node pool.  Packing mirrors Platform::place: pods of one group
// (one tenant function) prefer the node already hosting the most pods of
// that group — commercial platforms pack same-function instances together —
// which is exactly what creates the co-location interference of Fig 1c.
// The resulting per-group co-residency feeds back into InterferenceModel
// through CoLocationDistribution::concentrated, so tenants contend through
// the placement rather than through an exogenous knob.
//
// The packing is a pure function of the request sequence (no randomness,
// no runtime state), so fleet results stay bit-identical at any shard
// count.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace janus {

struct ClusterConfig {
  int nodes = 16;
  Millicores node_capacity_mc = 52000;  // testbed: 52 physical cores
};

class ClusterCapacity {
 public:
  explicit ClusterCapacity(ClusterConfig config);

  int nodes() const noexcept { return static_cast<int>(used_.size()); }
  Millicores node_capacity_mc() const noexcept {
    return config_.node_capacity_mc;
  }
  Millicores used_mc(int node) const;
  /// Total allocated / total capacity (can exceed 1 when overcommitted).
  double utilization() const;
  /// Pods placed past a node's capacity (saturated cluster).
  int overcommitted_pods() const noexcept { return overcommitted_; }

  /// Places `count` pods of one group (one tenant function), each of
  /// `pod_mc` millicores, and returns the node index per pod.  Each pod
  /// goes to the node already hosting the most pods of this group that
  /// still has room; when no node has room the least-used node takes it
  /// anyway (overcommit — the simulator models CPU-share dilution through
  /// interference rather than rejecting pods).
  std::vector<int> place_group(int count, Millicores pod_mc);

  /// Mean same-group co-residency of a placement: the average, over pods,
  /// of how many of the group's pods share that pod's node (>= 1).
  static double mean_coresidency(const std::vector<int>& assignment);

 private:
  ClusterConfig config_;
  std::vector<Millicores> used_;
  int overcommitted_ = 0;
};

}  // namespace janus
