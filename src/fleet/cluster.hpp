// Shared cluster capacity for the fleet simulator: an autoscaling node
// pool with tracked pod groups.
//
// Each (tenant, stage) is one *group* of identically sized pods.  Packing
// mirrors Platform::place: pods of one group prefer the node already
// hosting the most pods of that group — commercial platforms pack
// same-function instances together — which is exactly what creates the
// co-location interference of Fig 1c.  The per-group co-residency feeds
// back into InterferenceModel through CoLocationDistribution::concentrated,
// so tenants contend through the placement rather than through an
// exogenous knob.
//
// The pool is *mutable*: the fleet's control plane resizes groups to the
// pod counts its Platforms actually ran each epoch, and autoscale_step
// grows or shrinks the node pool toward a utilization band.  Scale-out
// pays a configurable latency (nodes ordered now become usable epochs
// later); scale-in removes the emptiest nodes and deterministically
// re-packs the displaced pods.  Every operation is a pure function of the
// call sequence (no randomness, no hidden state), so fleet results stay
// bit-identical at any shard count; the plan-once pipeline is simply the
// sequence "add every group, never step".
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace janus {

struct ClusterConfig {
  int nodes = 16;
  Millicores node_capacity_mc = 52000;  // testbed: 52 physical cores
};

/// Utilization-band autoscaler knobs (consumed by autoscale_step; the pool
/// itself stays policy-free).
struct AutoscaleConfig {
  bool enabled = false;
  /// Grow when allocated/capacity exceeds this...
  double scale_out_utilization = 0.70;
  /// ...shrink when it falls below this (the gap is the hysteresis band).
  double scale_in_utilization = 0.30;
  int min_nodes = 1;
  int max_nodes = 1024;
  /// Most nodes added or removed in one step.
  int max_step_nodes = 4;
  /// Steps between ordering a node and it becoming usable (0 = instant).
  int scale_out_latency_epochs = 1;
};

class ClusterCapacity {
 public:
  explicit ClusterCapacity(ClusterConfig config);

  /// Usable nodes (pending scale-out orders not included).
  int nodes() const noexcept { return static_cast<int>(used_.size()); }
  /// Nodes ordered but still inside the scale-out latency window.
  int pending_nodes() const noexcept;
  Millicores node_capacity_mc() const noexcept {
    return config_.node_capacity_mc;
  }
  Millicores used_mc(int node) const;
  /// Total allocated / total capacity (can exceed 1 when overcommitted;
  /// defined as 0 when every node is gone).
  double utilization() const;
  /// Pods placed past a node's capacity so far (cumulative event count).
  int overcommitted_pods() const noexcept { return overcommitted_; }
  /// Pods that could not be placed anywhere (no node left) so far — the
  /// graceful degradation counter for node-failure chaos; such pods are
  /// dropped from their group, never an assert.
  int stranded_pods() const noexcept { return stranded_; }

  /// Places `count` pods of a new group (one tenant function), each of
  /// `pod_mc` millicores, and returns the group id.  Each pod goes to the
  /// node already hosting the most pods of this group that still has room;
  /// when no node has room the least-used node takes it anyway (overcommit
  /// — the simulator models CPU-share dilution through interference rather
  /// than rejecting pods).  `count` may be 0: the group exists, empty.
  int add_group(int count, Millicores pod_mc);

  /// One-shot convenience: add_group + a copy of its node assignment
  /// (kept for the plan-time path, tests, and benches).
  std::vector<int> place_group(int count, Millicores pod_mc);

  int group_count() const noexcept { return static_cast<int>(groups_.size()); }
  /// Node index per pod of the group, in placement order.
  const std::vector<int>& assignment(int group) const;
  /// Millicores per pod of the group (fixed at add_group; resize keeps it).
  /// Pod sizes vary per group now that tenant sizing policies allocate
  /// stages heterogeneously.
  Millicores group_pod_mc(int group) const;
  /// Mean same-group co-residency of the group's current placement.
  double group_coresidency(int group) const;

  /// Grows or shrinks a group to `count` pods.  Growth places the extra
  /// pods with the standard packing; shrinkage releases pods from the
  /// nodes where the group is thinnest first (spills unwind before the
  /// packed core breaks up).  No-op when the count already matches.
  void resize_group(int group, int count);

  /// What one autoscale step did (all zeros when autoscaling is disabled
  /// or the utilization sat inside the band).
  struct ScaleEvent {
    int ordered = 0;    // nodes ordered this step (usable after latency)
    int added = 0;      // nodes that became usable this step
    int removed = 0;    // nodes scaled in this step
    int displaced_pods = 0;  // pods re-packed because their node went away
  };

  /// One deterministic autoscaling step: matures pending scale-out orders,
  /// then grows toward `scale_out_utilization` or shrinks while below
  /// `scale_in_utilization` (emptiest node first, ties to the highest
  /// index; displaced groups re-pack in group-id order).
  ScaleEvent autoscale_step(const AutoscaleConfig& cfg);

  /// What one node removal did to the pods it hosted.
  struct RemoveOutcome {
    int displaced = 0;  // pods evicted and re-packed on surviving nodes
    int stranded = 0;   // pods dropped because no node could take them
  };

  /// Removes node `victim` outright (chaos node failure): evicts its pods
  /// group by group in id order, renumbers the surviving assignments, and
  /// re-packs the displaced pods with the standard packing — also in
  /// group-id order, so the outcome is a pure function of the call
  /// sequence.  Removing a node that hosts only zero-pod groups (or no
  /// groups) is a plain retirement.  When no node survives, the evicted
  /// pods are stranded (counted, dropped from their groups) rather than
  /// asserting.
  RemoveOutcome fail_node(int victim);

  /// Mean same-group co-residency of a placement: the average, over pods,
  /// of how many of the group's pods share that pod's node.  An empty
  /// placement has no pods co-resident with anything: 0.
  static double mean_coresidency(const std::vector<int>& assignment);

 private:
  struct Group {
    Millicores pod_mc = 0;
    std::vector<int> nodes;  // node index per pod
  };

  /// Packs up to `count` more pods of `group` (the add_group / grow rule);
  /// returns how many were actually placed.  With zero nodes left nothing
  /// can be placed: the shortfall is counted in stranded_ and the group
  /// simply stays smaller — degraded capacity, not a crash.
  int pack_pods(Group& group, int count);
  /// Releases `count` pods of `group`, thinnest nodes first.
  void release_pods(Group& group, int count);
  /// Scales in one node (emptiest, ties to the highest index); returns how
  /// many pods it displaced (re-packed).
  int remove_one_node();

  ClusterConfig config_;
  std::vector<Millicores> used_;
  std::vector<Group> groups_;
  /// Pending scale-out orders: {steps remaining, node count}.
  std::vector<std::pair<int, int>> orders_;
  int overcommitted_ = 0;
  int stranded_ = 0;
};

}  // namespace janus
