#include "profiler/profiler.hpp"

#include <functional>

namespace janus {

InterferenceParams workload_interference_params() {
  InterferenceParams p;
  p.slope_cpu = 0.05;
  p.slope_memory = 0.12;
  p.slope_io = 0.08;
  p.slope_network = 0.15;
  p.jitter_sigma = 0.10;
  return p;
}

LatencyProfile profile_function(const FunctionModel& model,
                                const ProfilerConfig& config) {
  config.grid.validate();
  require(config.samples_per_point > 0, "samples_per_point must be > 0");

  LatencyProfile profile(model.name(), config.grid);
  const auto cores = config.grid.cores();

  // One RNG stream per function name hash keeps profiles independent of
  // profiling order.
  Rng root(config.seed);
  const std::uint64_t fn_stream =
      std::hash<std::string>{}(model.name());
  Rng rng = root.split(fn_stream);

  for (std::size_t ci = 0; ci < config.grid.concurrencies.size(); ++ci) {
    const Concurrency c = config.grid.concurrencies[ci];
    if (c > 1 && !model.batchable()) continue;
    const CoLocationDistribution coloc =
        ci < config.colocation.size()
            ? config.colocation[ci]
            : CoLocationDistribution::for_concurrency(c);

    // Common random numbers across the k axis.
    const auto n = static_cast<std::size_t>(config.samples_per_point);
    std::vector<double> ws(n), interf(n);
    for (std::size_t i = 0; i < n; ++i) {
      ws[i] = model.sample_ws(c, rng);
      const int colocated = coloc.sample(rng);
      interf[i] = config.interference.sample_multiplier(model.dim(), colocated,
                                                        rng);
    }
    for (Millicores k : cores) {
      std::vector<double> samples;
      samples.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        samples.push_back(model.exec_time(k, c, ws[i], interf[i]));
      }
      profile.set_samples(k, c, std::move(samples));
    }
  }
  return profile;
}

std::vector<LatencyProfile> profile_workload(const WorkloadSpec& workload,
                                             const ProfilerConfig& config) {
  std::vector<LatencyProfile> out;
  for (const FunctionModel& model : workload.chain_models()) {
    out.push_back(profile_function(model, config));
  }
  return out;
}

ProfilerConfig default_profiler_config(const WorkloadSpec& workload) {
  ProfilerConfig config;
  config.grid.kmin = kDefaultKmin;
  config.grid.kmax = kDefaultKmax;
  config.grid.kstep = kDefaultKstep;
  config.grid.concurrencies.clear();
  for (Concurrency c = 1; c <= workload.max_concurrency; ++c) {
    config.grid.concurrencies.push_back(c);
  }
  config.interference = InterferenceModel(workload_interference_params());
  return config;
}

}  // namespace janus
