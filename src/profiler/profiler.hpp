// The developer-side profiler (§III-B).
//
// Runs each function across the (millicore × concurrency) grid under the
// runtime dynamics the developer expects in production — working-set
// variation plus co-location interference — and extracts the percentile
// profile.  Common random numbers are used across the millicore axis: the
// same (working set, interference) draws are re-evaluated at every size, so
// profiled latency is exactly monotone in k (an invariant the synthesizer's
// DP relies on, and which real profiling approximates with large samples).
#pragma once

#include <cstdint>

#include "model/function_model.hpp"
#include "model/interference.hpp"
#include "model/workloads.hpp"
#include "profiler/profile.hpp"

namespace janus {

struct ProfilerConfig {
  ProfileGrid grid;
  /// Draws per grid point (per concurrency; shared across the k axis).
  int samples_per_point = 3000;
  InterferenceModel interference{};
  /// Co-location seen during profiling, per concurrency; when empty,
  /// CoLocationDistribution::for_concurrency is used.
  std::vector<CoLocationDistribution> colocation;
  std::uint64_t seed = 7;
};

/// Interference parameters appropriate for the evaluation workflows: same
/// ordering as Fig 1c but gentler slopes — production chains do not contend
/// as brutally as the §II-B micro stress tests.
InterferenceParams workload_interference_params();

/// Profiles a single function over the grid.
LatencyProfile profile_function(const FunctionModel& model,
                                const ProfilerConfig& config);

/// Profiles every function of a workload (chain order).
std::vector<LatencyProfile> profile_workload(const WorkloadSpec& workload,
                                             const ProfilerConfig& config);

/// Default profiler configuration for a workload: grid 1000..3000 step 100,
/// concurrencies 1..max (batchable permitting), calibrated interference.
ProfilerConfig default_profiler_config(const WorkloadSpec& workload);

}  // namespace janus
