// Latency profiles: the developer-side artifact the synthesizer consumes.
//
// A profile stores, per (millicore, concurrency) grid point, the function's
// execution-time percentiles P1..P99.  The paper profiles CPU from 1000 to
// 3000 millicores in steps of 100 and percentiles from 1% to 99% in steps
// of 5 (always including P99, the non-head working percentile).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace janus {

/// The profiling grid (domain knowledge supplied by the developer).
struct ProfileGrid {
  Millicores kmin = kDefaultKmin;
  Millicores kmax = kDefaultKmax;
  Millicores kstep = kDefaultKstep;
  std::vector<Concurrency> concurrencies{1};

  std::vector<Millicores> cores() const;
  void validate() const;
};

/// Percentiles explored for head functions: 1..96 step 5 plus 99 (§III-B).
std::vector<Percentile> default_percentiles();

class LatencyProfile {
 public:
  LatencyProfile() = default;
  LatencyProfile(std::string function_name, ProfileGrid grid);

  const std::string& function_name() const noexcept { return name_; }
  const ProfileGrid& grid() const noexcept { return grid_; }

  /// Installs the sample set for one grid point.  Percentiles P1..P99 are
  /// extracted immediately; raw samples are retained for distribution-aware
  /// baselines (ORION convolves per-function samples).
  void set_samples(Millicores k, Concurrency c, std::vector<double> samples);

  /// L(p, k, c): profiled execution time in seconds.  `p` in [1, 99]; k
  /// must be on the grid; throws otherwise.
  Seconds latency(Percentile p, Millicores k, Concurrency c) const;

  /// L(p, k, c) rounded up to integral milliseconds (the synthesizer's
  /// budget grid).
  BudgetMs latency_ms(Percentile p, Millicores k, Concurrency c) const;

  /// The retained (sorted) samples for a grid point.
  const std::vector<double>& samples(Millicores k, Concurrency c) const;

  bool has_point(Millicores k, Concurrency c) const noexcept;

  /// CSV round-trip: columns fn,k,c,p1..p99.
  std::string to_csv() const;
  static LatencyProfile from_csv(const std::string& text);

  /// Approximate resident bytes (for the §V-H memory-footprint bench).
  std::size_t memory_bytes() const noexcept;

 private:
  std::size_t index_of(Millicores k, Concurrency c) const;

  std::string name_;
  ProfileGrid grid_;
  /// percentiles_[idx][p-1] = P_p latency; idx = conc-major, k-minor.
  std::vector<std::vector<double>> percentiles_;
  std::vector<std::vector<double>> samples_;
};

}  // namespace janus
