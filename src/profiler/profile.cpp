#include "profiler/profile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/csv.hpp"
#include "stats/quantile.hpp"

namespace janus {

std::vector<Millicores> ProfileGrid::cores() const {
  validate();
  std::vector<Millicores> out;
  for (Millicores k = kmin; k <= kmax; k += kstep) out.push_back(k);
  return out;
}

void ProfileGrid::validate() const {
  require(kmin > 0, "kmin must be > 0");
  require(kmax >= kmin, "kmax must be >= kmin");
  require(kstep > 0, "kstep must be > 0");
  require((kmax - kmin) % kstep == 0, "grid must land exactly on kmax");
  require(!concurrencies.empty(), "grid needs >= 1 concurrency");
  for (Concurrency c : concurrencies) {
    require(c >= 1, "concurrency must be >= 1");
  }
}

std::vector<Percentile> default_percentiles() {
  std::vector<Percentile> out;
  for (Percentile p = 1; p <= 96; p += 5) out.push_back(p);
  out.push_back(99);
  return out;
}

LatencyProfile::LatencyProfile(std::string function_name, ProfileGrid grid)
    : name_(std::move(function_name)), grid_(std::move(grid)) {
  grid_.validate();
  const std::size_t points =
      grid_.cores().size() * grid_.concurrencies.size();
  percentiles_.resize(points);
  samples_.resize(points);
}

std::size_t LatencyProfile::index_of(Millicores k, Concurrency c) const {
  require(k >= grid_.kmin && k <= grid_.kmax && (k - grid_.kmin) % grid_.kstep == 0,
          "millicores not on the profiling grid");
  const auto it = std::find(grid_.concurrencies.begin(),
                            grid_.concurrencies.end(), c);
  require(it != grid_.concurrencies.end(),
          "concurrency not on the profiling grid");
  const std::size_t ci =
      static_cast<std::size_t>(it - grid_.concurrencies.begin());
  const std::size_t ki = static_cast<std::size_t>((k - grid_.kmin) / grid_.kstep);
  return ci * grid_.cores().size() + ki;
}

void LatencyProfile::set_samples(Millicores k, Concurrency c,
                                 std::vector<double> samples) {
  require(!samples.empty(), "empty sample set");
  const std::size_t idx = index_of(k, c);
  std::sort(samples.begin(), samples.end());
  auto& table = percentiles_[idx];
  table.resize(99);
  for (Percentile p = 1; p <= 99; ++p) {
    table[static_cast<std::size_t>(p - 1)] =
        percentile_sorted(samples, static_cast<double>(p));
  }
  samples_[idx] = std::move(samples);
}

Seconds LatencyProfile::latency(Percentile p, Millicores k, Concurrency c) const {
  require(p >= 1 && p <= 99, "percentile outside [1,99]");
  const std::size_t idx = index_of(k, c);
  require(!percentiles_[idx].empty(), "grid point not profiled");
  return percentiles_[idx][static_cast<std::size_t>(p - 1)];
}

BudgetMs LatencyProfile::latency_ms(Percentile p, Millicores k,
                                    Concurrency c) const {
  return static_cast<BudgetMs>(std::ceil(latency(p, k, c) * 1000.0));
}

const std::vector<double>& LatencyProfile::samples(Millicores k,
                                                   Concurrency c) const {
  const std::size_t idx = index_of(k, c);
  require(!samples_[idx].empty(), "grid point not profiled");
  return samples_[idx];
}

bool LatencyProfile::has_point(Millicores k, Concurrency c) const noexcept {
  try {
    return !percentiles_[index_of(k, c)].empty();
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::string LatencyProfile::to_csv() const {
  CsvDoc doc;
  doc.header = {"fn", "k", "c"};
  for (Percentile p = 1; p <= 99; ++p) {
    doc.header.push_back("p" + std::to_string(p));
  }
  for (Concurrency c : grid_.concurrencies) {
    for (Millicores k : grid_.cores()) {
      const std::size_t idx = index_of(k, c);
      if (percentiles_[idx].empty()) continue;
      std::vector<std::string> row{name_, std::to_string(k), std::to_string(c)};
      for (double v : percentiles_[idx]) {
        std::ostringstream os;
        os.precision(9);
        os << v;
        row.push_back(os.str());
      }
      doc.rows.push_back(std::move(row));
    }
  }
  return csv_encode(doc);
}

LatencyProfile LatencyProfile::from_csv(const std::string& text) {
  const CsvDoc doc = csv_decode(text);
  require(!doc.rows.empty(), "profile csv has no rows");
  // Reconstruct the grid from the rows present.
  std::vector<Millicores> ks;
  std::vector<Concurrency> cs;
  for (const auto& row : doc.rows) {
    const Millicores k = std::stoi(row[doc.column("k")]);
    const Concurrency c = std::stoi(row[doc.column("c")]);
    if (std::find(ks.begin(), ks.end(), k) == ks.end()) ks.push_back(k);
    if (std::find(cs.begin(), cs.end(), c) == cs.end()) cs.push_back(c);
  }
  std::sort(ks.begin(), ks.end());
  std::sort(cs.begin(), cs.end());
  ProfileGrid grid;
  grid.kmin = ks.front();
  grid.kmax = ks.back();
  grid.kstep = ks.size() > 1 ? ks[1] - ks[0] : 100;
  grid.concurrencies = cs;

  LatencyProfile profile(doc.rows.front()[doc.column("fn")], grid);
  for (const auto& row : doc.rows) {
    const Millicores k = std::stoi(row[doc.column("k")]);
    const Concurrency c = std::stoi(row[doc.column("c")]);
    const std::size_t idx = profile.index_of(k, c);
    auto& table = profile.percentiles_[idx];
    table.resize(99);
    for (Percentile p = 1; p <= 99; ++p) {
      table[static_cast<std::size_t>(p - 1)] =
          std::stod(row[doc.column("p" + std::to_string(p))]);
    }
    // Raw samples are not serialized; synthesize a minimal stand-in so
    // samples() keeps working for distribution-aware baselines.
    profile.samples_[idx] = table;
  }
  return profile;
}

std::size_t LatencyProfile::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const auto& v : percentiles_) bytes += v.capacity() * sizeof(double);
  for (const auto& v : samples_) bytes += v.capacity() * sizeof(double);
  return bytes;
}

}  // namespace janus
