#include "stats/codec.hpp"

#include <cstring>

namespace janus::codec {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  for (char c : s) u8(static_cast<std::uint8_t>(c));
}

std::uint8_t ByteReader::u8() {
  require(at_ < size_, "codec: read past end of stream");
  return data_[at_++];
}

std::uint16_t ByteReader::u16() {
  const std::uint16_t lo = u8();
  return static_cast<std::uint16_t>(lo | (std::uint16_t{u8()} << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  return lo | (std::uint32_t{u16()} << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  return lo | (std::uint64_t{u32()} << 32);
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  require(n <= remaining(), "codec: string length past end of stream");
  std::string s;
  s.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) s.push_back(static_cast<char>(u8()));
  return s;
}

void write_header(ByteWriter& w) {
  w.u32(kMagic);
  w.u16(kCodecVersion);
}

void read_header(ByteReader& r) {
  require(r.u32() == kMagic, "codec: bad magic (not a janus metrics stream)");
  require(r.u16() == kCodecVersion,
          "codec: unsupported metrics stream version");
}

// Per-record tags catch producer/consumer sequencing bugs (decoding a
// histogram where a distribution was written) without a schema language.
namespace {
enum Tag : std::uint8_t {
  kTagEmpirical = 1,
  kTagHistogram = 2,
  kTagObsCounters = 3,
  kTagEpoch = 4,
  kTagTimelineRow = 5,
  kTagSpan = 6,
};

void expect_tag(ByteReader& r, Tag tag) {
  require(r.u8() == tag, "codec: unexpected record tag");
}
}  // namespace

void encode(ByteWriter& w, const EmpiricalDistribution& d) {
  w.u8(kTagEmpirical);
  const auto& samples = d.sorted_samples();
  w.u64(samples.size());
  for (double s : samples) w.f64(s);
  w.f64(d.moment_mean());
  w.f64(d.moment_m2());
}

EmpiricalDistribution decode_empirical(ByteReader& r) {
  expect_tag(r, kTagEmpirical);
  const std::uint64_t n = r.u64();
  require(n * sizeof(double) <= r.remaining(),
          "codec: sample count past end of stream");
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) samples.push_back(r.f64());
  const double mean = r.f64();
  const double m2 = r.f64();
  return EmpiricalDistribution::from_sorted(std::move(samples), mean, m2);
}

void encode(ByteWriter& w, const Histogram& h) {
  w.u8(kTagHistogram);
  w.f64(h.lo());
  w.f64(h.hi());
  w.u64(h.bins());
  for (std::size_t i = 0; i < h.bins(); ++i) w.u64(h.bin_count(i));
  w.u64(h.underflow());
  w.u64(h.overflow());
  w.u64(h.total());
}

Histogram decode_histogram(ByteReader& r) {
  expect_tag(r, kTagHistogram);
  const double lo = r.f64();
  const double hi = r.f64();
  const std::uint64_t bins = r.u64();
  require(bins * sizeof(std::uint64_t) <= r.remaining(),
          "codec: bin count past end of stream");
  std::vector<std::size_t> counts;
  counts.reserve(static_cast<std::size_t>(bins));
  for (std::uint64_t i = 0; i < bins; ++i) {
    counts.push_back(static_cast<std::size_t>(r.u64()));
  }
  const auto underflow = static_cast<std::size_t>(r.u64());
  const auto overflow = static_cast<std::size_t>(r.u64());
  const auto total = static_cast<std::size_t>(r.u64());
  return Histogram::from_parts(lo, hi, std::move(counts), underflow, overflow,
                               total);
}

void encode(ByteWriter& w, const ObsCounters& c) {
  w.u8(kTagObsCounters);
  w.u64(c.invocations);
  w.u64(c.cold_starts);
  w.u64(c.queued);
  w.u64(c.spans_recorded);
  w.u64(c.spans_dropped);
}

ObsCounters decode_obs_counters(ByteReader& r) {
  expect_tag(r, kTagObsCounters);
  ObsCounters c;
  c.invocations = r.u64();
  c.cold_starts = r.u64();
  c.queued = r.u64();
  c.spans_recorded = r.u64();
  c.spans_dropped = r.u64();
  return c;
}

void encode(ByteWriter& w, const EpochSnapshot& s) {
  w.u8(kTagEpoch);
  w.i32(s.epoch);
  w.f64(s.sim_time);
  w.i32(s.nodes);
  w.i32(s.pending_nodes);
  w.f64(s.utilization);
  w.i32(s.nodes_ordered);
  w.i32(s.nodes_added);
  w.i32(s.nodes_removed);
  w.i32(s.groups_resized);
  w.i32(s.displaced_pods);
  w.i32(s.chaos.failed_nodes);
  w.i32(s.chaos.displaced_pods);
  w.i32(s.chaos.stranded_pods);
  w.i32(s.chaos.preempted_pods);
  w.f64(s.chaos.storm_multiplier);
}

EpochSnapshot decode_epoch(ByteReader& r) {
  expect_tag(r, kTagEpoch);
  EpochSnapshot s;
  s.epoch = r.i32();
  s.sim_time = r.f64();
  s.nodes = r.i32();
  s.pending_nodes = r.i32();
  s.utilization = r.f64();
  s.nodes_ordered = r.i32();
  s.nodes_added = r.i32();
  s.nodes_removed = r.i32();
  s.groups_resized = r.i32();
  s.displaced_pods = r.i32();
  s.chaos.failed_nodes = r.i32();
  s.chaos.displaced_pods = r.i32();
  s.chaos.stranded_pods = r.i32();
  s.chaos.preempted_pods = r.i32();
  s.chaos.storm_multiplier = r.f64();
  return s;
}

void encode(ByteWriter& w, const std::vector<EpochSnapshot>& log) {
  w.u64(log.size());
  for (const auto& s : log) encode(w, s);
}

std::vector<EpochSnapshot> decode_epoch_log(ByteReader& r) {
  const std::uint64_t n = r.u64();
  require(n <= r.remaining(), "codec: epoch count past end of stream");
  std::vector<EpochSnapshot> log;
  log.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) log.push_back(decode_epoch(r));
  return log;
}

void encode(ByteWriter& w, const TimelineRow& row) {
  w.u8(kTagTimelineRow);
  w.i32(row.epoch);
  w.f64(row.sim_time);
  w.u32(row.tenant);
  w.u16(row.stage);
  w.i32(row.observed_peak_busy);
  w.i32(row.allocated_pods);
  w.i32(row.pod_mc);
  w.f64(row.coresidency);
  w.u64(row.completed);
  w.u64(row.violations);
  w.i32(row.nodes);
  w.i32(row.nodes_ordered);
  w.i32(row.nodes_added);
  w.i32(row.nodes_removed);
  w.i32(row.displaced_pods);
  w.f64(row.utilization);
  w.i32(row.chaos_failed_nodes);
  w.i32(row.chaos_preempted_pods);
  w.i32(row.chaos_stranded_pods);
  w.f64(row.chaos_storm_mult);
}

TimelineRow decode_timeline_row(ByteReader& r) {
  expect_tag(r, kTagTimelineRow);
  TimelineRow row;
  row.epoch = r.i32();
  row.sim_time = r.f64();
  row.tenant = r.u32();
  row.stage = r.u16();
  row.observed_peak_busy = r.i32();
  row.allocated_pods = r.i32();
  row.pod_mc = r.i32();
  row.coresidency = r.f64();
  row.completed = r.u64();
  row.violations = r.u64();
  row.nodes = r.i32();
  row.nodes_ordered = r.i32();
  row.nodes_added = r.i32();
  row.nodes_removed = r.i32();
  row.displaced_pods = r.i32();
  row.utilization = r.f64();
  row.chaos_failed_nodes = r.i32();
  row.chaos_preempted_pods = r.i32();
  row.chaos_stranded_pods = r.i32();
  row.chaos_storm_mult = r.f64();
  return row;
}

void encode(ByteWriter& w, const std::vector<TimelineRow>& rows) {
  w.u64(rows.size());
  for (const auto& row : rows) encode(w, row);
}

std::vector<TimelineRow> decode_timeline(ByteReader& r) {
  const std::uint64_t n = r.u64();
  require(n <= r.remaining(), "codec: row count past end of stream");
  std::vector<TimelineRow> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) rows.push_back(decode_timeline_row(r));
  return rows;
}

void encode(ByteWriter& w, const SpanRecord& s) {
  w.u8(kTagSpan);
  w.u32(s.tenant);
  w.u32(s.request);
  w.u16(s.stage);
  w.u8(s.cold);
  w.u8(s.queued);
  w.i32(s.pod);
  w.i32(s.node);
  w.i32(s.colocated);
  w.i32(s.size_mc);
  w.f64(s.start_s);
  w.f64(s.queued_s);
  w.f64(s.startup_s);
  w.f64(s.exec_s);
  w.f64(s.interference);
}

SpanRecord decode_span(ByteReader& r) {
  expect_tag(r, kTagSpan);
  SpanRecord s;
  s.tenant = r.u32();
  s.request = r.u32();
  s.stage = r.u16();
  s.cold = r.u8();
  s.queued = r.u8();
  s.pod = r.i32();
  s.node = r.i32();
  s.colocated = r.i32();
  s.size_mc = r.i32();
  s.start_s = r.f64();
  s.queued_s = r.f64();
  s.startup_s = r.f64();
  s.exec_s = r.f64();
  s.interference = r.f64();
  return s;
}

void encode(ByteWriter& w, const std::vector<SpanRecord>& spans) {
  w.u64(spans.size());
  for (const auto& s : spans) encode(w, s);
}

std::vector<SpanRecord> decode_spans(ByteReader& r) {
  const std::uint64_t n = r.u64();
  require(n <= r.remaining(), "codec: span count past end of stream");
  std::vector<SpanRecord> spans;
  spans.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) spans.push_back(decode_span(r));
  return spans;
}

}  // namespace janus::codec
