// Empirical distribution over a fixed sample set: percentile lookup, CDF
// evaluation, and CDF-series extraction for figure output.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace janus {

class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  /// Takes ownership of samples; sorts them once.  Throws on empty input.
  explicit EmpiricalDistribution(std::vector<double> samples);

  std::size_t size() const noexcept { return sorted_.size(); }
  bool empty() const noexcept { return sorted_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// Percentile with linear interpolation; p in [0, 100].
  double percentile(double p) const;

  /// Empirical CDF: fraction of samples <= x.
  double cdf(double x) const;

  /// Fraction of samples strictly greater than x (e.g. SLO violations).
  double fraction_above(double x) const;

  /// Evenly spaced (value, cumulative-probability) series with `points`
  /// entries, suitable for plotting Fig 1a / Fig 4 style CDFs.
  std::vector<std::pair<double, double>> cdf_series(std::size_t points) const;

  /// Merges `other`'s samples into this distribution (union of the two
  /// sample multisets) in O(n + m); moments combine by Chan's parallel
  /// update.  Commutative and associative on the samples exactly, and on
  /// the moments up to floating-point rounding.  Merging with an empty
  /// distribution is a no-op, so fleet-wide aggregation can fold per-shard
  /// partials in any grouping.
  void merge(const EmpiricalDistribution& other);

  /// Rebuilds a distribution from serialized state (codec decode path).
  /// `sorted` must already be sorted ascending; mean/m2 are taken verbatim
  /// so a decode(encode(d)) round-trip is bit-exact, not re-derived.
  static EmpiricalDistribution from_sorted(std::vector<double> sorted,
                                           double mean, double m2) {
    EmpiricalDistribution d;
    d.sorted_ = std::move(sorted);
    d.mean_ = mean;
    d.m2_ = m2;
    return d;
  }

  const std::vector<double>& sorted_samples() const noexcept { return sorted_; }
  double moment_mean() const noexcept { return mean_; }
  double moment_m2() const noexcept { return m2_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations, for stddev
};

}  // namespace janus
