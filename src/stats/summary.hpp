// Online summary statistics (Welford) — cheap aggregation for the DES
// metrics and the adapter's supervision counters.
#pragma once

#include <cstddef>

namespace janus {

class Summary {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

  /// Merges another summary (parallel reduction).
  void merge(const Summary& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace janus
