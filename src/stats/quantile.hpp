// Quantile computation: exact (on a sample vector) and streaming (the P²
// algorithm) variants.  Profiles in the paper are percentile tables, so the
// exact path is the workhorse; the streaming estimator supports the online
// adapter's supervision counters without retaining samples.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace janus {

/// Exact quantile with linear interpolation (the "linear"/type-7 convention
/// used by numpy.percentile, which the paper's pandas pipeline relies on).
/// `q` in [0, 1].  Throws on empty input or q outside [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Copies + sorts, then delegates to quantile_sorted.
double quantile(std::vector<double> samples, double q);

/// Percentile helper: p in [0, 100].
double percentile_sorted(const std::vector<double>& sorted, double p);

/// P² (Jain & Chlamtac) streaming quantile estimator: O(1) memory, no
/// sample retention.  Approximate; used for monitoring, not for profiles.
class P2Quantile {
 public:
  /// `q` in (0, 1).
  explicit P2Quantile(double q);

  void add(double x);
  /// Estimate of the q-quantile; exact while fewer than 5 samples seen.
  double value() const;
  std::size_t count() const noexcept { return count_; }

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

}  // namespace janus
