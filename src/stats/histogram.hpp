// Fixed-width histogram for quick-look distribution summaries in examples
// and for the trace synthesizer's self-checks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace janus {

class Histogram {
 public:
  /// Buckets [lo, hi) split into `bins` equal cells plus under/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_n(double x, std::size_t n) noexcept;

  /// Adds `other`'s counts (including under/overflow) into this histogram.
  /// Both histograms must share the exact bucket layout (lo, hi, bins);
  /// throws otherwise.  Exactly commutative and associative, so sharded
  /// fleet aggregation can fold partial histograms in any grouping.
  void merge(const Histogram& other);

  /// Rebuilds a histogram from serialized state (codec decode path).
  /// `total` must equal underflow + overflow + Σcounts; throws otherwise.
  static Histogram from_parts(double lo, double hi,
                              std::vector<std::size_t> counts,
                              std::size_t underflow, std::size_t overflow,
                              std::size_t total);

  /// Percentile with linear interpolation inside the owning bin, p in
  /// [0, 100].  Underflow mass resolves to lo(), overflow mass to hi() —
  /// the summary the streaming fleet reports when it has folded per-tenant
  /// sample sets away and only bin counts survive.
  double percentile(double p) const;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t bin_count(std::size_t i) const;
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::size_t bins() const noexcept { return counts_.size(); }

  /// ASCII rendering, one bucket per line, bar scaled to `width` chars.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace janus
