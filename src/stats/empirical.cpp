#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "common/types.hpp"
#include "stats/quantile.hpp"

namespace janus {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  require(!sorted_.empty(), "EmpiricalDistribution needs >= 1 sample");
  std::sort(sorted_.begin(), sorted_.end());
  // Welford over the sorted data (order does not matter for the moments).
  double mean = 0.0, m2 = 0.0;
  std::size_t n = 0;
  for (double x : sorted_) {
    ++n;
    const double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }
  mean_ = mean;
  m2_ = m2;
}

double EmpiricalDistribution::min() const {
  require(!empty(), "min of empty distribution");
  return sorted_.front();
}

double EmpiricalDistribution::max() const {
  require(!empty(), "max of empty distribution");
  return sorted_.back();
}

double EmpiricalDistribution::mean() const {
  require(!empty(), "mean of empty distribution");
  return mean_;
}

double EmpiricalDistribution::stddev() const {
  require(!empty(), "stddev of empty distribution");
  if (sorted_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(sorted_.size() - 1));
}

double EmpiricalDistribution::percentile(double p) const {
  return percentile_sorted(sorted_, p);
}

double EmpiricalDistribution::cdf(double x) const {
  if (empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::fraction_above(double x) const {
  return 1.0 - cdf(x);
}

void EmpiricalDistribution::merge(const EmpiricalDistribution& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  std::vector<double> merged(sorted_.size() + other.sorted_.size());
  std::merge(sorted_.begin(), sorted_.end(), other.sorted_.begin(),
             other.sorted_.end(), merged.begin());
  const double na = static_cast<double>(sorted_.size());
  const double nb = static_cast<double>(other.sorted_.size());
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  sorted_ = std::move(merged);
}

std::vector<std::pair<double, double>> EmpiricalDistribution::cdf_series(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1
                         ? 1.0
                         : static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile_sorted(sorted_, q), q);
  }
  return out;
}

}  // namespace janus
