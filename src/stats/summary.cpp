#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace janus {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double Summary::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  mean_ = (n1 * mean_ + n2 * other.mean_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace janus
