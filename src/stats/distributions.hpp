// Parametric samplers used by the workload models and the trace
// synthesizer.  All draw from janus::Rng so experiments stay deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace janus {

/// Lognormal parameterized by its *median* and the log-space sigma.  The
/// paper reports dispersion as P99/P50 ratios, and for a lognormal
/// P99/P50 = exp(2.326 * sigma), so this form maps directly onto the
/// published numbers.
class LogNormal {
 public:
  LogNormal(double median, double sigma);

  double sample(Rng& rng) const;
  /// Quantile function; q in (0, 1).
  double quantile(double q) const;
  double median() const noexcept { return median_; }
  double sigma() const noexcept { return sigma_; }

  /// Sigma such that quantile(0.99)/quantile(0.5) equals `ratio`.
  static double sigma_for_p99_over_p50(double ratio);

 private:
  double median_;
  double sigma_;
};

/// Bounded Pareto on [lo, hi] with tail index alpha — heavy-tailed function
/// durations for the Azure-like trace synthesizer.
class BoundedPareto {
 public:
  BoundedPareto(double lo, double hi, double alpha);
  double sample(Rng& rng) const;
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double alpha_;
};

/// Zipf over ranks 1..n with exponent s — function popularity in traces.
class Zipf {
 public:
  Zipf(std::size_t n, double s);
  /// Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const;
  double probability(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
};

/// Standard-normal inverse CDF (Acklam's rational approximation); used to
/// evaluate lognormal quantiles without a sampling loop.
double inverse_normal_cdf(double q);

}  // namespace janus
