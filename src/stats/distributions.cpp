#include "stats/distributions.hpp"

#include <cmath>

#include "common/types.hpp"

namespace janus {

double inverse_normal_cdf(double q) {
  require(q > 0.0 && q < 1.0, "inverse_normal_cdf q outside (0,1)");
  // Acklam's approximation, |relative error| < 1.15e-9.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1 - plow;

  if (q < plow) {
    const double r = std::sqrt(-2 * std::log(q));
    return (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]) /
           ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1);
  }
  if (q <= phigh) {
    const double r = q - 0.5;
    const double t = r * r;
    return (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) *
           r /
           (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1);
  }
  const double r = std::sqrt(-2 * std::log(1 - q));
  return -(((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]) /
         ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1);
}

LogNormal::LogNormal(double median, double sigma)
    : median_(median), sigma_(sigma) {
  require(median > 0.0, "lognormal median must be > 0");
  require(sigma >= 0.0, "lognormal sigma must be >= 0");
}

double LogNormal::sample(Rng& rng) const {
  return median_ * std::exp(sigma_ * rng.normal());
}

double LogNormal::quantile(double q) const {
  if (sigma_ == 0.0) return median_;
  return median_ * std::exp(sigma_ * inverse_normal_cdf(q));
}

double LogNormal::sigma_for_p99_over_p50(double ratio) {
  require(ratio >= 1.0, "P99/P50 ratio must be >= 1");
  return std::log(ratio) / inverse_normal_cdf(0.99);
}

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  require(lo > 0.0 && hi > lo, "bounded pareto needs 0 < lo < hi");
  require(alpha > 0.0, "bounded pareto alpha must be > 0");
}

double BoundedPareto::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  // Inverse CDF of the truncated Pareto.
  return std::pow(-(q * ha - q * la - ha) / (ha * la), -1.0 / alpha_);
}

double BoundedPareto::sample(Rng& rng) const { return quantile(rng.uniform()); }

Zipf::Zipf(std::size_t n, double s) {
  require(n > 0, "zipf needs n >= 1");
  require(s > 0.0, "zipf exponent must be > 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[rank] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double Zipf::probability(std::size_t rank) const {
  require(rank < cdf_.size(), "zipf rank out of range");
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace janus
