// Compact binary codec for the fleet's mergeable metrics.
//
// This is the wire format between `run_fleet` and its forked worker
// processes (and between `janus_cli fleet --shard-slice` runs and a later
// `--merge-slices` pass): EmpiricalDistribution, Histogram, ObsCounters,
// epoch snapshots, timeline rows, and span records, encoded
// field-by-field in explicit little-endian order.
//
// Contracts the multi-process merge leans on:
//
//  * Bit-exact round trips.  Doubles travel as their IEEE-754 bit
//    pattern (never printed/parsed), and EmpiricalDistribution carries
//    its running moments verbatim instead of re-deriving them, so
//    decode(encode(x)) == x to the last bit — the whole point of process
//    sharding being indistinguishable from the in-process path.
//  * Explicit byte order.  Values are assembled shift-by-shift, not
//    memcpy'd structs: no padding, no host-endianness, no ABI in the
//    format.
//  * Versioned envelope.  Every stream starts with magic + version; a
//    reader confronted with a future (or corrupt) stream throws instead
//    of misinterpreting bytes.  Bump kCodecVersion on any layout change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fleet/control.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "stats/empirical.hpp"
#include "stats/histogram.hpp"

namespace janus::codec {

inline constexpr std::uint32_t kMagic = 0x4a4e5343u;  // "JNSC"
// v2: FleetSliceOutcome gained sim_end_s (frontier achieved-rps makespan).
inline constexpr std::uint16_t kCodecVersion = 2;

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  // IEEE-754 bit pattern, bit-exact round trip
  void str(const std::string& s);

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a decoded buffer; every
/// overrun or mismatch throws (via require), nothing is silently zeroed.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  std::size_t remaining() const noexcept { return size_ - at_; }
  bool done() const noexcept { return at_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

/// Stream envelope: magic + codec version.  read_header throws on either
/// mismatching — the cross-version guard.
void write_header(ByteWriter& w);
void read_header(ByteReader& r);

void encode(ByteWriter& w, const EmpiricalDistribution& d);
EmpiricalDistribution decode_empirical(ByteReader& r);

void encode(ByteWriter& w, const Histogram& h);
Histogram decode_histogram(ByteReader& r);

void encode(ByteWriter& w, const ObsCounters& c);
ObsCounters decode_obs_counters(ByteReader& r);

void encode(ByteWriter& w, const EpochSnapshot& s);
EpochSnapshot decode_epoch(ByteReader& r);
void encode(ByteWriter& w, const std::vector<EpochSnapshot>& log);
std::vector<EpochSnapshot> decode_epoch_log(ByteReader& r);

void encode(ByteWriter& w, const TimelineRow& row);
TimelineRow decode_timeline_row(ByteReader& r);
void encode(ByteWriter& w, const std::vector<TimelineRow>& rows);
std::vector<TimelineRow> decode_timeline(ByteReader& r);

void encode(ByteWriter& w, const SpanRecord& s);
SpanRecord decode_span(ByteReader& r);
void encode(ByteWriter& w, const std::vector<SpanRecord>& spans);
std::vector<SpanRecord> decode_spans(ByteReader& r);

}  // namespace janus::codec
