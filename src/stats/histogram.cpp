#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/types.hpp"

namespace janus {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  require(hi > lo, "histogram hi must exceed lo");
  require(bins > 0, "histogram needs >= 1 bin");
}

void Histogram::add(double x) noexcept { add_n(x, 1); }

void Histogram::add_n(double x, std::size_t n) noexcept {
  total_ += n;
  if (x < lo_) {
    underflow_ += n;
    return;
  }
  if (x >= hi_) {
    overflow_ += n;
    return;
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / w);
  idx = std::min(idx, counts_.size() - 1);
  counts_[idx] += n;
}

void Histogram::merge(const Histogram& other) {
  require(lo_ == other.lo_ && hi_ == other.hi_ &&
              counts_.size() == other.counts_.size(),
          "histogram merge requires identical bucket layouts");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

Histogram Histogram::from_parts(double lo, double hi,
                                std::vector<std::size_t> counts,
                                std::size_t underflow, std::size_t overflow,
                                std::size_t total) {
  Histogram h(lo, hi, counts.size());
  h.counts_ = std::move(counts);
  h.underflow_ = underflow;
  h.overflow_ = overflow;
  h.total_ = total;
  std::size_t sum = underflow + overflow;
  for (auto c : h.counts_) sum += c;
  require(sum == total, "histogram parts do not sum to total");
  return h;
}

double Histogram::percentile(double p) const {
  require(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  require(total_ > 0, "percentile of an empty histogram");
  // Rank in [0, total); the sample at that rank resolves to its bin,
  // interpolated linearly by its position within the bin's count.
  const double rank = p / 100.0 * static_cast<double>(total_ - 1);
  double seen = static_cast<double>(underflow_);
  if (rank < seen) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (rank < seen + c) {
      const double frac = c > 0.0 ? (rank - seen) / c : 0.0;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    seen += c;
  }
  return hi_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  require(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  require(i < counts_.size(), "histogram bin out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(peak) * static_cast<double>(width)));
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace janus
