#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/types.hpp"

namespace janus {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  require(hi > lo, "histogram hi must exceed lo");
  require(bins > 0, "histogram needs >= 1 bin");
}

void Histogram::add(double x) noexcept { add_n(x, 1); }

void Histogram::add_n(double x, std::size_t n) noexcept {
  total_ += n;
  if (x < lo_) {
    underflow_ += n;
    return;
  }
  if (x >= hi_) {
    overflow_ += n;
    return;
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / w);
  idx = std::min(idx, counts_.size() - 1);
  counts_[idx] += n;
}

void Histogram::merge(const Histogram& other) {
  require(lo_ == other.lo_ && hi_ == other.hi_ &&
              counts_.size() == other.counts_.size(),
          "histogram merge requires identical bucket layouts");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  require(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  require(i < counts_.size(), "histogram bin out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(peak) * static_cast<double>(width)));
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace janus
