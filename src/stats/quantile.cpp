#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "common/types.hpp"

namespace janus {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  require(!sorted.empty(), "quantile of empty sample");
  require(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return quantile_sorted(samples, q);
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  require(p >= 0.0 && p <= 100.0, "percentile outside [0,100]");
  return quantile_sorted(sorted, p / 100.0);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  require(q > 0.0 && q < 1.0, "P2Quantile q outside (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  ++count_;

  // Locate the cell containing x and clamp extremes.
  std::size_t k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the interior markers with the parabolic (fallback linear) rule.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double np = positions_[i] + sign;
      // Piecewise-parabolic prediction.
      double nh = heights_[i] +
                  sign / (positions_[i + 1] - positions_[i - 1]) *
                      ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
                       (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (nh <= heights_[i - 1] || nh >= heights_[i + 1]) {
        // Degenerate parabola: fall back to linear interpolation.
        const std::size_t j = sign > 0 ? i + 1 : i - 1;
        nh = heights_[i] +
             sign * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      heights_[i] = nh;
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::array<double, 5> copy = heights_;
    // Insertion sort over at most 4 observed values.  std::sort's inlined
    // introsort trips GCC 12's -Warray-bounds false positive here under
    // -fsanitize=address, and a 4-element sort does not need it anyway.
    for (std::size_t i = 1; i < count_; ++i) {
      const double v = copy[i];
      std::size_t j = i;
      for (; j > 0 && copy[j - 1] > v; --j) copy[j] = copy[j - 1];
      copy[j] = v;
    }
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, count_ - 1);
    return copy[lo] + (pos - static_cast<double>(lo)) * (copy[hi] - copy[lo]);
  }
  return heights_[2];
}

}  // namespace janus
