#include "obs/trace.hpp"

#include <cstdio>

namespace janus {

void TraceRing::drain_to(std::vector<SpanRecord>& out) const {
  out.reserve(out.size() + count_);
  // Oldest retained span: head_ when the ring has wrapped, 0 before.
  const std::size_t first = count_ == spans_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(spans_[(first + i) % spans_.size()]);
  }
}

namespace {

/// Fixed-format doubles: snprintf with an explicit format is byte-stable
/// for a given value, which is what makes the exported artifacts
/// comparable with memcmp across shard counts and reruns.
std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Microsecond timestamps for trace_event (ts/dur are µs by spec);
/// millinanosecond precision keeps sub-millisecond startups visible.
std::string fmt_us(Seconds s) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", s * 1e6);
  return buf;
}

void append_complete_event(std::string& out, const SpanRecord& span,
                           const char* name, Seconds start, Seconds dur,
                           bool with_args) {
  out += R"({"ph":"X","pid":)";
  out += std::to_string(span.tenant);
  out += R"(,"tid":)";
  out += std::to_string(span.stage);
  out += R"(,"ts":)";
  out += fmt_us(start);
  out += R"(,"dur":)";
  out += fmt_us(dur);
  out += R"(,"name":")";
  out += name;
  out += '"';
  if (with_args) {
    out += R"(,"args":{"request":)";
    out += std::to_string(span.request);
    out += R"(,"pod":)";
    out += std::to_string(span.pod);
    out += R"(,"node":)";
    out += std::to_string(span.node);
    out += R"(,"colocated":)";
    out += std::to_string(span.colocated);
    out += R"(,"size_mc":)";
    out += std::to_string(span.size_mc);
    out += R"(,"interference":)";
    out += fmt_g(span.interference);
    out += '}';
  }
  out += "},\n";
}

}  // namespace

std::string trace_to_chrome_json(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[\n";
  // Process-name metadata: one per tenant, in first-appearance order
  // (spans arrive merged in tenant-index order, so this is tenant order).
  std::uint32_t last_tenant = ~std::uint32_t{0};
  for (const SpanRecord& span : spans) {
    if (span.tenant != last_tenant) {
      last_tenant = span.tenant;
      out += R"({"ph":"M","pid":)";
      out += std::to_string(span.tenant);
      out += R"(,"name":"process_name","args":{"name":"tenant )";
      out += std::to_string(span.tenant);
      out += "\"}},\n";
    }
  }
  for (const SpanRecord& span : spans) {
    Seconds at = span.start_s;
    if (span.queued_s > 0.0) {
      append_complete_event(out, span, "queue", at, span.queued_s, false);
      at += span.queued_s;
    }
    if (span.startup_s > 0.0) {
      append_complete_event(out, span,
                            span.cold != 0 ? "cold-start" : "warm-start", at,
                            span.startup_s, false);
      at += span.startup_s;
    }
    append_complete_event(out, span, "exec", at, span.exec_s, true);
  }
  // Drop the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string trace_to_csv(const std::vector<SpanRecord>& spans) {
  std::string out =
      "tenant,request,stage,start_s,queued_s,startup_s,exec_s,pod,node,"
      "colocated,size_mc,interference,cold,queued\n";
  for (const SpanRecord& span : spans) {
    out += std::to_string(span.tenant);
    out += ',';
    out += std::to_string(span.request);
    out += ',';
    out += std::to_string(span.stage);
    out += ',';
    out += fmt_g(span.start_s);
    out += ',';
    out += fmt_g(span.queued_s);
    out += ',';
    out += fmt_g(span.startup_s);
    out += ',';
    out += fmt_g(span.exec_s);
    out += ',';
    out += std::to_string(span.pod);
    out += ',';
    out += std::to_string(span.node);
    out += ',';
    out += std::to_string(span.colocated);
    out += ',';
    out += std::to_string(span.size_mc);
    out += ',';
    out += fmt_g(span.interference);
    out += ',';
    out += std::to_string(span.cold);
    out += ',';
    out += std::to_string(span.queued);
    out += '\n';
  }
  return out;
}

}  // namespace janus
