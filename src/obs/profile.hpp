// Self-profiling: a wall-clock phase breakdown of run_fleet (catalog
// synthesis + planning, per-shard simulation, barrier reconciliation,
// metric merge).
//
// Uses steady_clock — the one host clock janus-lint's determinism-time
// check deliberately allows, because it only ever *reports* elapsed wall
// time and never steers simulated behavior.  Phase seconds are therefore
// machine-dependent, like FleetResult::wall_seconds, and excluded from the
// bit-identical metric set; phase *names and order* are deterministic.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace janus {

class PhaseProfiler {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t entries = 0;  // how many begin() calls hit this phase
  };

  /// Closes the open phase (if any) and starts accumulating into `name`.
  /// Re-entering a name accumulates into the existing phase, so the
  /// simulate/reconcile alternation of the epoch loop folds into two rows.
  void begin(const char* name) {
    end();
    open_ = &slot(name);
    ++open_->entries;
    started_ = std::chrono::steady_clock::now();
  }

  /// Closes the open phase; harmless when none is open.
  void end() {
    if (open_ == nullptr) return;
    open_->seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - started_)
                          .count();
    open_ = nullptr;
  }

  /// Phases in first-begin() order (a deterministic order: it depends only
  /// on the code path, never on timing).
  const std::vector<Phase>& phases() const noexcept { return phases_; }

  double total_seconds() const noexcept {
    double total = 0.0;
    for (const Phase& phase : phases_) total += phase.seconds;
    return total;
  }

 private:
  Phase& slot(const char* name) {
    for (Phase& phase : phases_) {
      if (phase.name == name) return phase;
    }
    phases_.push_back(Phase{name, 0.0, 0});
    return phases_.back();
  }

  std::vector<Phase> phases_;
  Phase* open_ = nullptr;
  std::chrono::steady_clock::time_point started_{};
};

}  // namespace janus
