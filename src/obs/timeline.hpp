// Epoch timeline: one structured row per (reconciliation barrier, tenant,
// stage), built by run_fleet right after each ControlPlane::reconcile and
// merged in tenant-index order — the control plane's audit trail at
// per-stage resolution.
//
// Every field is either simulated state (sim_time, observed demand,
// post-repack allocation, co-residency, SLO attainment so far) or the
// epoch's deterministic autoscale outcome, so the emitted CSV/JSON is part
// of the bit-identical-at-any-shard-count artifact set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace janus {

struct TimelineRow {
  int epoch = 0;
  Seconds sim_time = 0.0;
  std::uint32_t tenant = 0;
  std::uint16_t stage = 0;
  /// Peak concurrently-busy pods the tenant's Platform observed this epoch
  /// (the demand signal published at the barrier).
  int observed_peak_busy = 0;
  /// Pods the control plane allocated to the (tenant, stage) group after
  /// this barrier's resize + repack.
  int allocated_pods = 0;
  Millicores pod_mc = 0;
  /// Mean same-group co-residency of the post-repack placement.
  double coresidency = 1.0;
  /// Tenant requests completed / in violation by this barrier (cumulative
  /// — "SLO attainment so far").
  std::uint64_t completed = 0;
  std::uint64_t violations = 0;
  // Epoch-level cluster state, repeated per row so the CSV stays flat.
  int nodes = 0;
  int nodes_ordered = 0;
  int nodes_added = 0;
  int nodes_removed = 0;
  int displaced_pods = 0;
  double utilization = 0.0;
  // Chaos injections at this barrier, repeated per row like the cluster
  // state (all defaults when the chaos engine is off or idle).  Appended
  // at the end of the CSV/JSON so pre-chaos consumers keep their column
  // positions.
  int chaos_failed_nodes = 0;
  int chaos_preempted_pods = 0;
  int chaos_stranded_pods = 0;
  double chaos_storm_mult = 1.0;
};

/// Flat CSV with a fixed header, rows in (epoch, tenant, stage) order.
std::string timeline_to_csv(const std::vector<TimelineRow>& rows);

/// JSON array of row objects — same data, same order.
std::string timeline_to_json(const std::vector<TimelineRow>& rows);

}  // namespace janus
