// Observability plane — shared configuration, counters, and the hot-path
// guard macro.
//
// Everything in src/obs/ obeys two contracts the rest of the tree is built
// on:
//
//  * Determinism: every artifact a run can export (spans, timelines,
//    counters) is timestamped in *simulated* seconds and merged in
//    tenant-index order, so for a fixed (seed, config) the bytes are
//    identical at any shard count and across reruns.  Wall-clock shows up
//    only in the self-profiling section (obs/profile.hpp), which is
//    documented as machine-dependent — the same carve-out FleetResult
//    already makes for wall_seconds.
//  * Near-zero overhead: hooks that sit on the JANUS_HOT event path are
//    a single pointer-null branch when observability is off (the default),
//    and allocation-free when it is on (preallocated rings, fixed-width
//    records).  janus-lint's hot-path-obs-guard check enforces that every
//    obs-sink access inside a JANUS_HOT function goes through JANUS_OBS.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/annotations.hpp"

/// The only sanctioned way to touch an observability sink from a JANUS_HOT
/// function: one predictable null test on the sink pointer, then the
/// recording expression.  With observability disabled the sink is null and
/// the branch is never taken, so the steady-state event path pays one
/// compare against a register.  janus-lint (hot-path-obs-guard) flags any
/// obs-sink access in a hot region that is not wrapped in this macro.
#define JANUS_OBS(sink, expr) \
  do {                        \
    if ((sink) != nullptr) {  \
      expr;                   \
    }                         \
  } while (0)

namespace janus {

/// Fleet-level observability switches (FleetConfig::obs).  Everything is
/// off by default; the hot-path hooks stay null-sink branches until a
/// front end (janus_cli --trace-out / --obs-timeline) turns a pillar on.
struct ObsConfig {
  /// Record per-request, per-stage spans into per-tenant rings.
  bool trace = false;
  /// Record one TimelineRow per (epoch, tenant, stage) at every
  /// reconciliation barrier.
  bool timeline = false;
  /// Deterministic span sampling: request r is recorded iff
  /// r % sample_every == 0.  Keyed on the request *index* (not arrival
  /// time or any shard-local state), so the sampled set is a pure function
  /// of the config — 1 records everything.
  int sample_every = 1;
  /// Span slots preallocated per tenant ring; the ring overwrites oldest
  /// and counts drops (no silent truncation).
  std::size_t ring_capacity = std::size_t{1} << 14;

  bool enabled() const noexcept { return trace || timeline; }
};

/// Deterministic event-path counters, accumulated per tenant and merged in
/// tenant-index order — part of the bit-identical result set.
struct ObsCounters {
  std::uint64_t invocations = 0;
  std::uint64_t cold_starts = 0;
  /// Invocations that waited for a pod (scale-out limit hit), cumulative —
  /// the hot-path JANUS_OBS hook in Platform::invoke.
  std::uint64_t queued = 0;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;

  void merge(const ObsCounters& other) noexcept {
    invocations += other.invocations;
    cold_starts += other.cold_starts;
    queued += other.queued;
    spans_recorded += other.spans_recorded;
    spans_dropped += other.spans_dropped;
  }
};

/// Per-engine (per-shard) gauges for the self-profiling pillar.  Calendar
/// occupancy depends on which tenants share a shard, so these are
/// *shard-layout dependent* and reported only in the machine-dependent
/// profile section, never in the bit-identical metric set.
struct EngineObs {
  std::uint64_t peak_pending = 0;

  JANUS_HOT void note_pending(std::size_t pending) noexcept {
    if (pending > peak_pending) {
      peak_pending = static_cast<std::uint64_t>(pending);
    }
  }
};

}  // namespace janus
