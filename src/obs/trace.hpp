// Request span tracing: fixed-width per-stage records in a preallocated
// ring buffer, exported as Chrome/Perfetto trace_event JSON or CSV.
//
// One SpanRecord covers one stage invocation of one request: where it ran
// (pod, node), what it paid (queue / startup / execute, in simulated
// seconds), and the contention it saw (co-residency at launch, the
// interference multiplier actually applied).  Timestamps are sim-time, so
// a trace is a pure function of (seed, config): byte-identical at any
// shard count and across reruns.
//
// The ring is per *tenant*, not per shard: a tenant's event stream is
// already shard-independent (the fleet's core contract), so draining the
// rings in tenant-index order yields a deterministic merged trace without
// any cross-shard coordination — and since each shard owns its tenants,
// recording needs no locks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/types.hpp"

namespace janus {

/// One stage invocation.  Fixed width (no strings, no heap) so recording
/// into the ring is a plain struct copy on the event path.
struct SpanRecord {
  std::uint32_t tenant = 0;
  std::uint32_t request = 0;
  std::uint16_t stage = 0;
  std::uint8_t cold = 0;    // paid a full cold start
  std::uint8_t queued = 0;  // waited for a pod (scale-out limit)
  std::int32_t pod = -1;
  std::int32_t node = -1;
  std::int32_t colocated = 1;  // same-function busy pods at launch
  std::int32_t size_mc = 0;    // allocation the sizing policy chose
  Seconds start_s = 0.0;       // sim-time the invocation entered the platform
  Seconds queued_s = 0.0;
  Seconds startup_s = 0.0;
  Seconds exec_s = 0.0;
  double interference = 1.0;

  Seconds total_s() const noexcept { return queued_s + startup_s + exec_s; }
  Seconds end_s() const noexcept { return start_s + total_s(); }
};

/// Preallocated overwrite-oldest span ring.  record() is allocation-free
/// and called from the (single-threaded per shard) completion event path;
/// drops are counted, never silent.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) {
    require(capacity > 0, "trace ring needs capacity >= 1");
    spans_.resize(capacity);
  }

  JANUS_HOT void record(const SpanRecord& span) noexcept {
    spans_[head_] = span;
    head_ = head_ + 1 == spans_.size() ? 0 : head_ + 1;
    if (count_ < spans_.size()) {
      ++count_;
    } else {
      ++dropped_;  // overwrote the oldest retained span
    }
  }

  std::size_t capacity() const noexcept { return spans_.size(); }
  std::size_t size() const noexcept { return count_; }
  /// Spans overwritten because the ring was full (raise ring_capacity or
  /// the sampling stride when this is nonzero).
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t recorded() const noexcept {
    return static_cast<std::uint64_t>(count_) + dropped_;
  }

  /// Appends the retained spans, oldest first, preserving record order.
  void drain_to(std::vector<SpanRecord>& out) const;

 private:
  std::vector<SpanRecord> spans_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // retained spans (<= capacity)
  std::uint64_t dropped_ = 0;
};

/// Chrome/Perfetto trace_event JSON ({"traceEvents": [...]}): open it at
/// ui.perfetto.dev or chrome://tracing.  pid = tenant, tid = stage; each
/// span emits up to three "X" (complete) events — queue, cold-start or
/// warm-start, exec — with sim-time timestamps in microseconds.
std::string trace_to_chrome_json(const std::vector<SpanRecord>& spans);

/// Flat CSV, one row per span, with a fixed header — the analysis-friendly
/// twin of the Chrome JSON.
std::string trace_to_csv(const std::vector<SpanRecord>& spans);

}  // namespace janus
