#include "obs/timeline.hpp"

#include <cstdio>

namespace janus {

namespace {

std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string timeline_to_csv(const std::vector<TimelineRow>& rows) {
  std::string out =
      "epoch,sim_time_s,tenant,stage,observed_peak_busy,allocated_pods,"
      "pod_mc,coresidency,completed,violations,nodes,nodes_ordered,"
      "nodes_added,nodes_removed,displaced_pods,utilization,"
      "chaos_failed_nodes,chaos_preempted_pods,chaos_stranded_pods,"
      "chaos_storm_mult\n";
  for (const TimelineRow& row : rows) {
    out += std::to_string(row.epoch);
    out += ',';
    out += fmt_g(row.sim_time);
    out += ',';
    out += std::to_string(row.tenant);
    out += ',';
    out += std::to_string(row.stage);
    out += ',';
    out += std::to_string(row.observed_peak_busy);
    out += ',';
    out += std::to_string(row.allocated_pods);
    out += ',';
    out += std::to_string(row.pod_mc);
    out += ',';
    out += fmt_g(row.coresidency);
    out += ',';
    out += std::to_string(row.completed);
    out += ',';
    out += std::to_string(row.violations);
    out += ',';
    out += std::to_string(row.nodes);
    out += ',';
    out += std::to_string(row.nodes_ordered);
    out += ',';
    out += std::to_string(row.nodes_added);
    out += ',';
    out += std::to_string(row.nodes_removed);
    out += ',';
    out += std::to_string(row.displaced_pods);
    out += ',';
    out += fmt_g(row.utilization);
    out += ',';
    out += std::to_string(row.chaos_failed_nodes);
    out += ',';
    out += std::to_string(row.chaos_preempted_pods);
    out += ',';
    out += std::to_string(row.chaos_stranded_pods);
    out += ',';
    out += fmt_g(row.chaos_storm_mult);
    out += '\n';
  }
  return out;
}

std::string timeline_to_json(const std::vector<TimelineRow>& rows) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TimelineRow& row = rows[i];
    out += R"({"epoch":)";
    out += std::to_string(row.epoch);
    out += R"(,"sim_time_s":)";
    out += fmt_g(row.sim_time);
    out += R"(,"tenant":)";
    out += std::to_string(row.tenant);
    out += R"(,"stage":)";
    out += std::to_string(row.stage);
    out += R"(,"observed_peak_busy":)";
    out += std::to_string(row.observed_peak_busy);
    out += R"(,"allocated_pods":)";
    out += std::to_string(row.allocated_pods);
    out += R"(,"pod_mc":)";
    out += std::to_string(row.pod_mc);
    out += R"(,"coresidency":)";
    out += fmt_g(row.coresidency);
    out += R"(,"completed":)";
    out += std::to_string(row.completed);
    out += R"(,"violations":)";
    out += std::to_string(row.violations);
    out += R"(,"nodes":)";
    out += std::to_string(row.nodes);
    out += R"(,"nodes_ordered":)";
    out += std::to_string(row.nodes_ordered);
    out += R"(,"nodes_added":)";
    out += std::to_string(row.nodes_added);
    out += R"(,"nodes_removed":)";
    out += std::to_string(row.nodes_removed);
    out += R"(,"displaced_pods":)";
    out += std::to_string(row.displaced_pods);
    out += R"(,"utilization":)";
    out += fmt_g(row.utilization);
    out += R"(,"chaos_failed_nodes":)";
    out += std::to_string(row.chaos_failed_nodes);
    out += R"(,"chaos_preempted_pods":)";
    out += std::to_string(row.chaos_preempted_pods);
    out += R"(,"chaos_stranded_pods":)";
    out += std::to_string(row.chaos_stranded_pods);
    out += R"(,"chaos_storm_mult":)";
    out += fmt_g(row.chaos_storm_mult);
    out += '}';
    if (i + 1 < rows.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

}  // namespace janus
