// Core value types shared across the Janus reproduction.
//
// The paper sizes functions in millicores (1000 mc = one CPU core) over the
// range [1000, 3000] with a 100 mc step, profiles latency at percentiles
// P1..P99 (step 5), and quantizes time budgets on a 1 ms grid.  These types
// make those units explicit so they cannot be mixed up silently.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace janus {

/// CPU allocation in millicores (1000 == one physical core).
using Millicores = int;

/// Latency percentile in [1, 99].  The paper's profiler never extrapolates
/// outside P1..P99 ("latency numbers out of the P1-P99 range are not
/// accounted for by Janus").
using Percentile = int;

/// Wall-clock durations inside the simulator, in seconds.
using Seconds = double;

/// Time budgets in the hints table are quantized to integral milliseconds
/// ("the synthesizer explores the potential time budgets with finer
/// granularity in milliseconds").
using BudgetMs = std::int64_t;

/// Batch size / concurrency level of a function instance.
using Concurrency = int;

/// Identifies a function within a workflow (index in topological order for
/// chains).
using FunctionId = int;

inline constexpr Millicores kDefaultKmin = 1000;
inline constexpr Millicores kDefaultKmax = 3000;
inline constexpr Millicores kDefaultKstep = 100;

inline constexpr Seconds ms_to_s(BudgetMs ms) noexcept {
  return static_cast<Seconds>(ms) / 1000.0;
}

inline constexpr BudgetMs s_to_ms(Seconds s) noexcept {
  // Round half away from zero; the cast truncates toward zero, so adding
  // +0.5 unconditionally would round negative durations toward zero
  // (-1.7 ms -> -1 instead of -2).
  return static_cast<BudgetMs>(s * 1000.0 + (s < 0.0 ? -0.5 : 0.5));
}

/// Throws std::invalid_argument with a uniform message prefix.  Used for
/// public-API precondition checks (Core Guidelines I.5/I.6: state and check
/// preconditions).
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw std::invalid_argument("janus: " + what);
}

inline void require(bool cond, const char* what) {
  if (!cond) throw_invalid(what);
}

}  // namespace janus
