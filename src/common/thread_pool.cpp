#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace janus {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // The constructor guarantees at least one worker, but guard anyway: with
  // zero workers the chunk count would be 0 (silently skipping every
  // iteration), and enqueuing instead would deadlock with nobody draining
  // the queue — run inline in that case.
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunk so tiny iteration bodies do not drown in queue overhead.
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futs.push_back(submit([&next, n, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace janus
