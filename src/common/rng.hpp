// Deterministic, splittable random number generation.
//
// Every stochastic component of the reproduction (working-set factors,
// interference draws, trace synthesis, request arrivals) pulls from a seeded
// xoshiro256** stream so experiments are reproducible bit-for-bit.  Streams
// are derived with SplitMix64 so parallel workers (e.g. the synthesizer's
// thread pool) get statistically independent substreams from one root seed.
#pragma once

#include <array>
#include <cstdint>

namespace janus {

/// SplitMix64: used to seed and to derive substreams.  Reference:
/// Steele, Lea, Flood, "Fast splittable pseudorandom number generators".
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Derives an independent substream; `stream` disambiguates siblings.
  Rng split(std::uint64_t stream) const noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  /// Lognormal with the given log-space mu/sigma.
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace janus
