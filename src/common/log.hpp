// Minimal leveled logging to stderr.  Benches keep this at Warn so their
// stdout stays machine-parsable; tests can raise verbosity when debugging.
#pragma once

#include <sstream>
#include <string>

namespace janus {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses "debug" | "info" | "warn" | "error" | "off"; throws on anything
/// else (CLI --log-level plumbing).
LogLevel log_level_from_string(const std::string& name);

/// Emits one complete line.  The line is formatted into a single buffer
/// and written with one fwrite under the logger mutex, so concurrent
/// writers (e.g. the fleet's shard threads) can never interleave
/// characters within a line — each line arrives whole or not at all.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::Debug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::Info, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::Warn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::Error, args...);
}

}  // namespace janus
