// Move-only callable with fixed inline storage and NO heap fallback.
//
// std::function heap-allocates any capture larger than its tiny internal
// buffer (16 bytes on libstdc++), which puts a malloc/free pair on every
// simulated event.  InlineFunction instead reserves `Capacity` bytes inline
// and makes an oversized capture a *compile error at the construction
// site* — the allocation-free event path is enforced by the type system,
// not by convention.  Dispatch is one ops-table pointer per object (invoke,
// relocate, destroy), so moving one is a memcpy-sized relocation and
// calling one is a single indirect call, same as std::function.
#pragma once

#include <cstddef>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

#include "common/annotations.hpp"

namespace janus {

template <typename Sig, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  JANUS_HOT InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for InlineFunction's inline storage; "
                  "grow Capacity or shrink the capture");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "capture over-aligned for InlineFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineFunction requires nothrow-movable captures");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = ops_of<Fn>();
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  JANUS_HOT R operator()(Args... args) {
    // std::function throws bad_function_call here; keep an equally loud
    // (and diagnosable) failure instead of a null indirect call.
    if (!ops_) throw std::bad_function_call();
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static const Ops* ops_of() noexcept {
    static constexpr Ops ops = {
        [](void* s, Args&&... args) -> R {
          return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
        },
        [](void* from, void* to) noexcept {
          ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
          static_cast<Fn*>(from)->~Fn();
        },
        [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); }};
    return &ops;
  }

  JANUS_HOT void take(InlineFunction& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace janus
