// Minimal JSON string escaping, shared by every emitter of machine-
// readable output (fleet results, bench_main artifacts) so the escaping
// rules cannot drift between them.  Header-only: bench_main uses it
// without linking the library.
#pragma once

#include <cstdio>
#include <string>

namespace janus {

/// Escapes `text` for embedding inside a JSON string literal: quote,
/// backslash, \n \r \t, and \u00xx for the remaining control characters.
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 16);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace janus
