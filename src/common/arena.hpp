// Chunked bump allocator for the fleet's SoA request/span storage.
//
// The six-figure-tenant path cannot afford per-request vector growth: a
// 100k-tenant run completes tens of millions of requests, and every
// reallocation both fragments the heap and doubles peak RSS while it
// copies.  An Arena hands out raw arrays by bumping a cursor inside
// preallocated blocks; nothing is freed individually, and release()
// returns every block at once — which is exactly the lifetime of a
// tenant's request log (filled during the run, folded into the shard
// accumulator, dropped whole).
//
// Deterministic by construction: allocation order is program order, no
// addresses ever leak into simulated state, and the arena itself holds no
// randomness.  The bump path is JANUS_HOT and allocation-free once a
// block exists; growing a fresh block is the documented cold path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/annotations.hpp"
#include "common/types.hpp"

namespace janus {

/// Non-owning view over a column slice handed out by the SoA request log.
/// Mirrors the std::vector surface the record consumers already use
/// (size/empty/indexing/iteration/==), so swapping the AoS records for
/// arena columns does not ripple through every reader.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  const T& front() const noexcept { return data_[0]; }
  const T& back() const noexcept { return data_[size_ - 1]; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  friend bool operator==(Span a, Span b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator==(Span a, const std::vector<T>& b) {
    return a == Span(b.data(), b.size());
  }
  friend bool operator==(const std::vector<T>& a, Span b) {
    return Span(a.data(), a.size()) == b;
  }
  friend bool operator!=(Span a, Span b) { return !(a == b); }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

class Arena {
 public:
  /// `block_bytes` caps the block size: blocks start at kFirstBlockBytes
  /// and double toward the cap, so a tiny arena (a 10-request tenant's
  /// log in a 100k-tenant fleet) holds hundreds of bytes, not a full
  /// default block, while a steadily growing one converges to cap-sized
  /// blocks in O(log) allocations.  Single allocations larger than the
  /// next block get a dedicated block of their own size.
  explicit Arena(std::size_t block_bytes = 1u << 16)
      : block_bytes_(block_bytes),
        next_block_bytes_(std::min(block_bytes, kFirstBlockBytes)) {
    require(block_bytes > 0, "arena block size must be > 0");
  }

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `count` default-initialized Ts.  The fast path is a
  /// cursor add inside the current block; only exhausting it takes the
  /// cold grow() path.  T must be trivially destructible — the arena
  /// never runs destructors.
  template <typename T>
  JANUS_HOT T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is released without running destructors");
    const std::size_t bytes = count * sizeof(T);
    std::size_t at = align_up(cursor_, alignof(T));
    if (blocks_.empty() || at + bytes > blocks_.back().size) {
      grow(bytes, alignof(T));
      at = align_up(cursor_, alignof(T));
    }
    cursor_ = at + bytes;
    bytes_allocated_ += bytes;
    T* out = reinterpret_cast<T*>(blocks_.back().data.get() + at);
    for (std::size_t i = 0; i < count; ++i) new (out + i) T();
    return out;
  }

  /// Frees every block at once (the whole point: one tenant's storage has
  /// one lifetime).  Outstanding pointers are invalidated.
  void release() noexcept {
    blocks_.clear();
    blocks_.shrink_to_fit();
    cursor_ = 0;
    bytes_allocated_ = 0;
    next_block_bytes_ = std::min(block_bytes_, kFirstBlockBytes);
  }

  /// Total bytes handed out since construction / the last release()
  /// (excludes block slack; reporting only).
  std::size_t bytes_allocated() const noexcept { return bytes_allocated_; }
  std::size_t blocks() const noexcept { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::size_t align_up(std::size_t n, std::size_t align) noexcept {
    return (n + align - 1) & ~(align - 1);
  }

  /// Cold path: starts a fresh block big enough for the request.  Block
  /// sizes ramp geometrically from kFirstBlockBytes to block_bytes_ so
  /// per-tenant waste stays proportional to what the tenant actually
  /// stores.
  void grow(std::size_t bytes, std::size_t align) {
    Block block;
    block.size = std::max(next_block_bytes_, bytes + align);
    next_block_bytes_ = std::min(block_bytes_, next_block_bytes_ * 2);
    block.data = std::make_unique<std::byte[]>(block.size);
    blocks_.push_back(std::move(block));
    cursor_ = 0;
  }

  static constexpr std::size_t kFirstBlockBytes = 256;

  std::size_t block_bytes_;
  std::size_t next_block_bytes_ = kFirstBlockBytes;
  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;  // bump offset inside blocks_.back()
  std::size_t bytes_allocated_ = 0;
};

}  // namespace janus
