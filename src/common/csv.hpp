// Tiny CSV writer/reader used for hints-table and profile serialization
// (the paper's prototype persisted these as pandas DataFrames).
#pragma once

#include <string>
#include <vector>

namespace janus {

/// A parsed CSV document: a header row plus data rows of equal width.
struct CsvDoc {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::invalid_argument when missing.
  std::size_t column(const std::string& name) const;
};

/// Serializes rows; fields containing commas/quotes/newlines are quoted.
std::string csv_encode(const CsvDoc& doc);

/// Parses a CSV document produced by csv_encode (handles quoted fields).
CsvDoc csv_decode(const std::string& text);

void csv_write_file(const std::string& path, const CsvDoc& doc);
CsvDoc csv_read_file(const std::string& path);

}  // namespace janus
