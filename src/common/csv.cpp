#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/types.hpp"

namespace janus {

std::size_t CsvDoc::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw_invalid("csv column not found: " + name);
}

namespace {

bool needs_quoting(const std::string& field) {
  // \r must be quoted too: the reader strips bare carriage returns (CRLF
  // tolerance), so an unquoted \r would not survive a round trip.
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void encode_field(std::ostream& os, const std::string& field) {
  if (!needs_quoting(field)) {
    os << field;
    return;
  }
  os << '"';
  for (char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void encode_row(std::ostream& os, const std::vector<std::string>& row) {
  // A lone empty field would serialize to a blank line, which the reader
  // skips as trailing-newline tolerance; quote it so the row survives.
  if (row.size() == 1 && row[0].empty()) {
    os << "\"\"\n";
    return;
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ',';
    encode_field(os, row[i]);
  }
  os << '\n';
}

std::vector<std::string> parse_line(const std::string& text, std::size_t& pos,
                                    bool& saw_quote) {
  std::vector<std::string> out;
  std::string field;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      saw_quote = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++pos;
      out.push_back(std::move(field));
      return out;
    } else if (c != '\r') {
      field += c;
    }
    ++pos;
  }
  out.push_back(std::move(field));
  return out;
}

}  // namespace

std::string csv_encode(const CsvDoc& doc) {
  std::ostringstream os;
  encode_row(os, doc.header);
  for (const auto& row : doc.rows) {
    if (row.size() != doc.header.size()) {
      throw_invalid("csv row width differs from header");
    }
    encode_row(os, row);
  }
  return os.str();
}

CsvDoc csv_decode(const std::string& text) {
  CsvDoc doc;
  std::size_t pos = 0;
  if (text.empty()) return doc;
  bool saw_quote = false;
  doc.header = parse_line(text, pos, saw_quote);
  while (pos < text.size()) {
    saw_quote = false;
    auto row = parse_line(text, pos, saw_quote);
    // Skip blank lines (trailing-newline tolerance) — but a quoted empty
    // field ("") is a real one-column row, not a blank line.
    if (row.size() == 1 && row[0].empty() && !saw_quote) continue;
    if (row.size() != doc.header.size()) {
      throw_invalid("csv row width differs from header");
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

void csv_write_file(const std::string& path, const CsvDoc& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw_invalid("cannot open for write: " + path);
  out << csv_encode(doc);
}

CsvDoc csv_read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_invalid("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return csv_decode(buf.str());
}

}  // namespace janus
