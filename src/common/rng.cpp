#include "common/rng.hpp"

#include <cmath>

namespace janus {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Mix the child's stream id into the parent state through SplitMix64 so
  // children with adjacent ids are decorrelated.
  SplitMix64 sm(s_[0] ^ (0xa0761d6478bd642fULL * (stream + 1)));
  Rng child(sm.next());
  return child;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 strictly positive to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

}  // namespace janus
