#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace janus {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[janus %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace janus
