#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/types.hpp"

namespace janus {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level_from_string(const std::string& name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  throw_invalid("unknown log level '" + name +
                "' (expected debug|info|warn|error|off)");
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  // Pre-format the whole line and emit it as ONE stdio call under the
  // mutex: fprintf's multi-part formatting could otherwise interleave with
  // another thread's write between its internal flushes.
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[janus ";
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard lock(g_io_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace janus
