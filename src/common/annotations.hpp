// Source annotations consumed by tools/janus_lint.py.
//
// JANUS_HOT marks a function as part of the steady-state event path: the
// PR 3 contract is that scheduling, dispatching, and completing simulated
// events performs zero heap allocations once pools are warm.  Inside a
// JANUS_HOT function janus-lint bans new-expressions (placement new is
// fine — it is how the slot pool works), make_unique/make_shared and the
// malloc family, std::function, and container growth calls; a justified
// allow(...) suppression comment documents the sites that are
// amortized-free (retained-capacity pools) or deliberate cold paths
// (pool growth, cold starts).
//
// The macro also carries the compilers' `hot` attribute so annotated
// functions get the optimizer's hot-path treatment — the lint marker and
// the codegen hint cannot drift apart.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define JANUS_HOT [[gnu::hot]]
#else
#define JANUS_HOT
#endif
