// Fixed-size thread pool used by the hints synthesizer.
//
// The paper notes "to accelerate the generation, the synthesizer explores
// different percentiles concurrently"; we parallelize the (embarrassingly
// parallel) budget sweep of Algorithm 1 across this pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace janus {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows task exceptions.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) throw std::runtime_error("janus: submit on stopped pool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// complete.  Exceptions from any iteration propagate (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace janus
