// ORION-style early binding (§V-A, baseline from OSDI'22).
//
// ORION's key advance over per-function-P99 sizing is *distribution-based*
// end-to-end modeling: instead of requiring Σ_i P99(L_i) ≤ SLO, it convolves
// the per-function latency distributions and requires P99(Σ_i L_i) ≤ SLO —
// a much less conservative constraint, since worst cases rarely align.
// We reproduce that with a Monte-Carlo convolution over the profiler's
// retained samples (common random indices across candidate sizings), then
// greedily shrink sizes from the GrandSLAM+ allocation while the end-to-end
// P99 stays within the SLO.
#pragma once

#include <memory>
#include <vector>

#include "policy/early_binding.hpp"

namespace janus {

struct OrionConfig {
  /// Monte-Carlo draws for the convolution estimate.
  int convolution_samples = 4000;
  /// Latency discretization for the convolution, matching ORION's
  /// histogram-based distribution representation: per-stage samples are
  /// rounded *up* to this bin width, a conservative sketch (the published
  /// system convolves coarse latency distributions rather than raw
  /// samples, and over-estimates rather than under-estimates tails).
  BudgetMs latency_bin_ms = 100;
  std::uint64_t seed = 17;
};

/// ORION allocation; throws when even all-Kmax misses the SLO.
std::vector<Millicores> orion_sizes(const EarlyBindingInputs& in,
                                    const OrionConfig& config = {});

/// Estimates the end-to-end P99 for a candidate allocation by sampling the
/// per-function profile distributions independently and summing.
Seconds orion_e2e_p99(const EarlyBindingInputs& in,
                      const std::vector<Millicores>& sizes,
                      const OrionConfig& config = {});

std::unique_ptr<FixedSizingPolicy> make_orion(const EarlyBindingInputs& in,
                                              const OrionConfig& config = {});

}  // namespace janus
