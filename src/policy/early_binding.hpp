// Early-binding baselines: GrandSLAM and GrandSLAM+ (§V-A).
//
// GrandSLAM provisions every function of the workflow with the *same* size
// (its published design fixes identical sizes per stage) — the smallest
// grid size whose per-function P99 latencies sum within the SLO.
// GrandSLAM+ removes the identical-size constraint: it minimizes total
// millicores subject to Σ L_i(99, k_i) ≤ SLO (the same suffix DP the Janus
// synthesizer uses for tails).  Both overshoot because summing per-function
// P99s is far more conservative than the P99 of the sum.
#pragma once

#include <memory>
#include <vector>

#include "policy/policy.hpp"
#include "profiler/profile.hpp"

namespace janus {

struct EarlyBindingInputs {
  const std::vector<LatencyProfile>* profiles = nullptr;  // chain order
  Seconds slo = 0.0;
  Concurrency concurrency = 1;
  Millicores kmin = kDefaultKmin;
  Millicores kmax = kDefaultKmax;
  Millicores kstep = kDefaultKstep;

  void validate() const;
};

/// Identical-size allocation; throws when no grid size meets the SLO.
std::vector<Millicores> grandslam_sizes(const EarlyBindingInputs& in);

/// Per-function minimal allocation at P99; throws when infeasible.
std::vector<Millicores> grandslam_plus_sizes(const EarlyBindingInputs& in);

std::unique_ptr<FixedSizingPolicy> make_grandslam(const EarlyBindingInputs& in);
std::unique_ptr<FixedSizingPolicy> make_grandslam_plus(
    const EarlyBindingInputs& in);

}  // namespace janus
