// Sizing policies: the pluggable decision logic compared in §V.
//
// A policy is consulted once per stage, right before the stage launches,
// with the wall-clock time elapsed since the request entered the workflow.
// Early-binding policies return sizes fixed at deployment; late-binding
// policies (Janus variants, Optimal) use the elapsed time — and, for the
// clairvoyant oracle, the request's pre-drawn randomness — to adapt.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace janus {

/// Pre-drawn randomness of one request, one entry per chain stage.  The
/// experiment driver owns these draws so that (a) every policy serves the
/// identical request sequence and (b) the Optimal oracle can be clairvoyant
/// about them, mirroring the paper's "optimal obtained with exhaustive
/// search" over recorded executions.
struct RequestDraw {
  std::vector<double> ws;            // working-set factors
  std::vector<double> interference;  // multipliers (>= 1)
};

class SizingPolicy {
 public:
  virtual ~SizingPolicy() = default;

  virtual const std::string& name() const noexcept = 0;

  /// Called once when a request is admitted (before stage 0).
  virtual void on_request_start(const RequestDraw& draw) { (void)draw; }

  /// Millicores for `stage`, with `elapsed` seconds spent so far (0 for
  /// stage 0).
  virtual Millicores size_for_stage(std::size_t stage, Seconds elapsed,
                                    const RequestDraw& draw) = 0;

  /// Late-binding policies adapt at runtime; early binding does not.
  virtual bool late_binding() const noexcept { return false; }
};

/// Early binding: one immutable size per stage.
class FixedSizingPolicy final : public SizingPolicy {
 public:
  FixedSizingPolicy(std::string name, std::vector<Millicores> sizes);

  const std::string& name() const noexcept override { return name_; }
  Millicores size_for_stage(std::size_t stage, Seconds elapsed,
                            const RequestDraw& draw) override;
  const std::vector<Millicores>& sizes() const noexcept { return sizes_; }

 private:
  std::string name_;
  std::vector<Millicores> sizes_;
};

}  // namespace janus
