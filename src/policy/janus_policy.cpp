#include "policy/janus_policy.hpp"

namespace janus {

JanusPolicy::JanusPolicy(std::string name, Adapter adapter, Seconds slo,
                         Seconds safety_margin)
    : name_(std::move(name)),
      adapter_(std::move(adapter)),
      slo_(slo),
      safety_margin_(safety_margin) {
  require(slo_ > 0.0, "SLO must be > 0");
  require(safety_margin_ >= 0.0, "safety margin must be >= 0");
}

Millicores JanusPolicy::size_for_stage(std::size_t stage, Seconds elapsed,
                                       const RequestDraw& /*draw*/) {
  // "When a function finishes, the platform collects the execution time
  // and derives the time budget for the rest of the workflow."  A small
  // per-remaining-stage margin covers startup + adaptation overheads the
  // offline profiles do not include.
  const auto remaining_stages =
      static_cast<double>(adapter_.stages() - stage);
  const Seconds remaining =
      slo_ - elapsed - safety_margin_ * remaining_stages;
  return adapter_.size_for_stage(stage, remaining);
}

std::string janus_variant_name(Exploration exploration) {
  switch (exploration) {
    case Exploration::FixedP99: return "Janus-";
    case Exploration::HeadOnly: return "Janus";
    case Exploration::HeadAndNext: return "Janus+";
  }
  return "Janus?";
}

std::unique_ptr<JanusPolicy> make_janus(
    const std::vector<LatencyProfile>& profiles, SynthesisConfig config,
    Seconds slo, Exploration exploration, AdapterConfig adapter_config) {
  config.exploration = exploration;
  adapter_config.kmax = config.kmax;
  // The synthesized bundle flows straight into the adapter's freezing sink
  // constructor — no mutable HintsBundle alias ever exists here.
  return std::make_unique<JanusPolicy>(
      janus_variant_name(exploration),
      Adapter(synthesize_bundle(profiles, config), adapter_config), slo);
}

}  // namespace janus
