// The clairvoyant Optimal oracle (§V-A: "the best that can be achieved in
// any late-binding solution", obtained by exhaustive search in the paper).
//
// Optimal sees the request's actual working-set factors and interference
// multipliers and solves, per request,
//
//     min Σ k_i   s.t.   Σ t_i(k_i) ≤ SLO,   Kmin ≤ k_i ≤ Kmax, k_i ∈ R
//
// where t_i(k) = A_i + B_i / k exactly matches the generative latency
// model.  With that hyperbolic form the Lagrangian optimum is water-filling
// (k_i ∝ √B_i), clipped to the box constraints by active-set iteration —
// the continuous-k relaxation the paper's Eq. (8) permits.
#pragma once

#include <memory>

#include "model/function_model.hpp"
#include "policy/policy.hpp"

namespace janus {

struct OptimalInputs {
  std::vector<FunctionModel> models;  // chain order
  Seconds slo = 0.0;
  Concurrency concurrency = 1;
  Millicores kmin = kDefaultKmin;
  Millicores kmax = kDefaultKmax;
  /// Per-stage platform overhead the oracle budgets for (warm-start cost).
  Seconds overhead_per_stage = 0.005;
};

/// Continuous water-filling allocation for one request.  When even all-Kmax
/// cannot meet the SLO the oracle returns all-Kmax (the violation is
/// unavoidable).
std::vector<double> optimal_allocation(const OptimalInputs& in,
                                       const RequestDraw& draw);

class OptimalPolicy final : public SizingPolicy {
 public:
  explicit OptimalPolicy(OptimalInputs inputs);

  const std::string& name() const noexcept override { return name_; }
  /// Stateless per call (safe under interleaved open-loop requests): the
  /// allocation is recomputed from the request's own draw.
  Millicores size_for_stage(std::size_t stage, Seconds elapsed,
                            const RequestDraw& draw) override;
  bool late_binding() const noexcept override { return true; }

 private:
  std::string name_ = "Optimal";
  OptimalInputs inputs_;
};

std::unique_ptr<OptimalPolicy> make_optimal(OptimalInputs inputs);

}  // namespace janus
