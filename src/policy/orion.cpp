#include "policy/orion.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "stats/quantile.hpp"

namespace janus {

namespace {

/// Draws per-function sample indices once; candidate allocations are then
/// compared under common random numbers, which removes Monte-Carlo noise
/// from the greedy descent's accept/reject decisions.
struct ConvolutionContext {
  std::vector<std::vector<std::size_t>> indices;  // [stage][draw]

  ConvolutionContext(const EarlyBindingInputs& in, const OrionConfig& config) {
    bin_ms = config.latency_bin_ms;
    Rng rng(config.seed);
    indices.resize(in.profiles->size());
    for (std::size_t s = 0; s < indices.size(); ++s) {
      // Sample count varies per grid point; store uniform u and scale later.
      indices[s].resize(static_cast<std::size_t>(config.convolution_samples));
      for (auto& idx : indices[s]) {
        idx = static_cast<std::size_t>(rng.next());
      }
    }
  }

  Seconds e2e_p99(const EarlyBindingInputs& in,
                  const std::vector<Millicores>& sizes) const {
    const auto n = indices.front().size();
    const double bin = static_cast<double>(bin_ms) / 1000.0;
    std::vector<double> totals(n, 0.0);
    for (std::size_t s = 0; s < indices.size(); ++s) {
      const auto& samples =
          (*in.profiles)[s].samples(sizes[s], in.concurrency);
      for (std::size_t i = 0; i < n; ++i) {
        double v = samples[indices[s][i] % samples.size()];
        if (bin > 0.0) v = std::ceil(v / bin) * bin;  // histogram sketch
        totals[i] += v;
      }
    }
    std::sort(totals.begin(), totals.end());
    return percentile_sorted(totals, 99.0);
  }

  BudgetMs bin_ms = 0;
};

}  // namespace

Seconds orion_e2e_p99(const EarlyBindingInputs& in,
                      const std::vector<Millicores>& sizes,
                      const OrionConfig& config) {
  in.validate();
  require(sizes.size() == in.profiles->size(), "sizes/profile count mismatch");
  return ConvolutionContext(in, config).e2e_p99(in, sizes);
}

std::vector<Millicores> orion_sizes(const EarlyBindingInputs& in,
                                    const OrionConfig& config) {
  in.validate();
  const ConvolutionContext ctx(in, config);
  const std::size_t n = in.profiles->size();

  std::vector<Millicores> sizes(n, in.kmax);
  require(ctx.e2e_p99(in, sizes) <= in.slo,
          "ORION: SLO infeasible even at Kmax");

  // Balanced greedy descent: each round evaluates shrinking every stage by
  // one grid step and commits the single shrink that leaves the most SLO
  // headroom.  This avoids the local minima of per-stage exhaustion (fully
  // draining one stage first starves the others of headroom).
  for (;;) {
    std::size_t best_stage = n;
    Seconds best_p99 = in.slo + 1.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (sizes[s] - in.kstep < in.kmin) continue;
      sizes[s] -= in.kstep;
      const Seconds p99 = ctx.e2e_p99(in, sizes);
      sizes[s] += in.kstep;
      if (p99 <= in.slo && p99 < best_p99) {
        best_p99 = p99;
        best_stage = s;
      }
    }
    if (best_stage == n) break;
    sizes[best_stage] -= in.kstep;
  }
  return sizes;
}

std::unique_ptr<FixedSizingPolicy> make_orion(const EarlyBindingInputs& in,
                                              const OrionConfig& config) {
  return std::make_unique<FixedSizingPolicy>("ORION", orion_sizes(in, config));
}

}  // namespace janus
