#include "policy/policy.hpp"

namespace janus {

FixedSizingPolicy::FixedSizingPolicy(std::string name,
                                     std::vector<Millicores> sizes)
    : name_(std::move(name)), sizes_(std::move(sizes)) {
  require(!sizes_.empty(), "fixed policy needs >= 1 size");
  for (Millicores k : sizes_) require(k > 0, "sizes must be > 0");
}

Millicores FixedSizingPolicy::size_for_stage(std::size_t stage,
                                             Seconds /*elapsed*/,
                                             const RequestDraw& /*draw*/) {
  require(stage < sizes_.size(), "stage out of range");
  return sizes_[stage];
}

}  // namespace janus
