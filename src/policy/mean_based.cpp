#include "policy/mean_based.hpp"

namespace janus {

MeanBasedPolicy::MeanBasedPolicy(const std::vector<LatencyProfile>& profiles,
                                 Seconds slo, Concurrency concurrency,
                                 Millicores kmin, Millicores kmax,
                                 Millicores kstep)
    : profiles_(profiles), slo_(slo), concurrency_(concurrency) {
  require(!profiles.empty(), "mean-based policy needs profiles");
  require(slo > 0.0, "SLO must be > 0");
  for (Millicores k = kmin; k <= kmax; k += kstep) cores_.push_back(k);
  tail_mean_.resize(profiles_.size() * cores_.size());
  for (std::size_t stage = 0; stage < profiles_.size(); ++stage) {
    for (std::size_t ki = 0; ki < cores_.size(); ++ki) {
      Seconds total = 0.0;
      for (std::size_t j = stage; j < profiles_.size(); ++j) {
        total += mean_latency(j, ki);
      }
      tail_mean_[stage * cores_.size() + ki] = total;
    }
  }
}

Seconds MeanBasedPolicy::mean_latency(std::size_t j, std::size_t ki) const {
  return profiles_[j].latency(50, cores_[ki], concurrency_);
}

Millicores MeanBasedPolicy::size_for_stage(std::size_t stage, Seconds elapsed,
                                           const RequestDraw& /*draw*/) {
  require(stage < profiles_.size(), "stage out of range");
  const Seconds remaining = slo_ - elapsed;
  // Smallest size such that this stage's mean plus the downstream means at
  // the same size fit the remaining budget — the proportional-slack rule
  // Kraken/Xanadu-class systems apply per stage.
  for (std::size_t ki = 0; ki < cores_.size(); ++ki) {
    if (tail_mean_[stage * cores_.size() + ki] <= remaining) {
      return cores_[ki];
    }
  }
  return cores_.back();  // even Kmax means overrun: allocate everything
}

std::unique_ptr<MeanBasedPolicy> make_mean_based(
    const std::vector<LatencyProfile>& profiles, Seconds slo,
    Concurrency concurrency, Millicores kmin, Millicores kmax,
    Millicores kstep) {
  return std::make_unique<MeanBasedPolicy>(profiles, slo, concurrency, kmin,
                                           kmax, kstep);
}

}  // namespace janus
