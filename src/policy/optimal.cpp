#include "policy/optimal.hpp"

#include <cmath>

namespace janus {

std::vector<double> optimal_allocation(const OptimalInputs& in,
                                       const RequestDraw& draw) {
  const std::size_t n = in.models.size();
  require(n > 0, "optimal needs >= 1 model");
  require(draw.ws.size() == n && draw.interference.size() == n,
          "draw size mismatch");
  require(in.slo > 0.0, "SLO must be > 0");

  // t_i(k) = A_i + B_i / k, with k in millicores.
  std::vector<double> A(n), B(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& m = in.models[i];
    A[i] = m.serial(in.concurrency) * draw.interference[i];
    B[i] = m.work(in.concurrency) * draw.ws[i] * draw.interference[i] * 1000.0;
  }
  const double budget = in.slo - static_cast<double>(n) * in.overhead_per_stage;

  const auto klo = static_cast<double>(in.kmin);
  const auto khi = static_cast<double>(in.kmax);

  // Feasibility at the all-Kmax corner.
  double tmax_all = 0.0;
  for (std::size_t i = 0; i < n; ++i) tmax_all += A[i] + B[i] / khi;
  if (tmax_all >= budget) return std::vector<double>(n, khi);

  // Active-set water-filling.  `fixed[i]` holds a clipped coordinate.
  std::vector<double> k(n, 0.0);
  std::vector<int> state(n, 0);  // 0 = free, +1 = clipped at khi, -1 at klo
  for (int iter = 0; iter < static_cast<int>(n) + 2; ++iter) {
    double time_left = budget;
    double sqrtB = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      time_left -= A[i];
      if (state[i] != 0) {
        time_left -= B[i] / k[i];
      } else {
        sqrtB += std::sqrt(B[i]);
      }
    }
    bool changed = false;
    if (sqrtB == 0.0) break;
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i] != 0) continue;
      // KKT: k_i = sqrt(B_i) * (Σ_free sqrt(B_j)) / time_left_for_free.
      const double ki = std::sqrt(B[i]) * sqrtB / time_left;
      if (ki > khi) {
        k[i] = khi;
        state[i] = 1;
        changed = true;
      } else if (ki < klo) {
        k[i] = klo;
        state[i] = -1;
        changed = true;
      } else {
        k[i] = ki;
      }
    }
    if (!changed) break;
  }

  // Clipping at klo can leave surplus budget; clipping at khi can leave the
  // free set needing more — both handled by the iteration above.  Final
  // safety: verify and, on numeric shortfall, nudge everything up 1%.
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += A[i] + B[i] / k[i];
  if (total > budget) {
    for (auto& v : k) v = std::min(v * 1.05, khi);
  }
  return k;
}

OptimalPolicy::OptimalPolicy(OptimalInputs inputs)
    : inputs_(std::move(inputs)) {
  require(!inputs_.models.empty(), "optimal needs >= 1 model");
}

Millicores OptimalPolicy::size_for_stage(std::size_t stage, Seconds /*elapsed*/,
                                         const RequestDraw& draw) {
  const auto allocation = optimal_allocation(inputs_, draw);
  require(stage < allocation.size(), "stage out of range");
  return static_cast<Millicores>(std::lround(allocation[stage]));
}

std::unique_ptr<OptimalPolicy> make_optimal(OptimalInputs inputs) {
  return std::make_unique<OptimalPolicy>(std::move(inputs));
}

}  // namespace janus
