#include "policy/early_binding.hpp"

#include "hints/tail_plan.hpp"

namespace janus {

void EarlyBindingInputs::validate() const {
  require(profiles != nullptr && !profiles->empty(),
          "early binding needs profiles");
  require(slo > 0.0, "SLO must be > 0");
  require(concurrency >= 1, "concurrency must be >= 1");
  require(kmin > 0 && kmax >= kmin && kstep > 0, "bad millicore grid");
}

std::vector<Millicores> grandslam_sizes(const EarlyBindingInputs& in) {
  in.validate();
  const BudgetMs budget = s_to_ms(in.slo);
  for (Millicores k = in.kmin; k <= in.kmax; k += in.kstep) {
    BudgetMs total = 0;
    for (const auto& profile : *in.profiles) {
      total += profile.latency_ms(99, k, in.concurrency);
    }
    if (total <= budget) {
      return std::vector<Millicores>(in.profiles->size(), k);
    }
  }
  throw_invalid("GrandSLAM: no identical size meets the SLO (SLO too tight)");
}

std::vector<Millicores> grandslam_plus_sizes(const EarlyBindingInputs& in) {
  in.validate();
  std::vector<const LatencyProfile*> chain;
  for (const auto& p : *in.profiles) chain.push_back(&p);
  const BudgetMs budget = s_to_ms(in.slo);
  const TailPlan plan(chain, in.concurrency, in.kmin, in.kmax, in.kstep,
                      budget);
  require(plan.feasible(0, budget),
          "GrandSLAM+: no per-function sizing meets the SLO");
  return plan.allocation(0, budget);
}

std::unique_ptr<FixedSizingPolicy> make_grandslam(const EarlyBindingInputs& in) {
  return std::make_unique<FixedSizingPolicy>("GrandSLAM", grandslam_sizes(in));
}

std::unique_ptr<FixedSizingPolicy> make_grandslam_plus(
    const EarlyBindingInputs& in) {
  return std::make_unique<FixedSizingPolicy>("GrandSLAM+",
                                             grandslam_plus_sizes(in));
}

}  // namespace janus
