// Mean-based late binding — the Kraken / Xanadu / Fifer family the paper
// *excludes* as baselines (§V-A): those systems "assume that function
// execution time does not have large variance, and hence adopt mean
// execution time to perform runtime resource adaptation", which under the
// skewed distributions of production traces "are easily prone to under
// provisioning and severe SLO violations".
//
// We implement the family's common core so the claim can be demonstrated
// quantitatively (see bench_ablation): at each stage the policy picks the
// smallest size whose *mean* remaining latency fits the remaining budget.
#pragma once

#include <memory>

#include "policy/policy.hpp"
#include "profiler/profile.hpp"

namespace janus {

class MeanBasedPolicy final : public SizingPolicy {
 public:
  /// `profiles` in chain order; the policy keeps a reference (caller owns).
  MeanBasedPolicy(const std::vector<LatencyProfile>& profiles, Seconds slo,
                  Concurrency concurrency, Millicores kmin, Millicores kmax,
                  Millicores kstep);

  const std::string& name() const noexcept override { return name_; }
  Millicores size_for_stage(std::size_t stage, Seconds elapsed,
                            const RequestDraw& draw) override;
  bool late_binding() const noexcept override { return true; }

 private:
  /// Mean latency of stage `j` at size index `ki` (P50 stands in for the
  /// mean these systems estimate from sliding-window telemetry).
  Seconds mean_latency(std::size_t j, std::size_t ki) const;

  std::string name_ = "MeanAdapt";
  const std::vector<LatencyProfile>& profiles_;
  Seconds slo_;
  Concurrency concurrency_;
  std::vector<Millicores> cores_;
  /// tail_mean_[stage * cores + ki] = Σ_{j >= stage} mean_latency(j, ki),
  /// precomputed: the policy is consulted per stage launch on the fleet
  /// hot path, and rescanning the profile grid there costs O(stages ×
  /// cores) per call.  Each entry keeps the original left-to-right
  /// summation order, so decisions are bit-identical to the on-the-fly
  /// scan.
  std::vector<Seconds> tail_mean_;
};

std::unique_ptr<MeanBasedPolicy> make_mean_based(
    const std::vector<LatencyProfile>& profiles, Seconds slo,
    Concurrency concurrency = 1, Millicores kmin = kDefaultKmin,
    Millicores kmax = kDefaultKmax, Millicores kstep = kDefaultKstep);

}  // namespace janus
