// Janus as a sizing policy: the adapter driven by SLO-minus-elapsed budgets.
//
// Variants map to the paper's §V-A ablations:
//   Janus−  — FixedP99 exploration (no percentile diversity for heads)
//   Janus   — HeadOnly (the proposed moderate exploration)
//   Janus+  — HeadAndNext (wider exploration, ~100x synthesis cost)
#pragma once

#include <memory>

#include "adapter/adapter.hpp"
#include "policy/policy.hpp"

namespace janus {

class JanusPolicy final : public SizingPolicy {
 public:
  /// `safety_margin` is held back from the remaining budget per not-yet-
  /// finished stage, covering platform overheads (pod specialization,
  /// adaptation latency) the offline profiles never see.
  JanusPolicy(std::string name, Adapter adapter, Seconds slo,
              Seconds safety_margin = 0.012);

  const std::string& name() const noexcept override { return name_; }
  Millicores size_for_stage(std::size_t stage, Seconds elapsed,
                            const RequestDraw& draw) override;
  bool late_binding() const noexcept override { return true; }

  Adapter& adapter() noexcept { return adapter_; }
  const Adapter& adapter() const noexcept { return adapter_; }
  Seconds slo() const noexcept { return slo_; }

 private:
  std::string name_;
  Adapter adapter_;
  Seconds slo_;
  Seconds safety_margin_;
};

/// Builds a Janus policy by synthesizing hints from profiles.  `config`
/// supplies grid/weight/concurrency; its exploration field is overridden by
/// `exploration`, and the display name is derived from the variant.
std::unique_ptr<JanusPolicy> make_janus(
    const std::vector<LatencyProfile>& profiles, SynthesisConfig config,
    Seconds slo, Exploration exploration = Exploration::HeadOnly,
    AdapterConfig adapter_config = {});

/// Variant display name ("Janus", "Janus-", "Janus+").
std::string janus_variant_name(Exploration exploration);

}  // namespace janus
