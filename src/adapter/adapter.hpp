// The provider-side adapter (§III-D).
//
// When a function finishes, the platform reports elapsed time; the adapter
// derives the remaining budget, searches the condensed hints table of the
// remaining sub-workflow, and returns the next head's size.  A miss
// (unexpected runtime dynamics pushed the budget below anything profiled)
// falls back to Kmax "to prevent SLO violations".  The adapter supervises
// the hit/miss ratio; when the miss rate crosses the configured threshold
// it flags the developer to re-trigger profiling + synthesis (done
// asynchronously in the paper; modeled here as a feedback callback).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "hints/generator.hpp"

namespace janus {

struct AdapterConfig {
  /// Fallback size on a table miss.
  Millicores kmax = kDefaultKmax;
  /// Miss-rate threshold triggering regeneration feedback (default 1%).
  double miss_rate_threshold = 0.01;
  /// Minimum lookups before the threshold is evaluated (avoids noisy
  /// triggers on the first few requests).
  std::size_t min_observations = 100;
};

struct AdapterStats {
  std::uint64_t hits = 0;
  std::uint64_t clamped = 0;  // budget above table range (still safe)
  std::uint64_t misses = 0;

  std::uint64_t lookups() const noexcept { return hits + clamped + misses; }
  double miss_rate() const noexcept {
    const auto n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(n);
  }
};

class Adapter {
 public:
  // janus-lint: allow(mutable-hints-bundle) sink parameter: the bundle is
  // moved into a shared_ptr<const HintsBundle> before the adapter exists;
  // no mutable alias survives construction.
  explicit Adapter(HintsBundle bundle, AdapterConfig config = {});
  /// Shares an immutable bundle synthesized elsewhere (the fleet's policy
  /// catalog builds one per (workload, policy) and hands it to every
  /// tenant's adapter): lookups are const, so adapters on different shard
  /// threads can read the same tables with no copies and no locks.
  explicit Adapter(std::shared_ptr<const HintsBundle> bundle,
                   AdapterConfig config = {});

  std::size_t stages() const noexcept { return bundle_->suffix_tables.size(); }

  /// Size for stage `stage` (0-based position in the chain) given the
  /// remaining time budget.  Records hit/miss statistics and, on crossing
  /// the miss threshold, fires the feedback callback once per crossing.
  Millicores size_for_stage(std::size_t stage, Seconds remaining_budget);

  /// Lookup without statistics side effects (diagnostics / tests).
  HintsTable::Lookup peek(std::size_t stage, Seconds remaining_budget) const;

  const AdapterStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; feedback_sent_ = false; }

  bool regeneration_suggested() const noexcept;

  /// Developer feedback hook: invoked with the observed miss rate when the
  /// threshold is crossed.
  void set_feedback(std::function<void(double)> cb) { feedback_ = std::move(cb); }

  /// Installs freshly regenerated hints (the asynchronous regeneration
  /// path); statistics restart.
  // janus-lint: allow(mutable-hints-bundle) sink parameter: frozen into
  // shared_ptr<const HintsBundle> inside; the old bundle stays alive for
  // readers that still hold it.
  void install_bundle(HintsBundle bundle);

  const HintsBundle& bundle() const noexcept { return *bundle_; }
  std::size_t memory_bytes() const noexcept;

 private:
  std::shared_ptr<const HintsBundle> bundle_;
  AdapterConfig config_;
  AdapterStats stats_;
  std::function<void(double)> feedback_;
  bool feedback_sent_ = false;
};

}  // namespace janus
