#include "adapter/adapter.hpp"

#include <cmath>
#include <utility>

namespace janus {

// janus-lint: allow(mutable-hints-bundle) sink: frozen to const on entry.
Adapter::Adapter(HintsBundle bundle, AdapterConfig config)
    : Adapter(std::make_shared<const HintsBundle>(std::move(bundle)),
              config) {}

Adapter::Adapter(std::shared_ptr<const HintsBundle> bundle,
                 AdapterConfig config)
    : bundle_(std::move(bundle)), config_(config) {
  require(bundle_ != nullptr, "adapter needs a hints bundle");
  require(!bundle_->suffix_tables.empty(), "adapter needs >= 1 suffix table");
  require(config_.kmax > 0, "kmax must be > 0");
  require(config_.miss_rate_threshold > 0.0 &&
              config_.miss_rate_threshold <= 1.0,
          "miss threshold outside (0,1]");
}

HintsTable::Lookup Adapter::peek(std::size_t stage,
                                 Seconds remaining_budget) const {
  require(stage < bundle_->suffix_tables.size(), "stage out of range");
  // Floor: reporting less budget than truly available is the safe side.
  const auto budget =
      static_cast<BudgetMs>(std::floor(remaining_budget * 1000.0));
  return bundle_->suffix_tables[stage].lookup(budget);
}

Millicores Adapter::size_for_stage(std::size_t stage,
                                   Seconds remaining_budget) {
  const auto result = peek(stage, remaining_budget);
  switch (result.kind) {
    case HintsTable::LookupKind::Hit:
      ++stats_.hits;
      return result.size;
    case HintsTable::LookupKind::ClampedHigh:
      ++stats_.clamped;
      return result.size;
    case HintsTable::LookupKind::Miss:
      break;
  }
  ++stats_.misses;
  if (regeneration_suggested() && feedback_ && !feedback_sent_) {
    feedback_sent_ = true;
    feedback_(stats_.miss_rate());
  }
  // "The adapter will scale functions up to the maximum available
  // resources, to prevent SLO violations."
  return config_.kmax;
}

bool Adapter::regeneration_suggested() const noexcept {
  return stats_.lookups() >= config_.min_observations &&
         stats_.miss_rate() > config_.miss_rate_threshold;
}

// janus-lint: allow(mutable-hints-bundle) sink: frozen to const on entry.
void Adapter::install_bundle(HintsBundle bundle) {
  require(bundle.suffix_tables.size() == bundle_->suffix_tables.size(),
          "regenerated bundle has different shape");
  bundle_ = std::make_shared<const HintsBundle>(std::move(bundle));
  reset_stats();
}

std::size_t Adapter::memory_bytes() const noexcept {
  return sizeof(*this) + bundle_->memory_bytes();
}

}  // namespace janus
