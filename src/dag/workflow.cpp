#include "dag/workflow.hpp"

#include <algorithm>
#include <queue>

namespace janus {

FunctionId Workflow::add_function(FunctionSpec spec) {
  nodes_.push_back(std::move(spec));
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<FunctionId>(nodes_.size() - 1);
}

void Workflow::add_edge(FunctionId from, FunctionId to) {
  require(from >= 0 && static_cast<std::size_t>(from) < nodes_.size(),
          "edge source out of range");
  require(to >= 0 && static_cast<std::size_t>(to) < nodes_.size(),
          "edge target out of range");
  require(from != to, "self edges are not allowed");
  auto& outs = succ_[static_cast<std::size_t>(from)];
  require(std::find(outs.begin(), outs.end(), to) == outs.end(),
          "duplicate edge");
  outs.push_back(to);
  pred_[static_cast<std::size_t>(to)].push_back(from);
}

const FunctionSpec& Workflow::function(FunctionId id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
          "function id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<FunctionId>& Workflow::successors(FunctionId id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
          "function id out of range");
  return succ_[static_cast<std::size_t>(id)];
}

const std::vector<FunctionId>& Workflow::predecessors(FunctionId id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
          "function id out of range");
  return pred_[static_cast<std::size_t>(id)];
}

std::vector<FunctionId> Workflow::sources() const {
  std::vector<FunctionId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (pred_[i].empty()) out.push_back(static_cast<FunctionId>(i));
  }
  return out;
}

std::vector<FunctionId> Workflow::sinks() const {
  std::vector<FunctionId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (succ_[i].empty()) out.push_back(static_cast<FunctionId>(i));
  }
  return out;
}

std::vector<FunctionId> Workflow::topological_order() const {
  std::vector<int> indegree(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (FunctionId to : succ_[i]) {
      ++indegree[static_cast<std::size_t>(to)];
    }
  }
  // Min-heap keeps the order deterministic (smallest id first among ready
  // nodes), which makes tests and experiment logs stable.
  std::priority_queue<FunctionId, std::vector<FunctionId>, std::greater<>> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<FunctionId>(i));
  }
  std::vector<FunctionId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const FunctionId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (FunctionId to : succ_[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(to)] == 0) ready.push(to);
    }
  }
  require(order.size() == nodes_.size(), "workflow contains a cycle");
  return order;
}

bool Workflow::is_chain() const {
  if (nodes_.empty()) return false;
  std::size_t with_zero_pred = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (pred_[i].size() > 1 || succ_[i].size() > 1) return false;
    if (pred_[i].empty()) ++with_zero_pred;
  }
  if (with_zero_pred != 1) return false;
  // Connectivity: a single source and max degree 1 everywhere implies a
  // chain exactly when the walk from the source covers every node.
  return chain_walk_length() == nodes_.size();
}

std::size_t Workflow::chain_walk_length() const {
  auto srcs = sources();
  if (srcs.size() != 1) return 0;
  std::size_t count = 0;
  FunctionId cur = srcs.front();
  for (;;) {
    ++count;
    const auto& outs = succ_[static_cast<std::size_t>(cur)];
    if (outs.empty()) break;
    if (outs.size() > 1) return 0;
    cur = outs.front();
    if (count > nodes_.size()) return 0;  // cycle guard
  }
  return count;
}

std::vector<FunctionId> Workflow::chain_order() const {
  require(is_chain(), "workflow is not a chain");
  std::vector<FunctionId> order;
  order.reserve(nodes_.size());
  FunctionId cur = sources().front();
  for (;;) {
    order.push_back(cur);
    const auto& outs = succ_[static_cast<std::size_t>(cur)];
    if (outs.empty()) break;
    cur = outs.front();
  }
  return order;
}

std::vector<int> Workflow::levels() const {
  const auto order = topological_order();
  std::vector<int> level(nodes_.size(), 0);
  for (FunctionId v : order) {
    for (FunctionId p : pred_[static_cast<std::size_t>(v)]) {
      level[static_cast<std::size_t>(v)] =
          std::max(level[static_cast<std::size_t>(v)],
                   level[static_cast<std::size_t>(p)] + 1);
    }
  }
  return level;
}

std::vector<FunctionId> Workflow::remaining_after(
    const std::vector<bool>& finished) const {
  require(finished.size() == nodes_.size(),
          "finished mask size differs from workflow size");
  std::vector<FunctionId> out;
  for (FunctionId v : topological_order()) {
    if (!finished[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

Workflow Workflow::chain(std::string name, std::vector<FunctionSpec> specs) {
  require(!specs.empty(), "chain needs >= 1 function");
  Workflow wf(std::move(name));
  FunctionId prev = -1;
  for (auto& spec : specs) {
    const FunctionId id = wf.add_function(std::move(spec));
    if (prev >= 0) wf.add_edge(prev, id);
    prev = id;
  }
  return wf;
}

double critical_path(const Workflow& wf, const std::vector<double>& durations) {
  require(durations.size() == wf.size(),
          "durations size differs from workflow size");
  const auto order = wf.topological_order();
  std::vector<double> finish(wf.size(), 0.0);
  double best = 0.0;
  for (FunctionId v : order) {
    double start = 0.0;
    for (FunctionId p : wf.predecessors(v)) {
      start = std::max(start, finish[static_cast<std::size_t>(p)]);
    }
    finish[static_cast<std::size_t>(v)] =
        start + durations[static_cast<std::size_t>(v)];
    best = std::max(best, finish[static_cast<std::size_t>(v)]);
  }
  return best;
}

}  // namespace janus
