#include "exp/runner.hpp"

#include <memory>

#include "sim/engine.hpp"

namespace janus {

EmpiricalDistribution RunResult::e2e_distribution() const {
  std::vector<double> samples;
  samples.reserve(requests.size());
  for (const auto& r : requests) samples.push_back(r.e2e);
  return EmpiricalDistribution(std::move(samples));
}

double RunResult::mean_cpu() const {
  if (requests.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : requests) total += r.cpu_mc;
  return total / static_cast<double>(requests.size());
}

double RunResult::violation_rate() const {
  if (requests.empty()) return 0.0;
  std::size_t v = 0;
  for (const auto& r : requests) v += r.violated ? 1 : 0;
  return static_cast<double>(v) / static_cast<double>(requests.size());
}

double RunResult::e2e_percentile(double p) const {
  return e2e_distribution().percentile(p);
}

namespace {

/// The request-randomness stream, factored so the lazy per-request path in
/// serve_workload and the eager draw_requests() helper consume *the same*
/// rng in the same order — a draw is a pure function of (seed, index).
struct DrawContext {
  std::vector<FunctionModel> models;
  CoLocationDistribution coloc;
  std::vector<CoLocationDistribution> per_stage;  // provider snapshot
  Concurrency concurrency = 1;
  InterferenceModel interference;
  Rng rng{0};

  static DrawContext make(const WorkloadSpec& workload,
                          const RunConfig& config) {
    DrawContext ctx;
    ctx.models = workload.chain_models();
    require(config.colocation_provider == nullptr ||
                config.colocation_provider->stages() == ctx.models.size(),
            "co-location provider needs one distribution per chain stage");
    ctx.coloc =
        config.colocation_is_default
            ? CoLocationDistribution::for_concurrency(config.concurrency)
            : config.colocation;
    // Snapshot the provider's distributions once: the draw stream must be
    // consumed identically on every run (paired requests), even when a
    // live provider shifts under it mid-run.
    if (config.colocation_provider != nullptr) {
      ctx.per_stage.reserve(ctx.models.size());
      for (std::size_t s = 0; s < ctx.models.size(); ++s) {
        ctx.per_stage.push_back(
            config.colocation_provider->stage_distribution(s));
      }
    }
    ctx.concurrency = config.concurrency;
    ctx.interference = config.interference;
    ctx.rng = Rng(config.seed).split(0x5eedULL);
    return ctx;
  }

  RequestDraw next() {
    RequestDraw draw;
    for (std::size_t s = 0; s < models.size(); ++s) {
      const auto& model = models[s];
      draw.ws.push_back(model.sample_ws(concurrency, rng));
      const CoLocationDistribution& dist =
          per_stage.empty() ? coloc : per_stage[s];
      const int n = dist.sample(rng);
      draw.interference.push_back(
          interference.sample_multiplier(model.dim(), n, rng));
    }
    return draw;
  }
};

}  // namespace

std::vector<RequestDraw> draw_requests(const WorkloadSpec& workload,
                                       const RunConfig& config) {
  require(config.requests > 0, "run needs >= 1 request");
  DrawContext ctx = DrawContext::make(workload, config);
  std::vector<RequestDraw> draws;
  draws.reserve(static_cast<std::size_t>(config.requests));
  for (int r = 0; r < config.requests; ++r) draws.push_back(ctx.next());
  return draws;
}

namespace {

/// Per-request execution state machine driven by platform callbacks.  Owns
/// its draw by value — nothing keeps a 100k-tenant fleet's full draw table
/// alive, only the O(in-flight) requests actually on the platform.
struct InFlight {
  RequestDraw draw;
  std::size_t index = 0;  // request index (live interference rng stream)
  std::size_t stage = 0;
  Seconds elapsed = 0.0;
  RequestRecord record;
};

/// Everything one serve_workload call needs while its events drain.  Owned
/// by shared_ptr from the scheduled closures; freed when the last request
/// completes and the closures are destroyed.
struct ServeState {
  DrawContext draws;              // lazy stream; consumed in index order
  std::size_t total_requests = 0;
  Platform* platform = nullptr;
  SizingPolicy* policy = nullptr;
  RunResult* out = nullptr;
  std::size_t stages = 0;
  Seconds slo = 0.0;
  Concurrency concurrency = 1;
  bool endogenous_interference = false;
  bool record_detail = true;
  bool closed_loop = false;
  std::size_t next_request = 0;  // closed-loop cursor
  // Open-loop arrivals as a chained event ladder: arrival i schedules
  // arrival i+1 when it fires, so the calendar holds O(1) arrival events
  // per tenant instead of the whole stream.  The rng consumption (and so
  // every arrival time) is identical to the historical pre-scheduled loop.
  SimEngine* engine = nullptr;
  std::unique_ptr<ArrivalProcess> process;
  Rng arrivals_rng{0};
  Seconds arrival_time = 0.0;
  std::size_t next_arrival = 0;
  // Live co-location feed (epoch-driven): the multiplier is drawn at
  // stage-launch time from the distribution in effect *now*.  The rng for
  // request r / stage s is derived from (seed, r, s) alone, so neither
  // event interleaving nor the shard count can shift any draw — only the
  // epoch's distribution can.
  const CoLocationProvider* live_feed = nullptr;
  Rng live_rng_base{0};
  std::vector<ResourceDim> dims;
  InterferenceModel interference;
  // Span tracing (null = off): sampled by request index, so the recorded
  // set is a pure function of the config, never of event interleaving.
  TraceRing* trace_ring = nullptr;
  std::size_t trace_sample_every = 1;
  std::uint32_t trace_tenant = 0;
};

/// Fixed-width span from one completed stage invocation.  The span start
/// is reconstructed as now() - total: the completion event fires exactly
/// queued+startup+exec simulated seconds after the invocation entered the
/// platform, so the subtraction is exact in the same sense the simulation
/// is — identical doubles at any shard count.
void record_span(const ServeState& st, const InFlight& req,
                 Millicores size, const InvocationOutcome& outcome) {
  SpanRecord span;
  span.tenant = st.trace_tenant;
  span.request = static_cast<std::uint32_t>(req.index);
  span.stage = static_cast<std::uint16_t>(req.stage);
  span.cold = outcome.cold_start ? 1 : 0;
  span.queued = outcome.queued_s > 0.0 ? 1 : 0;
  span.pod = outcome.pod;
  span.node = outcome.node;
  span.colocated = outcome.colocated;
  span.size_mc = size;
  span.start_s = st.platform->now() - outcome.total();
  span.queued_s = outcome.queued_s;
  span.startup_s = outcome.startup_s;
  span.exec_s = outcome.exec_s;
  span.interference = outcome.interference;
  st.trace_ring->record(span);
}

void start_request(const std::shared_ptr<ServeState>& st,
                   const std::shared_ptr<InFlight>& req);
std::shared_ptr<InFlight> make_request(const std::shared_ptr<ServeState>& st,
                                       std::size_t index);

void launch_stage(const std::shared_ptr<ServeState>& st,
                  const std::shared_ptr<InFlight>& req) {
  const Millicores size =
      st->policy->size_for_stage(req->stage, req->elapsed, req->draw);
  std::optional<double> exo;
  if (!st->endogenous_interference) {
    if (st->live_feed != nullptr) {
      Rng rng =
          st->live_rng_base.split(req->index * st->stages + req->stage);
      const CoLocationDistribution dist =
          st->live_feed->stage_distribution(req->stage);
      const int n = dist.sample(rng);
      exo = st->interference.sample_multiplier(st->dims[req->stage], n, rng);
    } else {
      exo = req->draw.interference[req->stage];
    }
  }
  st->platform->invoke(
      static_cast<int>(req->stage), size, st->concurrency,
      req->draw.ws[req->stage], exo,
      [st, req, size](const InvocationOutcome& outcome) {
        if (st->trace_ring != nullptr &&
            req->index % st->trace_sample_every == 0) {
          record_span(*st, *req, size, outcome);
        }
        req->elapsed += outcome.total();
        req->record.cpu_mc += static_cast<double>(size);
        if (st->record_detail) {
          req->record.sizes.push_back(size);
          req->record.stage_total.push_back(outcome.total());
        }
        ++req->stage;
        if (req->stage < st->stages) {
          launch_stage(st, req);
          return;
        }
        req->record.e2e = req->elapsed;
        req->record.violated = req->elapsed > st->slo;
        st->out->requests.push_back(req->record);
        if (st->closed_loop && st->next_request < st->total_requests) {
          // Next request enters the moment this one finished — the
          // paper's sequential measurement loop, expressed as an event
          // chain so the engine can be shared.
          start_request(st, make_request(st, st->next_request++));
        }
      });
}

std::shared_ptr<InFlight> make_request(const std::shared_ptr<ServeState>& st,
                                       std::size_t index) {
  // Requests start in index order (sequential closed loop, chained
  // open-loop arrivals), so drawing here consumes the 0x5eed stream
  // exactly as the eager draw_requests() table did.
  auto req = std::make_shared<InFlight>();
  req->draw = st->draws.next();
  req->index = index;
  return req;
}

void start_request(const std::shared_ptr<ServeState>& st,
                   const std::shared_ptr<InFlight>& req) {
  st->policy->on_request_start(req->draw);
  launch_stage(st, req);
}

/// Schedules arrival `next_arrival` and, when it fires, the one after it.
void schedule_next_arrival(const std::shared_ptr<ServeState>& st) {
  if (st->next_arrival >= st->total_requests) return;
  const std::size_t i = st->next_arrival++;
  st->arrival_time = st->process->next(st->arrival_time, st->arrivals_rng);
  st->engine->schedule_at(st->arrival_time, [st, i] {
    schedule_next_arrival(st);
    start_request(st, make_request(st, i));
  });
}

}  // namespace

void serve_workload(SimEngine& engine, Platform& platform,
                    const WorkloadSpec& workload, SizingPolicy& policy,
                    const RunConfig& config, RunResult& out) {
  require(config.slo > 0.0, "SLO must be > 0");
  require(config.requests > 0, "run needs >= 1 request");
  auto st = std::make_shared<ServeState>();
  st->draws = DrawContext::make(workload, config);
  st->total_requests = static_cast<std::size_t>(config.requests);
  st->platform = &platform;
  st->policy = &policy;
  st->out = &out;
  st->stages = st->draws.models.size();
  st->slo = config.slo;
  st->concurrency = config.concurrency;
  st->endogenous_interference = config.endogenous_interference;
  st->record_detail = config.record_stage_detail;
  if (config.trace_ring != nullptr) {
    require(config.trace_sample_every >= 1,
            "trace sampling stride must be >= 1");
    st->trace_ring = config.trace_ring;
    st->trace_sample_every =
        static_cast<std::size_t>(config.trace_sample_every);
    st->trace_tenant = config.trace_tenant;
  }
  if (config.colocation_provider != nullptr &&
      config.colocation_provider->live()) {
    st->live_feed = config.colocation_provider;
    st->live_rng_base = Rng(config.seed).split(0x11feULL);
    st->interference = config.interference;
    for (const auto& model : workload.chain_models()) {
      st->dims.push_back(model.dim());
    }
  }

  out.policy_name = policy.name();
  out.slo = config.slo;
  out.requests.configure(st->stages, config.record_stage_detail);
  out.requests.reserve(out.requests.size() + st->total_requests);

  if (config.open_loop_rate > 0.0) {
    // Open loop: pluggable arrival process; requests overlap on the
    // platform.  The base rate stays the legacy open_loop_rate knob; the
    // MMPP burst rate scales with it so the spec's burst/base ratio — the
    // process's *shape* — survives the override.
    ArrivalSpec spec = config.arrivals;
    if (spec.rate > 0.0) {
      spec.burst_rate *= config.open_loop_rate / spec.rate;
    }
    spec.rate = config.open_loop_rate;
    st->engine = &engine;
    st->process = make_arrivals(spec);
    st->arrivals_rng = Rng(config.seed).split(0xa11aULL);
    st->arrival_time = engine.now();
    schedule_next_arrival(st);
  } else {
    // Closed loop: one request at a time (the paper's 1000-request runs).
    st->closed_loop = true;
    st->next_request = 1;
    start_request(st, make_request(st, 0));
  }
}

RunResult run_workload(const WorkloadSpec& workload, SizingPolicy& policy,
                       const RunConfig& config) {
  SimEngine engine;
  PlatformConfig platform_config = config.platform;
  platform_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  Platform platform(engine, platform_config, workload.chain_models(),
                    config.interference);
  RunResult result;
  serve_workload(engine, platform, workload, policy, config, result);
  engine.run();
  return result;
}

}  // namespace janus
