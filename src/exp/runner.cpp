#include "exp/runner.hpp"

#include <memory>

#include "sim/engine.hpp"

namespace janus {

EmpiricalDistribution RunResult::e2e_distribution() const {
  std::vector<double> samples;
  samples.reserve(requests.size());
  for (const auto& r : requests) samples.push_back(r.e2e);
  return EmpiricalDistribution(std::move(samples));
}

double RunResult::mean_cpu() const {
  if (requests.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : requests) total += r.cpu_mc;
  return total / static_cast<double>(requests.size());
}

double RunResult::violation_rate() const {
  if (requests.empty()) return 0.0;
  std::size_t v = 0;
  for (const auto& r : requests) v += r.violated ? 1 : 0;
  return static_cast<double>(v) / static_cast<double>(requests.size());
}

double RunResult::e2e_percentile(double p) const {
  return e2e_distribution().percentile(p);
}

std::vector<RequestDraw> draw_requests(const WorkloadSpec& workload,
                                       const RunConfig& config) {
  require(config.requests > 0, "run needs >= 1 request");
  const auto models = workload.chain_models();
  const CoLocationDistribution coloc =
      config.colocation_is_default
          ? CoLocationDistribution::for_concurrency(config.concurrency)
          : config.colocation;
  Rng rng = Rng(config.seed).split(0x5eedULL);
  std::vector<RequestDraw> draws;
  draws.reserve(static_cast<std::size_t>(config.requests));
  for (int r = 0; r < config.requests; ++r) {
    RequestDraw draw;
    for (const auto& model : models) {
      draw.ws.push_back(model.sample_ws(config.concurrency, rng));
      const int n = coloc.sample(rng);
      draw.interference.push_back(
          config.interference.sample_multiplier(model.dim(), n, rng));
    }
    draws.push_back(std::move(draw));
  }
  return draws;
}

namespace {

/// Per-request execution state machine driven by platform callbacks.
struct InFlight {
  const RequestDraw* draw = nullptr;
  std::size_t stage = 0;
  Seconds elapsed = 0.0;
  RequestRecord record;
};

}  // namespace

RunResult run_workload(const WorkloadSpec& workload, SizingPolicy& policy,
                       const RunConfig& config) {
  require(config.slo > 0.0, "SLO must be > 0");
  const auto models = workload.chain_models();
  const std::size_t stages = models.size();
  const auto draws = draw_requests(workload, config);

  SimEngine engine;
  PlatformConfig platform_config = config.platform;
  platform_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  Platform platform(engine, platform_config, models,
                    config.interference);

  RunResult result;
  result.policy_name = policy.name();
  result.slo = config.slo;
  result.requests.reserve(draws.size());

  // Shared launch logic: runs one stage and chains the next.
  std::function<void(std::shared_ptr<InFlight>)> launch_stage =
      [&](std::shared_ptr<InFlight> req) {
        const Millicores size =
            policy.size_for_stage(req->stage, req->elapsed, *req->draw);
        std::optional<double> exo;
        if (!config.endogenous_interference) {
          exo = req->draw->interference[req->stage];
        }
        platform.invoke(
            static_cast<int>(req->stage), size, config.concurrency,
            req->draw->ws[req->stage], exo,
            [&, req, size](const InvocationOutcome& outcome) {
              req->elapsed += outcome.total();
              req->record.cpu_mc += static_cast<double>(size);
              req->record.sizes.push_back(size);
              req->record.stage_total.push_back(outcome.total());
              ++req->stage;
              if (req->stage < stages) {
                launch_stage(req);
              } else {
                req->record.e2e = req->elapsed;
                req->record.violated = req->elapsed > config.slo;
                result.requests.push_back(std::move(req->record));
              }
            });
      };

  if (config.open_loop_rate > 0.0) {
    // Open loop: Poisson arrivals; requests overlap on the platform.
    Rng arrivals = Rng(config.seed).split(0xa11aULL);
    Seconds t = 0.0;
    for (const auto& draw : draws) {
      t += arrivals.exponential(config.open_loop_rate);
      engine.schedule_at(t, [&, d = &draw] {
        auto req = std::make_shared<InFlight>();
        req->draw = d;
        policy.on_request_start(*d);
        launch_stage(req);
      });
    }
    engine.run();
  } else {
    // Closed loop: one request at a time (the paper's 1000-request runs).
    for (const auto& draw : draws) {
      auto req = std::make_shared<InFlight>();
      req->draw = &draw;
      policy.on_request_start(draw);
      launch_stage(req);
      engine.run();
    }
  }
  return result;
}

}  // namespace janus
