// Plain-text reporting helpers shared by the bench binaries: aligned
// tables (paper tables) and (x, y) series blocks (paper figures).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace janus {

/// Formats `v` with `precision` decimal places.
std::string fmt(double v, int precision = 3);

/// Renders an aligned table; `rows` must all match the header width.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

/// Renders a figure-style series block:
///   # <title>
///   x y
std::string render_series(const std::string& title,
                          const std::vector<std::pair<double, double>>& xy,
                          const std::string& xlabel = "x",
                          const std::string& ylabel = "y");

/// Section banner for bench stdout.
std::string banner(const std::string& text);

}  // namespace janus
