#include "exp/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/types.hpp"

namespace janus {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(header.size());
  for (std::size_t i = 0; i < header.size(); ++i) width[i] = header[i].size();
  for (const auto& row : rows) {
    require(row.size() == header.size(), "table row width mismatch");
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << row[i];
    }
    os << "\n";
  };
  emit(header);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows) emit(row);
  return os.str();
}

std::string render_series(const std::string& title,
                          const std::vector<std::pair<double, double>>& xy,
                          const std::string& xlabel,
                          const std::string& ylabel) {
  std::ostringstream os;
  os << "# " << title << "\n";
  os << "# " << xlabel << " " << ylabel << "\n";
  for (const auto& [x, y] : xy) {
    os << fmt(x, 4) << " " << fmt(y, 4) << "\n";
  }
  return os.str();
}

std::string banner(const std::string& text) {
  std::ostringstream os;
  os << "\n==== " << text << " ====\n";
  return os.str();
}

}  // namespace janus
