// Arena-backed SoA storage for completed request records.
//
// The fleet's former `std::vector<RequestRecord>` paid three ways at
// scale: every record carried two heap vectors (sizes, stage_total), the
// outer vector reallocated as requests completed, and none of it could be
// freed until the whole FleetResult was assembled.  RequestLog keeps the
// same *read* surface (size(), operator[], range-for, the .e2e/.cpu_mc/
// .violated/.sizes fields) but stores columns in Arena chunks:
//
//   * e2e / cpu_mc / violated are flat columns (17 bytes per request);
//   * the per-stage detail columns (sizes, stage_total) are optional —
//     the fleet switches them off (RunConfig::record_stage_detail), the
//     paper benches that read per-request allocations keep them;
//   * release() drops every chunk at once while size() survives, which is
//     what lets the streaming fleet fold a finished tenant and free its
//     storage immediately, bounding memory to O(active tenants).
//
// push_back(RequestRecord) stays the staging API so producers (runner,
// level_workflow, tests) still build an ordinary struct per request.
#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"

namespace janus {

struct RequestRecord {
  Seconds e2e = 0.0;
  double cpu_mc = 0.0;  // Σ of per-stage allocated millicores
  bool violated = false;
  std::vector<Millicores> sizes;
  std::vector<Seconds> stage_total;
};

class RequestLog {
 public:
  /// Value view of one record.  e2e/cpu_mc/violated alias the columns
  /// (assignment through them mutates the log — the tests' historical
  /// `requests[i].violated = true` keeps working); sizes/stage_total are
  /// spans over the detail columns (empty when detail is off).
  struct View {
    Seconds& e2e;
    double& cpu_mc;
    std::uint8_t& violated;
    Span<Millicores> sizes;
    Span<Seconds> stage_total;
  };

  class const_iterator {
   public:
    const_iterator(const RequestLog* log, std::size_t i)
        : log_(log), i_(i) {}
    View operator*() const { return (*log_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const RequestLog* log_;
    std::size_t i_;
  };

  RequestLog() = default;
  RequestLog(RequestLog&&) noexcept = default;
  RequestLog& operator=(RequestLog&&) noexcept = default;
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// Fixes the stage count and whether the per-stage detail columns are
  /// kept.  Callers that know the shape (serve_workload) call this before
  /// pushing; a bare push_back infers {stages = record's, detail = on}
  /// from its first record.  Re-configuring must match.
  void configure(std::size_t stages, bool stage_detail) {
    if (configured_) {
      require(stages == stages_ && stage_detail == detail_,
              "request log already configured with a different shape");
      return;
    }
    stages_ = stages;
    detail_ = stage_detail && stages > 0;
    configured_ = true;
  }

  bool stage_detail() const noexcept { return detail_; }
  std::size_t stages() const noexcept { return stages_; }

  /// Ensures capacity for `total` records overall (vector semantics).  A
  /// reserve before the first push yields exactly one arena chunk — the
  /// "preallocated" path the fleet uses, since it knows requests up front.
  void reserve(std::size_t total) {
    require(!released_, "request log was released");
    if (total > capacity_) add_chunk(total - capacity_);
  }

  JANUS_HOT void push_back(const RequestRecord& r) {
    require(!released_, "request log was released");
    if (!configured_) configure(r.sizes.size(), true);
    if (size_ == capacity_) add_chunk(kChunkRecords);
    Chunk& c = chunks_.back();
    const std::size_t at = size_ - c.start;
    c.e2e[at] = r.e2e;
    c.cpu_mc[at] = r.cpu_mc;
    c.violated[at] = r.violated ? 1 : 0;
    if (detail_) {
      require(r.sizes.size() == stages_ && r.stage_total.size() == stages_,
              "request record stage count does not match the log");
      for (std::size_t s = 0; s < stages_; ++s) {
        c.sizes[at * stages_ + s] = r.sizes[s];
        c.stage_total[at * stages_ + s] = r.stage_total[s];
      }
    }
    ++size_;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  View operator[](std::size_t i) const {
    require(!released_, "request log was released");
    require(i < size_, "request index out of range");
    // Few chunks ever exist (one, when reserved); scan from the back.
    std::size_t ci = chunks_.size() - 1;
    while (chunks_[ci].start > i) --ci;
    const Chunk& c = chunks_[ci];
    const std::size_t at = i - c.start;
    return View{
        c.e2e[at], c.cpu_mc[at], c.violated[at],
        detail_ ? Span<Millicores>(c.sizes + at * stages_, stages_)
                : Span<Millicores>(),
        detail_ ? Span<Seconds>(c.stage_total + at * stages_, stages_)
                : Span<Seconds>()};
  }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

  /// Frees every column chunk at once.  size() keeps reporting the records
  /// folded out; element access afterwards throws.
  void release() noexcept {
    chunks_.clear();
    chunks_.shrink_to_fit();
    arena_.release();
    capacity_ = size_;
    released_ = true;
  }
  bool released() const noexcept { return released_; }

  /// Column bytes currently held (reporting; 0 after release()).
  std::size_t bytes() const noexcept { return arena_.bytes_allocated(); }

 private:
  static constexpr std::size_t kChunkRecords = 4096;

  struct Chunk {
    std::size_t start = 0;  // global index of this chunk's first record
    Seconds* e2e = nullptr;
    double* cpu_mc = nullptr;
    std::uint8_t* violated = nullptr;
    Millicores* sizes = nullptr;        // stages_ per record, detail only
    Seconds* stage_total = nullptr;     // stages_ per record, detail only
  };

  /// Cold path: one arena chunk of `records` capacity, all columns.
  void add_chunk(std::size_t records) {
    Chunk c;
    c.start = capacity_;
    c.e2e = arena_.allocate<Seconds>(records);
    c.cpu_mc = arena_.allocate<double>(records);
    c.violated = arena_.allocate<std::uint8_t>(records);
    if (detail_) {
      c.sizes = arena_.allocate<Millicores>(records * stages_);
      c.stage_total = arena_.allocate<Seconds>(records * stages_);
    }
    chunks_.push_back(c);
    capacity_ += records;
  }

  Arena arena_{1u << 18};
  std::vector<Chunk> chunks_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::size_t stages_ = 0;
  bool detail_ = true;
  bool configured_ = false;
  bool released_ = false;
};

}  // namespace janus
