// Experiment driver: serves a request stream for one workload through the
// DES platform under a sizing policy and aggregates the paper's metrics
// (end-to-end latency distribution, per-request CPU consumption in
// millicores, SLO violation rate).
//
// Randomness is pre-drawn per request (working sets, co-location counts,
// interference multipliers) from the run seed, so every policy evaluated
// with the same RunConfig serves the *identical* request sequence — the
// normalized comparisons in Table I / Fig 5 / Fig 9 are therefore paired.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "model/workloads.hpp"
#include "policy/policy.hpp"
#include "profiler/profiler.hpp"
#include "sim/platform.hpp"
#include "stats/empirical.hpp"

namespace janus {

struct RunConfig {
  Seconds slo = 3.0;
  Concurrency concurrency = 1;
  int requests = 1000;
  std::uint64_t seed = 2026;
  /// Interference regime; must match what the profiles were built with for
  /// the hints to stay accurate (shift it to inject "unexpected dynamics").
  InterferenceModel interference{InterferenceModel(
      workload_interference_params())};
  /// Co-location distribution; default derives from `concurrency`.
  CoLocationDistribution colocation{};
  bool colocation_is_default = true;
  /// Open-loop Poisson arrivals at this rate (requests/s); 0 = closed loop
  /// (sequential requests, the paper's measurement setup).
  double open_loop_rate = 0.0;
  /// When true the platform derives interference from actual pod
  /// co-location instead of the pre-drawn multipliers (clairvoyant Optimal
  /// is not meaningful in this mode).
  bool endogenous_interference = false;
  PlatformConfig platform{};
};

struct RequestRecord {
  Seconds e2e = 0.0;
  double cpu_mc = 0.0;  // Σ of per-stage allocated millicores
  bool violated = false;
  std::vector<Millicores> sizes;
  std::vector<Seconds> stage_total;
};

struct RunResult {
  std::string policy_name;
  Seconds slo = 0.0;
  std::vector<RequestRecord> requests;

  EmpiricalDistribution e2e_distribution() const;
  double mean_cpu() const;
  double violation_rate() const;
  double e2e_percentile(double p) const;
};

RunResult run_workload(const WorkloadSpec& workload, SizingPolicy& policy,
                       const RunConfig& config);

/// Pre-draws the request randomness exactly as run_workload does — shared
/// with benches that need the draws directly (e.g. Fig 2's per-request
/// scatter, Optimal normalization).
std::vector<RequestDraw> draw_requests(const WorkloadSpec& workload,
                                       const RunConfig& config);

}  // namespace janus
