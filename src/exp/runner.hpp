// Experiment driver: serves a request stream for one workload through the
// DES platform under a sizing policy and aggregates the paper's metrics
// (end-to-end latency distribution, per-request CPU consumption in
// millicores, SLO violation rate).
//
// Request randomness (working sets, co-location counts, interference
// multipliers) is drawn from a dedicated per-run stream in request-index
// order, so every policy evaluated with the same RunConfig serves the
// *identical* request sequence — the normalized comparisons in Table I /
// Fig 5 / Fig 9 are therefore paired.  The draws themselves are lazy:
// request i's draw happens when request i starts, which keeps a 100k-tenant
// fleet from materializing every tenant's full draw table up front.  Since
// requests start in index order (closed loop is sequential; open-loop
// arrivals are a chained event ladder with non-decreasing times), the
// stream is consumed exactly as the historical pre-draw did — bit-identical
// draws, O(1) live draws per tenant.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "exp/request_log.hpp"
#include "fleet/arrivals.hpp"
#include "model/workloads.hpp"
#include "obs/trace.hpp"
#include "policy/policy.hpp"
#include "profiler/profiler.hpp"
#include "sim/platform.hpp"
#include "stats/empirical.hpp"

namespace janus {

struct RunConfig {
  Seconds slo = 3.0;
  Concurrency concurrency = 1;
  int requests = 1000;
  std::uint64_t seed = 2026;
  /// Interference regime; must match what the profiles were built with for
  /// the hints to stay accurate (shift it to inject "unexpected dynamics").
  InterferenceModel interference{InterferenceModel(
      workload_interference_params())};
  /// Co-location distribution; default derives from `concurrency`.
  CoLocationDistribution colocation{};
  bool colocation_is_default = true;
  /// Per-stage co-location source; when set (one distribution per chain
  /// stage) it overrides `colocation` and must outlive the run.  The fleet
  /// fills this from its cluster bin-packing — a StaticCoLocation snapshot
  /// for the plan-once path, or a live epoch feed whose distributions the
  /// control plane shifts at every reconciliation barrier.  For a live
  /// provider the stage multiplier is drawn at stage-launch time from a
  /// per-(request, stage) derived rng stream, so the draw is a pure
  /// function of (seed, request, stage, epoch) and stays bit-identical at
  /// any shard count.
  const CoLocationProvider* colocation_provider = nullptr;
  /// Open-loop arrivals at this rate (requests/s); 0 = closed loop
  /// (sequential requests, the paper's measurement setup).  The arrival
  /// *process* is pluggable via `arrivals`; this rate overrides
  /// `arrivals.rate` (scaling the MMPP burst rate along with it, so the
  /// burst/base ratio is preserved) and the legacy single-knob Poisson
  /// setup keeps working unchanged.
  double open_loop_rate = 0.0;
  /// Shape of the open-loop arrival process (Poisson, MMPP bursts, or a
  /// diurnal rate curve); ignored in closed loop.
  ArrivalSpec arrivals{};
  /// When true the platform derives interference from actual pod
  /// co-location instead of the pre-drawn multipliers (clairvoyant Optimal
  /// is not meaningful in this mode).
  bool endogenous_interference = false;
  PlatformConfig platform{};
  /// Observability: when set, every completed stage of a sampled request
  /// (index % trace_sample_every == 0 — deterministic, index-keyed) is
  /// recorded as a SpanRecord tagged trace_tenant.  The ring must outlive
  /// the run; null (the default) costs one never-taken branch per stage.
  TraceRing* trace_ring = nullptr;
  int trace_sample_every = 1;
  std::uint32_t trace_tenant = 0;
  /// Keep the per-stage detail columns (sizes, stage_total) in the request
  /// log.  The paper benches that plot per-request allocations need them;
  /// the fleet switches them off — at six-figure tenant counts the flat
  /// e2e/cpu/violated columns are all the merge reads.
  bool record_stage_detail = true;
};

struct RunResult {
  std::string policy_name;
  Seconds slo = 0.0;
  RequestLog requests;

  EmpiricalDistribution e2e_distribution() const;
  double mean_cpu() const;
  double violation_rate() const;
  double e2e_percentile(double p) const;
};

RunResult run_workload(const WorkloadSpec& workload, SizingPolicy& policy,
                       const RunConfig& config);

/// Schedules one workload's full request stream onto a caller-owned engine
/// and platform (which must wrap the same engine) and appends completed
/// records to `out` while the caller runs the engine.  `platform`,
/// `policy`, and `out` must outlive the run; all per-request state lives
/// in the scheduled closures.  Multiple tenants can serve on one engine: each call uses
/// only its own platform/policy/rng streams, so a tenant's records are
/// bit-identical no matter what else shares the calendar — this is what
/// lets the fleet simulator put one SimEngine per shard.
void serve_workload(SimEngine& engine, Platform& platform,
                    const WorkloadSpec& workload, SizingPolicy& policy,
                    const RunConfig& config, RunResult& out);

/// Pre-draws the request randomness exactly as run_workload does — shared
/// with benches that need the draws directly (e.g. Fig 2's per-request
/// scatter, Optimal normalization).
std::vector<RequestDraw> draw_requests(const WorkloadSpec& workload,
                                       const RunConfig& config);

}  // namespace janus
