// Fork-join workflow support — the paper's stated future work ("adding
// support for more complex workflows").
//
// A DAG is collapsed into a *level chain*: functions at the same
// topological level run in parallel, and the workflow is the sequence of
// levels.  Janus's machinery then applies unchanged with two twists:
//
//  * each level's latency profile is the sample-wise maximum of its
//    members' profiles (comonotonic max — conservative: it assumes branch
//    latencies move together, which upper-bounds the independent case, so
//    SLO guarantees carry over),
//  * every member of a level shares the level's size, so a level of width
//    w contributes w * k to resource cost (TailPlan/SynthesisConfig stage
//    widths).
//
// The adapter's per-suffix tables become per-level tables; when a level
// joins, the remaining budget is derived from the slowest branch.
#pragma once

#include <vector>

#include "dag/workflow.hpp"
#include "exp/runner.hpp"
#include "hints/generator.hpp"
#include "model/workloads.hpp"
#include "profiler/profiler.hpp"

namespace janus {

/// A DAG workload collapsed to its level chain.
struct LevelWorkload {
  WorkloadSpec spec;
  /// levels[l] = ids (into spec.workflow) of the functions at level l.
  std::vector<std::vector<FunctionId>> levels;
  /// Combined per-level profiles (comonotonic max of member profiles).
  std::vector<LatencyProfile> level_profiles;
  /// Per-function profiles in topological order of spec.workflow.
  std::vector<LatencyProfile> function_profiles;
  /// widths[l] == levels[l].size().
  std::vector<int> widths;

  std::size_t level_count() const noexcept { return levels.size(); }
};

/// Profiles every function of a DAG workload and builds level profiles.
LevelWorkload build_level_workload(const WorkloadSpec& workload,
                                   const ProfilerConfig& config);

/// Synthesis config pre-filled with the level widths.
SynthesisConfig level_synthesis_config(const LevelWorkload& workload,
                                       Concurrency concurrency = 1);

/// Serves requests over the level chain: all members of a level launch
/// together with the level's size; the level completes when its slowest
/// member does.  `policy` is consulted once per level (stage == level).
RunResult run_level_workload(const LevelWorkload& workload,
                             SizingPolicy& policy, const RunConfig& config);

/// A realistic fork-join example workload: a social-feed pipeline
///   ingest -> {thumbnail, moderation, captioning} -> rank
/// with heterogeneous branch latencies.
WorkloadSpec make_social_feed();

}  // namespace janus
