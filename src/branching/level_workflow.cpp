#include "branching/level_workflow.hpp"

#include <algorithm>

#include "sim/engine.hpp"
#include "sim/platform.hpp"
#include "stats/distributions.hpp"

namespace janus {

LevelWorkload build_level_workload(const WorkloadSpec& workload,
                                   const ProfilerConfig& config) {
  LevelWorkload out;
  out.spec = workload;

  const auto& wf = out.spec.workflow;
  const auto level_of = wf.levels();
  const int max_level =
      *std::max_element(level_of.begin(), level_of.end());
  out.levels.assign(static_cast<std::size_t>(max_level) + 1, {});
  for (FunctionId id : wf.topological_order()) {
    out.levels[static_cast<std::size_t>(level_of[static_cast<std::size_t>(id)])]
        .push_back(id);
  }

  // Per-function profiles, indexed by FunctionId.
  out.function_profiles.resize(wf.size());
  for (FunctionId id = 0; static_cast<std::size_t>(id) < wf.size(); ++id) {
    out.function_profiles[static_cast<std::size_t>(id)] =
        profile_function(out.spec.model_of(id), config);
  }

  // Level profiles: sample-wise (comonotonic) max over members.
  for (const auto& members : out.levels) {
    out.widths.push_back(static_cast<int>(members.size()));
    std::string name = "level[";
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i) name += "|";
      name += wf.function(members[i]).name;
    }
    name += "]";
    LatencyProfile level(name, config.grid);
    for (Concurrency c : config.grid.concurrencies) {
      for (Millicores k : config.grid.cores()) {
        std::vector<double> combined;
        bool have_all = true;
        for (FunctionId id : members) {
          const auto& profile =
              out.function_profiles[static_cast<std::size_t>(id)];
          if (!profile.has_point(k, c)) {
            have_all = false;
            break;
          }
          const auto& samples = profile.samples(k, c);
          if (combined.empty()) {
            combined = samples;
          } else {
            require(samples.size() == combined.size(),
                    "member sample counts differ");
            // Both arrays are sorted: element-wise max of sorted samples is
            // the comonotonic max distribution (conservative upper bound of
            // the independent max).
            for (std::size_t i = 0; i < combined.size(); ++i) {
              combined[i] = std::max(combined[i], samples[i]);
            }
          }
        }
        if (have_all && !combined.empty()) {
          level.set_samples(k, c, std::move(combined));
        }
      }
    }
    out.level_profiles.push_back(std::move(level));
  }
  return out;
}

SynthesisConfig level_synthesis_config(const LevelWorkload& workload,
                                       Concurrency concurrency) {
  SynthesisConfig config;
  config.concurrency = concurrency;
  config.stage_widths = workload.widths;
  return config;
}

RunResult run_level_workload(const LevelWorkload& workload,
                             SizingPolicy& policy, const RunConfig& config) {
  require(config.slo > 0.0, "SLO must be > 0");
  const auto& wf = workload.spec.workflow;

  // Platform functions indexed by FunctionId.
  std::vector<FunctionModel> functions;
  for (FunctionId id = 0; static_cast<std::size_t>(id) < wf.size(); ++id) {
    functions.push_back(workload.spec.model_of(id));
  }

  // Pre-draw per-function randomness (stage draws are per FunctionId here).
  const CoLocationDistribution coloc =
      config.colocation_is_default
          ? CoLocationDistribution::for_concurrency(config.concurrency)
          : config.colocation;
  Rng rng = Rng(config.seed).split(0xb4a9cULL);
  std::vector<RequestDraw> draws;
  draws.reserve(static_cast<std::size_t>(config.requests));
  for (int r = 0; r < config.requests; ++r) {
    RequestDraw draw;
    for (const auto& fn : functions) {
      draw.ws.push_back(fn.sample_ws(config.concurrency, rng));
      draw.interference.push_back(config.interference.sample_multiplier(
          fn.dim(), coloc.sample(rng), rng));
    }
    draws.push_back(std::move(draw));
  }

  SimEngine engine;
  PlatformConfig platform_config = config.platform;
  platform_config.seed = config.seed ^ 0x51c6e1ULL;
  Platform platform(engine, platform_config, functions, config.interference);

  RunResult result;
  result.policy_name = policy.name();
  result.slo = config.slo;

  for (const auto& draw : draws) {
    RequestRecord record;
    Seconds elapsed = 0.0;
    policy.on_request_start(draw);
    for (std::size_t level = 0; level < workload.levels.size(); ++level) {
      const Millicores size = policy.size_for_stage(level, elapsed, draw);
      Seconds slowest = 0.0;
      for (FunctionId id : workload.levels[level]) {
        platform.invoke(static_cast<int>(id), size, config.concurrency,
                        draw.ws[static_cast<std::size_t>(id)],
                        draw.interference[static_cast<std::size_t>(id)],
                        // engine.run() below drains every completion
                        // before `slowest` leaves scope — this loop IS the
                        // join barrier, so the reference cannot dangle.
                        // janus-lint: allow(ref-capture-event) run() drains in scope
                        [&slowest](const InvocationOutcome& o) {
                          slowest = std::max(slowest, o.total());
                        });
        record.cpu_mc += static_cast<double>(size);
      }
      engine.run();  // join: the level ends with its slowest branch
      elapsed += slowest;
      record.sizes.push_back(size);
      record.stage_total.push_back(slowest);
    }
    record.e2e = elapsed;
    record.violated = elapsed > config.slo;
    result.requests.push_back(std::move(record));
  }
  return result;
}

WorkloadSpec make_social_feed() {
  WorkloadSpec spec;
  spec.name = "SF";
  auto model = [](const char* name, Seconds serial, Seconds work,
                  double p99_over_p50, ResourceDim dim) {
    FunctionModelParams p;
    p.name = name;
    p.serial_s = serial;
    p.work_s = work;
    p.ws_sigma = LogNormal::sigma_for_p99_over_p50(p99_over_p50);
    p.dim = dim;
    return FunctionModel(p);
  };
  spec.models = {
      model("ingest", 0.04, 0.30, 1.6, ResourceDim::Io),        // 0
      model("thumbnail", 0.05, 0.45, 1.9, ResourceDim::Cpu),    // 1
      model("moderation", 0.06, 0.55, 2.1, ResourceDim::Cpu),   // 2
      model("captioning", 0.05, 0.50, 2.0, ResourceDim::Memory),// 3
      model("rank", 0.04, 0.35, 1.7, ResourceDim::Cpu),         // 4
  };
  Workflow wf("SF");
  std::vector<FunctionId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(wf.add_function({spec.models[static_cast<std::size_t>(i)]
                                       .name(),
                                   i}));
  }
  wf.add_edge(ids[0], ids[1]);
  wf.add_edge(ids[0], ids[2]);
  wf.add_edge(ids[0], ids[3]);
  wf.add_edge(ids[1], ids[4]);
  wf.add_edge(ids[2], ids[4]);
  wf.add_edge(ids[3], ids[4]);
  spec.workflow = std::move(wf);
  // Tight enough that the fan-out level must size above the Kmin floor.
  spec.slo_by_concurrency = {2.2};
  spec.max_concurrency = 1;
  return spec;
}

}  // namespace janus
