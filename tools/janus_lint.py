#!/usr/bin/env python3
"""janus-lint: determinism & hot-path invariant checker for the Janus tree.

The reproduction's load-bearing invariants are ones the compiler cannot
see: fleet metrics must be bit-identical at any shard count, the PR 3
event path must stay allocation-free in steady state, and hints bundles
are shared read-only across tenants.  One careless unordered_map
iteration in a merge path or a std::function in the engine silently
reintroduces nondeterminism or allocations.  This pass turns those tribal
rules into machine-checked gates.

Engine
------
The canonical engine is a deterministic token-level scanner: it strips
comments/strings with a real lexer (raw strings included), so it needs no
compiler, no matching libclang wheel, and produces byte-stable output on
any host — which is what lets CI gate on it.  When the optional python
libclang bindings ARE importable (``import clang.cindex``), ``--engine
auto`` upgrades exactly one check — determinism-unordered — to an
AST-accurate form that flags only *iteration* over unordered containers
instead of any mention; every other check is already precise at token
level.  ``--engine tokens`` (what ci/lint.sh pins) never touches
libclang.

Checks
------
determinism-rand        rand()/srand()/rand_r()/drand48()/std::random_device
                        anywhere in src/: all randomness must flow through
                        the seeded janus::Rng.
determinism-time        time()/clock()/gettimeofday()/clock_gettime() and
                        std::chrono::system_clock in src/: wall-clock reads
                        leak host time into simulated behavior.
                        steady_clock is deliberately allowed — it is used
                        only to *report* wall time, never to steer it.
determinism-unordered   unordered_{map,set,multimap,multiset} in the
                        order-sensitive paths (src/stats, src/fleet,
                        src/sim): iteration order varies across standard
                        libraries and runs, which breaks the
                        bit-identical-at-any-shard-count contract.
hot-path-alloc          non-placement new / make_unique / make_shared /
                        malloc-family inside a JANUS_HOT function.
hot-path-growth         push_back/emplace_back/resize/reserve/insert/...
                        inside a JANUS_HOT function (growth can
                        reallocate; retained-capacity pools get a
                        justified suppression).
hot-path-std-function   std::function inside a JANUS_HOT function (its
                        capture heap-allocates; use InlineFunction).
hot-path-obs-guard      an obs-sink access (any ``obs_``-prefixed
                        identifier) inside a JANUS_HOT function that is not
                        wrapped in JANUS_OBS(sink, expr): the macro is what
                        guarantees the disabled path costs one null-test
                        branch, so naked sink touches on the event path are
                        banned.
mutable-hints-bundle    non-const HintsBundle outside src/hints/: bundles
                        are synthesized once and shared read-only across
                        tenants and shards.
ref-capture-event       a by-reference lambda capture handed to
                        SimEngine::schedule_at/schedule_after or
                        Platform::invoke: the closure outlives the
                        statement, so stack captures dangle unless the
                        scope provably drains the engine first.
bad-suppression         a janus-lint suppression with no justification or
                        an unknown check name.

Suppressions
------------
A finding is suppressed by a trailing comment on the same line, or by a
comment (block) directly above it — the directive anchors to the next
line that holds code::

    foo();  // janus-lint: allow(check-name) reason why this is safe

    // A longer justification can span several comment lines; the
    // directive may sit anywhere in the block.
    // janus-lint: allow(check-name) reason why this is safe
    bar();

The reason is mandatory — an allow() without one is itself a finding.

Baseline
--------
``--baseline FILE`` reads committed per-(check, file) finding counts; only
findings *beyond* the baseline fail the run (new findings fail, legacy
ones are burned down).  ``--update-baseline`` rewrites the file from the
current tree.  The committed baseline (tools/lint_baseline.txt) is empty:
src/sim, src/stats and src/fleet lint clean.

Exit codes: 0 clean (or fully baselined), 1 findings, 2 usage/config
error.
"""

import argparse
import bisect
import glob
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Paths whose event/merge order feeds externally observable, pinned output
# (bit-identity benches assert it); unordered containers are banned here.
ORDER_SENSITIVE = ("src/stats/", "src/fleet/", "src/sim/")

# HintsBundle may be mutable only where it is produced.
HINTS_PRODUCER = ("src/hints/",)

RAND_CALLS = {"rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"}
TIME_CALLS = {"time", "clock", "gettimeofday", "clock_gettime"}
UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
             "unordered_multiset"}
ALLOC_CALLS = {"make_unique", "make_shared", "malloc", "calloc", "realloc",
               "strdup", "aligned_alloc"}
GROWTH_CALLS = {"push_back", "emplace_back", "resize", "reserve", "insert",
                "emplace", "append", "push", "push_front", "emplace_front",
                "assign"}
SCHEDULING_CALLS = {"schedule_at", "schedule_after", "invoke"}

CHECKS = {
    "determinism-rand":
        "nondeterministic random source; use the seeded janus::Rng",
    "determinism-time":
        "wall-clock read can steer simulated behavior",
    "determinism-unordered":
        "unordered container in an order-sensitive path",
    "hot-path-alloc":
        "heap allocation in a JANUS_HOT function",
    "hot-path-growth":
        "container growth call in a JANUS_HOT function",
    "hot-path-std-function":
        "std::function in a JANUS_HOT function",
    "hot-path-obs-guard":
        "unguarded obs-sink access in a JANUS_HOT function",
    "mutable-hints-bundle":
        "non-const HintsBundle outside its producer",
    "ref-capture-event":
        "by-reference capture escaping into a scheduled event",
    "bad-suppression":
        "malformed janus-lint suppression",
}

SUPPRESS_RE = re.compile(r"janus-lint:\s*allow\(([A-Za-z0-9_-]+)\)[ \t]*(.*)")


class Token(object):
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind      # "id" | "num" | "punct"
        self.text = text
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return "%s(%r)@%d" % (self.kind, self.text, self.line)


class Finding(object):
    __slots__ = ("path", "line", "check", "message", "suppressed")

    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message
        self.suppressed = False

    def render(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.check,
                                   self.message)


# --------------------------------------------------------------------------
# Lexer: comments and string/char literals are consumed exactly (raw
# strings included) so no banned identifier can hide in — or be faked by —
# literal text.  Comments are scanned for suppression directives.

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_TWO_CHAR = {"::", "->", "&&", "<<", ">>", "+=", "-=", "==", "!=", "<=",
             ">=", "||", "++", "--"}


def lex(text):
    """Returns (tokens, comments) where comments is [(line, text), ...]."""
    tokens = []
    comments = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#":
            # #include directives name headers (<unordered_map>, <ctime>)
            # that would double-report every banned use; the *use* is the
            # finding, so the directive line is skipped wholesale.  Other
            # preprocessor lines keep their tokens (JANUS_HOT et al. never
            # appear in includes, and #define bodies are real code).
            m = re.match(r"#\s*include\b", text[i:])
            if m:
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
        if c == "/" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "/":
                j = text.find("\n", i)
                j = n if j < 0 else j
                comments.append((line, text[i + 2:j]))
                i = j
                continue
            if nxt == "*":
                j = text.find("*/", i + 2)
                j = n - 2 if j < 0 else j
                body = text[i + 2:j]
                comments.append((line, body))
                line += body.count("\n")
                i = j + 2
                continue
        if c == '"' or (c == "R" and text[i:i + 2] == 'R"'):
            if c == "R":
                # Raw string: R"delim( ... )delim"
                m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    end = text.find(")%s\"" % m.group(1), i + m.end())
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    line += text.count("\n", i, end)
                    i = end
                    continue
                # R not followed by a raw string: plain identifier.
            if c == '"':
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                line += text.count("\n", i, j)
                i = j + 1
                continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            i = j + 1
            continue
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        two = text[i:i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("punct", two, line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1
    return tokens, comments


# --------------------------------------------------------------------------
# Suppressions

class Suppressions(object):
    def __init__(self):
        self.by_line = {}  # anchored code line -> list of check names
        self.bad = []      # Finding objects (bad-suppression)

    @classmethod
    def parse(cls, path, comments, tokens):
        out = cls()
        # A directive anchors to the first line at or after it that holds
        # code, so a justification block above a statement covers that
        # statement no matter which block line carries the allow().
        code_lines = sorted({t.line for t in tokens})
        for line, text in comments:
            offset = 0
            for block_line_text in text.split("\n"):
                for m in SUPPRESS_RE.finditer(block_line_text):
                    check, reason = m.group(1), m.group(2).strip()
                    at = line + offset
                    if check not in CHECKS:
                        out.bad.append(Finding(
                            path, at, "bad-suppression",
                            "suppression names unknown check '%s' "
                            "(run --list-checks for the registry)" % check))
                        continue
                    if not reason:
                        out.bad.append(Finding(
                            path, at, "bad-suppression",
                            "suppression for '%s' has no justification; "
                            "write 'janus-lint: allow(%s) <why this is "
                            "safe>'" % (check, check)))
                        continue
                    idx = bisect.bisect_left(code_lines, at)
                    anchor = code_lines[idx] if idx < len(code_lines) else at
                    out.by_line.setdefault(anchor, []).append(check)
                offset += 1
        return out

    def covers(self, finding):
        return finding.check in self.by_line.get(finding.line, ())


# --------------------------------------------------------------------------
# Hot regions: JANUS_HOT annotates a function; the region is its body.

class HotRegion(object):
    __slots__ = ("start", "end", "name")  # token index range [start, end)

    def __init__(self, start, end, name):
        self.start = start
        self.end = end
        self.name = name


def find_hot_regions(tokens):
    regions = []
    i, n = 0, len(tokens)
    while i < n:
        if tokens[i].kind == "id" and tokens[i].text == "JANUS_HOT":
            name = "?"
            depth = 0
            j = i + 1
            body_start = None
            while j < n:
                t = tokens[j]
                if t.text == "(" and depth == 0 and name == "?":
                    # identifier right before the parameter list
                    if tokens[j - 1].kind == "id":
                        name = tokens[j - 1].text
                if t.text in "([":
                    depth += 1
                elif t.text in ")]":
                    depth -= 1
                elif depth == 0 and t.text == ";":
                    break  # declaration only; body lives elsewhere
                elif depth == 0 and t.text == "{":
                    body_start = j
                    break
                j += 1
            if body_start is not None:
                brace = 1
                j = body_start + 1
                while j < n and brace > 0:
                    if tokens[j].text == "{":
                        brace += 1
                    elif tokens[j].text == "}":
                        brace -= 1
                    j += 1
                regions.append(HotRegion(body_start, j, name))
                i = body_start  # nested JANUS_HOT would be caught again
        i += 1
    return regions


# --------------------------------------------------------------------------
# Token-level checks

def matching(tokens, i, open_ch, close_ch):
    """Index just past the token matching tokens[i] == open_ch."""
    depth = 0
    n = len(tokens)
    while i < n:
        if tokens[i].text == open_ch:
            depth += 1
        elif tokens[i].text == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def check_file(path, rel, tokens, order_sensitive, hints_producer):
    findings = []
    regions = find_hot_regions(tokens)
    n = len(tokens)

    def prev(i, k=1):
        return tokens[i - k] if i - k >= 0 else None

    def nxt(i, k=1):
        return tokens[i + k] if i + k < n else None

    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        text = tok.text
        after = nxt(i)
        before = prev(i)

        # ---- determinism-rand ------------------------------------------
        if text in RAND_CALLS and after is not None and after.text == "(":
            findings.append(Finding(
                rel, tok.line, "determinism-rand",
                "call to %s() is nondeterministic across runs; draw from "
                "the seeded janus::Rng (common/rng.hpp) instead" % text))
        elif text == "random_device":
            findings.append(Finding(
                rel, tok.line, "determinism-rand",
                "std::random_device pulls entropy from the OS; seed a "
                "janus::Rng from the run config instead"))

        # ---- determinism-time ------------------------------------------
        elif text == "system_clock":
            findings.append(Finding(
                rel, tok.line, "determinism-time",
                "std::chrono::system_clock reads host wall-clock time; "
                "simulated behavior must depend only on SimEngine::now() "
                "(steady_clock is allowed for reporting elapsed wall "
                "time)"))
        elif (text in TIME_CALLS and after is not None and
              after.text == "("):
            qualified_other = False
            if before is not None and before.text in (".", "->"):
                qualified_other = True  # member of some other object
            elif before is not None and before.text == "::":
                qual = prev(i, 2)
                qualified_other = qual is not None and qual.text != "std"
            if not qualified_other:
                findings.append(Finding(
                    rel, tok.line, "determinism-time",
                    "%s() reads host time; simulated behavior must depend "
                    "only on SimEngine::now()" % text))

        # ---- determinism-unordered -------------------------------------
        elif text in UNORDERED and order_sensitive:
            findings.append(Finding(
                rel, tok.line, "determinism-unordered",
                "std::%s in an order-sensitive path: its iteration order "
                "varies across standard libraries and runs, breaking the "
                "bit-identical-metrics contract; use std::map or a sorted "
                "vector" % text))

        # ---- mutable-hints-bundle --------------------------------------
        elif text == "HintsBundle" and not hints_producer:
            j = i - 1
            if (j >= 1 and tokens[j].text == "::" and
                    tokens[j - 1].text == "janus"):
                j -= 2
            qualifier = tokens[j] if j >= 0 else None
            is_fwd_decl = (qualifier is not None and
                           qualifier.text in ("struct", "class") and
                           after is not None and after.text == ";")
            is_const = qualifier is not None and qualifier.text == "const"
            if not is_const and not is_fwd_decl:
                findings.append(Finding(
                    rel, tok.line, "mutable-hints-bundle",
                    "non-const HintsBundle outside src/hints/: bundles are "
                    "synthesized once and shared read-only across tenants "
                    "and shards; hold shared_ptr<const HintsBundle> (sink "
                    "parameters that immediately freeze the bundle may be "
                    "suppressed with a reason)"))

        # ---- ref-capture-event -----------------------------------------
        elif (text in SCHEDULING_CALLS and after is not None and
              after.text == "("):
            arg_end = matching(tokens, i + 1, "(", ")")
            j = i + 2
            while j < arg_end:
                if (tokens[j].text == "[" and
                        tokens[j - 1].text in ("(", ",")):
                    intro_end = matching(tokens, j, "[", "]")
                    for k in range(j + 1, intro_end - 1):
                        if tokens[k].text == "&":
                            findings.append(Finding(
                                rel, tokens[j].line, "ref-capture-event",
                                "by-reference lambda capture handed to "
                                "%s(): the closure runs after this "
                                "statement returns, so stack captures "
                                "dangle; capture by value or shared_ptr "
                                "(suppress with a reason only if the "
                                "referent provably outlives the engine "
                                "drain)" % text))
                            break
                    j = intro_end
                    continue
                j += 1

    # ---- hot-path checks (need region context) --------------------------
    # Token ranges covered by a JANUS_OBS(...) invocation: obs-sink
    # accesses inside a hot region are legal only within one of these.
    obs_guarded = []
    for i, tok in enumerate(tokens):
        if (tok.kind == "id" and tok.text == "JANUS_OBS" and
                i + 1 < n and tokens[i + 1].text == "("):
            obs_guarded.append((i, matching(tokens, i + 1, "(", ")")))

    def is_obs_guarded(idx):
        return any(start <= idx < end for start, end in obs_guarded)

    for region in regions:
        for i in range(region.start, region.end):
            tok = tokens[i]
            if tok.kind != "id":
                continue
            text = tok.text
            after = nxt(i)
            if text == "new":
                # Placement new — `new (addr) T` — does not allocate.
                if after is not None and after.text == "(":
                    continue
                findings.append(Finding(
                    rel, tok.line, "hot-path-alloc",
                    "new-expression in JANUS_HOT function '%s': the "
                    "steady-state event path must not allocate; use the "
                    "slot pool / placement new" % region.name))
            elif (text in ALLOC_CALLS and after is not None and
                  after.text in ("(", "<")):
                findings.append(Finding(
                    rel, tok.line, "hot-path-alloc",
                    "%s in JANUS_HOT function '%s' heap-allocates; the "
                    "steady-state event path must not allocate"
                    % (text, region.name)))
            elif (text in GROWTH_CALLS and after is not None and
                  after.text == "(" and
                  prev(i) is not None and prev(i).text in (".", "->")):
                findings.append(Finding(
                    rel, tok.line, "hot-path-growth",
                    "container growth call %s() in JANUS_HOT function "
                    "'%s' can reallocate; pre-size outside the hot path "
                    "or suppress citing the retained-capacity invariant"
                    % (text, region.name)))
            elif (text == "function" and prev(i) is not None and
                  prev(i).text == "::" and prev(i, 2) is not None and
                  prev(i, 2).text == "std"):
                findings.append(Finding(
                    rel, tok.line, "hot-path-std-function",
                    "std::function in JANUS_HOT function '%s' "
                    "heap-allocates its capture; use "
                    "janus::InlineFunction (common/inline_function.hpp)"
                    % region.name))
            elif text.startswith("obs_") and not is_obs_guarded(i):
                findings.append(Finding(
                    rel, tok.line, "hot-path-obs-guard",
                    "obs-sink access '%s' in JANUS_HOT function '%s' is "
                    "not wrapped in JANUS_OBS(sink, expr); the guard "
                    "macro is what keeps the observability-off event "
                    "path to a single null-test branch (src/obs/obs.hpp)"
                    % (text, region.name)))
    return findings


# --------------------------------------------------------------------------
# Optional libclang refinement (``--engine auto``/``clang``): replaces the
# presence-based determinism-unordered findings with AST-accurate ones that
# flag only actual iteration (range-for, or a .begin() call) over an
# unordered container.  Never required: any failure falls back to the token
# findings.

def _clang_unordered_iterations(cc_path, files):
    import clang.cindex as ci  # noqa: imported lazily, may be absent
    found = {}  # rel -> set of lines
    index = ci.Index.create()
    compdb = ci.CompilationDatabase.fromDirectory(os.path.dirname(cc_path))
    for path in files:
        cmds = compdb.getCompileCommands(path)
        args = []
        if cmds:
            args = [a for a in list(cmds[0].arguments)[1:-1]
                    if a not in ("-c", "-o")]
        tu = index.parse(path, args=args)
        rel = os.path.relpath(path, REPO)
        for cursor in tu.cursor.walk_preorder():
            if str(cursor.location.file) != path:
                continue
            hit = False
            if cursor.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                if children and "unordered_" in children[0].type.spelling:
                    hit = True
            elif cursor.kind == ci.CursorKind.CALL_EXPR and \
                    cursor.spelling in ("begin", "end", "cbegin", "cend"):
                ref = list(cursor.get_children())
                if ref and "unordered_" in ref[0].type.spelling:
                    hit = True
            if hit:
                found.setdefault(rel, set()).add(cursor.location.line)
    return found


def refine_with_clang(findings, cc_path, engine):
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        if engine == "clang":
            print("janus-lint: --engine clang requires the python "
                  "libclang bindings (clang.cindex); falling back is only "
                  "automatic with --engine auto", file=sys.stderr)
            sys.exit(2)
        return findings, "tokens (libclang unavailable)"
    if not cc_path or not os.path.isfile(cc_path):
        return findings, "tokens (no compile_commands.json)"
    try:
        files = sorted({os.path.join(REPO, f.path)
                        for f in findings
                        if f.check == "determinism-unordered"})
        if not files:
            return findings, "clang"
        iters = _clang_unordered_iterations(cc_path, files)
        kept = []
        for f in findings:
            if f.check != "determinism-unordered":
                kept.append(f)
            elif f.line in iters.get(f.path, ()):
                kept.append(f)
        return kept, "clang"
    except Exception as err:  # noqa: broad - AST mode is best-effort
        print("janus-lint: libclang refinement failed (%s); using token "
              "findings" % err, file=sys.stderr)
        return findings, "tokens (libclang failed)"


# --------------------------------------------------------------------------
# Baseline

def load_baseline(path):
    counts = {}
    if not path or not os.path.isfile(path):
        return counts
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) != 3:
                print("janus-lint: malformed baseline line: %r" % line,
                      file=sys.stderr)
                sys.exit(2)
            check, rel, count = parts
            counts[(check, rel)] = int(count)
    return counts


def save_baseline(path, findings):
    counts = {}
    for f in findings:
        counts[(f.check, f.path)] = counts.get((f.check, f.path), 0) + 1
    with open(path, "w") as out:
        out.write("# janus-lint baseline: check|file|count\n")
        out.write("# New findings beyond these counts fail ci/lint.sh; "
                  "burn legacy ones down to zero.\n")
        for (check, rel), count in sorted(counts.items()):
            out.write("%s|%s|%d\n" % (check, rel, count))


# --------------------------------------------------------------------------
# Driver

def gather_files(args):
    if args.lint_file:
        return [(os.path.abspath(p), args.as_path or
                 os.path.relpath(os.path.abspath(p), REPO))
                for p in args.lint_file]
    files = set()
    for pattern in ("src/**/*.hpp", "src/**/*.cpp", "src/**/*.h"):
        files.update(glob.glob(os.path.join(args.root, pattern),
                               recursive=True))
    # compile_commands contributes TUs under root/src that a glob over a
    # partial checkout might miss (and proves the export is wired up).
    if args.compile_commands and os.path.isfile(args.compile_commands):
        try:
            with open(args.compile_commands) as f:
                for entry in json.load(f):
                    path = os.path.normpath(
                        os.path.join(entry.get("directory", ""),
                                     entry["file"]))
                    if path.startswith(
                            os.path.join(args.root, "src") + os.sep):
                        files.add(path)
        except (OSError, ValueError, KeyError) as err:
            print("janus-lint: unreadable compile_commands %r: %s"
                  % (args.compile_commands, err), file=sys.stderr)
            sys.exit(2)
    return [(p, os.path.relpath(p, args.root)) for p in sorted(files)]


def main():
    parser = argparse.ArgumentParser(
        description="determinism & hot-path invariant checker")
    parser.add_argument("--root", default=REPO,
                        help="repo root (default: script location/..)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json (adds its src/ TUs to "
                             "the file set; enables libclang refinement)")
    parser.add_argument("--baseline", default=None,
                        help="committed findings baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from the current tree")
    parser.add_argument("--engine", choices=("auto", "tokens", "clang"),
                        default="auto",
                        help="auto: libclang refinement if importable; "
                             "tokens: pure token engine (what CI pins)")
    parser.add_argument("--lint-file", action="append", default=None,
                        help="lint exactly this file (repeatable; for "
                             "fixture self-tests)")
    parser.add_argument("--as-path", default=None,
                        help="treat --lint-file as this repo-relative path "
                             "for path-scoped checks")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-run summary line")
    args = parser.parse_args()

    if args.list_checks:
        for name in sorted(CHECKS):
            print("%-24s %s" % (name, CHECKS[name]))
        return 0

    args.root = os.path.abspath(args.root)
    files = gather_files(args)
    if not files:
        print("janus-lint: no files to lint under %r" % args.root,
              file=sys.stderr)
        return 2

    findings = []
    suppressed = 0
    for path, rel in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as err:
            print("janus-lint: cannot read %s: %s" % (rel, err),
                  file=sys.stderr)
            return 2
        tokens, comments = lex(text)
        rel_posix = rel.replace(os.sep, "/")
        sup = Suppressions.parse(rel_posix, comments, tokens)
        raw = check_file(
            path, rel_posix, tokens,
            order_sensitive=rel_posix.startswith(ORDER_SENSITIVE),
            hints_producer=rel_posix.startswith(HINTS_PRODUCER))
        findings.extend(sup.bad)  # never suppressible
        for f in raw:
            if sup.covers(f):
                suppressed += 1
            else:
                findings.append(f)

    engine = "tokens"
    if args.engine in ("auto", "clang"):
        findings, engine = refine_with_clang(
            findings, args.compile_commands, args.engine)

    findings.sort(key=lambda f: (f.path, f.line, f.check))

    if args.update_baseline:
        if not args.baseline:
            print("janus-lint: --update-baseline needs --baseline",
                  file=sys.stderr)
            return 2
        save_baseline(args.baseline, findings)
        print("janus-lint: baseline updated (%d finding(s)) -> %s"
              % (len(findings), args.baseline))
        return 0

    baseline = load_baseline(args.baseline)
    budget = dict(baseline)
    new_findings = []
    baselined = 0
    for f in findings:
        key = (f.check, f.path)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined += 1
        else:
            new_findings.append(f)

    for f in new_findings:
        print(f.render())
    stale = sum(v for v in budget.values() if v > 0)
    if not args.quiet:
        print("janus-lint: %d new finding(s), %d baselined, %d suppressed "
              "across %d file(s) [engine: %s]"
              % (len(new_findings), baselined, suppressed, len(files),
                 engine))
        if stale and not new_findings:
            print("janus-lint: note: baseline lists %d finding(s) that no "
                  "longer exist; tighten it with --update-baseline" % stale)
    return 1 if new_findings else 0


if __name__ == "__main__":
    sys.exit(main())
