#!/usr/bin/env python3
"""Diff fresh BENCH_*.json artifacts against the committed baselines.

Compares wall_seconds, peak_rss_kb, AND sustainable-rps for every
benchmark present in BOTH directories and flags regressions beyond the
threshold (default 20% slower / 20% more resident memory / 20% less
sustainable throughput).  Baselines recorded before peak_rss_kb existed
(or with a zero reading) skip the memory comparison.

sustainable-rps comes from `sustainable_rps_<key>: N` lines a benchmark
prints on stdout (bench_frontier's per-policy-family knees); lower is
worse — the gate trips when a fresh knee moved LEFT of the baseline's by
more than the threshold, and the report names each key that moved.  A
zero baseline knee (a censored frontier) skips the percentage for that
key.  Every report line names the metric(s) that tripped it (wall vs rss
vs sustainable-rps), as does the fatal summary.

Exit code is 0 unless either fatal gate trips:

  * --fatal: any regression past --threshold (or a failed run) exits 1;
  * --fatal-pct PCT: only regressions past PCT (or failed runs) exit 1,
    while the --threshold report stays informational.

ci/verify.sh runs with --fatal-pct 35: a slow shared box still gets its
20% warnings in the log without turning the build red, but a >35% wall
regression — far past scheduler noise — fails CI.

With --require NAME[,NAME...] the named benchmarks (stems, without the
BENCH_ prefix) must be present in the fresh directory with status "ok";
a missing or failed required benchmark exits 1 regardless of the other
flags.  This is the CI gate's guard against a benchmark silently
vanishing from the run list: without it, "nothing to compare" is
indistinguishable from "all good".

usage: tools/compare_bench.py [--fresh DIR] [--baselines DIR]
                              [--threshold PCT] [--fatal]
                              [--fatal-pct PCT] [--require NAMES]
"""

import argparse
import json
import os
import sys


def sustainable_rps(record):
    """Parse `sustainable_rps_<key>: N` lines from a record's stdout."""
    out = {}
    for line in record.get("stdout", "").splitlines():
        key, sep, value = line.strip().partition(":")
        if not sep or not key.startswith("sustainable_rps_"):
            continue
        try:
            out[key[len("sustainable_rps_"):]] = float(value)
        except ValueError:
            pass
    return out


def load_dir(path):
    out = {}
    if not os.path.isdir(path):
        return out
    for name in sorted(os.listdir(path)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(path, name)) as f:
                out[name] = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"compare_bench: skipping unreadable {name}: {err}",
                  file=sys.stderr)
    return out


def main():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(
        description="wall-time and peak-RSS diff of BENCH_*.json vs committed baselines")
    parser.add_argument("--fresh", default=".",
                        help="directory with freshly emitted BENCH_*.json")
    parser.add_argument("--baselines",
                        default=os.path.join(repo, "bench", "baselines"),
                        help="directory with committed baselines")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="flag runs this percent slower than baseline")
    parser.add_argument("--fatal", action="store_true",
                        help="exit 1 on regressions instead of reporting only")
    parser.add_argument("--fatal-pct", type=float, default=None,
                        help="exit 1 only for regressions beyond this percent "
                             "(failed runs are always fatal with this flag)")
    parser.add_argument("--require", default="",
                        help="comma-separated benchmark stems that must be "
                             "present and ok in --fresh (missing or failed "
                             "=> exit 1)")
    args = parser.parse_args()

    fresh = load_dir(args.fresh)
    base = load_dir(args.baselines)

    missing_required = []
    for stem in filter(None, args.require.split(",")):
        name = f"BENCH_{stem}.json"
        if name not in fresh or fresh[name].get("status") != "ok":
            missing_required.append(stem)
    if missing_required:
        print(f"compare_bench: required benchmark(s) missing or failed: "
              f"{', '.join(missing_required)}", file=sys.stderr)

    common = sorted(set(fresh) & set(base))
    if not common:
        print(f"compare_bench: nothing to compare "
              f"(fresh={args.fresh!r} has {len(fresh)}, "
              f"baselines={args.baselines!r} has {len(base)})")
        return 1 if missing_required else 0

    regressions = []
    fatal = []
    print(f"{'benchmark':<28} {'base (s)':>9} {'fresh (s)':>9} "
          f"{'delta':>8} {'base rss':>9} {'fresh rss':>9} {'rss':>8}  status")
    print("-" * 96)
    for name in common:
        b, f = base[name], fresh[name]
        bw, fw = b.get("wall_seconds", 0.0), f.get("wall_seconds", 0.0)
        delta = (fw - bw) / bw * 100.0 if bw > 0 else 0.0
        # peak_rss_kb gates like wall_seconds; a baseline recorded before
        # the field existed (or with a zero reading) skips the comparison
        # rather than fabricating a 0-KB reference.
        brss, frss = b.get("peak_rss_kb", 0), f.get("peak_rss_kb", 0)
        rss_delta = ((frss - brss) / brss * 100.0
                     if brss and frss else None)
        # sustainable-rps is inverted: lower is worse.  The delta is the
        # worst drop across the keys both runs report, expressed as a
        # positive percentage so it gates through the same bands as wall
        # and rss.  A zero baseline knee (censored frontier) can't scale a
        # percentage and is skipped — a knee *appearing* is an improvement.
        brps, frps = sustainable_rps(b), sustainable_rps(f)
        rps_drops = sorted(
            (key, (brps[key] - frps[key]) / brps[key] * 100.0)
            for key in set(brps) & set(frps) if brps[key] > 0)
        rps_delta = (max(d for _, d in rps_drops) if rps_drops else None)
        status = "ok"
        if f.get("status") != "ok":
            status = "FAILED RUN"
            regressions.append(name)
            fatal.append((name, "failed run"))
        else:
            # Checked before the warn threshold so a --fatal-pct below
            # --threshold still gates (the warn band is informational,
            # the fatal band is the contract).
            metrics = (("wall", delta), ("rss", rss_delta),
                       ("sustainable-rps", rps_delta))
            fatal_metrics = [m for m, d in metrics
                             if args.fatal_pct is not None
                             and d is not None and d > args.fatal_pct]
            warn_metrics = [m for m, d in metrics
                            if d is not None and d > args.threshold]
            if fatal_metrics:
                status = (f"FATAL REGRESSION ({'+'.join(fatal_metrics)} "
                          f">{args.fatal_pct:.0f}%)")
                regressions.append(name)
                fatal.append((name, "+".join(fatal_metrics)))
            elif warn_metrics:
                status = (f"REGRESSION ({'+'.join(warn_metrics)} "
                          f">{args.threshold:.0f}%)")
                regressions.append(name)
            elif delta < -args.threshold:
                status = "improvement"
        stem = name[len("BENCH_"):-len(".json")]
        rss_col = f"{rss_delta:>+7.1f}%" if rss_delta is not None else "     n/a"
        print(f"{stem:<28} {bw:>9.3f} {fw:>9.3f} {delta:>+7.1f}% "
              f"{brss or 0:>9} {frss or 0:>9} {rss_col}  {status}")
        # Name every knee that moved left past the warn band, so the log
        # says *which* policy family regressed, not just "the bench did".
        if rps_delta is not None and rps_delta > args.threshold:
            for key, drop in rps_drops:
                if drop > args.threshold:
                    print(f"{'':<28}   sustainable-rps {key}: "
                          f"{brps[key]:g} -> {frps[key]:g} req/s "
                          f"({-drop:+.1f}%)")

    skipped = sorted(set(base) - set(fresh))
    if skipped:
        print(f"compare_bench: no fresh run for: "
              f"{', '.join(n[6:-5] for n in skipped)}")
    unbaselined = sorted(set(fresh) - set(base))
    if unbaselined:
        print(f"compare_bench: no committed baseline for: "
              f"{', '.join(n[6:-5] for n in unbaselined)} "
              f"(commit one under bench/baselines/)")
    if regressions:
        print(f"compare_bench: {len(regressions)} regression(s)",
              file=sys.stderr)
        if args.fatal:
            return 1
        if fatal and args.fatal_pct is not None:
            print(f"compare_bench: {len(fatal)} past the fatal gate "
                  f"({args.fatal_pct:.0f}%): "
                  f"{', '.join(f'{n[6:-5]} [{m}]' for n, m in fatal)}",
                  file=sys.stderr)
            return 1
    return 1 if missing_required else 0


if __name__ == "__main__":
    sys.exit(main())
